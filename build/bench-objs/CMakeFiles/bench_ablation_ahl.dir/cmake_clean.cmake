file(REMOVE_RECURSE
  "../bench/bench_ablation_ahl"
  "../bench/bench_ablation_ahl.pdb"
  "CMakeFiles/bench_ablation_ahl.dir/bench_ablation_ahl.cpp.o"
  "CMakeFiles/bench_ablation_ahl.dir/bench_ablation_ahl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
