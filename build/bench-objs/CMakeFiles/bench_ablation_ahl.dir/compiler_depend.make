# Empty compiler generated dependencies file for bench_ablation_ahl.
# This may be replaced when dependencies are built.
