# Empty dependencies file for bench_fig26_seven_year16.
# This may be replaced when dependencies are built.
