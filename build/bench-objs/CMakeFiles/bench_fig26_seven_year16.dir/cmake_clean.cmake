file(REMOVE_RECURSE
  "../bench/bench_fig26_seven_year16"
  "../bench/bench_fig26_seven_year16.pdb"
  "CMakeFiles/bench_fig26_seven_year16.dir/bench_fig26_seven_year16.cpp.o"
  "CMakeFiles/bench_fig26_seven_year16.dir/bench_fig26_seven_year16.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_seven_year16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
