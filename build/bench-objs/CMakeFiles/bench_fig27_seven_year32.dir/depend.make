# Empty dependencies file for bench_fig27_seven_year32.
# This may be replaced when dependencies are built.
