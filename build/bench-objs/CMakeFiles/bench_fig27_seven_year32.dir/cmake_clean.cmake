file(REMOVE_RECURSE
  "../bench/bench_fig27_seven_year32"
  "../bench/bench_fig27_seven_year32.pdb"
  "CMakeFiles/bench_fig27_seven_year32.dir/bench_fig27_seven_year32.cpp.o"
  "CMakeFiles/bench_fig27_seven_year32.dir/bench_fig27_seven_year32.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_seven_year32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
