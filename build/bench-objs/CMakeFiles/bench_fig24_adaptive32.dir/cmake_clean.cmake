file(REMOVE_RECURSE
  "../bench/bench_fig24_adaptive32"
  "../bench/bench_fig24_adaptive32.pdb"
  "CMakeFiles/bench_fig24_adaptive32.dir/bench_fig24_adaptive32.cpp.o"
  "CMakeFiles/bench_fig24_adaptive32.dir/bench_fig24_adaptive32.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_adaptive32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
