# Empty dependencies file for bench_fig24_adaptive32.
# This may be replaced when dependencies are built.
