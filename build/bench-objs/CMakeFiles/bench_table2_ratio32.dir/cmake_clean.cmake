file(REMOVE_RECURSE
  "../bench/bench_table2_ratio32"
  "../bench/bench_table2_ratio32.pdb"
  "CMakeFiles/bench_table2_ratio32.dir/bench_table2_ratio32.cpp.o"
  "CMakeFiles/bench_table2_ratio32.dir/bench_table2_ratio32.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ratio32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
