# Empty compiler generated dependencies file for bench_table2_ratio32.
# This may be replaced when dependencies are built.
