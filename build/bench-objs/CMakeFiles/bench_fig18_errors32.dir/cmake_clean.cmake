file(REMOVE_RECURSE
  "../bench/bench_fig18_errors32"
  "../bench/bench_fig18_errors32.pdb"
  "CMakeFiles/bench_fig18_errors32.dir/bench_fig18_errors32.cpp.o"
  "CMakeFiles/bench_fig18_errors32.dir/bench_fig18_errors32.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_errors32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
