# Empty dependencies file for bench_fig18_errors32.
# This may be replaced when dependencies are built.
