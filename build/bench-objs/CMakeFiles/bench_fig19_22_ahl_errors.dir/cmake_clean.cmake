file(REMOVE_RECURSE
  "../bench/bench_fig19_22_ahl_errors"
  "../bench/bench_fig19_22_ahl_errors.pdb"
  "CMakeFiles/bench_fig19_22_ahl_errors.dir/bench_fig19_22_ahl_errors.cpp.o"
  "CMakeFiles/bench_fig19_22_ahl_errors.dir/bench_fig19_22_ahl_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_22_ahl_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
