# Empty dependencies file for bench_fig19_22_ahl_errors.
# This may be replaced when dependencies are built.
