# Empty dependencies file for bench_fig06_zeros_vs_delay.
# This may be replaced when dependencies are built.
