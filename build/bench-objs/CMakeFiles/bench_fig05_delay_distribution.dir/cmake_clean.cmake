file(REMOVE_RECURSE
  "../bench/bench_fig05_delay_distribution"
  "../bench/bench_fig05_delay_distribution.pdb"
  "CMakeFiles/bench_fig05_delay_distribution.dir/bench_fig05_delay_distribution.cpp.o"
  "CMakeFiles/bench_fig05_delay_distribution.dir/bench_fig05_delay_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_delay_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
