# Empty compiler generated dependencies file for bench_fig14_latency32.
# This may be replaced when dependencies are built.
