# Empty compiler generated dependencies file for bench_ext_combined_aging.
# This may be replaced when dependencies are built.
