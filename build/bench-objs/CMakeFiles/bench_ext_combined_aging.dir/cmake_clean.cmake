file(REMOVE_RECURSE
  "../bench/bench_ext_combined_aging"
  "../bench/bench_ext_combined_aging.pdb"
  "CMakeFiles/bench_ext_combined_aging.dir/bench_ext_combined_aging.cpp.o"
  "CMakeFiles/bench_ext_combined_aging.dir/bench_ext_combined_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_combined_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
