# Empty compiler generated dependencies file for bench_table1_ratio16.
# This may be replaced when dependencies are built.
