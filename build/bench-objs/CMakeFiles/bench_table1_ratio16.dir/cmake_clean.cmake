file(REMOVE_RECURSE
  "../bench/bench_table1_ratio16"
  "../bench/bench_table1_ratio16.pdb"
  "CMakeFiles/bench_table1_ratio16.dir/bench_table1_ratio16.cpp.o"
  "CMakeFiles/bench_table1_ratio16.dir/bench_table1_ratio16.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ratio16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
