# Empty dependencies file for bench_fig25_area.
# This may be replaced when dependencies are built.
