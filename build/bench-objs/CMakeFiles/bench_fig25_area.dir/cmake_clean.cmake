file(REMOVE_RECURSE
  "../bench/bench_fig25_area"
  "../bench/bench_fig25_area.pdb"
  "CMakeFiles/bench_fig25_area.dir/bench_fig25_area.cpp.o"
  "CMakeFiles/bench_fig25_area.dir/bench_fig25_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
