# Empty dependencies file for bench_fig17_skip32.
# This may be replaced when dependencies are built.
