file(REMOVE_RECURSE
  "../bench/bench_fig17_skip32"
  "../bench/bench_fig17_skip32.pdb"
  "CMakeFiles/bench_fig17_skip32.dir/bench_fig17_skip32.cpp.o"
  "CMakeFiles/bench_fig17_skip32.dir/bench_fig17_skip32.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_skip32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
