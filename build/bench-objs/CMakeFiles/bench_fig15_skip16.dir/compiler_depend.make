# Empty compiler generated dependencies file for bench_fig15_skip16.
# This may be replaced when dependencies are built.
