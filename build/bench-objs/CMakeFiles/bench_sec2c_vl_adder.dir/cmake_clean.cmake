file(REMOVE_RECURSE
  "../bench/bench_sec2c_vl_adder"
  "../bench/bench_sec2c_vl_adder.pdb"
  "CMakeFiles/bench_sec2c_vl_adder.dir/bench_sec2c_vl_adder.cpp.o"
  "CMakeFiles/bench_sec2c_vl_adder.dir/bench_sec2c_vl_adder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2c_vl_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
