# Empty compiler generated dependencies file for bench_sec2c_vl_adder.
# This may be replaced when dependencies are built.
