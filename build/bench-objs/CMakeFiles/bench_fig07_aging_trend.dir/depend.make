# Empty dependencies file for bench_fig07_aging_trend.
# This may be replaced when dependencies are built.
