file(REMOVE_RECURSE
  "../bench/bench_fig07_aging_trend"
  "../bench/bench_fig07_aging_trend.pdb"
  "CMakeFiles/bench_fig07_aging_trend.dir/bench_fig07_aging_trend.cpp.o"
  "CMakeFiles/bench_fig07_aging_trend.dir/bench_fig07_aging_trend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_aging_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
