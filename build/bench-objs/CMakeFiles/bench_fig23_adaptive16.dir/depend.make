# Empty dependencies file for bench_fig23_adaptive16.
# This may be replaced when dependencies are built.
