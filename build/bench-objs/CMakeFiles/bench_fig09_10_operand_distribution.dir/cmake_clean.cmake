file(REMOVE_RECURSE
  "../bench/bench_fig09_10_operand_distribution"
  "../bench/bench_fig09_10_operand_distribution.pdb"
  "CMakeFiles/bench_fig09_10_operand_distribution.dir/bench_fig09_10_operand_distribution.cpp.o"
  "CMakeFiles/bench_fig09_10_operand_distribution.dir/bench_fig09_10_operand_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_operand_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
