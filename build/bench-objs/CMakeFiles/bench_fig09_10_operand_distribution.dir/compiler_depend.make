# Empty compiler generated dependencies file for bench_fig09_10_operand_distribution.
# This may be replaced when dependencies are built.
