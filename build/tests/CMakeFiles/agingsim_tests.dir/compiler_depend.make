# Empty compiler generated dependencies file for agingsim_tests.
# This may be replaced when dependencies are built.
