
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adder_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/adder_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/adder_test.cpp.o.d"
  "/root/repo/tests/aging_indicator_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/aging_indicator_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/aging_indicator_test.cpp.o.d"
  "/root/repo/tests/ahl_gate_level_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/ahl_gate_level_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/ahl_gate_level_test.cpp.o.d"
  "/root/repo/tests/ahl_netlist_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/ahl_netlist_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/ahl_netlist_test.cpp.o.d"
  "/root/repo/tests/ahl_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/ahl_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/ahl_test.cpp.o.d"
  "/root/repo/tests/area_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/area_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/area_test.cpp.o.d"
  "/root/repo/tests/bti_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/bti_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/bti_test.cpp.o.d"
  "/root/repo/tests/builder_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/builder_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/builder_test.cpp.o.d"
  "/root/repo/tests/calibration_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/calibration_test.cpp.o.d"
  "/root/repo/tests/cell_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/cell_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/cell_test.cpp.o.d"
  "/root/repo/tests/electromigration_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/electromigration_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/electromigration_test.cpp.o.d"
  "/root/repo/tests/export_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/export_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/export_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/histogram_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/histogram_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/judging_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/judging_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/judging_test.cpp.o.d"
  "/root/repo/tests/logic_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/logic_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/logic_test.cpp.o.d"
  "/root/repo/tests/multiplier_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/multiplier_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/multiplier_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/patterns_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/patterns_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/patterns_test.cpp.o.d"
  "/root/repo/tests/power_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/power_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/power_test.cpp.o.d"
  "/root/repo/tests/prob_propagation_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/prob_propagation_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/prob_propagation_test.cpp.o.d"
  "/root/repo/tests/razor_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/razor_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/razor_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sequential_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/sequential_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/sequential_test.cpp.o.d"
  "/root/repo/tests/sta_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/sta_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/sta_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/techlib_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/techlib_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/techlib_test.cpp.o.d"
  "/root/repo/tests/timing_sim_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/timing_sim_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/timing_sim_test.cpp.o.d"
  "/root/repo/tests/trace_api_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/trace_api_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/trace_api_test.cpp.o.d"
  "/root/repo/tests/variation_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/variation_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/variation_test.cpp.o.d"
  "/root/repo/tests/vl_system_test.cpp" "tests/CMakeFiles/agingsim_tests.dir/vl_system_test.cpp.o" "gcc" "tests/CMakeFiles/agingsim_tests.dir/vl_system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agingsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
