# Empty dependencies file for razor_demo.
# This may be replaced when dependencies are built.
