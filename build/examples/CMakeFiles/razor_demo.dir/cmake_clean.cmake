file(REMOVE_RECURSE
  "CMakeFiles/razor_demo.dir/razor_demo.cpp.o"
  "CMakeFiles/razor_demo.dir/razor_demo.cpp.o.d"
  "razor_demo"
  "razor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/razor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
