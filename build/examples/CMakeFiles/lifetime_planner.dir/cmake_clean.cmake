file(REMOVE_RECURSE
  "CMakeFiles/lifetime_planner.dir/lifetime_planner.cpp.o"
  "CMakeFiles/lifetime_planner.dir/lifetime_planner.cpp.o.d"
  "lifetime_planner"
  "lifetime_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
