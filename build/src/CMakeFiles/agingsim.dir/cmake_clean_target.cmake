file(REMOVE_RECURSE
  "libagingsim.a"
)
