
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adder/adder.cpp" "src/CMakeFiles/agingsim.dir/adder/adder.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/adder/adder.cpp.o.d"
  "/root/repo/src/aging/bti.cpp" "src/CMakeFiles/agingsim.dir/aging/bti.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/bti.cpp.o.d"
  "/root/repo/src/aging/electromigration.cpp" "src/CMakeFiles/agingsim.dir/aging/electromigration.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/electromigration.cpp.o.d"
  "/root/repo/src/aging/prob_propagation.cpp" "src/CMakeFiles/agingsim.dir/aging/prob_propagation.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/prob_propagation.cpp.o.d"
  "/root/repo/src/aging/scenario.cpp" "src/CMakeFiles/agingsim.dir/aging/scenario.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/scenario.cpp.o.d"
  "/root/repo/src/aging/stress.cpp" "src/CMakeFiles/agingsim.dir/aging/stress.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/stress.cpp.o.d"
  "/root/repo/src/aging/variation.cpp" "src/CMakeFiles/agingsim.dir/aging/variation.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/aging/variation.cpp.o.d"
  "/root/repo/src/core/aging_indicator.cpp" "src/CMakeFiles/agingsim.dir/core/aging_indicator.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/aging_indicator.cpp.o.d"
  "/root/repo/src/core/ahl.cpp" "src/CMakeFiles/agingsim.dir/core/ahl.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/ahl.cpp.o.d"
  "/root/repo/src/core/ahl_netlist.cpp" "src/CMakeFiles/agingsim.dir/core/ahl_netlist.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/ahl_netlist.cpp.o.d"
  "/root/repo/src/core/area.cpp" "src/CMakeFiles/agingsim.dir/core/area.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/area.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/agingsim.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/judging.cpp" "src/CMakeFiles/agingsim.dir/core/judging.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/judging.cpp.o.d"
  "/root/repo/src/core/razor.cpp" "src/CMakeFiles/agingsim.dir/core/razor.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/razor.cpp.o.d"
  "/root/repo/src/core/vl_multiplier.cpp" "src/CMakeFiles/agingsim.dir/core/vl_multiplier.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/core/vl_multiplier.cpp.o.d"
  "/root/repo/src/multiplier/array.cpp" "src/CMakeFiles/agingsim.dir/multiplier/array.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/multiplier/array.cpp.o.d"
  "/root/repo/src/multiplier/column_bypass.cpp" "src/CMakeFiles/agingsim.dir/multiplier/column_bypass.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/multiplier/column_bypass.cpp.o.d"
  "/root/repo/src/multiplier/reference.cpp" "src/CMakeFiles/agingsim.dir/multiplier/reference.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/multiplier/reference.cpp.o.d"
  "/root/repo/src/multiplier/row_bypass.cpp" "src/CMakeFiles/agingsim.dir/multiplier/row_bypass.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/multiplier/row_bypass.cpp.o.d"
  "/root/repo/src/multiplier/wallace.cpp" "src/CMakeFiles/agingsim.dir/multiplier/wallace.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/multiplier/wallace.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/agingsim.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/cell.cpp" "src/CMakeFiles/agingsim.dir/netlist/cell.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/cell.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/CMakeFiles/agingsim.dir/netlist/export.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/export.cpp.o.d"
  "/root/repo/src/netlist/logic.cpp" "src/CMakeFiles/agingsim.dir/netlist/logic.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/logic.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/agingsim.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/techlib.cpp" "src/CMakeFiles/agingsim.dir/netlist/techlib.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/netlist/techlib.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/CMakeFiles/agingsim.dir/power/power.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/power/power.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/agingsim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/report/table.cpp.o.d"
  "/root/repo/src/sim/sequential.cpp" "src/CMakeFiles/agingsim.dir/sim/sequential.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/sim/sequential.cpp.o.d"
  "/root/repo/src/sim/sta.cpp" "src/CMakeFiles/agingsim.dir/sim/sta.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/sim/sta.cpp.o.d"
  "/root/repo/src/sim/timing_sim.cpp" "src/CMakeFiles/agingsim.dir/sim/timing_sim.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/sim/timing_sim.cpp.o.d"
  "/root/repo/src/workload/histogram.cpp" "src/CMakeFiles/agingsim.dir/workload/histogram.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/workload/histogram.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/agingsim.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/workload/patterns.cpp.o.d"
  "/root/repo/src/workload/rng.cpp" "src/CMakeFiles/agingsim.dir/workload/rng.cpp.o" "gcc" "src/CMakeFiles/agingsim.dir/workload/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
