src/CMakeFiles/agingsim.dir/core/razor.cpp.o: \
 /root/repo/src/core/razor.cpp /usr/include/stdc-predef.h \
 /root/repo/src/../src/core/razor.hpp
