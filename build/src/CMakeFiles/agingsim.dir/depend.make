# Empty dependencies file for agingsim.
# This may be replaced when dependencies are built.
