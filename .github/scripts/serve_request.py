#!/usr/bin/env python3
"""One-shot agingd client for CI: send one framed JSON request, print the
raw response payload bytes to stdout (docs/SERVING.md wire protocol).

usage: serve_request.py SOCKET_PATH REQUEST_JSON [TIMEOUT_S]
exit:  0 response received · 1 transport failure / timeout
"""
import socket
import struct
import sys


def main() -> int:
    path = sys.argv[1]
    request = sys.argv[2].encode()
    timeout = float(sys.argv[3]) if len(sys.argv) > 3 else 600.0
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(path)
        sock.sendall(struct.pack("<I", len(request)) + request)
        header = b""
        while len(header) < 4:
            chunk = sock.recv(4 - len(header))
            if not chunk:
                return 1
            header += chunk
        (length,) = struct.unpack("<I", header)
        payload = b""
        while len(payload) < length:
            chunk = sock.recv(length - len(payload))
            if not chunk:
                return 1
            payload += chunk
        sys.stdout.buffer.write(payload)
        return 0
    except OSError as err:
        print(f"serve_request: {err}", file=sys.stderr)
        return 1
    finally:
        sock.close()


if __name__ == "__main__":
    sys.exit(main())
