#!/usr/bin/env python3
"""One-shot agingd client for CI: send one framed JSON request, print the
response payload bytes to stdout (docs/SERVING.md wire protocol).

usage: serve_request.py [--stream] SOCKET_PATH REQUEST_JSON [TIMEOUT_S]

Default mode reads exactly one response frame and prints its raw bytes.
With --stream it keeps reading frames, printing each payload as one
compact NDJSON line (payloads may contain pretty-printed JSON; compact
re-serialization is deterministic, and each line is flushed immediately,
so a killed reader leaves complete lines for every frame it received),
until a frame without a "stream" key arrives — that final frame is the
ordinary response carrying the resume cursor.

exit:  0 response received · 1 transport failure / timeout
"""
import json
import socket
import struct
import sys


def read_frame(sock: socket.socket) -> bytes | None:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            return None
        header += chunk
    (length,) = struct.unpack("<I", header)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            return None
        payload += chunk
    return payload


def main() -> int:
    args = sys.argv[1:]
    stream = False
    if args and args[0] == "--stream":
        stream = True
        args = args[1:]
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]
    request = args[1].encode()
    timeout = float(args[2]) if len(args) > 2 else 600.0
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(path)
        sock.sendall(struct.pack("<I", len(request)) + request)
        if not stream:
            payload = read_frame(sock)
            if payload is None:
                return 1
            sys.stdout.buffer.write(payload)
            return 0
        while True:
            payload = read_frame(sock)
            if payload is None:
                return 1
            line = json.dumps(
                json.loads(payload), separators=(",", ":")).encode()
            sys.stdout.buffer.write(line + b"\n")
            sys.stdout.buffer.flush()
            # Progress frames carry "stream"; the final frame does not.
            if b'"stream"' not in payload:
                return 0
    except OSError as err:
        print(f"serve_request: {err}", file=sys.stderr)
        return 1
    finally:
        sock.close()


if __name__ == "__main__":
    sys.exit(main())
