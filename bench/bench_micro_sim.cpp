// Micro-benchmarks for the simulation substrate itself, reported as JSON on
// stdout: netlist construction, static timing, per-pattern step-kernel
// throughput (dense sweep vs sparse event-driven, with the evaluated-gate
// fraction that explains the gap), the architectural policy replay, and
// parallel sweep scaling across thread counts. This is the repo's perf
// trajectory baseline — run it before and after touching the hot paths.
//
// Knobs: AGINGSIM_BENCH_OPS caps the per-config operation count (CI smoke
// uses 500); thread scaling always measures explicit 1/2/4-lane pools, so
// AGINGSIM_THREADS does not affect this binary's numbers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "src/report/json.hpp"

using namespace agingsim;
using namespace agingsim::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall time of f() in ms, best of `reps` (first rep warms caches).
template <typename F>
double time_best_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    f();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

struct KernelNumbers {
  double steps_per_sec = 0.0;
  double evaluated_fraction = 1.0;  // mean gates_evaluated / gates_total
  std::uint64_t checksum = 0;       // xor of products: cross-kernel check
  double replay_fraction = 0.0;     // batch kernel only: audited lanes
};

KernelNumbers run_kernel(const MultiplierNetlist& m, TimingSim::Mode mode,
                         std::span<const OperandPattern> patterns) {
  MultiplierSim sim(m, tech());
  sim.set_mode(mode);
  const std::size_t ops = patterns.size();
  std::uint64_t evaluated = 0, total = 0, checksum = 0;
  const double t0 = now_ms();
  for (std::size_t i = 0; i < ops; ++i) {
    const StepResult s = sim.apply(patterns[i].a, patterns[i].b);
    evaluated += s.gates_evaluated;
    total += s.gates_total;
    checksum ^= sim.product() + i;
  }
  const double elapsed_ms = now_ms() - t0;
  KernelNumbers out;
  out.steps_per_sec =
      elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(ops) / elapsed_ms : 0.0;
  out.evaluated_fraction =
      total > 0 ? static_cast<double>(evaluated) / static_cast<double>(total)
                : 1.0;
  out.checksum = checksum;
  return out;
}

/// 64-lane batch kernel over the same patterns, timed word-by-word with the
/// packing cost included (that is what any caller pays).
KernelNumbers run_batch(const MultiplierNetlist& m,
                        std::span<const OperandPattern> patterns) {
  BatchTimingSim sim(m.netlist, tech());
  const std::size_t ops = patterns.size();
  std::vector<std::uint64_t> words(m.netlist.input_nets().size());
  std::uint64_t checksum = 0;
  const double t0 = now_ms();
  for (std::size_t chunk = 0; chunk < ops;
       chunk += static_cast<std::size_t>(kBatchLanes)) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kBatchLanes, ops - chunk));
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < lanes; ++l) {
      const OperandPattern& p = patterns[chunk + static_cast<std::size_t>(l)];
      sim.load_bus_lane(words, p.a, m.width, m.a_first_input, l);
      sim.load_bus_lane(words, p.b, m.width, m.b_first_input, l);
    }
    sim.step_word(words, lanes);
    for (int l = 0; l < lanes; ++l) {
      checksum ^= sim.output_bits(l) + chunk + static_cast<std::size_t>(l);
    }
  }
  const double elapsed_ms = now_ms() - t0;
  const BatchStats& stats = sim.stats();
  KernelNumbers out;
  out.steps_per_sec =
      elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(ops) / elapsed_ms : 0.0;
  const std::uint64_t dense_equiv = stats.words * m.netlist.num_gates();
  out.evaluated_fraction =
      dense_equiv > 0 ? static_cast<double>(stats.gates_evaluated) /
                            static_cast<double>(dense_equiv)
                      : 1.0;
  out.checksum = checksum;
  out.replay_fraction = stats.replay_fraction();
  return out;
}

}  // namespace

static int bench_body() {
  const std::size_t ops = default_ops();
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("micro_sim");
  json.key("ops").value(static_cast<std::uint64_t>(ops));
  json.key("hardware_threads")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  // --- Netlist construction -------------------------------------------
  json.key("build_ms").begin_object();
  const struct {
    const char* label;
    MultiplierArch arch;
    int width;
  } builds[] = {{"AM16", MultiplierArch::kArray, 16},
                {"CB16", MultiplierArch::kColumnBypass, 16},
                {"RB16", MultiplierArch::kRowBypass, 16},
                {"CB32", MultiplierArch::kColumnBypass, 32}};
  for (const auto& b : builds) {
    json.key(b.label).value(time_best_ms(3, [&] {
      const MultiplierNetlist m = build_multiplier(b.arch, b.width);
      (void)m.netlist.num_gates();
    }));
  }
  json.end_object();

  // --- Static timing ---------------------------------------------------
  {
    const MultiplierNetlist cb32 = build_column_bypass_multiplier(32);
    json.key("sta_cb32_ms").value(
        time_best_ms(3, [&] { (void)critical_path_ps(cb32, tech()); }));
  }

  // --- Step kernel: dense sweep vs sparse event-driven -----------------
  // Two operand streams per architecture: i.i.d. uniform (worst case for
  // sparsity — nearly every gate glitches) and a FIR-tap stream (fixed
  // coefficient x band-limited signal — the bypassing architectures' actual
  // use case, where most of the array freezes).
  json.key("kernel").begin_array();
  for (const auto arch : {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
                          MultiplierArch::kRowBypass}) {
    const MultiplierNetlist m = build_multiplier(arch, 16);
    Rng uniform_rng(1), tap_rng(2);
    const struct {
      const char* label;
      std::vector<OperandPattern> patterns;
    } streams[] = {{"uniform", uniform_patterns(uniform_rng, 16, ops)},
                   {"fir_tap", fir_tap_patterns(tap_rng, 16, ops)}};
    for (const auto& stream : streams) {
      const KernelNumbers dense =
          run_kernel(m, TimingSim::Mode::kDense, stream.patterns);
      const KernelNumbers sparse =
          run_kernel(m, TimingSim::Mode::kSparse, stream.patterns);
      const KernelNumbers batch = run_batch(m, stream.patterns);
      json.begin_object();
      json.key("multiplier").value(std::string(arch_name(arch)) + "16");
      json.key("workload").value(stream.label);
      json.key("gates").value(
          static_cast<std::uint64_t>(m.netlist.num_gates()));
      json.key("dense_steps_per_sec").value(dense.steps_per_sec);
      json.key("sparse_steps_per_sec").value(sparse.steps_per_sec);
      json.key("batch_steps_per_sec").value(batch.steps_per_sec);
      json.key("sparse_speedup")
          .value(dense.steps_per_sec > 0.0
                     ? sparse.steps_per_sec / dense.steps_per_sec
                     : 0.0);
      json.key("batch_speedup_vs_sparse")
          .value(sparse.steps_per_sec > 0.0
                     ? batch.steps_per_sec / sparse.steps_per_sec
                     : 0.0);
      json.key("sparse_evaluated_gate_fraction")
          .value(sparse.evaluated_fraction);
      json.key("batch_evaluated_word_fraction")
          .value(batch.evaluated_fraction);
      json.key("batch_replay_fraction").value(batch.replay_fraction);
      json.key("products_identical")
          .value(dense.checksum == sparse.checksum &&
                 sparse.checksum == batch.checksum);
      json.end_object();
    }
  }
  json.end_array();
  json.key("batch_lane_backend").value(BatchTimingSim::lane_backend());

  // --- Batch kernel thread scaling -------------------------------------
  // Independent batch traces fanned over explicit pools (the shape of a
  // fault campaign's trial fan-out); serial-result identity is the same
  // determinism contract the sweep scaling section asserts.
  {
    const MultiplierNetlist m = build_column_bypass_multiplier(16);
    const std::size_t trace_ops = std::min<std::size_t>(ops, 2000);
    constexpr std::size_t kTraces = 8;
    std::vector<std::vector<OpTrace>> serial_result;
    double serial_ms = 0.0;
    json.key("batch_thread_scaling").begin_array();
    for (const int threads : {1, 2, 4}) {
      exec::ThreadPool pool(threads);
      std::vector<std::vector<OpTrace>> result;
      const double ms = time_best_ms(2, [&] {
        result = exec::parallel_for_indexed(pool, kTraces, [&](std::size_t t) {
          return compute_op_trace(
              m, tech(), workload(16, trace_ops, 0xB000 + t),
              TraceOptions{.kernel = SimKernel::kBatch});
        });
      });
      if (threads == 1) {
        serial_result = result;
        serial_ms = ms;
      }
      json.begin_object();
      json.key("threads").value(threads);
      json.key("traces_ms").value(ms);
      json.key("patterns_per_sec")
          .value(ms > 0.0 ? 1000.0 *
                                static_cast<double>(kTraces * trace_ops) / ms
                          : 0.0);
      json.key("speedup_vs_serial").value(ms > 0.0 ? serial_ms / ms : 0.0);
      json.key("identical_to_serial").value(result == serial_result);
      json.end_object();
    }
    json.end_array();
  }

  // --- Policy replay ---------------------------------------------------
  {
    const MultiplierNetlist m = build_column_bypass_multiplier(16);
    const auto trace = compute_op_trace(m, tech(), workload(16, ops));
    VlSystemConfig cfg;
    cfg.period_ps = 900.0;
    cfg.ahl.width = 16;
    cfg.ahl.skip = 7;
    VariableLatencySystem sys(m, tech(), cfg);
    const double ms = time_best_ms(3, [&] { (void)sys.run(trace); });
    json.key("policy_replay_ops_per_sec")
        .value(ms > 0.0 ? 1000.0 * static_cast<double>(trace.size()) / ms
                        : 0.0);
  }

  // --- Parallel sweep scaling ------------------------------------------
  {
    const MultiplierNetlist m = build_column_bypass_multiplier(16);
    const auto trace = compute_op_trace(m, tech(), workload(16, ops));
    const auto periods = linspace(550.0, 1350.0, 8);

    std::vector<RunStats> serial_result;
    double serial_ms = 0.0;
    json.key("sweep_scaling").begin_array();
    for (const int threads : {1, 2, 4}) {
      exec::ThreadPool pool(threads);
      std::vector<RunStats> result;
      const double ms = time_best_ms(2, [&] {
        result = sweep_periods(m, trace, periods, 7, true, 0.0, &pool);
      });
      if (threads == 1) {
        serial_result = result;
        serial_ms = ms;
      }
      json.begin_object();
      json.key("threads").value(threads);
      json.key("sweep_ms").value(ms);
      json.key("speedup_vs_serial").value(ms > 0.0 ? serial_ms / ms : 0.0);
      json.key("identical_to_serial").value(result == serial_result);
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  std::printf("%s\n", json.str().c_str());
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_micro_sim", bench_body)
