// Micro-benchmarks (google-benchmark) for the simulation substrate itself:
// netlist generation, static timing, per-pattern simulation throughput, and
// the architectural policy replay. These are the costs a user of the
// library pays, independent of any paper figure.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using namespace agingsim;
using namespace agingsim::bench;

void BM_BuildMultiplier(benchmark::State& state) {
  const auto arch = static_cast<MultiplierArch>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_multiplier(arch, width));
  }
  state.SetLabel(std::string(arch_name(arch)) + " " + std::to_string(width) +
                 "x" + std::to_string(width));
}
BENCHMARK(BM_BuildMultiplier)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({1, 32});

void BM_Sta(benchmark::State& state) {
  const MultiplierNetlist m =
      build_column_bypass_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(critical_path_ps(m, tech()));
  }
}
BENCHMARK(BM_Sta)->Arg(16)->Arg(32);

void BM_PatternSimulation(benchmark::State& state) {
  const auto arch = static_cast<MultiplierArch>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  const MultiplierNetlist m = build_multiplier(arch, width);
  MultiplierSim sim(m, tech());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.apply(rng.next_bits(width), rng.next_bits(width)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(arch_name(arch)) + " " + std::to_string(width) +
                 "x" + std::to_string(width));
}
BENCHMARK(BM_PatternSimulation)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({2, 32});

void BM_PolicyReplay(benchmark::State& state) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const auto trace = compute_op_trace(m, tech(), workload(16, 2000));
  VlSystemConfig cfg;
  cfg.period_ps = 900.0;
  cfg.ahl.width = 16;
  cfg.ahl.skip = 7;
  VariableLatencySystem sys(m, tech(), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.run(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_PolicyReplay);

void BM_StressExtraction(benchmark::State& state) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_stress(m.netlist, tech(), 1, 200));
  }
}
BENCHMARK(BM_StressExtraction);

}  // namespace

BENCHMARK_MAIN();
