// Fig. 25 — area overhead in transistors for the AM, FLCB, A-VLCB, FLRB and
// A-VLRB in 16x16 and 32x32 multipliers, normalized to the AM.
//
// Paper: at 16x16 the A-VLCB / A-VLRB are 22.9% / 23.5% larger than the
// FLCB / FLRB; at 32x32 only 12.3% / 5.7% — the AHL and Razor flip-flops
// amortize over larger arrays.

#include "bench/common.hpp"
#include "src/core/area.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 25", "area (transistors), normalized to the AM");

  for (int width : {16, 32}) {
    const MultiplierNetlist am = build_array_multiplier(width);
    const MultiplierNetlist cb = build_column_bypass_multiplier(width);
    const MultiplierNetlist rb = build_row_bypass_multiplier(width);
    const AreaBreakdown am_a = fixed_latency_area(am);
    const AreaBreakdown flcb = fixed_latency_area(cb);
    const AreaBreakdown avlcb = variable_latency_area(cb);
    const AreaBreakdown flrb = fixed_latency_area(rb);
    const AreaBreakdown avlrb = variable_latency_area(rb);
    const double base = static_cast<double>(am_a.total());

    Table t(std::to_string(width) + "x" + std::to_string(width) +
                " area breakdown (transistors)",
            {"design", "combinational", "input FFs", "output FFs", "AHL",
             "total", "vs AM"});
    const auto row = [&](const char* name, const AreaBreakdown& a) {
      t.add_row({name, Table::num(a.combinational),
                 Table::num(a.input_registers), Table::num(a.output_registers),
                 Table::num(a.ahl), Table::num(a.total()),
                 Table::fmt(static_cast<double>(a.total()) / base, 3)});
    };
    row("AM", am_a);
    row("FLCB", flcb);
    row("A-VLCB", avlcb);
    row("FLRB", flrb);
    row("A-VLRB", avlrb);
    t.print(std::cout);

    std::printf(
        "%dx%d variable-latency overhead: A-VLCB %+0.1f%% vs FLCB, "
        "A-VLRB %+0.1f%% vs FLRB   (paper 16x16: +22.9%% / +23.5%%, "
        "32x32: +12.3%% / +5.7%%)\n\n",
        width, width,
        100.0 * (static_cast<double>(avlcb.total()) / flcb.total() - 1.0),
        100.0 * (static_cast<double>(avlrb.total()) / flrb.total() - 1.0));
  }
  std::printf(
      "Reproduction targets: bypassing multipliers larger than the AM;\n"
      "variable-latency versions larger still; the overhead *ratio* shrinks\n"
      "from 16x16 to 32x32 because AHL + Razor area grows only linearly in\n"
      "the width while the array grows quadratically.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig25_area", bench_body)
