// Fig. 7 — trend of circuit aging for the 16x16 column- and row-bypassing
// multipliers: critical-path delay over a seven-year NBTI/PBTI stress.
//
// Paper: the BTI effect increases the critical-path delay by ~13% over
// seven years at 125 C on 32nm high-k/metal-gate models.

#include "bench/common.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Fig. 7", "critical-path delay over 7 years, 16x16 CB/RB");
  const TechLibrary& tech = bench::tech();

  Table t("Aged critical-path delay (ns)",
          {"year", "CB16", "CB16 vs year0", "RB16", "RB16 vs year0",
           "mean dVth (mV)"});

  const MultiplierNetlist cb = build_column_bypass_multiplier(16);
  const MultiplierNetlist rb = build_row_bypass_multiplier(16);
  const BtiModel model = BtiModel::calibrated(tech);
  AgingScenario cb_sc(cb.netlist, tech, model, 0xA6E, 2000);
  AgingScenario rb_sc(rb.netlist, tech, model, 0xA6E, 2000);
  const double cb0 = critical_path_ps(cb, tech);
  const double rb0 = critical_path_ps(rb, tech);

  for (int year = 0; year <= 7; ++year) {
    const auto cb_scales = cb_sc.delay_scales_at(year);
    const auto rb_scales = rb_sc.delay_scales_at(year);
    const double cb_crit = critical_path_ps(cb, tech, cb_scales);
    const double rb_crit = critical_path_ps(rb, tech, rb_scales);
    t.add_row({std::to_string(year), Table::fmt(bench::ns(cb_crit), 3),
               "+" + Table::pct(cb_crit / cb0 - 1.0, 2),
               Table::fmt(bench::ns(rb_crit), 3),
               "+" + Table::pct(rb_crit / rb0 - 1.0, 2),
               Table::fmt(cb_sc.mean_dvth_at(year) * 1000.0, 1)});
  }
  t.print(std::cout);
  std::printf(
      "Reproduction target: ~13%% critical-path degradation at year 7\n"
      "(paper Fig. 7), with the characteristic t^(1/6) saturating shape —\n"
      "most of the drift lands in the first two years.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig07_aging_trend", bench_body)
