#pragma once

// Shared scaffolding for the bench binaries. Each bench regenerates one of
// the paper's tables or figures; this header centralizes the calibrated
// technology library, the canonical workloads, and the sweep helpers so the
// binaries stay small and consistent.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/core/env.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/obs/artifacts.hpp"
#include "src/obs/trace.hpp"
#include "src/report/table.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/runtime/stats_codec.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim::bench {

/// Calibrated library: 16x16 column-bypassing critical path = 1.88 ns, the
/// paper's Fig. 5 anchor. Built once per process.
inline const TechLibrary& tech() {
  static const TechLibrary t = calibrated_tech_library(1880.0);
  return t;
}

/// Canonical seeded workload: `count` uniform operand pairs.
inline std::vector<OperandPattern> workload(int width, std::size_t count,
                                            std::uint64_t seed = 0xA61A5) {
  Rng rng(seed);
  return uniform_patterns(rng, width, count);
}

/// Number of simulated operations per sweep point, overridable for quick
/// runs via AGINGSIM_BENCH_OPS. Strict parse (src/core/env.hpp): the old
/// std::atol accepted "12abc" as 12 silently; now a malformed value warns
/// once and the default stands.
inline std::size_t default_ops() {
  return static_cast<std::size_t>(env::long_or("AGINGSIM_BENCH_OPS", 10000, 1));
}

inline double ns(double ps) { return ps * 1e-3; }

/// `points` evenly spaced values over [lo, hi], endpoints included. A
/// single point degenerates to {lo} (not a 0/0 NaN); zero or negative
/// point counts return an empty vector.
inline std::vector<double> linspace(double lo, double hi, int points) {
  if (points <= 0) return {};
  if (points == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(points - 1));
  }
  return out;
}

/// Runs a variable-latency system over `trace` at each period — one
/// independent simulator per sweep point, fanned out across `pool` (or a
/// one-shot pool honoring AGINGSIM_THREADS when none is given). Results
/// come back in period order and are byte-identical for any thread count.
/// With a `runner`, each sweep point becomes a crash-safe work unit
/// (retry/backoff, watchdog, checkpoint/resume — docs/ROBUSTNESS.md);
/// quarantined points come back as default RunStats (inspect the runner's
/// RunReport to tell them apart).
inline std::vector<RunStats> sweep_periods(
    const MultiplierNetlist& mult, std::span<const OpTrace> trace,
    std::span<const double> periods_ps, int skip, bool adaptive,
    double mean_dvth_v = 0.0, exec::ThreadPool* pool = nullptr,
    runtime::RobustRunner* runner = nullptr,
    runtime::RunReport* report = nullptr) {
  const auto run_point = [&](std::size_t i) {
    VlSystemConfig cfg;
    cfg.period_ps = periods_ps[i];
    cfg.ahl.width = mult.width;
    cfg.ahl.skip = skip;
    cfg.ahl.adaptive = adaptive;
    VariableLatencySystem sys(mult, tech(), cfg);
    return sys.run(trace, mean_dvth_v);
  };
  if (runner != nullptr) {
    runtime::RunReport local_report;
    runtime::RunReport& rep = report != nullptr ? *report : local_report;
    const auto payloads = runner->run(
        periods_ps.size(),
        [&](std::uint64_t unit, const runtime::CancelToken&) {
          return runtime::encode_run_stats(
              run_point(static_cast<std::size_t>(unit)));
        },
        &rep);
    std::vector<RunStats> out(periods_ps.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (rep.units[i].state == runtime::UnitState::kComputed ||
          rep.units[i].state == runtime::UnitState::kRestored) {
        out[i] = runtime::decode_run_stats(payloads[i]);
      }
    }
    return out;
  }
  if (pool != nullptr) {
    return exec::parallel_for_indexed(*pool, periods_ps.size(), run_point);
  }
  return exec::parallel_for_indexed(periods_ps.size(), run_point);
}

/// The three architectures at one width, with critical paths and gate-level
/// traces over the canonical workload — the shared setup of the Fig. 13-24
/// sweeps.
struct ArchSet {
  MultiplierNetlist am, cb, rb;
  double am_crit_ps, cb_crit_ps, rb_crit_ps;
  std::vector<OpTrace> am_trace, cb_trace, rb_trace;
};

inline ArchSet make_arch_set(int width, std::size_t ops,
                             bool with_am_trace = false) {
  ArchSet s{build_array_multiplier(width),
            build_column_bypass_multiplier(width),
            build_row_bypass_multiplier(width),
            0.0,
            0.0,
            0.0,
            {},
            {},
            {}};
  s.am_crit_ps = critical_path_ps(s.am, tech());
  s.cb_crit_ps = critical_path_ps(s.cb, tech());
  s.rb_crit_ps = critical_path_ps(s.rb, tech());
  const auto pats = workload(width, ops);
  s.cb_trace = compute_op_trace(s.cb, tech(), pats);
  s.rb_trace = compute_op_trace(s.rb, tech(), pats);
  if (with_am_trace) s.am_trace = compute_op_trace(s.am, tech(), pats);
  return s;
}

/// Standard preamble so every bench's output is self-describing.
inline void preamble(const char* id, const char* what) {
  std::printf("############################################################\n");
  std::printf("## %s — %s\n", id, what);
  std::printf("## tech: 32nm-class, calibrated so CB16 critical path = 1.88 ns"
              " (paper Fig. 5)\n");
  std::printf("############################################################\n\n");
}

/// Shared top-level exception barrier for every bench binary. An uncaught
/// throw in main would std::terminate and lose the diagnostic; routing
/// through here prints the what() to stderr and exits 70 (EX_SOFTWARE)
/// so CI and scripts see a classified failure. Use via AGINGSIM_BENCH_MAIN.
inline int guarded_main(const char* id, int (*bench_body)()) noexcept {
  int rc = 70;
  try {
    obs::TraceSpan span(id);  // bench ids are string literals
    rc = bench_body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: fatal: %s\n", id, e.what());
  } catch (...) {
    std::fprintf(stderr, "%s: fatal: unknown exception\n", id);
  }
  // Flush AGINGSIM_TRACE / AGINGSIM_METRICS now rather than relying only on
  // the atexit hook — artifacts survive even an abrupt exit path after this
  // point, and appear as soon as the bench body is done.
  obs::flush_env_artifacts();
  return rc;
}

// NOLINTNEXTLINE(cppcoreguidelines-macro-usage)
#define AGINGSIM_BENCH_MAIN(id, body) \
  int main() { return ::agingsim::bench::guarded_main(id, body); }

}  // namespace agingsim::bench
