// Fig. 18 — error count in 10000 cycles for the 32x32 variable-latency
// bypassing multipliers under Skip-15/16/17 over the cycle-period sweep.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 18", "Razor error count per 10000 ops, 32x32, Skip-15/16/17");
  const ArchSet s = make_arch_set(32, default_ops());
  const auto periods = linspace(1100.0, 2600.0, 16);

  for (bool row : {false, true}) {
    const MultiplierNetlist& m = row ? s.rb : s.cb;
    const auto& trace = row ? s.rb_trace : s.cb_trace;
    std::vector<std::vector<RunStats>> by_skip;
    for (int skip : {15, 16, 17}) {
      by_skip.push_back(sweep_periods(m, trace, periods, skip, false));
    }
    Table t(std::string("32x32 ") + (row ? "VLRB" : "VLCB") +
                " errors per 10000 ops",
            {"period (ns)", "Skip-15", "Skip-16", "Skip-17"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(by_skip[0][i].errors_per_10k_ops, 0),
                 Table::fmt(by_skip[1][i].errors_per_10k_ops, 0),
                 Table::fmt(by_skip[2][i].errors_per_10k_ops, 0)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets: Skip-15 exhibits the most errors at short\n"
      "periods and all scenarios converge to ~zero at long ones — the\n"
      "mechanism behind the Fig. 17 latency crossover.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig18_errors32", bench_body)
