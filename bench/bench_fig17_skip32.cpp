// Fig. 17 — average latency of the 32x32 variable-latency bypassing
// multipliers under three skip numbers (15/16/17), no aging.
//
// Paper: same crossover as the 16x16 case — Skip-15 best at long periods,
// worst at short ones.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 17",
           "avg latency across skip numbers, 32x32 VLCB / VLRB");
  const ArchSet s = make_arch_set(32, default_ops());
  const auto periods = linspace(1100.0, 2600.0, 16);

  for (bool row : {false, true}) {
    const MultiplierNetlist& m = row ? s.rb : s.cb;
    const auto& trace = row ? s.rb_trace : s.cb_trace;
    std::vector<std::vector<RunStats>> by_skip;
    for (int skip : {15, 16, 17}) {
      by_skip.push_back(sweep_periods(m, trace, periods, skip, true));
    }
    Table t(std::string("32x32 ") + (row ? "A-VLRB" : "A-VLCB") +
                " avg latency (ns)",
            {"period", "Skip-15", "Skip-16", "Skip-17", "best skip"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      int best = 0;
      for (int k = 1; k < 3; ++k) {
        if (by_skip[k][i].avg_latency_ps < by_skip[best][i].avg_latency_ps) {
          best = k;
        }
      }
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(by_skip[0][i].avg_latency_ps), 3),
                 Table::fmt(ns(by_skip[1][i].avg_latency_ps), 3),
                 Table::fmt(ns(by_skip[2][i].avg_latency_ps), 3),
                 "Skip-" + std::to_string(15 + best)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets: the Skip-15/16/17 crossover mirrors Fig. 15,\n"
      "and the variable-latency latencies sit well below the fixed-latency\n"
      "32x32 baselines when proper cycle periods are used.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig17_skip32", bench_body)
