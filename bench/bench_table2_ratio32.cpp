// Table II — one-cycle pattern ratio in the 32x32 variable-latency
// bypassing multipliers under Skip-15/16/17.
//
// Paper values: Skip-15: 66.46% / 66.99%, Skip-16: 52.68% / 52.74%,
// Skip-17: 38.18% / 38.42% (VLCB / VLRB).

#include "bench/common.hpp"
#include "src/core/judging.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Table II", "one-cycle pattern ratio, 32x32 VLCB / VLRB");

  Rng rng(0x7AB1E2);
  const auto pats = uniform_patterns(rng, 32, 65536);

  const double paper_vlcb[] = {0.6646, 0.5268, 0.3818};
  const double paper_vlrb[] = {0.6699, 0.5274, 0.3842};

  Table t("One-cycle pattern ratio, 32x32 (65536 uniform patterns)",
          {"scenario", "VLCB (measured)", "VLRB (measured)", "analytic tail",
           "paper VLCB", "paper VLRB"});
  for (int i = 0; i < 3; ++i) {
    const int skip = 15 + i;
    const JudgingBlock jb(32, skip);
    std::uint64_t cb = 0, rb = 0;
    for (const auto& p : pats) {
      cb += jb.one_cycle(p.a);
      rb += jb.one_cycle(p.b);
    }
    t.add_row({"Skip-" + std::to_string(skip),
               Table::pct(static_cast<double>(cb) / pats.size()),
               Table::pct(static_cast<double>(rb) / pats.size()),
               Table::pct(expected_one_cycle_ratio(32, skip)),
               Table::pct(paper_vlcb[i]), Table::pct(paper_vlrb[i])});
  }
  t.print(std::cout);
  std::printf(
      "Note: the monotone decrease with skip number reproduces; the paper's\n"
      "absolute 32-bit ratios sit ~4 points below the binomial tail that\n"
      "uniform operands produce (likely a different sampling protocol).\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_table2_ratio32", bench_body)
