// Fig. 6 — delay distribution of the 16x16 column-bypassing multiplier
// under three different numbers of zeros in the multiplicand (6, 8, 10),
// 3000 randomly selected patterns each.
//
// Paper: as the number of zeros increases, the distribution left-shifts and
// the average delay falls (more columns bypassed => shorter paths).

#include "bench/common.hpp"
#include "src/workload/histogram.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Fig. 6",
                  "16x16 CB delay distribution vs #zeros in multiplicand");
  const TechLibrary& tech = bench::tech();
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const double crit = critical_path_ps(m, tech);

  Table t("Delay vs multiplicand zeros (3000 patterns each)",
          {"zeros in multiplicand", "mean delay (ns)", "p50 (ns)", "p95 (ns)",
           "max (ns)"});
  for (int zeros : {6, 8, 10}) {
    Rng rng(0xF16 + zeros);
    const auto pats = patterns_with_multiplicand_zeros(rng, 16, zeros, 3000);
    const auto trace = compute_op_trace(m, tech, pats);
    Histogram h(0.0, crit, 25);
    for (const auto& op : trace) h.add(op.delay_ps);
    t.add_row({std::to_string(zeros), Table::fmt(bench::ns(h.mean()), 3),
               Table::fmt(bench::ns(h.percentile(0.5)), 3),
               Table::fmt(bench::ns(h.percentile(0.95)), 3),
               Table::fmt(bench::ns(h.max_sample()), 3)});
    std::printf("zeros=%d histogram (ps):\n%s\n", zeros, h.render(48).c_str());
  }
  t.print(std::cout);
  std::printf(
      "Reproduction target: mean/median/p95 all fall as zeros increase —\n"
      "the multiplicand drives the bypass selects, so sparser multiplicands\n"
      "skip more adders. This is why zero-counting predicts cycle needs.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig06_zeros_vs_delay", bench_body)
