// Figs. 19-22 — error-count comparison between the traditional
// variable-latency designs (T-VLCB / T-VLRB: one judging block, no
// adaptation) and the proposed adaptive designs (A-VLCB / A-VLRB) on the
// 7-year-aged circuits:
//   Fig. 19: 16x16 CB    Fig. 20: 32x32 CB
//   Fig. 21: 16x16 RB    Fig. 22: 32x32 RB
//
// Paper: the adaptive design's error count is smaller because the AHL can
// demote marginal one-cycle patterns to two cycles once errors exceed the
// 10% indicator threshold; the traditional design cannot.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

namespace {

void run_panel(const char* fig, int width, MultiplierArch arch, int skip,
               double period_lo_ps, double period_hi_ps) {
  const MultiplierNetlist m = build_multiplier(arch, width);
  const BtiModel model = BtiModel::calibrated(tech());
  AgingScenario scenario(m.netlist, tech(), model, 0x19F2, 1000);
  const auto scales = scenario.delay_scales_at(7.0);
  const auto pats = workload(width, default_ops());
  const auto aged_trace = compute_op_trace(m, tech(), pats, scales);
  const double dvth = scenario.mean_dvth_at(7.0);

  const auto periods = linspace(period_lo_ps, period_hi_ps, 11);
  const auto trad = sweep_periods(m, aged_trace, periods, skip, false, dvth);
  const auto adap = sweep_periods(m, aged_trace, periods, skip, true, dvth);

  Table t(std::string(fig) + ": " + std::to_string(width) + "x" +
              std::to_string(width) + " " + arch_name(arch) + " Skip-" +
              std::to_string(skip) + ", aged 7 years — errors per 10000 ops",
          {"period (ns)", "T-VL", "A-VL", "A-VL switched block",
           "A-VL latency vs T-VL"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    t.add_row({Table::fmt(ns(periods[i]), 2),
               Table::fmt(trad[i].errors_per_10k_ops, 0),
               Table::fmt(adap[i].errors_per_10k_ops, 0),
               adap[i].switched_to_second_block ? "yes" : "no",
               Table::pct(adap[i].avg_latency_ps / trad[i].avg_latency_ps -
                              1.0,
                          1)});
  }
  t.print(std::cout);
}

}  // namespace

static int bench_body() {
  preamble("Figs. 19-22",
           "error count, traditional vs adaptive variable latency, aged");
  run_panel("Fig. 19", 16, MultiplierArch::kColumnBypass, 7, 550.0, 1350.0);
  run_panel("Fig. 21", 16, MultiplierArch::kRowBypass, 7, 550.0, 1350.0);
  run_panel("Fig. 20", 32, MultiplierArch::kColumnBypass, 15, 1100.0,
            2600.0);
  run_panel("Fig. 22", 32, MultiplierArch::kRowBypass, 15, 1100.0, 2600.0);
  std::printf(
      "Reproduction targets: wherever the aged error rate crosses the AHL's\n"
      "10%% indicator threshold the adaptive design switches to the stricter\n"
      "judging block and its error count drops well below the traditional\n"
      "design's; at generous periods the two coincide (no switch needed).\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig19_22_ahl_errors", bench_body)
