// Fig. 27 — normalized latency, power and EDP over seven years for the
// 32x32 multipliers. The A-VLCB / A-VLRB run at a fixed 2.3 ns cycle with
// Skip-15 (the paper prints "skip number is 7", an evident typo for its
// 32-bit scenario family), chosen so no timing violations occur.
//
// Paper: AM/FLCB/FLRB latency degrades 15.0% / 14.9% / 14.9%; A-VLCB /
// A-VLRB only 1.3% / 0.98%. A-VLCB average EDP reduction vs AM: 10.45%;
// A-VLRB: 1.1%.

#include "bench/seven_year.hpp"

static int bench_body() {
  agingsim::bench::preamble(
      "Fig. 27", "normalized latency / power / EDP over 7 years, 32x32");
  agingsim::bench::run_seven_year_figure("Fig. 27", 32, 2300.0, 15);
  std::printf(
      "\nReproduction targets: same story as Fig. 26 at twice the width —\n"
      "and the VL latency penalty vs the AM at year 0 is smaller because\n"
      "larger arrays have a wider short/long path spread to harvest.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig27_seven_year32", bench_body)
