// Fig. 23 — average latency comparison between the 16x16 adaptive and
// traditional variable-latency multipliers on the 7-year-aged circuit,
// panels (a) Skip-7, (b) Skip-8, (c) Skip-9; aging-indicator threshold 10%.
//
// Paper: the adaptive design's latency is equal to or better than the
// traditional design's, with the largest improvement at short cycle
// periods where timing violations are frequent.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

namespace {

struct AgedArch {
  MultiplierNetlist mult;
  std::vector<OpTrace> trace;
  double dvth;
  double fl_period_ps;  // aged critical path: fixed designs must guard-band
};

AgedArch make_aged(MultiplierArch arch, int width) {
  AgedArch a{build_multiplier(arch, width), {}, 0.0, 0.0};
  const BtiModel model = BtiModel::calibrated(tech());
  AgingScenario scenario(a.mult.netlist, tech(), model, 0x23F1, 1000);
  const auto scales = scenario.delay_scales_at(7.0);
  a.trace =
      compute_op_trace(a.mult, tech(), workload(width, default_ops()), scales);
  a.dvth = scenario.mean_dvth_at(7.0);
  a.fl_period_ps = critical_path_ps(a.mult, tech(), scales);
  return a;
}

}  // namespace

static int bench_body() {
  preamble("Fig. 23",
           "avg latency, adaptive vs traditional VL, 16x16, aged 7 years");
  const AgedArch cb = make_aged(MultiplierArch::kColumnBypass, 16);
  const AgedArch rb = make_aged(MultiplierArch::kRowBypass, 16);
  std::printf("Aged fixed-latency baselines (ns): FLCB %.2f   FLRB %.2f\n\n",
              ns(cb.fl_period_ps), ns(rb.fl_period_ps));

  const auto periods = linspace(600.0, 1350.0, 16);
  for (int skip : {7, 8, 9}) {
    const auto t_cb = sweep_periods(cb.mult, cb.trace, periods, skip, false,
                                    cb.dvth);
    const auto a_cb = sweep_periods(cb.mult, cb.trace, periods, skip, true,
                                    cb.dvth);
    const auto t_rb = sweep_periods(rb.mult, rb.trace, periods, skip, false,
                                    rb.dvth);
    const auto a_rb = sweep_periods(rb.mult, rb.trace, periods, skip, true,
                                    rb.dvth);
    Table t("Skip-" + std::to_string(skip) + " avg latency (ns), aged",
            {"period", "T-VLCB", "A-VLCB", "T-VLRB", "A-VLRB"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(t_cb[i].avg_latency_ps), 3),
                 Table::fmt(ns(a_cb[i].avg_latency_ps), 3),
                 Table::fmt(ns(t_rb[i].avg_latency_ps), 3),
                 Table::fmt(ns(a_rb[i].avg_latency_ps), 3)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets: A-VL <= T-VL everywhere; the gap opens at\n"
      "short periods (frequent violations => the AHL's stricter second\n"
      "judging block avoids 3-cycle re-execution penalties) and closes at\n"
      "long periods (no violations => no switch).\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig23_adaptive16", bench_body)
