// Monte-Carlo reliability-distribution study (extension, docs/MODEL.md
// "Reliability as a distribution", ROADMAP item 2).
//
// The deterministic seven-year benches report THE chip; this bench samples
// a population of dies — correlated process variation composed with
// stochastic-aging jitter — for the 16x16 AM/CB/RB multipliers and
// reports, as JSON on stdout:
//
//  - p50/p99/p99.99 bands of the worst-case die delay per evaluation year
//    (the guard-band a yield target actually implies, vs the single
//    nominal number);
//  - the same bands for the rate of ops violating the fresh-critical-path
//    period;
//  - the 7-year "failure probability vs clock period" surface per
//    architecture — the fraction of dies that miss timing at each
//    candidate period after the full aging horizon.
//
// Expectations: the aged p99.99 delay sits well above the aged p50 (the
// tail, not the median, sets the shipping frequency); bypassing
// multipliers keep their fresh-delay advantage across the whole
// distribution; every surface is monotone non-increasing in the period.
//
// Knobs: AGINGSIM_BENCH_OPS caps ops per trial (CI smoke runs),
// AGINGSIM_MC_TRIALS the dies per architecture.

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/env.hpp"
#include "src/mc/mc_campaign.hpp"
#include "src/mc/mc_report.hpp"
#include "src/report/json.hpp"

using namespace agingsim;

int main() {
  mc::McCampaignConfig cfg;
  cfg.width = 16;
  cfg.trials =
      static_cast<int>(env::long_or("AGINGSIM_MC_TRIALS", 256, 1));
  cfg.ops = std::min<std::size_t>(bench::default_ops(), 256);
  const mc::McCampaign campaign(bench::tech(), cfg);
  const mc::McResult result = campaign.run();

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("mc_quantiles");
  mc::write_mc_json(json, campaign.config(), result, mc::McReportOptions{});
  json.end_object();
  std::printf("%s\n", json.str().c_str());
  return 0;
}
