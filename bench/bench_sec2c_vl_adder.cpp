// Section II-C / Fig. 4 — the paper's motivating example: an 8-bit
// ripple-carry adder with hold logic (A4^B4)&(A5^B5). With P(hold) = 0.25
// and a cycle period of 5 FA stages, the paper computes
//   average latency = 0.75*5 + 0.25*10 = 6.25  (vs 8 for fixed latency)
// i.e. a 28% performance improvement. This bench regenerates both the
// analytic argument (in FA-stage units) and the gate-level measurement.

#include "bench/common.hpp"
#include "src/adder/adder.hpp"
#include "src/sim/sta.hpp"
#include "src/sim/timing_sim.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Sec. II-C / Fig. 4", "8-bit variable-latency RCA with hold logic");
  const TechLibrary& t = tech();

  // Paper bit indices A4/A5 are 1-based; probing 0-based bits 3 and 4
  // splits the chain 5 + 3, exactly the figure's layout.
  const AdderNetlist vl = build_variable_latency_rca(8, 3, 2);
  const double crit = run_sta(vl.netlist, t).critical_path_ps;

  TimingSim sim(vl.netlist, t);
  std::vector<Logic> pattern(vl.netlist.num_inputs());
  Rng rng(0x44);
  const std::size_t kOps = 50000;
  std::uint64_t holds = 0;
  double max_delay_hold0 = 0.0;
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::uint64_t a = rng.next_bits(8), b = rng.next_bits(8);
    sim.load_bus(pattern, a, 8, vl.a_first_input);
    sim.load_bus(pattern, b, 8, vl.b_first_input);
    const StepResult r = sim.step(pattern);
    const bool hold = (sim.output_bits() >> 9) & 1;
    holds += hold;
    if (!hold) max_delay_hold0 = std::max(max_delay_hold0, r.output_settle_ps);
  }
  const double p_hold = static_cast<double>(holds) / kOps;

  Table tab("Fig. 4 variable-latency adder",
            {"quantity", "measured", "paper"});
  tab.add_row({"P(hold = 1)", Table::pct(p_hold, 2), "25.00%"});
  tab.add_row({"avg latency (stage units, T = 5)",
               Table::fmt((1.0 - p_hold) * 5.0 + p_hold * 10.0, 3), "6.250"});
  tab.add_row({"fixed latency (stage units)", "8.000", "8.000"});
  // The paper quotes throughput improvement: 8 / 6.25 = 1.28.
  tab.add_row({"throughput improvement",
               Table::pct(8.0 / ((1.0 - p_hold) * 5.0 + p_hold * 10.0) - 1.0,
                          1),
               "28%"});
  tab.add_row({"gate-level critical path (ns)", Table::fmt(ns(crit), 3), "-"});
  tab.add_row({"max observed delay when hold=0 (ns)",
               Table::fmt(ns(max_delay_hold0), 3), "-"});
  tab.print(std::cout);
  std::printf(
      "Reproduction targets: P(hold) = (1/2)^2 = 25%%; the 6.25-vs-8 stage\n"
      "argument; and the safety property that hold = 0 patterns settle well\n"
      "inside the short cycle (%.0f%% of the critical path here).\n",
      100.0 * max_delay_hold0 / crit);
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_sec2c_vl_adder", bench_body)
