// Fig. 15 — average latency of the 16x16 variable-latency bypassing
// multipliers under three different skip numbers (no aging).
// (a) A-VLCB, (b) A-VLRB.
//
// Paper: Skip-7 is the best scenario at large cycle periods (most one-cycle
// patterns) but the worst at small periods (most re-execution errors).

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 15",
           "avg latency across skip numbers, 16x16 A-VLCB / A-VLRB");
  const ArchSet s = make_arch_set(16, default_ops());
  const auto periods = linspace(550.0, 1350.0, 17);

  for (bool row : {false, true}) {
    const MultiplierNetlist& m = row ? s.rb : s.cb;
    const auto& trace = row ? s.rb_trace : s.cb_trace;
    std::vector<std::vector<RunStats>> by_skip;
    for (int skip : {7, 8, 9}) {
      by_skip.push_back(sweep_periods(m, trace, periods, skip, true));
    }
    Table t(std::string("16x16 ") + (row ? "A-VLRB" : "A-VLCB") +
                " avg latency (ns)",
            {"period", "Skip-7", "Skip-8", "Skip-9", "best skip"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      int best = 0;
      for (int k = 1; k < 3; ++k) {
        if (by_skip[k][i].avg_latency_ps < by_skip[best][i].avg_latency_ps) {
          best = k;
        }
      }
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(by_skip[0][i].avg_latency_ps), 3),
                 Table::fmt(ns(by_skip[1][i].avg_latency_ps), 3),
                 Table::fmt(ns(by_skip[2][i].avg_latency_ps), 3),
                 "Skip-" + std::to_string(7 + best)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets (paper Fig. 15): the skip-number ordering\n"
      "crosses over — the smallest skip wins at long periods (more\n"
      "one-cycle patterns, few errors) and loses at short periods (its\n"
      "marginal one-cycle patterns have the longest delays and start\n"
      "erroring first; each error costs three extra cycles).\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig15_skip16", bench_body)
