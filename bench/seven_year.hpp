#pragma once

// Shared implementation of the paper's Figs. 26 and 27: normalized latency,
// power and EDP of the AM, FLCB, FLRB, A-VLCB and A-VLRB over seven years
// of BTI aging. The fixed-latency designs are re-guard-banded to their aged
// critical path each year (that is what "fixed" costs under aging); the
// variable-latency designs keep their generous fixed cycle period, chosen
// so no timing violations occur, exactly as in the paper's setup.

#include <array>
#include <filesystem>
#include <optional>

#include "bench/common.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/serial.hpp"

namespace agingsim::bench {

inline void run_seven_year_figure(const char* fig, int width,
                                  double vl_period_ps, int skip) {
  const TechLibrary& t = tech();
  const BtiModel model = BtiModel::calibrated(t);
  const auto pats = workload(width, default_ops());

  struct Arch {
    MultiplierNetlist mult;
    AgingScenario scenario;
    Arch(MultiplierArch a, int w, const TechLibrary& tl, const BtiModel& m)
        : mult(build_multiplier(a, w)),
          scenario(mult.netlist, tl, m, 0x26F1, 1000) {}
  };
  Arch am(MultiplierArch::kArray, width, t, model);
  Arch cb(MultiplierArch::kColumnBypass, width, t, model);
  Arch rb(MultiplierArch::kRowBypass, width, t, model);

  constexpr int kDesigns = 5;  // AM FLCB FLRB A-VLCB A-VLRB
  const char* names[kDesigns] = {"AM", "FLCB", "FLRB", "A-VLCB", "A-VLRB"};
  std::array<std::array<RunStats, kDesigns>, 8> stats;

  // One independent simulator per (year, design): the year points fan out
  // across the RobustRunner (which parallelizes via the same pool layer),
  // each replaying the shared pattern set through its own aged trace.
  // Results land in year order, so output is byte-identical to the serial
  // sweep for any AGINGSIM_THREADS setting — and, because each year row is
  // persisted as one checkpoint unit the moment it completes, a run killed
  // mid-sweep and restarted with AGINGSIM_CHECKPOINT_DIR set resumes with
  // byte-identical figures (docs/ROBUSTNESS.md).
  const auto compute_year_row = [&](std::size_t y) {
    const double year = static_cast<double>(y);
    const auto run_fixed = [&](const Arch& a) {
      const auto scales = a.scenario.delay_scales_at(year);
      const auto trace = compute_op_trace(a.mult, t, pats, scales);
      FixedLatencySystem sys(a.mult, t);
      return sys.run(trace, critical_path_ps(a.mult, t, scales),
                     a.scenario.mean_dvth_at(year));
    };
    const auto run_vl = [&](const Arch& a) {
      const auto scales = a.scenario.delay_scales_at(year);
      const auto trace = compute_op_trace(a.mult, t, pats, scales);
      VlSystemConfig cfg;
      cfg.period_ps = vl_period_ps;
      cfg.ahl.width = width;
      cfg.ahl.skip = skip;
      VariableLatencySystem sys(a.mult, t, cfg);
      return sys.run(trace, a.scenario.mean_dvth_at(year));
    };
    return std::array<RunStats, kDesigns>{run_fixed(am), run_fixed(cb),
                                          run_fixed(rb), run_vl(cb),
                                          run_vl(rb)};
  };

  runtime::RunnerConfig runner_config = runtime::RunnerConfig::from_env();
  std::optional<runtime::CheckpointStore> store;
  // str_var treats an empty value as unset, so AGINGSIM_CHECKPOINT_DIR=""
  // means "no checkpoints" instead of "checkpoint into the current dir".
  if (const auto dir = env::str_var("AGINGSIM_CHECKPOINT_DIR")) {
    runtime::Digest digest;
    digest.mix(std::string_view("seven_year/v1"))
        .mix(std::string_view(fig))
        .mix(width)
        .mix(vl_period_ps)
        .mix(skip)
        .mix(static_cast<std::uint64_t>(pats.size()));
    store.emplace(std::filesystem::path(*dir) / fig, digest.value());
    const runtime::CheckpointScan scan = store->load();
    std::fprintf(stderr, "%s: checkpoints: %zu year rows restored, %zu "
                 "stale files discarded\n", fig, scan.loaded, scan.discarded);
    runner_config.checkpoints = &*store;
  }
  runtime::RobustRunner runner(runner_config);
  runtime::RunReport report;
  const auto payloads = runner.run(
      std::size_t{8},
      [&](std::uint64_t y, const runtime::CancelToken&) {
        const auto row = compute_year_row(static_cast<std::size_t>(y));
        return runtime::encode_run_stats_row(row);
      },
      &report);
  if (!report.all_ok()) {
    // A figure with holes is worthless: surface the first failure.
    for (const runtime::UnitOutcome& u : report.units) {
      if (u.state == runtime::UnitState::kQuarantined) {
        throw runtime::RunError(u.category,
                                std::string(fig) + ": year row quarantined: " +
                                    u.error);
      }
    }
  }
  for (int year = 0; year <= 7; ++year) {
    const auto row = runtime::decode_run_stats_row(
        payloads[static_cast<std::size_t>(year)]);
    for (int d = 0; d < kDesigns; ++d) {
      stats[year][static_cast<std::size_t>(d)] =
          row.at(static_cast<std::size_t>(d));
    }
  }

  const double lat0 = stats[0][0].avg_latency_ps;
  const double pow0 = stats[0][0].avg_power_mw;
  const double edp0 = stats[0][0].edp_mw_ns2;

  const auto emit = [&](const char* what, auto get, double norm) {
    Table tab(std::string(fig) + " normalized " + what + " (AM year 0 = 1)",
              {"year", "AM", "FLCB", "FLRB", "A-VLCB", "A-VLRB"});
    for (int year = 0; year <= 7; ++year) {
      std::vector<std::string> row = {std::to_string(year)};
      for (int d = 0; d < kDesigns; ++d) {
        row.push_back(Table::fmt(get(stats[year][d]) / norm, 3));
      }
      tab.add_row(std::move(row));
    }
    tab.print(std::cout);
    std::printf("%s increase year0 -> year7:", what);
    for (int d = 0; d < kDesigns; ++d) {
      std::printf("  %s %+0.2f%%", names[d],
                  100.0 * (get(stats[7][d]) / get(stats[0][d]) - 1.0));
    }
    std::printf("\n\n");
  };

  emit("latency", [](const RunStats& s) { return s.avg_latency_ps; }, lat0);
  emit("power", [](const RunStats& s) { return s.avg_power_mw; }, pow0);
  emit("EDP", [](const RunStats& s) { return s.edp_mw_ns2; }, edp0);

  std::uint64_t vl_errors = 0;
  for (int year = 0; year <= 7; ++year) {
    vl_errors += stats[year][3].errors + stats[year][4].errors;
  }
  std::printf("VL designs' timing violations across all years: %llu "
              "(expected 0: the %.1f ns period was chosen with margin)\n",
              static_cast<unsigned long long>(vl_errors),
              ns(vl_period_ps));
}

}  // namespace agingsim::bench
