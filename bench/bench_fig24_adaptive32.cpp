// Fig. 24 — average latency comparison between the 32x32 adaptive and
// traditional variable-latency multipliers on the 7-year-aged circuit,
// panels (a) Skip-15, (b) Skip-16, (c) Skip-17.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 24",
           "avg latency, adaptive vs traditional VL, 32x32, aged 7 years");
  const BtiModel model = BtiModel::calibrated(tech());

  MultiplierNetlist cb = build_column_bypass_multiplier(32);
  MultiplierNetlist rb = build_row_bypass_multiplier(32);
  AgingScenario cb_sc(cb.netlist, tech(), model, 0x24F1, 1000);
  AgingScenario rb_sc(rb.netlist, tech(), model, 0x24F1, 1000);
  const auto cb_scales = cb_sc.delay_scales_at(7.0);
  const auto rb_scales = rb_sc.delay_scales_at(7.0);
  const auto pats = workload(32, default_ops());
  const auto cb_trace = compute_op_trace(cb, tech(), pats, cb_scales);
  const auto rb_trace = compute_op_trace(rb, tech(), pats, rb_scales);
  const double cb_dvth = cb_sc.mean_dvth_at(7.0);
  const double rb_dvth = rb_sc.mean_dvth_at(7.0);

  std::printf("Aged fixed-latency baselines (ns): FLCB %.2f   FLRB %.2f\n\n",
              ns(critical_path_ps(cb, tech(), cb_scales)),
              ns(critical_path_ps(rb, tech(), rb_scales)));

  const auto periods = linspace(1200.0, 2600.0, 15);
  for (int skip : {15, 16, 17}) {
    const auto t_cb =
        sweep_periods(cb, cb_trace, periods, skip, false, cb_dvth);
    const auto a_cb =
        sweep_periods(cb, cb_trace, periods, skip, true, cb_dvth);
    const auto t_rb =
        sweep_periods(rb, rb_trace, periods, skip, false, rb_dvth);
    const auto a_rb =
        sweep_periods(rb, rb_trace, periods, skip, true, rb_dvth);
    Table t("Skip-" + std::to_string(skip) + " avg latency (ns), aged",
            {"period", "T-VLCB", "A-VLCB", "T-VLRB", "A-VLRB"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(t_cb[i].avg_latency_ps), 3),
                 Table::fmt(ns(a_cb[i].avg_latency_ps), 3),
                 Table::fmt(ns(t_rb[i].avg_latency_ps), 3),
                 Table::fmt(ns(a_rb[i].avg_latency_ps), 3)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets: as in Fig. 23, the adaptive hold logic is\n"
      "never worse and wins visibly at short cycle periods.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig24_adaptive32", bench_body)
