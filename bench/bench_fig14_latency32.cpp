// Fig. 14 — average latency of the AM, FLCB, FLRB, A-VLCB and A-VLRB in the
// 32x32 multiplier (no aging), one panel per skip number (15/16/17).
//
// Paper reference points: AM 2.74 ns, FLRB 3.95 ns, FLCB 3.88 ns.
// Skip-15: A-VLCB 46.6% below FLCB at 1.5 ns; A-VLRB 42.5% below FLRB at
// 1.65 ns. Skip-16: 43.1% / 38.3%. Skip-17: 40% / 35.0%.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 14", "avg latency vs cycle period, 32x32, Skip-15/16/17");
  const ArchSet s = make_arch_set(32, default_ops());

  std::printf("Fixed-latency baselines (ns): AM %.2f   FLCB %.2f   FLRB %.2f"
              "   (paper: 2.74 / 3.88 / 3.95)\n\n",
              ns(s.am_crit_ps), ns(s.cb_crit_ps), ns(s.rb_crit_ps));

  const auto periods = linspace(1100.0, 2600.0, 16);
  for (int skip : {15, 16, 17}) {
    const auto cb = sweep_periods(s.cb, s.cb_trace, periods, skip, true);
    const auto rb = sweep_periods(s.rb, s.rb_trace, periods, skip, true);
    Table t("Skip-" + std::to_string(skip) + " (avg latency, ns)",
            {"period", "A-VLCB", "A-VLCB err/10k", "A-VLRB",
             "A-VLRB err/10k"});
    double best_cb = 1e18, best_cb_p = 0, best_rb = 1e18, best_rb_p = 0;
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(cb[i].avg_latency_ps), 3),
                 Table::fmt(cb[i].errors_per_10k_ops, 0),
                 Table::fmt(ns(rb[i].avg_latency_ps), 3),
                 Table::fmt(rb[i].errors_per_10k_ops, 0)});
      if (cb[i].avg_latency_ps < best_cb) {
        best_cb = cb[i].avg_latency_ps;
        best_cb_p = periods[i];
      }
      if (rb[i].avg_latency_ps < best_rb) {
        best_rb = rb[i].avg_latency_ps;
        best_rb_p = periods[i];
      }
    }
    t.print(std::cout);
    std::printf(
        "Skip-%d best: A-VLCB %.3f ns at period %.2f ns => %s below FLCB, "
        "%s vs AM\n"
        "         best: A-VLRB %.3f ns at period %.2f ns => %s below FLRB, "
        "%s vs AM\n\n",
        skip, ns(best_cb), ns(best_cb_p),
        Table::pct(1.0 - best_cb / s.cb_crit_ps, 1).c_str(),
        Table::pct(1.0 - best_cb / s.am_crit_ps, 1).c_str(), ns(best_rb),
        ns(best_rb_p), Table::pct(1.0 - best_rb / s.rb_crit_ps, 1).c_str(),
        Table::pct(1.0 - best_rb / s.am_crit_ps, 1).c_str());
  }
  std::printf(
      "Reproduction targets: larger multipliers gain more from variable\n"
      "latency (wider long/short path spread), so the margin over the AM\n"
      "grows versus Fig. 13 and the preferred period band widens.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig14_latency32", bench_body)
