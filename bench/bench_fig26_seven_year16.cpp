// Fig. 26 — normalized latency, power and EDP over seven years for the
// 16x16 multipliers. The A-VLCB / A-VLRB run at a fixed 1.2 ns cycle with
// Skip-7, chosen so no timing violations occur (paper Section IV-E).
//
// Paper: AM/FLCB/FLRB latency degrades 15.2% / 14.36% / 14.83% over seven
// years; A-VLCB / A-VLRB only 2.76% / 3.47%. Power decreases progressively
// (higher Vth). A-VLCB average EDP reduction vs AM: 10.1%; A-VLRB: 3.6%.

#include "bench/seven_year.hpp"

static int bench_body() {
  agingsim::bench::preamble(
      "Fig. 26", "normalized latency / power / EDP over 7 years, 16x16");
  agingsim::bench::run_seven_year_figure("Fig. 26", 16, 1200.0, 7);
  std::printf(
      "\nReproduction targets: fixed designs degrade ~14-15%% in latency;\n"
      "the VL designs' latency stays nearly flat; every design's power\n"
      "falls with aging; the VL designs win on EDP within the first years\n"
      "because they pair AM-class latency with bypassing-class power.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig26_seven_year16", bench_body)
