// Extension bench — the paper's conclusion: "If the aging effects caused by
// the BTI effect and electromigration are considered together, the delay
// and performance degradation will be more significant. Fortunately, our
// proposed variable latency multipliers can be used under the influence of
// both." Plus the related-work process-variation angle [19].
//
// Panel 1: 16x16 CB latency over 7 years under BTI only, EM only, and
//          BTI x EM, for the fixed design (guard-banded) vs the A-VLCB.
// Panel 2: 20 process-variation corners: the fixed design must clock at its
//          worst-corner critical path; the A-VLCB just absorbs slow corners
//          as slightly higher error/two-cycle rates.

#include "bench/common.hpp"
#include "src/aging/electromigration.hpp"
#include "src/aging/variation.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Extension", "combined BTI + electromigration + variation, 16x16 CB");
  const TechLibrary& t = tech();
  const MultiplierNetlist cb = build_column_bypass_multiplier(16);
  const auto pats = workload(16, default_ops());

  // --- Panel 1: BTI x EM over seven years -------------------------------
  const BtiModel bti = BtiModel::calibrated(t);
  AgingScenario scenario(cb.netlist, t, bti, 0xE31, 1000);
  ElectromigrationModel em;  // 10-year MTTF corner

  Table p1("Seven-year degradation, 16x16 CB (latency, ns)",
           {"year", "FL (BTI)", "FL (EM)", "FL (BTI x EM)", "A-VLCB @1.2ns",
            "A-VLCB err/10k"});
  for (int year = 0; year <= 7; ++year) {
    const auto bti_scales = scenario.delay_scales_at(year);
    const double em_scale = em.wire_delay_scale(year);
    std::vector<double> em_scales(cb.netlist.num_gates(), em_scale);
    const auto both = combine_scales({bti_scales, em_scales});

    const double fl_bti = critical_path_ps(cb, t, bti_scales);
    const double fl_em = critical_path_ps(cb, t, em_scales);
    const double fl_both = critical_path_ps(cb, t, both);

    const auto trace = compute_op_trace(cb, t, pats, both);
    VlSystemConfig cfg;
    cfg.period_ps = 1200.0;
    cfg.ahl.width = 16;
    cfg.ahl.skip = 7;
    VariableLatencySystem vl(cb, t, cfg);
    const RunStats s = vl.run(trace, scenario.mean_dvth_at(year));

    p1.add_row({std::to_string(year), Table::fmt(ns(fl_bti), 3),
                Table::fmt(ns(fl_em), 3), Table::fmt(ns(fl_both), 3),
                Table::fmt(ns(s.avg_latency_ps), 3),
                Table::fmt(s.errors_per_10k_ops, 0)});
  }
  p1.print(std::cout);
  std::printf(
      "BTI and EM compose multiplicatively for the fixed design's cycle;\n"
      "the variable-latency design rides both out at an unchanged period,\n"
      "converting the compound degradation into a small error rate that the\n"
      "AHL keeps in check.\n\n");

  // --- Panel 2: process-variation corners --------------------------------
  const auto fresh_trace = compute_op_trace(cb, t, pats);
  double worst_corner_crit = 0.0;
  double worst_vl_latency = 0.0;
  Table p2("Process variation corners (sigma = 6%)",
           {"corner", "critical path (ns)", "A-VLCB latency (ns)",
            "A-VLCB err/10k"});
  for (std::uint64_t corner = 0; corner < 20; ++corner) {
    const auto scales = process_variation_scales(cb.netlist, 0.06, corner);
    const double crit = critical_path_ps(cb, t, scales);
    const auto trace = compute_op_trace(cb, t, pats, scales);
    VlSystemConfig cfg;
    cfg.period_ps = 1000.0;
    cfg.ahl.width = 16;
    cfg.ahl.skip = 7;
    VariableLatencySystem vl(cb, t, cfg);
    const RunStats s = vl.run(trace);
    worst_corner_crit = std::max(worst_corner_crit, crit);
    worst_vl_latency = std::max(worst_vl_latency, s.avg_latency_ps);
    if (corner < 5) {
      p2.add_row({std::to_string(corner), Table::fmt(ns(crit), 3),
                  Table::fmt(ns(s.avg_latency_ps), 3),
                  Table::fmt(s.errors_per_10k_ops, 0)});
    }
  }
  p2.add_row({"worst of 20", Table::fmt(ns(worst_corner_crit), 3),
              Table::fmt(ns(worst_vl_latency), 3), "-"});
  p2.print(std::cout);
  std::printf(
      "A fixed design must guard-band to the worst corner (%.3f ns per op);\n"
      "the variable-latency design's worst-corner average stays at %.3f ns\n"
      "because Razor turns slow-corner long paths into rare re-executions —\n"
      "the same mechanism cited for variation tolerance in the paper's\n"
      "related work [19].\n",
      ns(worst_corner_crit), ns(worst_vl_latency));
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_ext_combined_aging", bench_body)
