// Fig. 5 — path-delay distribution of the 16x16 AM, column-bypassing and
// row-bypassing multipliers over 65536 random input patterns.
//
// Paper: max path delay 1.32 ns (AM), 1.88 ns (CB), 1.82 ns (RB); >98% of
// AM paths below 0.7 ns; >93% (CB) and >98% (RB) below 0.9 ns.

#include "bench/common.hpp"
#include "src/workload/histogram.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Fig. 5",
                  "path-delay distribution, 16x16 AM / CB / RB, 65536 "
                  "uniform patterns");
  const TechLibrary& tech = bench::tech();
  const std::size_t kPatterns = 65536;

  Table t("Path delay summary (ns)",
          {"arch", "STA critical", "observed max", "mean", "p50", "p95",
           "frac < 0.7ns", "frac < 0.9ns", "paper critical"});
  const double paper_crit[] = {1.32, 1.88, 1.82};

  int idx = 0;
  for (auto arch : {MultiplierArch::kArray, MultiplierArch::kColumnBypass,
                    MultiplierArch::kRowBypass}) {
    const MultiplierNetlist m = build_multiplier(arch, 16);
    const double crit = critical_path_ps(m, tech);
    const auto trace =
        compute_op_trace(m, tech, bench::workload(16, kPatterns));
    Histogram h(0.0, crit, 25);
    for (const auto& op : trace) h.add(op.delay_ps);
    t.add_row({arch_name(arch), Table::fmt(bench::ns(crit), 2),
               Table::fmt(bench::ns(h.max_sample()), 2),
               Table::fmt(bench::ns(h.mean()), 2),
               Table::fmt(bench::ns(h.percentile(0.5)), 2),
               Table::fmt(bench::ns(h.percentile(0.95)), 2),
               Table::pct(h.fraction_below(700.0), 1),
               Table::pct(h.fraction_below(900.0), 1),
               Table::fmt(paper_crit[idx++], 2)});
    std::printf("%s delay histogram (ps):\n%s\n", arch_name(arch),
                h.render(48).c_str());
  }
  t.print(std::cout);
  std::printf(
      "Reproduction target: the overwhelming majority of paths settle far\n"
      "below the critical path for all three architectures — the premise\n"
      "of the variable-latency design.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig05_delay_distribution", bench_body)
