// Fault-injection & resilience evaluation (extension, docs/FAULTS.md).
//
// The paper's pitch is that the Razor + AHL architecture *tolerates*
// aging-induced timing failures; this bench measures that claim instead of
// assuming it. It sweeps fault kind x aging year on the 16x16
// column-bypassing multiplier and reports, as JSON on stdout:
//
//  - detection coverage of the Razor bank over every timing violation
//    (detected / (detected + metastability escapes + past-shadow-window));
//  - silent-data-corruption rate (wrong product committed per 10k ops);
//  - throughput degradation paid for surviving the faults;
//  - an error-storm demo showing the AHL graceful-degradation fallback
//    engaging under a delay-fault storm and recovering once it subsides.
//
// Expectations: in-window delay outliers are detected at >= 99% coverage
// (the escape channel is the narrow metastability window); out-of-window
// outliers (huge factors) defeat the shadow latch and produce nonzero SDC;
// stuck-at/transient faults are timing-invisible, so whatever the judging
// logic does not mask becomes SDC — the quantitative argument for pairing
// Razor with a functional checker if SDC matters.

#include <cstdio>

#include "bench/common.hpp"
#include "src/fault/campaign.hpp"
#include "src/report/json.hpp"

using namespace agingsim;
using namespace agingsim::bench;

namespace {

struct CampaignPoint {
  const char* label;
  FaultKind kind;
  double delay_factor;  // meaningful for kDelayOutlier only
  int sites_per_trial;
};

void emit_campaign(JsonWriter& json, const CampaignPoint& point, int year,
                   const FaultCampaignStats& s) {
  json.begin_object();
  json.key("fault").value(point.label);
  json.key("kind").value(fault_kind_name(point.kind));
  if (point.kind == FaultKind::kDelayOutlier) {
    json.key("delay_factor").value(point.delay_factor);
  }
  json.key("aging_years").value(year);
  json.key("sites_per_trial").value(point.sites_per_trial);
  json.key("detected_violations").value(s.detected_violations);
  json.key("escaped_violations").value(s.escaped_violations);
  json.key("uncovered_violations").value(s.uncovered_violations);
  json.key("detection_coverage").value(s.detection_coverage);
  json.key("sdc_ops").value(s.sdc_ops);
  json.key("sdc_per_10k_ops").value(s.sdc_per_10k_ops);
  json.key("masked_faults").value(s.masked_faults);
  json.key("trials_with_sdc").value(s.trials_with_sdc);
  json.key("avg_cycles_baseline").value(s.avg_cycles_baseline);
  json.key("avg_cycles_faulty").value(s.avg_cycles_faulty);
  json.key("throughput_degradation").value(s.throughput_degradation);
  json.key("baseline_errors_per_10k_ops")
      .value(s.baseline_errors_per_10k_ops);
  json.end_object();
}

}  // namespace

static int bench_body() {
  const TechLibrary& lib = tech();
  const MultiplierNetlist cb16 = build_column_bypass_multiplier(16);
  const double crit = critical_path_ps(cb16, lib);
  const std::size_t ops = std::max<std::size_t>(400, default_ops() / 10);
  const auto pats = workload(16, ops);

  const BtiModel bti = BtiModel::calibrated(lib);
  AgingScenario scenario(cb16.netlist, lib, bti, 0xFA17, 1000);

  VlSystemConfig cfg;
  cfg.period_ps = 0.58 * crit;
  cfg.ahl.width = 16;
  cfg.ahl.skip = 7;
  // Non-ideal Razor: a 5 ps metastability window past the clock edge where
  // detection may escape — the residual SDC channel of a real Razor bank.
  cfg.razor.metastability_window_ps = 5.0;
  cfg.razor.edge_escape_prob = 0.5;

  const CampaignPoint points[] = {
      {"stuck-at-0", FaultKind::kStuckAt0, 1.0, 1},
      {"stuck-at-1", FaultKind::kStuckAt1, 1.0, 1},
      {"transient", FaultKind::kTransient, 1.0, 4},
      {"delay-outlier (in-window)", FaultKind::kDelayOutlier, 8.0, 3},
      {"delay-outlier (out-of-window)", FaultKind::kDelayOutlier, 60.0, 3},
  };

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("fault_campaign");
  json.key("multiplier").value("column-bypass 16x16");
  json.key("critical_path_ps").value(crit);
  json.key("period_ps").value(cfg.period_ps);
  json.key("skip").value(cfg.ahl.skip);
  json.key("metastability_window_ps")
      .value(cfg.razor.metastability_window_ps);
  json.key("ops_per_trial").value(static_cast<std::uint64_t>(ops));

  json.key("campaigns").begin_array();
  for (const int year : {0, 7}) {
    const std::vector<double> scales =
        year == 0 ? std::vector<double>{}
                  : scenario.delay_scales_at(static_cast<double>(year));
    const double dvth =
        year == 0 ? 0.0 : scenario.mean_dvth_at(static_cast<double>(year));
    for (const CampaignPoint& point : points) {
      FaultCampaignConfig cc;
      cc.kind = point.kind;
      cc.trials = 12;
      cc.sites_per_trial = point.sites_per_trial;
      cc.delay_factor = point.delay_factor;
      cc.seed = 0xFA17 + static_cast<std::uint64_t>(year);
      FaultCampaign campaign(cb16, lib, cfg, cc);
      emit_campaign(json, point, year, campaign.run(pats, scales, dvth));
    }
  }
  json.end_array();

  // Error-storm demo: a delay-outlier cluster on the output cone (an aged
  // final adder row) for the first half of the stream, healthy silicon for
  // the second half. At half the worst-case delay — the soundest period the
  // contract allows — the faulted segment's one-cycle error rate sits near
  // 30%, far past the storm threshold, while the clean segment stays quiet;
  // two cycles always cover the worst path, so the fallback is safe.
  {
    const FaultOverlay storm_overlay =
        output_cone_delay_overlay(cb16.netlist, 20.0);
    const auto faulty = compute_op_trace(cb16, lib, pats,
                                         TraceOptions{.faults = &storm_overlay});
    const auto clean = compute_op_trace(cb16, lib, pats);
    std::vector<OpTrace> stream = faulty;
    stream.insert(stream.end(), clean.begin(), clean.end());

    VlSystemConfig storm_cfg = cfg;
    storm_cfg.period_ps = 0.5 * max_delay_ps(stream);
    storm_cfg.ahl.storm_fallback = true;
    storm_cfg.ahl.storm_error_threshold = 0.20;
    VariableLatencySystem with_fallback(cb16, lib, storm_cfg);
    const RunStats on = with_fallback.run(stream);

    VlSystemConfig no_storm = storm_cfg;
    no_storm.ahl.storm_fallback = false;
    VariableLatencySystem without_fallback(cb16, lib, no_storm);
    const RunStats off = without_fallback.run(stream);

    json.key("storm_demo").begin_object();
    json.key("period_ps").value(storm_cfg.period_ps);
    json.key("storm_error_threshold")
        .value(storm_cfg.ahl.storm_error_threshold);
    json.key("storm_engagements").value(on.storm_engagements);
    json.key("storm_recoveries").value(on.storm_recoveries);
    json.key("storm_ops").value(on.storm_ops);
    json.key("errors_with_fallback").value(on.errors);
    json.key("errors_without_fallback").value(off.errors);
    json.key("avg_cycles_with_fallback").value(on.avg_cycles);
    json.key("avg_cycles_without_fallback").value(off.avg_cycles);
    json.end_object();
  }

  json.end_object();
  std::printf("%s\n", json.str().c_str());
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fault_campaign", bench_body)
