// Ablations over the design choices DESIGN.md calls out. Not a paper
// figure — these probe which ingredients of the reproduction carry the
// results.
//
//  A. Timing model: replace the sensitized per-pattern delays with the STA
//     worst case for every pattern. Variable latency lives off the gap
//     between typical and worst-case paths; with the gap removed the
//     advantage must vanish (and the design must degenerate gracefully).
//  B. Razor re-execution penalty: the paper states 3 extra cycles; sweep it.
//  C. Aging-indicator policy: sticky (default; aging is monotonic) versus
//     windowed re-evaluation.
//  D. Second judging block strictness: the paper uses n+1; sweep the offset.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Ablations", "AHL / Razor / timing-model design choices, 16x16 CB");
  const TechLibrary& t = tech();
  const MultiplierNetlist cb = build_column_bypass_multiplier(16);
  const double crit = critical_path_ps(cb, t);
  const auto pats = workload(16, default_ops());
  const auto trace = compute_op_trace(cb, t, pats);

  const BtiModel model = BtiModel::calibrated(t);
  AgingScenario scenario(cb.netlist, t, model, 0xAB1A, 1000);
  const auto aged_scales = scenario.delay_scales_at(7.0);
  const auto aged_trace = compute_op_trace(cb, t, pats, aged_scales);
  const double aged_dvth = scenario.mean_dvth_at(7.0);

  // --- A: sensitized timing vs STA-everywhere ------------------------------
  {
    std::vector<OpTrace> sta_trace = trace;
    for (OpTrace& op : sta_trace) op.delay_ps = crit;
    Table tab("A. Timing model (Skip-7, period sweep, avg latency ns)",
              {"period (ns)", "sensitized delays", "STA-everywhere"});
    for (double period : linspace(700.0, 1900.0, 7)) {
      VlSystemConfig cfg;
      cfg.period_ps = period;
      cfg.ahl.width = 16;
      cfg.ahl.skip = 7;
      VariableLatencySystem sys(cb, t, cfg);
      tab.add_row({Table::fmt(ns(period), 2),
                   Table::fmt(ns(sys.run(trace).avg_latency_ps), 3),
                   Table::fmt(ns(sys.run(sta_trace).avg_latency_ps), 3)});
    }
    tab.print(std::cout);
    std::printf(
        "With every pattern at the critical path, any period below %.2f ns\n"
        "turns every one-cycle pattern into a 4-cycle re-execution — the\n"
        "pattern-dependent delay model is the load-bearing ingredient.\n\n",
        ns(crit));
  }

  // --- B: Razor re-execution penalty ---------------------------------------
  {
    Table tab("B. Re-execution penalty (Skip-7, period 0.75 ns, fresh)",
              {"penalty (extra cycles)", "avg latency (ns)", "errors/10k"});
    for (int penalty : {1, 2, 3, 4, 5, 6}) {
      VlSystemConfig cfg;
      cfg.period_ps = 750.0;
      cfg.ahl.width = 16;
      cfg.ahl.skip = 7;
      cfg.razor.reexec_penalty_cycles = penalty;
      VariableLatencySystem sys(cb, t, cfg);
      const RunStats s = sys.run(trace);
      tab.add_row({std::to_string(penalty),
                   Table::fmt(ns(s.avg_latency_ps), 3),
                   Table::fmt(s.errors_per_10k_ops, 0)});
    }
    tab.print(std::cout);
    std::printf(
        "Latency rises linearly with the penalty at a fixed error rate;\n"
        "the paper's value (3 = 1 Razor + 2 re-execution) is the modeled\n"
        "default everywhere else.\n\n");
  }

  // --- C: sticky vs windowed indicator -------------------------------------
  {
    Table tab("C. Aging indicator policy (Skip-7, aged 7y, period sweep)",
              {"period (ns)", "sticky err/10k", "sticky latency",
               "windowed err/10k", "windowed latency"});
    for (double period : linspace(700.0, 1000.0, 4)) {
      RunStats by_policy[2];
      for (int sticky = 1; sticky >= 0; --sticky) {
        VlSystemConfig cfg;
        cfg.period_ps = period;
        cfg.ahl.width = 16;
        cfg.ahl.skip = 7;
        cfg.ahl.indicator.sticky = (sticky == 1);
        VariableLatencySystem sys(cb, t, cfg);
        by_policy[sticky] = sys.run(aged_trace, aged_dvth);
      }
      tab.add_row({Table::fmt(ns(period), 2),
                   Table::fmt(by_policy[1].errors_per_10k_ops, 0),
                   Table::fmt(ns(by_policy[1].avg_latency_ps), 3),
                   Table::fmt(by_policy[0].errors_per_10k_ops, 0),
                   Table::fmt(ns(by_policy[0].avg_latency_ps), 3)});
    }
    tab.print(std::cout);
    std::printf(
        "A windowed (non-sticky) indicator oscillates: each clean window\n"
        "re-enables the permissive block, re-admitting the error burst.\n"
        "Sticky is the right policy for monotonic BTI degradation.\n\n");
  }

  // --- D: second-block strictness ------------------------------------------
  {
    Table tab("D. Second judging block offset (Skip-7, aged 7y, 0.8 ns)",
              {"offset", "err/10k", "one-cycle ratio", "avg latency (ns)"});
    for (int offset : {0, 1, 2, 3}) {
      VlSystemConfig cfg;
      cfg.period_ps = 800.0;
      cfg.ahl.width = 16;
      cfg.ahl.skip = 7;
      cfg.ahl.second_block_offset = offset;
      VariableLatencySystem sys(cb, t, cfg);
      const RunStats s = sys.run(aged_trace, aged_dvth);
      tab.add_row({std::to_string(offset),
                   Table::fmt(s.errors_per_10k_ops, 0),
                   Table::pct(s.one_cycle_ratio, 1),
                   Table::fmt(ns(s.avg_latency_ps), 3)});
    }
    tab.print(std::cout);
    std::printf(
        "Offset 0 never adapts (the 'second block' is the first); larger\n"
        "offsets cut errors harder but demote more patterns to two cycles.\n"
        "The paper's n+1 sits at the knee.\n");
  }
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_ablation_ahl", bench_body)
