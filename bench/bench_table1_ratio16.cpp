// Table I — one-cycle pattern ratio in the 16x16 variable-latency bypassing
// multipliers under Skip-7/8/9. The VLCB judges on the multiplicand, the
// VLRB on the multiplicator; for uniform random operands both converge to
// the binomial tail P(#zeros >= skip).
//
// Paper values: Skip-7: 73.58% / 77.39%, Skip-8: 53.78% / 59.89%,
// Skip-9: 33.22% / 40.20% (VLCB / VLRB).

#include "bench/common.hpp"
#include "src/core/judging.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Table I", "one-cycle pattern ratio, 16x16 VLCB / VLRB");

  Rng rng(0x7AB1E1);
  const auto pats = uniform_patterns(rng, 16, 65536);

  const double paper_vlcb[] = {0.7358, 0.5378, 0.3322};
  const double paper_vlrb[] = {0.7739, 0.5989, 0.4020};

  Table t("One-cycle pattern ratio, 16x16 (65536 uniform patterns)",
          {"scenario", "VLCB (measured)", "VLRB (measured)", "analytic tail",
           "paper VLCB", "paper VLRB"});
  for (int i = 0; i < 3; ++i) {
    const int skip = 7 + i;
    const JudgingBlock jb(16, skip);
    std::uint64_t cb = 0, rb = 0;
    for (const auto& p : pats) {
      cb += jb.one_cycle(p.a);  // column bypass judges the multiplicand
      rb += jb.one_cycle(p.b);  // row bypass judges the multiplicator
    }
    t.add_row({"Skip-" + std::to_string(skip),
               Table::pct(static_cast<double>(cb) / pats.size()),
               Table::pct(static_cast<double>(rb) / pats.size()),
               Table::pct(expected_one_cycle_ratio(16, skip)),
               Table::pct(paper_vlcb[i]), Table::pct(paper_vlrb[i])});
  }
  t.print(std::cout);
  std::printf(
      "Note: the paper's VLRB column matches the binomial tail; its VLCB\n"
      "column sits a few points lower (unexplained in the paper — the\n"
      "judging rule is identical, only the operand differs). Our measured\n"
      "ratios match the analytic tail for both, as expected for uniform\n"
      "operands.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_table1_ratio16", bench_body)
