// Fig. 16 — error count in 10000 cycles for the 16x16 variable-latency
// bypassing multipliers under three skip numbers, over the cycle-period
// sweep. (a) A-VLCB, (b) A-VLRB.
//
// Paper: the smaller the skip number, the more errors at small cycle
// periods; above ~0.85 ns the three scenarios have similarly few errors.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 16", "Razor error count per 10000 ops, 16x16, Skip-7/8/9");
  const ArchSet s = make_arch_set(16, default_ops());
  const auto periods = linspace(550.0, 1350.0, 17);

  for (bool row : {false, true}) {
    const MultiplierNetlist& m = row ? s.rb : s.cb;
    const auto& trace = row ? s.rb_trace : s.cb_trace;
    std::vector<std::vector<RunStats>> by_skip;
    // Error characterization uses the traditional (non-adaptive) design:
    // the AHL would otherwise switch blocks mid-run and hide the error
    // profile the figure characterizes.
    for (int skip : {7, 8, 9}) {
      by_skip.push_back(sweep_periods(m, trace, periods, skip, false));
    }
    Table t(std::string("16x16 ") + (row ? "VLRB" : "VLCB") +
                " errors per 10000 ops",
            {"period (ns)", "Skip-7", "Skip-8", "Skip-9"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(by_skip[0][i].errors_per_10k_ops, 0),
                 Table::fmt(by_skip[1][i].errors_per_10k_ops, 0),
                 Table::fmt(by_skip[2][i].errors_per_10k_ops, 0)});
    }
    t.print(std::cout);
  }
  std::printf(
      "Reproduction targets: errors fall monotonically with the period;\n"
      "Skip-7 > Skip-8 > Skip-9 at short periods (the extra one-cycle\n"
      "patterns of a small skip are precisely the slowest ones); all three\n"
      "converge to ~zero in the preferred band.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig16_errors16", bench_body)
