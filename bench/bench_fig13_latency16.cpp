// Fig. 13 — average latency of the AM, FLCB, FLRB, A-VLCB and A-VLRB in the
// 16x16 multiplier (no aging), one panel per skip number (7/8/9), sweeping
// the cycle period.
//
// Paper reference points: AM 1.32 ns, FLRB 1.82 ns, FLCB 1.88 ns.
// Skip-7: A-VLCB 37.3% below FLCB at 0.9 ns; A-VLRB 39.9% below FLRB at
// 0.85 ns. Skip-8: 32.2% / 35.5%. Skip-9: 28.8% / 32.0%.

#include "bench/common.hpp"

using namespace agingsim;
using namespace agingsim::bench;

static int bench_body() {
  preamble("Fig. 13", "avg latency vs cycle period, 16x16, Skip-7/8/9");
  const ArchSet s = make_arch_set(16, default_ops());

  std::printf("Fixed-latency baselines (ns): AM %.2f   FLCB %.2f   FLRB %.2f"
              "   (paper: 1.32 / 1.88 / 1.82)\n\n",
              ns(s.am_crit_ps), ns(s.cb_crit_ps), ns(s.rb_crit_ps));

  const auto periods = linspace(550.0, 1350.0, 17);
  for (int skip : {7, 8, 9}) {
    const auto cb = sweep_periods(s.cb, s.cb_trace, periods, skip, true);
    const auto rb = sweep_periods(s.rb, s.rb_trace, periods, skip, true);
    Table t("Skip-" + std::to_string(skip) + " (avg latency, ns)",
            {"period", "A-VLCB", "A-VLCB err/10k", "A-VLRB",
             "A-VLRB err/10k"});
    double best_cb = 1e18, best_cb_p = 0, best_rb = 1e18, best_rb_p = 0;
    for (std::size_t i = 0; i < periods.size(); ++i) {
      t.add_row({Table::fmt(ns(periods[i]), 2),
                 Table::fmt(ns(cb[i].avg_latency_ps), 3),
                 Table::fmt(cb[i].errors_per_10k_ops, 0),
                 Table::fmt(ns(rb[i].avg_latency_ps), 3),
                 Table::fmt(rb[i].errors_per_10k_ops, 0)});
      if (cb[i].avg_latency_ps < best_cb) {
        best_cb = cb[i].avg_latency_ps;
        best_cb_p = periods[i];
      }
      if (rb[i].avg_latency_ps < best_rb) {
        best_rb = rb[i].avg_latency_ps;
        best_rb_p = periods[i];
      }
    }
    t.print(std::cout);
    std::printf(
        "Skip-%d best: A-VLCB %.3f ns at period %.2f ns => %s below FLCB, "
        "%s vs AM\n"
        "        best: A-VLRB %.3f ns at period %.2f ns => %s below FLRB, "
        "%s vs AM\n\n",
        skip, ns(best_cb), ns(best_cb_p),
        Table::pct(1.0 - best_cb / s.cb_crit_ps, 1).c_str(),
        Table::pct(1.0 - best_cb / s.am_crit_ps, 1).c_str(), ns(best_rb),
        ns(best_rb_p), Table::pct(1.0 - best_rb / s.rb_crit_ps, 1).c_str(),
        Table::pct(1.0 - best_rb / s.am_crit_ps, 1).c_str());
  }
  std::printf(
      "Reproduction targets: a preferred period band exists where the\n"
      "variable-latency designs beat both the fixed-latency bypassing\n"
      "multipliers (large margin) and the AM (small margin); below the band\n"
      "re-execution penalties blow the latency up, above it timing waste\n"
      "grows linearly.\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig13_latency16", bench_body)
