// Figs. 9 and 10 — pattern-count distribution over the number of 0s and 1s
// in the multiplicator (Fig. 9) and multiplicand (Fig. 10) for random
// inputs.
//
// Paper: for random input patterns the number of zeros/ones follows a
// normal-looking (binomial) distribution, which is why zero-counting and
// one-counting are equivalent judging criteria.

#include "bench/common.hpp"

using namespace agingsim;

static int bench_body() {
  bench::preamble("Figs. 9-10",
                  "distribution of #zeros/#ones in random 16-bit operands");
  Rng rng(0xF910);
  const auto pats = uniform_patterns(rng, 16, 65536);

  std::uint64_t zeros_b[17] = {}, zeros_a[17] = {};
  for (const auto& p : pats) {
    ++zeros_b[count_zeros(p.b, 16)];
    ++zeros_a[count_zeros(p.a, 16)];
  }

  Table t("Pattern counts by number of zeros (65536 patterns)",
          {"#zeros (= 16 - #ones)", "multiplicator (Fig. 9)",
           "multiplicand (Fig. 10)", "binomial expectation"});
  for (int z = 0; z <= 16; ++z) {
    const double expect = expected_one_cycle_ratio(16, z) -
                          expected_one_cycle_ratio(16, z + 1);
    t.add_row({std::to_string(z), Table::num(zeros_b[z]),
               Table::num(zeros_a[z]),
               Table::fmt(expect * 65536.0, 0)});
  }
  t.print(std::cout);

  std::printf("multiplicator zero-count histogram:\n");
  for (int z = 0; z <= 16; ++z) {
    std::printf("%2d %6llu |", z,
                static_cast<unsigned long long>(zeros_b[z]));
    for (std::uint64_t k = 0; k < zeros_b[z] / 250; ++k) std::printf("#");
    std::printf("\n");
  }
  std::printf(
      "\nReproduction target: symmetric bell centred at 8 zeros — counting\n"
      "zeros or ones gives the same judging power (paper Section III-A).\n");
  return 0;
}

AGINGSIM_BENCH_MAIN("bench_fig09_10_operand_distribution", bench_body)
