// Command-line design-space explorer: the library as a tool. Point it at an
// architecture / width / skip / period / age and it prints the full metric
// set for the proposed system and the fixed-latency baseline, and can dump
// the generated netlist as structural Verilog.
//
// Usage:
//   design_explorer [arch=cb|rb|am|wt] [width=16] [skip=7]
//                   [period_ns=0.9] [years=0] [ops=5000] [verilog=out.v]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/netlist/export.hpp"
#include "src/workload/patterns.hpp"

using namespace agingsim;

namespace {

struct Options {
  MultiplierArch arch = MultiplierArch::kColumnBypass;
  int width = 16;
  int skip = 7;
  double period_ns = 0.9;
  double years = 0.0;
  std::size_t ops = 5000;
  std::string verilog_path;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad argument (want key=value): %s\n",
                   arg.c_str());
      return false;
    }
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    if (key == "arch") {
      if (val == "am") opt.arch = MultiplierArch::kArray;
      else if (val == "cb") opt.arch = MultiplierArch::kColumnBypass;
      else if (val == "rb") opt.arch = MultiplierArch::kRowBypass;
      else if (val == "wt") opt.arch = MultiplierArch::kWallaceTree;
      else {
        std::fprintf(stderr, "unknown arch %s (am|cb|rb|wt)\n", val.c_str());
        return false;
      }
    } else if (key == "width") {
      opt.width = std::atoi(val.c_str());
    } else if (key == "skip") {
      opt.skip = std::atoi(val.c_str());
    } else if (key == "period_ns") {
      opt.period_ns = std::atof(val.c_str());
    } else if (key == "years") {
      opt.years = std::atof(val.c_str());
    } else if (key == "ops") {
      opt.ops = static_cast<std::size_t>(std::atoll(val.c_str()));
    } else if (key == "verilog") {
      opt.verilog_path = val;
    } else {
      std::fprintf(stderr, "unknown option %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist mult = build_multiplier(opt.arch, opt.width);
  std::printf("%s %dx%d: %zu gates, %lld transistors\n", arch_name(opt.arch),
              opt.width, opt.width, mult.netlist.num_gates(),
              static_cast<long long>(mult.netlist.transistor_count()));

  std::vector<double> scales;
  double mean_dvth = 0.0;
  if (opt.years > 0.0) {
    AgingScenario scenario(mult.netlist, tech, BtiModel::calibrated(tech),
                           0xDE5, 1000);
    scales = scenario.delay_scales_at(opt.years);
    mean_dvth = scenario.mean_dvth_at(opt.years);
    std::printf("aged %.1f years: mean dVth %.1f mV\n", opt.years,
                mean_dvth * 1000.0);
  }
  const double crit = critical_path_ps(mult, tech, scales);
  std::printf("critical path: %.3f ns\n\n", crit / 1000.0);

  Rng rng(1);
  const auto pats = uniform_patterns(rng, opt.width, opt.ops);
  const auto trace = compute_op_trace(mult, tech, pats, scales);

  VlSystemConfig cfg;
  cfg.period_ps = opt.period_ns * 1000.0;
  cfg.ahl.width = opt.width;
  cfg.ahl.skip = opt.skip;
  VariableLatencySystem vl(mult, tech, cfg);
  const RunStats s = vl.run(trace, mean_dvth);
  FixedLatencySystem fixed(mult, tech);
  const RunStats f = fixed.run(trace, crit, mean_dvth);

  std::printf("proposed (Skip-%d @ %.2f ns)      fixed-latency baseline\n",
              opt.skip, opt.period_ns);
  std::printf("  one-cycle ratio  %6.1f%%          (always 1 cycle)\n",
              100.0 * s.one_cycle_ratio);
  std::printf("  errors/10k ops   %6.0f\n", s.errors_per_10k_ops);
  std::printf("  avg latency      %6.3f ns        %6.3f ns\n",
              s.avg_latency_ps / 1000.0, f.avg_latency_ps / 1000.0);
  std::printf("  avg power        %6.2f mW        %6.2f mW\n", s.avg_power_mw,
              f.avg_power_mw);
  std::printf("  EDP              %6.2f mW*ns^2   %6.2f mW*ns^2\n",
              s.edp_mw_ns2, f.edp_mw_ns2);
  std::printf("  => latency %+0.1f%% vs fixed\n",
              100.0 * (s.avg_latency_ps / f.avg_latency_ps - 1.0));
  if (s.undetected > 0) {
    std::printf("  WARNING: %llu undetected violations — the period is below "
                "the Razor coverage bound\n",
                static_cast<unsigned long long>(s.undetected));
  }

  if (!opt.verilog_path.empty()) {
    std::ofstream out(opt.verilog_path);
    out << to_verilog(mult.netlist,
                      std::string(arch_name(opt.arch)) + "_mult");
    std::printf("\nwrote structural Verilog to %s\n",
                opt.verilog_path.c_str());
  }
  return 0;
}
