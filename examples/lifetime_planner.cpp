// Domain example: lifetime planning. A deployment question the paper's
// Section IV-C machinery answers directly: given a 16x16 column-bypassing
// multiplier that must survive seven years of BTI aging, which (cycle
// period, skip number) should we ship?
//
// For every candidate configuration this sweeps the aged circuit at years
// 0, 3 and 7, reports the worst average latency over the lifetime, and
// recommends the configuration with the best end-of-life latency. It also
// shows the cost of the naive alternative — guard-banding a fixed-latency
// design for year-7 silicon.

#include <cstdio>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/report/table.hpp"
#include "src/workload/patterns.hpp"

#include <iostream>

using namespace agingsim;

int main() {
  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist mult = build_column_bypass_multiplier(16);
  const BtiModel model = BtiModel::calibrated(tech);
  AgingScenario scenario(mult.netlist, tech, model, 0x11FE, 1000);

  Rng rng(7);
  const auto patterns = uniform_patterns(rng, 16, 4000);

  const double years[] = {0.0, 3.0, 7.0};
  std::vector<std::vector<OpTrace>> traces;
  for (double y : years) {
    const auto scales = scenario.delay_scales_at(y);
    traces.push_back(compute_op_trace(mult, tech, patterns, scales));
  }
  const double aged_crit = critical_path_ps(
      mult, tech, scenario.delay_scales_at(7.0));

  Table t("16x16 A-VLCB lifetime sweep (avg latency, ns)",
          {"period (ns)", "skip", "year 0", "year 3", "year 7",
           "lifetime worst", "year-7 err/10k"});
  double best_worst = 1e18, best_period = 0.0;
  int best_skip = 0;
  for (double period : {750.0, 850.0, 950.0, 1050.0, 1150.0}) {
    for (int skip : {7, 8, 9}) {
      VlSystemConfig cfg;
      cfg.period_ps = period;
      cfg.ahl.width = 16;
      cfg.ahl.skip = skip;
      VariableLatencySystem sys(mult, tech, cfg);
      double worst = 0.0, err7 = 0.0;
      std::vector<std::string> row = {Table::fmt(period / 1000.0, 2),
                                      std::to_string(skip)};
      for (std::size_t yi = 0; yi < 3; ++yi) {
        const RunStats s =
            sys.run(traces[yi], scenario.mean_dvth_at(years[yi]));
        row.push_back(Table::fmt(s.avg_latency_ps / 1000.0, 3));
        worst = std::max(worst, s.avg_latency_ps);
        if (yi == 2) err7 = s.errors_per_10k_ops;
      }
      row.push_back(Table::fmt(worst / 1000.0, 3));
      row.push_back(Table::fmt(err7, 0));
      t.add_row(std::move(row));
      if (worst < best_worst) {
        best_worst = worst;
        best_period = period;
        best_skip = skip;
      }
    }
  }
  t.print(std::cout);

  std::printf("Recommended configuration: period %.2f ns, Skip-%d — "
              "lifetime-worst avg latency %.3f ns.\n",
              best_period / 1000.0, best_skip, best_worst / 1000.0);
  std::printf("Naive fixed-latency alternative (guard-band for year-7 "
              "critical path): %.3f ns every operation, %.1f%% slower.\n",
              aged_crit / 1000.0,
              100.0 * (aged_crit / best_worst - 1.0));
  return 0;
}
