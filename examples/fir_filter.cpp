// Domain example: a 16-tap FIR filter — the paper's motivating workload
// class ("digital filtering") — whose multiplies run on the gate-level
// 16x16 aging-aware multiplier.
//
// The filter convolves a synthetic band-limited signal with a fixed
// coefficient kernel. Every product comes out of the simulated netlist (and
// is cross-checked against software multiplication); the cycle accounting
// comes from the variable-latency system model. Because real signals spend
// most of their time at small magnitudes (many leading zeros), the
// bypassing multiplier's one-cycle ratio on this workload is far higher
// than on uniform random operands — variable latency is even better on DSP
// streams than the paper's random-pattern evaluation suggests.

#include <cstdio>
#include <vector>

#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/workload/patterns.hpp"

using namespace agingsim;

namespace {

// A 16-tap low-pass-ish kernel (unsigned fixed point).
constexpr std::uint64_t kTaps[16] = {3,   9,   21,  40,  62,  80,  91,  95,
                                     91,  80,  62,  40,  21,  9,   3,   1};

// Synthetic "sensor" signal: a random walk with occasional bursts, clamped
// to 12 bits so operands carry leading zeros like real samples do.
std::vector<std::uint64_t> make_signal(std::size_t n) {
  Rng rng(0xF17);
  std::vector<std::uint64_t> sig(n);
  std::uint64_t level = 800;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t step = rng.next_below(64);
    level = (rng.next() & 1) ? level + step : level - std::min(level, step);
    if (rng.next_below(1000) < 5) level += 2000;  // burst
    if (level > 0xFFF) level = 0xFFF;
    sig[i] = level;
  }
  return sig;
}

}  // namespace

int main() {
  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist mult = build_column_bypass_multiplier(16);

  const std::size_t kSamples = 512;
  const auto signal = make_signal(kSamples + 16);

  // The multiply stream: operand a (multiplicand, judged by the AHL) is the
  // coefficient — constant-ish and sparse; operand b is the sample.
  std::vector<OperandPattern> stream;
  stream.reserve(kSamples * 16);
  for (std::size_t i = 0; i < kSamples; ++i) {
    for (int t = 0; t < 16; ++t) {
      stream.push_back({kTaps[t], signal[i + 15 - static_cast<std::size_t>(t)]});
    }
  }

  // Gate-level simulation of every multiply (products are verified against
  // software multiplication inside compute_op_trace).
  const auto trace = compute_op_trace(mult, tech, stream);

  // Accumulate the FIR outputs from the netlist products and cross-check.
  std::vector<std::uint64_t> fir(kSamples, 0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    std::uint64_t acc = 0, ref = 0;
    for (int t = 0; t < 16; ++t) {
      acc += trace[i * 16 + static_cast<std::size_t>(t)].product;
      ref += kTaps[t] * signal[i + 15 - static_cast<std::size_t>(t)];
    }
    fir[i] = acc;
    if (acc != ref) {
      std::printf("FIR mismatch at sample %zu\n", i);
      return 1;
    }
  }
  std::printf("FIR over %zu samples (%zu gate-level multiplies): outputs "
              "match the software reference.\n",
              kSamples, trace.size());

  // Architecture comparison on this DSP stream.
  VlSystemConfig cfg;
  cfg.period_ps = 900.0;
  cfg.ahl.width = 16;
  cfg.ahl.skip = 7;
  VariableLatencySystem proposed(mult, tech, cfg);
  const RunStats vl = proposed.run(trace);
  FixedLatencySystem fixed(mult, tech);
  const RunStats fl = fixed.run(trace, critical_path_ps(mult, tech));

  std::printf("\nDSP stream vs uniform random (paper's Table I):\n");
  std::printf("  one-cycle ratio on FIR stream : %.1f%% (Skip-7)\n",
              100.0 * vl.one_cycle_ratio);
  std::printf("  one-cycle ratio, uniform ops  : ~77%% (Table I)\n");
  std::printf("  Razor errors                  : %llu\n",
              static_cast<unsigned long long>(vl.errors));
  std::printf("  A-VLCB avg latency            : %.3f ns\n",
              vl.avg_latency_ps / 1000.0);
  std::printf("  FLCB fixed latency            : %.3f ns\n",
              fl.avg_latency_ps / 1000.0);
  std::printf("  filter throughput gain        : %.2fx\n",
              fl.avg_latency_ps / vl.avg_latency_ps);
  return 0;
}
