// Demonstrates the Razor safety net: clock the proposed multiplier far too
// aggressively and watch timing violations get detected and repaired by
// re-execution instead of corrupting results.
//
// The demo shrinks the cycle period step by step. At every setting the
// system stays *functionally correct* — Razor converts would-be wrong
// results into 3-extra-cycle re-executions — until the period drops below
// the point where even two cycles cannot cover the slowest observed path,
// which the model reports as `undetected` (and the paper's design rule
// excludes by construction).

#include <cstdio>

#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/workload/patterns.hpp"

using namespace agingsim;

int main() {
  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist mult = build_column_bypass_multiplier(16);
  const double crit = critical_path_ps(mult, tech);

  Rng rng(0x4A20);
  const auto patterns = uniform_patterns(rng, 16, 4000);
  const auto trace = compute_op_trace(mult, tech, patterns);
  double max_delay = 0.0;
  for (const auto& op : trace) max_delay = std::max(max_delay, op.delay_ps);

  std::printf("16x16 CB: STA critical path %.2f ns, slowest observed "
              "pattern %.2f ns\n\n",
              crit / 1000.0, max_delay / 1000.0);
  std::printf("%-12s %-14s %-12s %-14s %-12s %s\n", "period(ns)",
              "one-cycle ops", "errors", "re-exec cost", "undetected",
              "avg latency(ns)");

  for (double frac = 1.0; frac >= 0.45; frac -= 0.05) {
    const double period = frac * crit;
    VlSystemConfig cfg;
    cfg.period_ps = period;
    cfg.ahl.width = 16;
    cfg.ahl.skip = 7;
    cfg.ahl.adaptive = false;  // keep the judging fixed so errors are visible
    VariableLatencySystem sys(mult, tech, cfg);
    const RunStats s = sys.run(trace);
    std::printf("%-12.2f %-14llu %-12llu %-14.1f%% %-12llu %.3f\n",
                period / 1000.0,
                static_cast<unsigned long long>(s.one_cycle_ops),
                static_cast<unsigned long long>(s.errors),
                s.ops ? 300.0 * static_cast<double>(s.errors) /
                            static_cast<double>(s.ops)
                      : 0.0,
                static_cast<unsigned long long>(s.undetected),
                s.avg_latency_ps / 1000.0);
  }

  std::printf(
      "\nEvery row with undetected = 0 is functionally correct: each Razor\n"
      "error re-executes the operation with two cycles, which always fits.\n"
      "The sweet spot is where (timing waste saved) > (re-execution paid) —\n"
      "the U-shape the paper's Figs. 13-15 sweep for.\n");
  return 0;
}
