// Quickstart: build the paper's proposed architecture — a 16x16
// column-bypassing multiplier wrapped in Razor flip-flops and Adaptive Hold
// Logic — run a random workload through it, and compare its average latency
// against the fixed-latency baselines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/workload/patterns.hpp"

using namespace agingsim;

int main() {
  // 1. A technology library. The calibrated library pins the 16x16
  //    column-bypassing critical path at the paper's 1.88 ns.
  const TechLibrary tech = calibrated_tech_library();

  // 2. Generate the multiplier netlist (gate-level, validated).
  const MultiplierNetlist cb16 = build_column_bypass_multiplier(16);
  std::printf("16x16 column-bypassing multiplier: %zu gates, %lld "
              "transistors, critical path %.2f ns\n",
              cb16.netlist.num_gates(),
              static_cast<long long>(cb16.netlist.transistor_count()),
              critical_path_ps(cb16, tech) / 1000.0);

  // 3. Simulate a workload at the gate level. The trace records each
  //    operation's true path delay and switching energy; every product is
  //    checked against a*b internally.
  Rng rng(42);
  const auto patterns = uniform_patterns(rng, 16, 5000);
  const auto trace = compute_op_trace(cb16, tech, patterns);

  // 4. The proposed system: Skip-7 judging, adaptive hold logic, Razor
  //    error detection, 0.9 ns cycle.
  VlSystemConfig cfg;
  cfg.period_ps = 900.0;
  cfg.ahl.width = 16;
  cfg.ahl.skip = 7;
  VariableLatencySystem proposed(cb16, tech, cfg);
  const RunStats vl = proposed.run(trace);

  // 5. Baseline: the same multiplier clocked at its critical path.
  FixedLatencySystem baseline(cb16, tech);
  const RunStats fl = baseline.run(trace, critical_path_ps(cb16, tech));

  std::printf("\nproposed A-VLCB @ 0.9 ns:\n");
  std::printf("  one-cycle ratio    %.1f%%\n", 100.0 * vl.one_cycle_ratio);
  std::printf("  Razor errors       %llu of %llu ops\n",
              static_cast<unsigned long long>(vl.errors),
              static_cast<unsigned long long>(vl.ops));
  std::printf("  avg latency        %.3f ns\n", vl.avg_latency_ps / 1000.0);
  std::printf("  avg power          %.2f mW\n", vl.avg_power_mw);
  std::printf("fixed-latency FLCB @ %.2f ns:\n", fl.period_ps / 1000.0);
  std::printf("  avg latency        %.3f ns\n", fl.avg_latency_ps / 1000.0);
  std::printf("  avg power          %.2f mW\n", fl.avg_power_mw);
  std::printf("\n=> %.1f%% latency reduction from variable latency.\n",
              100.0 * (1.0 - vl.avg_latency_ps / fl.avg_latency_ps));
  return 0;
}
