#include "src/adder/adder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

void check_adder_width(int width) {
  if (width < 2 || width > 63) {
    throw std::invalid_argument("adder width must be in [2, 63]");
  }
}

}  // namespace

AdderNetlist build_ripple_carry_adder(int width) {
  check_adder_width(width);
  NetlistBuilder nb;
  const auto a = nb.input_bus("a", width);
  const auto b = nb.input_bus("b", width);
  std::vector<NetId> sum;
  sum.reserve(static_cast<std::size_t>(width));
  NetId carry = nb.zero();
  for (int i = 0; i < width; ++i) {
    const AdderBits fa =
        nb.full_adder(a[static_cast<std::size_t>(i)],
                      b[static_cast<std::size_t>(i)], carry);
    sum.push_back(fa.sum);
    carry = fa.carry;
  }
  nb.output_bus("s", sum);
  nb.netlist().mark_output(carry, "cout");
  nb.netlist().validate();
  return AdderNetlist{std::move(nb.netlist()), width, 0, width, false};
}

namespace {

/// Per-bit generate/propagate terms over input buses.
void make_gp(NetlistBuilder& nb, const std::vector<NetId>& a,
             const std::vector<NetId>& b, std::vector<NetId>& g,
             std::vector<NetId>& p) {
  g.resize(a.size());
  p.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    g[i] = nb.and2(a[i], b[i]);
    p[i] = nb.xor2(a[i], b[i]);
  }
}

}  // namespace

AdderNetlist build_carry_lookahead_adder(int width) {
  check_adder_width(width);
  NetlistBuilder nb;
  const auto a = nb.input_bus("a", width);
  const auto b = nb.input_bus("b", width);
  std::vector<NetId> g, p;
  make_gp(nb, a, b, g, p);

  // 4-bit groups. The prefix generate/propagate terms (G_k, P_k) over the
  // group's low k bits are carry-in independent, so every carry in the
  // group — including the group's carry-out — is just G | (P & cin): two
  // gate levels past the incoming carry. The critical path therefore
  // advances a whole group per two gates instead of one bit per two gates.
  std::vector<NetId> c(static_cast<std::size_t>(width) + 1);
  c[0] = nb.zero();
  for (int base = 0; base < width; base += 4) {
    const int len = std::min(4, width - base);
    const NetId cin = c[static_cast<std::size_t>(base)];
    NetId big_g = kInvalidNet, big_p = kInvalidNet;
    for (int k = 1; k <= len; ++k) {
      const std::size_t i = static_cast<std::size_t>(base + k - 1);
      if (k == 1) {
        big_g = g[i];
        big_p = p[i];
      } else {
        big_g = nb.or2(g[i], nb.and2(p[i], big_g));
        big_p = nb.and2(p[i], big_p);
      }
      c[static_cast<std::size_t>(base + k)] =
          nb.or2(big_g, nb.and2(big_p, cin));
    }
  }

  std::vector<NetId> sum;
  sum.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    sum.push_back(nb.xor2(p[static_cast<std::size_t>(i)],
                          c[static_cast<std::size_t>(i)]));
  }
  nb.output_bus("s", sum);
  nb.netlist().mark_output(c[static_cast<std::size_t>(width)], "cout");
  nb.netlist().validate();
  return AdderNetlist{std::move(nb.netlist()), width, 0, width, false};
}

std::vector<NetId> kogge_stone_carries(NetlistBuilder& nb,
                                       std::span<const NetId> g,
                                       std::span<const NetId> p, NetId cin) {
  const std::size_t n = g.size();
  if (p.size() != n) {
    throw std::invalid_argument("kogge_stone_carries: g/p size mismatch");
  }
  // Prefix pairs (G, P): after the network, G[i] = "carry out of bits
  // 0..i assuming zero carry-in".
  std::vector<NetId> big_g(g.begin(), g.end());
  std::vector<NetId> big_p(p.begin(), p.end());
  for (std::size_t dist = 1; dist < n; dist *= 2) {
    std::vector<NetId> ng = big_g, np = big_p;
    for (std::size_t i = dist; i < n; ++i) {
      ng[i] = nb.or2(big_g[i], nb.and2(big_p[i], big_g[i - dist]));
      np[i] = nb.and2(big_p[i], big_p[i - dist]);
    }
    big_g = std::move(ng);
    big_p = std::move(np);
  }
  std::vector<NetId> c(n + 1);
  c[0] = cin;
  for (std::size_t i = 0; i < n; ++i) {
    // c[i+1] = G[0..i] | P[0..i] & cin
    c[i + 1] = nb.or2(big_g[i], nb.and2(big_p[i], cin));
  }
  return c;
}

AdderNetlist build_kogge_stone_adder(int width) {
  check_adder_width(width);
  NetlistBuilder nb;
  const auto a = nb.input_bus("a", width);
  const auto b = nb.input_bus("b", width);
  std::vector<NetId> g, p;
  make_gp(nb, a, b, g, p);
  const auto c = kogge_stone_carries(nb, g, p, nb.zero());
  std::vector<NetId> sum;
  sum.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    sum.push_back(nb.xor2(p[static_cast<std::size_t>(i)],
                          c[static_cast<std::size_t>(i)]));
  }
  nb.output_bus("s", sum);
  nb.netlist().mark_output(c[static_cast<std::size_t>(width)], "cout");
  nb.netlist().validate();
  return AdderNetlist{std::move(nb.netlist()), width, 0, width, false};
}

AdderNetlist build_variable_latency_rca(int width, int first_probe,
                                        int probe_bits) {
  check_adder_width(width);
  if (first_probe < 0 || probe_bits < 1 ||
      first_probe + probe_bits > width) {
    throw std::invalid_argument(
        "build_variable_latency_rca: probe window out of range");
  }
  AdderNetlist adder = build_ripple_carry_adder(width);
  // Re-derive the hold logic on top of the existing primary inputs. The
  // netlist exposes a[..] then b[..]; XOR the probed pairs and AND-reduce.
  Netlist& nl = adder.netlist;
  NetId hold = kInvalidNet;
  for (int k = 0; k < probe_bits; ++k) {
    const NetId ai =
        nl.input_nets()[static_cast<std::size_t>(first_probe + k)];
    const NetId bi = nl.input_nets()[static_cast<std::size_t>(
        width + first_probe + k)];
    const NetId x = nl.add_gate(CellKind::kXor2, {ai, bi});
    hold = (hold == kInvalidNet) ? x
                                 : nl.add_gate(CellKind::kAnd2, {hold, x});
  }
  nl.mark_output(hold, "hold");
  nl.validate();
  adder.has_hold = true;
  return adder;
}

std::uint64_t reference_add(std::uint64_t a, std::uint64_t b, int width) {
  check_adder_width(width);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  return (a & mask) + (b & mask);  // bit `width` is the carry-out
}

bool hold_predicate(std::uint64_t a, std::uint64_t b, int first_probe,
                    int probe_bits) {
  for (int k = 0; k < probe_bits; ++k) {
    const int bit = first_probe + k;
    if ((((a >> bit) ^ (b >> bit)) & 1) == 0) return false;
  }
  return true;
}

}  // namespace agingsim
