#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/builder.hpp"
#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Adder netlist generators. The ripple-carry adder plus hold logic
/// reproduces the paper's Section II-C motivating example (Fig. 4): an
/// 8-bit RCA whose hold logic (A4^B4)&(A5^B5) predicts whether the carry
/// chain can exceed five stages.
///
/// Primary inputs: a[0..width), b[0..width); outputs s[0..width) plus the
/// final carry `cout`. The variable-latency variant adds one more output,
/// `hold`, after the sum bits.
struct AdderNetlist {
  Netlist netlist;
  int width;
  int a_first_input;
  int b_first_input;
  bool has_hold = false;  ///< last output is the hold-logic signal
};

/// Plain ripple-carry adder: `width` full adders in a carry chain.
AdderNetlist build_ripple_carry_adder(int width);

/// Carry-lookahead adder with 4-bit groups: group generate/propagate terms
/// are two-level logic, so the carry chain advances four bits per
/// group-carry stage — a ~3x depth win over the RCA at moderate cost.
AdderNetlist build_carry_lookahead_adder(int width);

/// Kogge-Stone parallel-prefix adder: O(log width) depth carry network.
/// The fastest adder in the library; also used internally as the final
/// carry-propagate stage of the Wallace-tree multiplier.
AdderNetlist build_kogge_stone_adder(int width);

/// The paper's Fig. 4: a ripple-carry adder plus hold logic.
///
/// The hold function ANDs the XORs of `probe_bits` consecutive operand bit
/// pairs starting at `first_probe` (Fig. 4 uses bits 4 and 5 of an 8-bit
/// adder: (A4^B4)&(A5^B5)). hold = 1 means a carry could propagate through
/// every probed stage, i.e. the operation may need the long path and must
/// take two cycles; hold = 0 guarantees the carry chain breaks inside the
/// probed window, bounding the delay to roughly `first_probe + probe_bits`
/// stages.
AdderNetlist build_variable_latency_rca(int width, int first_probe,
                                        int probe_bits);

/// Golden reference (mod 2^width sum plus carry-out in bit `width`).
std::uint64_t reference_add(std::uint64_t a, std::uint64_t b, int width);

/// Builds a Kogge-Stone parallel-prefix carry network over per-bit
/// generate/propagate signals; returns carries c[0..width] with c[0] = cin.
/// Reused by build_kogge_stone_adder and the Wallace-tree multiplier's
/// final carry-propagate stage.
std::vector<NetId> kogge_stone_carries(NetlistBuilder& nb,
                                       std::span<const NetId> g,
                                       std::span<const NetId> p, NetId cin);

/// Behavioural hold-logic predicate matching the netlist's hold output.
bool hold_predicate(std::uint64_t a, std::uint64_t b, int first_probe,
                    int probe_bits);

}  // namespace agingsim
