#pragma once

#include <cstdint>

namespace agingsim {

/// Deterministic xoshiro256** PRNG (Blackman & Vigna). Self-contained so
/// every experiment in the repository is bit-reproducible across platforms
/// and standard-library versions (std::mt19937 streams are portable, but
/// distribution implementations are not).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform `width`-bit operand (width in [1, 64]).
  std::uint64_t next_bits(int width) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace agingsim
