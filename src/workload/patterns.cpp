#include "src/workload/patterns.hpp"

#include <bit>
#include <stdexcept>

namespace agingsim {

int count_zeros(std::uint64_t v, int width) noexcept {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return width - std::popcount(v & mask);
}

std::vector<OperandPattern> uniform_patterns(Rng& rng, int width,
                                             std::size_t count) {
  std::vector<OperandPattern> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.next_bits(width), rng.next_bits(width)});
  }
  return out;
}

std::uint64_t operand_with_zero_count(Rng& rng, int width, int zeros) {
  if (zeros < 0 || zeros > width) {
    throw std::invalid_argument("operand_with_zero_count: bad zero count");
  }
  // Start from all ones and knock out `zeros` distinct positions
  // (partial Fisher-Yates over bit indices).
  std::uint64_t v = width >= 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << width) - 1);
  int positions[64];
  for (int i = 0; i < width; ++i) positions[i] = i;
  for (int k = 0; k < zeros; ++k) {
    const int pick =
        k + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(width - k)));
    std::swap(positions[k], positions[pick]);
    v &= ~(std::uint64_t{1} << positions[k]);
  }
  return v;
}

std::vector<OperandPattern> patterns_with_multiplicand_zeros(
    Rng& rng, int width, int zeros, std::size_t count) {
  std::vector<OperandPattern> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(
        {operand_with_zero_count(rng, width, zeros), rng.next_bits(width)});
  }
  return out;
}

std::vector<OperandPattern> dsp_patterns(Rng& rng, int width,
                                         std::size_t count) {
  std::vector<OperandPattern> out;
  out.reserve(count);
  const std::uint64_t mask = (width >= 64)
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << width) - 1);
  // Random-walk signal confined to the low half of the range; coefficients
  // cycle through a small fixed bank, as a FIR kernel would.
  const std::uint64_t half_mask = mask >> (width / 2);
  std::uint64_t signal = rng.next_bits(width / 2);
  std::uint64_t coeffs[8];
  for (auto& c : coeffs) c = rng.next_bits(width);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t step = rng.next_below(1 + half_mask);
    signal = (rng.next() & 1) ? (signal + step) & half_mask
                              : (signal - step) & half_mask;
    out.push_back({signal, coeffs[i % 8]});
  }
  return out;
}

std::vector<OperandPattern> fir_tap_patterns(Rng& rng, int width,
                                             std::size_t count) {
  std::vector<OperandPattern> out;
  out.reserve(count);
  const std::uint64_t half_mask =
      (width >= 64 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << width) - 1)) >>
      (width / 2);
  // Band-limited signal: steps bounded to 1/16 of the signal range keep
  // consecutive samples close, as a low-pass-filtered input would. The
  // circuit is clocked faster than the sample rate (an oversampled MAC), so
  // each sample is held at the multiplier inputs for kHold operations.
  constexpr std::size_t kHold = 4;
  const std::uint64_t max_step = (half_mask >> 4) + 1;
  std::uint64_t signal = rng.next_bits(width / 2);
  const std::uint64_t coeff = rng.next_bits(width);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % kHold == 0) {
      const std::uint64_t step = rng.next_below(max_step);
      signal = (rng.next() & 1) ? (signal + step) & half_mask
                                : (signal - step) & half_mask;
    }
    out.push_back({signal, coeff});
  }
  return out;
}

}  // namespace agingsim
