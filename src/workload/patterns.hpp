#pragma once

#include <cstdint>
#include <vector>

#include "src/workload/rng.hpp"

namespace agingsim {

/// One multiplier operation: a = multiplicand, b = multiplicator.
struct OperandPattern {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Number of zero bits in the low `width` bits of `v` — the quantity the
/// AHL judging blocks count (paper Section III).
int count_zeros(std::uint64_t v, int width) noexcept;

/// `count` i.i.d. uniform operand pairs of the given width (the paper's
/// "randomly chosen input patterns").
std::vector<OperandPattern> uniform_patterns(Rng& rng, int width,
                                             std::size_t count);

/// A uniform random `width`-bit operand with exactly `zeros` zero bits
/// (used by the paper's Fig. 6: delay distribution under a fixed number of
/// zeros in the multiplicand).
std::uint64_t operand_with_zero_count(Rng& rng, int width, int zeros);

/// `count` pairs whose multiplicand has exactly `zeros` zero bits; the
/// multiplicator is uniform.
std::vector<OperandPattern> patterns_with_multiplicand_zeros(
    Rng& rng, int width, int zeros, std::size_t count);

/// A correlated, DSP-flavoured stream: a random-walk "signal" multiplied by
/// slowly rotating "coefficients". Exercises the examples with a workload
/// whose operands are not i.i.d. uniform (small signal magnitudes mean many
/// leading zeros, which is exactly where bypassing multipliers shine).
std::vector<OperandPattern> dsp_patterns(Rng& rng, int width,
                                         std::size_t count);

/// The stream one hardware FIR tap sees: the multiplicand is a band-limited
/// signal (bounded random walk confined to the low half of the range, small
/// sample-to-sample deltas), the multiplicator is that tap's *fixed*
/// coefficient. Few operand bits toggle per operation and the whole upper
/// half of the multiplicand stays zero, so large parts of a bypassing array
/// freeze — the low-activity regime the event-driven simulator kernel is
/// built for (and the paper's motivating use case).
std::vector<OperandPattern> fir_tap_patterns(Rng& rng, int width,
                                             std::size_t count);

}  // namespace agingsim
