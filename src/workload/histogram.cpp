#include "src/workload/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace agingsim {

Histogram::Histogram(double lo, double hi, int num_bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || num_bins < 1) {
    throw std::invalid_argument("Histogram: need hi > lo and num_bins >= 1");
  }
  counts_.assign(static_cast<std::size_t>(num_bins), 0);
}

void Histogram::add(double sample) noexcept {
  const int n = num_bins();
  int bin = static_cast<int>((sample - lo_) / (hi_ - lo_) *
                             static_cast<double>(n));
  bin = std::clamp(bin, 0, n - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  if (total_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++total_;
  sum_ += sample;
}

double Histogram::bin_lo(int bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(num_bins());
}

double Histogram::fraction_below(double x) const noexcept {
  if (total_ == 0) return 0.0;
  // Accumulate in double: the straddling bin contributes a fractional
  // count, and truncating it through an integer systematically under-counts
  // (a half-full straddle used to round down to whole samples).
  double below = 0.0;
  for (int b = 0; b < num_bins(); ++b) {
    if (bin_hi(b) <= x) {
      below += static_cast<double>(count(b));
    } else if (bin_lo(b) < x) {
      // Linear interpolation inside the straddling bin.
      const double frac = (x - bin_lo(b)) / (bin_hi(b) - bin_lo(b));
      below += frac * static_cast<double>(count(b));
    }
  }
  return below / static_cast<double>(total_);
}

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (int b = 0; b < num_bins(); ++b) {
    // Empty bins can never satisfy the rank: without this skip a target of
    // 0 (p = 0, or tiny p) returned bin_hi(0) even when bin 0 held no
    // samples — an answer below every sample in the histogram.
    if (count(b) == 0) continue;
    cum += static_cast<double>(count(b));
    if (cum >= target) return bin_hi(b);
  }
  return hi_;
}

std::string Histogram::render(int bar_width) const {
  std::uint64_t peak = 1;
  for (int b = 0; b < num_bins(); ++b) peak = std::max(peak, count(b));
  std::string out;
  char line[160];
  for (int b = 0; b < num_bins(); ++b) {
    const int bar = static_cast<int>(
        static_cast<double>(count(b)) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8llu |", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(count(b)));
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace agingsim
