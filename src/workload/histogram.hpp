#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agingsim {

/// Fixed-bin histogram used to regenerate the paper's delay-distribution
/// figures (Figs. 5, 6, 9, 10).
class Histogram {
 public:
  /// Bins span [lo, hi) uniformly; samples outside are clamped into the
  /// first/last bin so totals are preserved.
  Histogram(double lo, double hi, int num_bins);

  void add(double sample) noexcept;

  int num_bins() const noexcept { return static_cast<int>(counts_.size()); }
  std::uint64_t count(int bin) const noexcept {
    return counts_[static_cast<std::size_t>(bin)];
  }
  std::uint64_t total() const noexcept { return total_; }
  double bin_lo(int bin) const noexcept;
  double bin_hi(int bin) const noexcept { return bin_lo(bin + 1); }

  /// Fraction of samples strictly below `x` (bin-resolution accurate).
  double fraction_below(double x) const noexcept;

  /// Smallest value v such that at least `p` (in [0, 1]) of samples are
  /// <= v, reported at bin-upper-edge resolution. Empty bins are skipped,
  /// so the answer is always the upper edge of a bin that actually holds
  /// samples (p = 0 degenerates to the first non-empty bin's upper edge).
  double percentile(double p) const noexcept;

  double mean() const noexcept { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  double min_sample() const noexcept { return min_; }
  double max_sample() const noexcept { return max_; }

  /// Multi-line ASCII rendering: one row per bin with count and a bar.
  std::string render(int bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace agingsim
