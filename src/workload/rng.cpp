#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single word.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Debiased modulo (rejection from the top of the range).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_bits(int width) noexcept {
  const std::uint64_t r = next();
  return width >= 64 ? r : (r & ((std::uint64_t{1} << width) - 1));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace agingsim
