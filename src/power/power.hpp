#pragma once

#include <cstdint>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Constants of the power model. Values are representative 32 nm-class
/// numbers; the paper's power conclusions are all *relative* (AM largest,
/// fixed-latency bypassing smallest, power falls as the circuit ages), and
/// those orderings come from activity counts and Vth drift, not from the
/// absolute constants.
struct PowerParams {
  /// Subthreshold leakage per transistor at Vth0 and 125 C.
  double leak_per_transistor_nw = 1.5;
  /// Subthreshold swing factor: leakage scales by exp(-dVth / (n * vT)).
  double subthreshold_n = 1.5;
  /// Energy a plain D flip-flop draws per clock edge (clock + internal).
  double dff_energy_per_clock_fj = 1.1;
  /// Additional energy per captured data toggle.
  double dff_energy_per_toggle_fj = 0.9;
  /// Razor flip-flop per-clock energy ratio vs a plain DFF (shadow latch,
  /// delayed clock, XOR comparator — Razor paper reports ~1.5-2x).
  double razor_energy_ratio = 1.8;
};

/// Power/energy model over the gate-level activity numbers produced by
/// TimingSim plus the register-level activity produced by the system model
/// in src/core/.
class PowerModel {
 public:
  PowerModel(const TechLibrary& tech, PowerParams params = {});

  /// Dynamic energy (fJ) of switching `switched_cap_ff` femtofarads.
  double dynamic_energy_fj(double switched_cap_ff) const noexcept;

  /// Static leakage power (nW) of a netlist whose devices have drifted by
  /// `mean_dvth_v` on average. Higher Vth => exponentially less leakage;
  /// this is why the paper's measured power *decreases* over the 7 years.
  double leakage_power_nw(const Netlist& netlist,
                          double mean_dvth_v) const noexcept;

  /// Energy (fJ) of clocking `num_ffs` plain flip-flops once, of which
  /// `num_toggling` capture a changed value.
  double dff_bank_energy_fj(int num_ffs, int num_toggling) const noexcept;

  /// Same for Razor flip-flops (the output register of the proposed design).
  double razor_bank_energy_fj(int num_ffs, int num_toggling) const noexcept;

  const PowerParams& params() const noexcept { return params_; }
  const TechLibrary& tech() const noexcept { return *tech_; }

  /// Thermal voltage (V) at the library temperature.
  double thermal_voltage_v() const noexcept;

 private:
  const TechLibrary* tech_;
  PowerParams params_;
};

/// Energy-delay product from average power and latency:
/// EDP = (average energy per op) x (average latency) = P_avg * t^2.
/// Units: mW * ns^2 (arbitrary but consistent; every figure normalizes).
double energy_delay_product(double avg_power_mw, double avg_latency_ns) noexcept;

}  // namespace agingsim
