#include "src/power/power.hpp"

#include <cmath>

namespace agingsim {
namespace {

constexpr double kBoltzmannJPerK = 1.380649e-23;
constexpr double kElectronChargeC = 1.602177e-19;

}  // namespace

PowerModel::PowerModel(const TechLibrary& tech, PowerParams params)
    : tech_(&tech), params_(params) {}

double PowerModel::dynamic_energy_fj(double switched_cap_ff) const noexcept {
  // E = C * Vdd^2 (fF * V^2 = fJ). The usual 1/2 factor is folded into the
  // per-cell switched-capacitance constants.
  return switched_cap_ff * tech_->vdd_v * tech_->vdd_v;
}

double PowerModel::thermal_voltage_v() const noexcept {
  return kBoltzmannJPerK * tech_->temperature_k / kElectronChargeC;
}

double PowerModel::leakage_power_nw(const Netlist& netlist,
                                    double mean_dvth_v) const noexcept {
  const double scale =
      std::exp(-mean_dvth_v / (params_.subthreshold_n * thermal_voltage_v()));
  return static_cast<double>(netlist.transistor_count()) *
         params_.leak_per_transistor_nw * scale;
}

double PowerModel::dff_bank_energy_fj(int num_ffs,
                                      int num_toggling) const noexcept {
  return static_cast<double>(num_ffs) * params_.dff_energy_per_clock_fj +
         static_cast<double>(num_toggling) * params_.dff_energy_per_toggle_fj;
}

double PowerModel::razor_bank_energy_fj(int num_ffs,
                                        int num_toggling) const noexcept {
  return params_.razor_energy_ratio *
         dff_bank_energy_fj(num_ffs, num_toggling);
}

double energy_delay_product(double avg_power_mw,
                            double avg_latency_ns) noexcept {
  return avg_power_mw * avg_latency_ns * avg_latency_ns;
}

}  // namespace agingsim
