#pragma once

// Parallel sweep executor: a small std::jthread pool plus an index-ordered
// parallel-for helper. This is the fan-out layer for embarrassingly
// parallel sweeps — one simulator per period point, one simulator + fault
// overlay per campaign trial, one simulator per aging-year point — which
// the rest of the repo was already shaped for (shared netlists are never
// mutated; every simulator owns its own state).
//
// Determinism contract: parallel_for_indexed returns results keyed by
// index, never by completion order, so any run with any thread count
// produces byte-identical output as long as each f(i) is itself
// deterministic. AGINGSIM_THREADS=1 forces fully serial execution for CI
// determinism checks; see docs/PERF.md.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace agingsim::exec {

/// Number of execution lanes parallel regions use by default: the
/// AGINGSIM_THREADS environment variable when it parses to an integer >= 1
/// (1 = serial), otherwise std::thread::hardware_concurrency (minimum 1).
/// Read per call, so tests can flip the variable between regions.
int default_thread_count();

/// A fixed-size worker pool. `threads` counts execution lanes including the
/// calling thread, so ThreadPool(1) spawns nothing and runs inline and
/// ThreadPool(4) spawns three std::jthreads. Workers sleep between jobs.
class ThreadPool {
 public:
  explicit ThreadPool(int threads = default_thread_count());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (spawned workers + the calling thread).
  int thread_count() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Invokes fn(i) exactly once for every i in [0, n), distributed over the
  /// workers plus the calling thread, and blocks until all of them finished.
  /// Every index is attempted even if one throws; the first exception is
  /// rethrown after the region completes. Calls from inside a pool worker
  /// (nesting) run inline; concurrent calls from distinct external threads
  /// serialize. Indices are claimed dynamically, so callers must key any
  /// output by index, never by completion order.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;  // finished indices; guarded by mutex_
    int entered = 0;            // workers inside run_indices; guarded
    int exited = 0;             // workers done with run_indices; guarded
    std::exception_ptr error;   // first failure; guarded by mutex_
  };

  void worker_loop(std::stop_token stop);
  void run_indices(Job& job);

  std::mutex mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;           // guarded by mutex_
  std::uint64_t job_seq_ = 0;    // guarded by mutex_
  std::vector<std::jthread> workers_;
};

/// results[i] = f(i) for i in [0, n), computed on `pool` and returned in
/// index order regardless of scheduling. The result type must be
/// default-constructible.
template <typename F>
auto parallel_for_indexed(ThreadPool& pool, std::size_t n, F&& f)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
  std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> out(n);
  pool.for_each_index(n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

/// Convenience overload running on a one-shot pool sized by
/// default_thread_count() — i.e. honoring AGINGSIM_THREADS at every call.
template <typename F>
auto parallel_for_indexed(std::size_t n, F&& f) {
  ThreadPool pool;
  return parallel_for_indexed(pool, n, std::forward<F>(f));
}

}  // namespace agingsim::exec
