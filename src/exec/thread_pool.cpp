#include "src/exec/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace agingsim::exec {
namespace {

// Set while a thread is executing pool work; nested for_each_index calls
// from such a thread run inline instead of deadlocking on their own pool.
thread_local bool tls_in_pool_worker = false;

// One warning per distinct bad AGINGSIM_THREADS value — the variable is
// re-read at every parallel region, so warning unconditionally would spam
// a sweep with hundreds of identical lines.
void warn_threads_env_once(const char* env, const char* what) {
  static std::mutex mutex;
  static std::string last_warned;
  std::lock_guard lk(mutex);
  if (last_warned == env) return;
  last_warned = env;
  std::fprintf(stderr, "AGINGSIM_THREADS='%s' %s\n", env, what);
}

}  // namespace

int default_thread_count() {
  const auto hardware = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  };
  if (const char* env = std::getenv("AGINGSIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) {
      warn_threads_env_once(
          env, "is not a thread count >= 1; using hardware concurrency");
      return hardware();
    }
    if (v > 256) {
      warn_threads_env_once(env, "clamped to the 256-lane maximum");
      return 256;
    }
    return static_cast<int>(v);
  }
  return hardware();
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int t = 0; t < lanes - 1; ++t) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  // jthread destructors request_stop() and join; the stop token wakes any
  // worker sleeping in work_cv_.wait.
}

void ThreadPool::run_indices(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    std::exception_ptr err;
    try {
      (*job.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    bool all_done;
    {
      std::lock_guard lk(mutex_);
      if (err && !job.error) job.error = err;
      all_done = (++job.completed == job.n);
    }
    if (all_done) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::stop_token stop) {
  tls_in_pool_worker = true;
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lk(mutex_);
      work_cv_.wait(lk, stop, [&] {
        return job_ != nullptr && job_seq_ != seen_seq;
      });
      if (stop.stop_requested()) return;
      job = job_;
      seen_seq = job_seq_;
      ++job->entered;
    }
    run_indices(*job);
    bool quiescent;
    {
      std::lock_guard lk(mutex_);
      ++job->exited;
      quiescent = (job->exited == job->entered && job->completed == job->n);
    }
    if (quiescent) done_cv_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tls_in_pool_worker) {
    // Inline execution, same contract as the parallel path: every index is
    // attempted, the first exception is rethrown at the end.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::unique_lock lk(mutex_);
    // One job at a time; a second external submitter parks here until the
    // current job is fully retired.
    done_cv_.wait(lk, [&] { return job_ == nullptr; });
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  const bool was_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;  // make nested calls from fn run inline
  run_indices(job);
  tls_in_pool_worker = was_worker;

  {
    std::unique_lock lk(mutex_);
    // Wait for completion AND for every worker that grabbed the job pointer
    // to leave run_indices — `job` lives on this stack frame. Clearing job_
    // under the same lock guarantees no late worker can enter afterwards.
    done_cv_.wait(lk, [&] {
      return job.completed == job.n && job.entered == job.exited;
    });
    job_ = nullptr;
  }
  done_cv_.notify_all();
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace agingsim::exec
