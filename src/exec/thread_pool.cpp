#include "src/exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "src/core/env.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace agingsim::exec {
namespace {

// Set while a thread is executing pool work; nested for_each_index calls
// from such a thread run inline instead of deadlocking on their own pool.
thread_local bool tls_in_pool_worker = false;

// Jobs submitted by external callers currently waiting for or holding the
// pool — the "queue depth" a profiler wants. Process-wide on purpose: a
// sweep may drive several pools and the interesting number is total
// pressure, not per-instance.
std::atomic<std::int64_t> g_pending_jobs{0};

struct PoolMetrics {
  // pool.jobs / pool.indices count identically on the inline and parallel
  // paths, so their totals depend only on the submitted work — that is
  // what keeps 1-thread and 8-thread metric snapshots byte-identical.
  const obs::Counter& jobs = obs::counter("pool.jobs");
  const obs::Counter& indices = obs::counter("pool.indices");
  // Wall-time / occupancy metrics are scheduling-dependent by nature.
  const obs::Gauge& queue_depth =
      obs::gauge("pool.queue_depth", /*deterministic=*/false);
  const obs::Counter& busy_us =
      obs::counter("pool.worker_busy_us", /*deterministic=*/false);
};

const PoolMetrics& pool_metrics() {
  static const PoolMetrics m;
  return m;
}

}  // namespace

int default_thread_count() {
  const auto hardware = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  };
  // Strict parse with a once-per-value warning; values above the 256-lane
  // maximum come back clamped (src/core/env.hpp).
  if (const auto v = env::long_var("AGINGSIM_THREADS", 1, 256)) {
    return static_cast<int>(*v);
  }
  return hardware();
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int t = 0; t < lanes - 1; ++t) {
    workers_.emplace_back(
        [this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  // jthread destructors request_stop() and join; the stop token wakes any
  // worker sleeping in work_cv_.wait.
}

void ThreadPool::run_indices(Job& job) {
  const bool timed = obs::metrics_enabled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    std::exception_ptr err;
    try {
      (*job.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    bool all_done;
    {
      std::lock_guard lk(mutex_);
      if (err && !job.error) job.error = err;
      all_done = (++job.completed == job.n);
    }
    if (all_done) done_cv_.notify_all();
  }
  if (timed) {
    const auto busy = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    pool_metrics().busy_us.add(static_cast<std::uint64_t>(busy.count()));
  }
}

void ThreadPool::worker_loop(std::stop_token stop) {
  tls_in_pool_worker = true;
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lk(mutex_);
      work_cv_.wait(lk, stop, [&] {
        return job_ != nullptr && job_seq_ != seen_seq;
      });
      if (stop.stop_requested()) return;
      job = job_;
      seen_seq = job_seq_;
      ++job->entered;
    }
    {
      obs::TraceSpan span("pool.batch", job->n);
      run_indices(*job);
    }
    bool quiescent;
    {
      std::lock_guard lk(mutex_);
      ++job->exited;
      quiescent = (job->exited == job->entered && job->completed == job->n);
    }
    if (quiescent) done_cv_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Counted before the inline/parallel split so totals are identical for
  // every thread count.
  pool_metrics().jobs.add();
  pool_metrics().indices.add(n);
  obs::TraceSpan span("pool.job", n);
  if (workers_.empty() || n == 1 || tls_in_pool_worker) {
    // Inline execution, same contract as the parallel path: every index is
    // attempted, the first exception is rethrown at the end.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Maintained unconditionally (one relaxed RMW per parallel region) so a
  // mid-run enable never sees a skewed depth.
  pool_metrics().queue_depth.record(
      g_pending_jobs.fetch_add(1, std::memory_order_relaxed) + 1);

  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::unique_lock lk(mutex_);
    // One job at a time; a second external submitter parks here until the
    // current job is fully retired.
    done_cv_.wait(lk, [&] { return job_ == nullptr; });
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  const bool was_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;  // make nested calls from fn run inline
  run_indices(job);
  tls_in_pool_worker = was_worker;

  {
    std::unique_lock lk(mutex_);
    // Wait for completion AND for every worker that grabbed the job pointer
    // to leave run_indices — `job` lives on this stack frame. Clearing job_
    // under the same lock guarantees no late worker can enter afterwards.
    done_cv_.wait(lk, [&] {
      return job.completed == job.n && job.entered == job.exited;
    });
    job_ = nullptr;
  }
  done_cv_.notify_all();
  g_pending_jobs.fetch_sub(1, std::memory_order_relaxed);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace agingsim::exec
