#include <string>
#include <vector>

#include "src/lint/rule.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/workload/patterns.hpp"
#include "src/workload/rng.hpp"

namespace agingsim::lint {
namespace {

// ---------------------------------------------------------------------------
// consistency.functional — the generated netlist must compute a*b. Running
// the functional reference check as a lint rule puts generator bugs in the
// same report as structural and timing findings, so `aginglint` is a single
// gate for "this netlist is safe to ship".
// ---------------------------------------------------------------------------
class FunctionalConsistencyRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "consistency.functional";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kConsistency;
  }
  std::string_view description() const noexcept override {
    return "the netlist matches the golden multiply on corner and seeded "
           "random vectors";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.multiplier == nullptr) {
      out.push_back(Diagnostic{Severity::kInfo, std::string(id()),
                               "skipped: no multiplier metadata (arch/width/"
                               "operand layout unknown)",
                               kNoGate, kInvalidNet});
      return;
    }
    const MultiplierNetlist& mult = *ctx.multiplier;
    // Functional equivalence does not depend on delays, so any library
    // works; prefer the caller's to avoid surprises.
    const TechLibrary& tech = (ctx.timing != nullptr && ctx.timing->tech)
                                  ? *ctx.timing->tech
                                  : default_tech_library();
    const std::uint64_t max_operand =
        mult.width >= 64 ? ~0ULL : ((1ULL << mult.width) - 1);

    // Corner vectors first: all-ones flushes the power-up X state through
    // every bypass keeper, then the zero/one corners exercise full bypass.
    std::vector<OperandPattern> vectors{
        {max_operand, max_operand}, {0, 0},           {0, max_operand},
        {max_operand, 0},           {1, 1},           {1, max_operand},
        {max_operand, 1},           {max_operand, max_operand}};
    Rng rng(ctx.consistency.seed);
    const auto random_vectors =
        uniform_patterns(rng, mult.width, ctx.consistency.vectors);
    vectors.insert(vectors.end(), random_vectors.begin(),
                   random_vectors.end());

    MultiplierSim sim(mult, tech);
    constexpr std::size_t kMaxReported = 5;
    std::size_t mismatches = 0;
    for (const OperandPattern& v : vectors) {
      sim.apply(v.a, v.b);
      const std::uint64_t got = sim.product();
      const std::uint64_t want = reference_multiply(v.a, v.b, mult.width);
      if (got == want) continue;
      ++mismatches;
      if (mismatches <= kMaxReported) {
        out.push_back(Diagnostic{
            Severity::kError, std::string(id()),
            std::string(arch_name(mult.arch)) + std::to_string(mult.width) +
                " computes " + std::to_string(v.a) + " * " +
                std::to_string(v.b) + " = " + std::to_string(got) +
                ", golden reference says " + std::to_string(want),
            kNoGate, kInvalidNet});
      }
    }
    if (mismatches > kMaxReported) {
      out.push_back(Diagnostic{
          Severity::kError, std::string(id()),
          "... and " + std::to_string(mismatches - kMaxReported) +
              " further mismatching vectors (" + std::to_string(mismatches) +
              " of " + std::to_string(vectors.size()) + " total)",
          kNoGate, kInvalidNet});
    }
    if (mismatches == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: " + std::to_string(vectors.size()) +
              " vectors (8 corners + " +
              std::to_string(random_vectors.size()) +
              " seeded random) match the golden multiply",
          kNoGate, kInvalidNet});
    }
  }
};

}  // namespace

void register_consistency_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<FunctionalConsistencyRule>());
}

}  // namespace agingsim::lint
