#include "src/lint/diagnostic.hpp"

namespace agingsim::lint {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string describe_net(const Netlist& netlist, NetId net) {
  if (net >= netlist.num_nets()) {
    return "net " + std::to_string(net) + " (nonexistent)";
  }
  const auto inputs = netlist.input_nets();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == net) {
      return netlist.input_name(i) + " (net " + std::to_string(net) + ")";
    }
  }
  const auto outputs = netlist.output_nets();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i] == net) {
      return netlist.output_name(i) + " (net " + std::to_string(net) + ")";
    }
  }
  return "net " + std::to_string(net);
}

std::string describe_gate(const Netlist& netlist, GateId gate) {
  if (gate >= netlist.num_gates()) {
    return "gate " + std::to_string(gate) + " (nonexistent)";
  }
  const CellKind kind = netlist.gate(gate).kind;
  const std::string_view name = kind < CellKind::kCount
                                    ? cell_traits(kind).name
                                    : std::string_view("invalid-kind");
  return "gate " + std::to_string(gate) + " (" + std::string(name) + ")";
}

}  // namespace agingsim::lint
