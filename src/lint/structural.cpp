#include "src/lint/structural.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lint/rule.hpp"
#include "src/netlist/netlist.hpp"

namespace agingsim::lint {
namespace {

// ---------------------------------------------------------------------------
// Raw-safety helpers. Structural rules run over deliberately corrupted
// netlists (the fuzz suite uses NetlistSurgeon), so every array access is
// bounds-checked here instead of trusting the construction invariants the
// rules exist to re-prove.
// ---------------------------------------------------------------------------

bool kind_valid(const Gate& g) noexcept { return g.kind < CellKind::kCount; }

bool pins_in_bounds(const Netlist& nl, const Gate& g) noexcept {
  return g.in_begin <= nl.num_pins() &&
         g.in_count <= nl.num_pins() - g.in_begin;
}

/// True when every gate's pin window, pin value and output net are in range
/// and every registered output exists — the graph-walking warning rules
/// (observability, fanout) only run on netlists that pass this, since the
/// error rules have already reported the corruption.
bool graph_walk_safe(const Netlist& nl) {
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gt = nl.gate(g);
    if (!pins_in_bounds(nl, gt) || gt.out >= nl.num_nets()) return false;
    for (NetId in : nl.gate_inputs(g)) {
      if (in >= nl.num_nets()) return false;
    }
  }
  return std::all_of(nl.output_nets().begin(), nl.output_nets().end(),
                     [&](NetId o) { return o < nl.num_nets(); });
}

/// Per-net consumer (reader) counts over valid pins only.
std::vector<std::uint32_t> consumer_counts(const Netlist& nl) {
  std::vector<std::uint32_t> counts(nl.num_nets(), 0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gt = nl.gate(g);
    if (!pins_in_bounds(nl, gt)) continue;
    for (NetId in : nl.gate_inputs(g)) {
      if (in < nl.num_nets()) ++counts[in];
    }
  }
  return counts;
}

std::vector<std::uint8_t> output_net_mask(const Netlist& nl) {
  std::vector<std::uint8_t> is_output(nl.num_nets(), 0);
  for (NetId o : nl.output_nets()) {
    if (o < nl.num_nets()) is_output[o] = 1;
  }
  return is_output;
}

void emit(std::vector<Diagnostic>& out, Severity severity,
          std::string_view rule, std::string message, GateId gate = kNoGate,
          NetId net = kInvalidNet) {
  out.push_back(Diagnostic{severity, std::string(rule), std::move(message),
                           gate, net});
}

// ---------------------------------------------------------------------------
// structural.net-driver — the driver table is the netlist's ground truth
// (simulators index it directly); any inconsistency means gates read or
// write the wrong nets.
// ---------------------------------------------------------------------------
class NetDriverRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.net-driver";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "every net has exactly one driver and the driver table matches "
           "the gate list";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    if (nl.num_nets() != nl.num_inputs() + nl.num_gates()) {
      emit(out, Severity::kError, id(),
           "net/driver bookkeeping mismatch: " + std::to_string(nl.num_nets()) +
               " nets != " + std::to_string(nl.num_inputs()) + " inputs + " +
               std::to_string(nl.num_gates()) + " gates");
    }
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      const std::int32_t d = nl.driver_of(n);
      if (d < -1 || d >= static_cast<std::int32_t>(nl.num_gates())) {
        emit(out, Severity::kError, id(),
             describe_net(nl, n) + " names nonexistent driver gate " +
                 std::to_string(d),
             kNoGate, n);
      } else if (d >= 0 && nl.gate(static_cast<GateId>(d)).out != n) {
        emit(out, Severity::kError, id(),
             describe_net(nl, n) + " claims driver " +
                 describe_gate(nl, static_cast<GateId>(d)) +
                 ", but that gate drives " +
                 describe_net(nl, nl.gate(static_cast<GateId>(d)).out) +
                 " (duplicated or stolen driver)",
             static_cast<GateId>(d), n);
      }
    }
    for (NetId in : nl.input_nets()) {
      if (in < nl.num_nets() && nl.driver_of(in) != -1) {
        emit(out, Severity::kError, id(),
             "primary input " + describe_net(nl, in) +
                 " has a gate driver (driver " +
                 std::to_string(nl.driver_of(in)) + ")",
             kNoGate, in);
      }
    }
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const NetId o = nl.gate(g).out;
      if (o >= nl.num_nets()) {
        emit(out, Severity::kError, id(),
             describe_gate(nl, g) + " drives nonexistent " +
                 describe_net(nl, o),
             g, o);
      } else if (nl.driver_of(o) != static_cast<std::int32_t>(g)) {
        emit(out, Severity::kError, id(),
             describe_gate(nl, g) + " believes it drives " +
                 describe_net(nl, o) + ", whose registered driver is gate " +
                 std::to_string(nl.driver_of(o)),
             g, o);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.cell-kind — a gate whose kind is outside the cell library
// cannot be evaluated (traits/delay lookups would read out of bounds).
// ---------------------------------------------------------------------------
class CellKindRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.cell-kind";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "every gate's cell kind is a valid library cell";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      if (!kind_valid(nl.gate(g))) {
        emit(out, Severity::kError, id(),
             "gate " + std::to_string(g) + " has invalid cell kind " +
                 std::to_string(static_cast<int>(nl.gate(g).kind)),
             g);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.pin-arity — pin windows must match the cell's arity and point
// at existing nets; a dropped or rewired pin changes the computed function.
// ---------------------------------------------------------------------------
class PinArityRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.pin-arity";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "every gate has its cell's pin count and all pins name existing "
           "nets";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gt = nl.gate(g);
      if (!pins_in_bounds(nl, gt)) {
        emit(out, Severity::kError, id(),
             describe_gate(nl, g) + " pin window [" +
                 std::to_string(gt.in_begin) + ", " +
                 std::to_string(gt.in_begin + gt.in_count) +
                 ") exceeds the pin array (" + std::to_string(nl.num_pins()) +
                 " pins)",
             g);
        continue;
      }
      if (kind_valid(gt) &&
          gt.in_count != cell_traits(gt.kind).num_inputs) {
        emit(out, Severity::kError, id(),
             describe_gate(nl, g) + " has " + std::to_string(gt.in_count) +
                 " pins, cell expects " +
                 std::to_string(cell_traits(gt.kind).num_inputs),
             g);
      }
      for (NetId in : nl.gate_inputs(g)) {
        if (in >= nl.num_nets()) {
          emit(out, Severity::kError, id(),
               describe_gate(nl, g) + " reads nonexistent " +
                   describe_net(nl, in),
               g, in);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.topo-order — gate ids must be a topological order (inputs
// strictly earlier than outputs); the simulators' single forward pass and
// the acyclicity guarantee both rest on it.
// ---------------------------------------------------------------------------
class TopoOrderRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.topo-order";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "every gate input is topologically earlier than its output "
           "(acyclicity)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gt = nl.gate(g);
      if (!pins_in_bounds(nl, gt)) continue;  // pin-arity reports this
      for (NetId in : nl.gate_inputs(g)) {
        if (in < nl.num_nets() && in >= gt.out) {
          emit(out, Severity::kError, id(),
               describe_gate(nl, g) + " reads " + describe_net(nl, in) +
                   ", which is not earlier than its output " +
                   describe_net(nl, gt.out) +
                   " (cycle or forward reference)",
               g, in);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.output-dangling / structural.output-duplicate — the primary
// output table is what Razor banks, golden checks and output_bits() read.
// ---------------------------------------------------------------------------
class OutputDanglingRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.output-dangling";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "every registered primary output names an existing net";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      if (o >= nl.num_nets()) {
        emit(out, Severity::kError, id(),
             "primary output " + nl.output_name(i) + " (index " +
                 std::to_string(i) + ") names nonexistent net " +
                 std::to_string(o),
             kNoGate, o);
      }
    }
  }
};

class OutputDuplicateRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.output-duplicate";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "no net or name is registered as a primary output twice";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    std::unordered_map<NetId, std::size_t> first_by_net;
    std::unordered_map<std::string, std::size_t> first_by_name;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      if (auto [it, inserted] = first_by_net.try_emplace(o, i); !inserted) {
        emit(out, Severity::kError, id(),
             describe_net(nl, o) + " is registered as both output " +
                 nl.output_name(it->second) + " and output " +
                 nl.output_name(i),
             kNoGate, o);
      }
      if (auto [it, inserted] = first_by_name.try_emplace(nl.output_name(i), i);
          !inserted) {
        emit(out, Severity::kError, id(),
             "output name " + nl.output_name(i) +
                 " is registered twice (indices " +
                 std::to_string(it->second) + " and " + std::to_string(i) +
                 ")",
             kNoGate, o < nl.num_nets() ? o : kInvalidNet);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.fanout-free-net / structural.unobservable-gate /
// structural.unused-input — logic no primary output can see. Warnings, not
// errors: generators legitimately leave dead carries (the Wallace tree's
// folded columns), but each one is wasted area/power worth knowing about.
// ---------------------------------------------------------------------------
class FanoutFreeNetRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.fanout-free-net";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "gate-driven nets that feed nothing and are not outputs (dead "
           "logic, wasted area)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    if (!graph_walk_safe(nl)) return;
    const auto consumers = consumer_counts(nl);
    const auto is_output = output_net_mask(nl);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const NetId o = nl.gate(g).out;
      if (consumers[o] == 0 && !is_output[o]) {
        emit(out, Severity::kWarning, id(),
             describe_gate(nl, g) + " drives " + describe_net(nl, o) +
                 ", which has no consumers and is not a primary output",
             g, o);
      }
    }
  }
};

class UnobservableGateRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.unobservable-gate";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "gates with consumers but no path to any primary output";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    if (!graph_walk_safe(nl)) return;
    // Reverse reachability in one backward pass: gate ids are topological,
    // so scanning gates in descending id order propagates observability
    // from the outputs through every path.
    std::vector<std::uint8_t> observable = output_net_mask(nl);
    for (std::size_t gi = nl.num_gates(); gi-- > 0;) {
      const GateId g = static_cast<GateId>(gi);
      if (!observable[nl.gate(g).out]) continue;
      for (NetId in : nl.gate_inputs(g)) observable[in] = 1;
    }
    const auto consumers = consumer_counts(nl);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const NetId o = nl.gate(g).out;
      // Zero-consumer dead ends are fanout-free-net findings; this rule
      // flags the cones feeding them.
      if (!observable[o] && consumers[o] != 0) {
        emit(out, Severity::kWarning, id(),
             describe_gate(nl, g) + " drives " + describe_net(nl, o) +
                 ", which reaches no primary output",
             g, o);
      }
    }
  }
};

class UnusedInputRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.unused-input";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "primary inputs nothing reads (operand bit dropped by a "
           "generator)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    if (!graph_walk_safe(nl)) return;
    const auto consumers = consumer_counts(nl);
    const auto is_output = output_net_mask(nl);
    for (NetId in : nl.input_nets()) {
      if (consumers[in] == 0 && !is_output[in]) {
        emit(out, Severity::kWarning, id(),
             "primary input " + describe_net(nl, in) +
                 " is read by nothing and is not an output",
             kNoGate, in);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// structural.bypass-exclusivity — the bypass machinery of the column-/row-
// bypassing cells only saves power and keeps arithmetic correct when its
// pins are genuinely exclusive: a MUX whose data pins alias computes the
// same value for either select (the generator should have folded it away,
// and a miswired bypass looks exactly like this), and a tri-state buffer
// gated by its own data pin can never hold independent state.
// ---------------------------------------------------------------------------
class BypassExclusivityRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "structural.bypass-exclusivity";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kStructural;
  }
  std::string_view description() const noexcept override {
    return "bypass MUX/tri-state pins are mutually exclusive (no aliased "
           "data or select pins)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    const Netlist& nl = *ctx.netlist;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gt = nl.gate(g);
      if (!kind_valid(gt) || !pins_in_bounds(nl, gt)) continue;
      const auto in = nl.gate_inputs(g);
      if (gt.kind == CellKind::kMux2 && in.size() == 3) {
        if (in[0] == in[1]) {
          emit(out, Severity::kWarning, id(),
               describe_gate(nl, g) + " selects between aliased data pins (" +
                   describe_net(nl, in[0]) +
                   " twice): select-independent, miswired or unfolded bypass",
               g, in[0]);
        } else if (in[2] == in[0] || in[2] == in[1]) {
          emit(out, Severity::kWarning, id(),
               describe_gate(nl, g) + " select pin " + describe_net(nl, in[2]) +
                   " aliases a data pin",
               g, in[2]);
        }
      }
      if (gt.kind == CellKind::kTbuf && in.size() == 2 && in[0] == in[1]) {
        emit(out, Severity::kWarning, id(),
             describe_gate(nl, g) + " enable pin aliases its data pin (" +
                 describe_net(nl, in[0]) + "): keeper can never isolate",
             g, in[0]);
      }
    }
  }
};

}  // namespace

void register_structural_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<NetDriverRule>());
  registry.add(std::make_unique<CellKindRule>());
  registry.add(std::make_unique<PinArityRule>());
  registry.add(std::make_unique<TopoOrderRule>());
  registry.add(std::make_unique<OutputDanglingRule>());
  registry.add(std::make_unique<OutputDuplicateRule>());
  registry.add(std::make_unique<FanoutFreeNetRule>());
  registry.add(std::make_unique<UnobservableGateRule>());
  registry.add(std::make_unique<UnusedInputRule>());
  registry.add(std::make_unique<BypassExclusivityRule>());
}

std::vector<Diagnostic> structural_diagnostics(const Netlist& netlist) {
  RuleRegistry registry;
  register_structural_rules(registry);
  LintContext ctx;
  ctx.netlist = &netlist;
  std::vector<Diagnostic> out;
  for (const auto& rule : registry.rules()) rule->run(ctx, out);
  return out;
}

}  // namespace agingsim::lint
