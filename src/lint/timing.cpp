#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/lint/rule.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/sta.hpp"

namespace agingsim::lint {
namespace {

std::string fmt_ps(double ps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f ps", ps);
  return buf;
}

std::string fmt_years(double years) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", years);
  return buf;
}

/// Shared preconditions of the timing rules. Emits an info diagnostic
/// naming the missing piece so the report records *why* a rule did not run.
bool timing_ready(const LintContext& ctx, std::string_view rule_id,
                  std::vector<Diagnostic>& out) {
  const char* missing = nullptr;
  if (ctx.timing == nullptr) {
    missing = "no timing context";
  } else if (ctx.timing->tech == nullptr) {
    missing = "no technology library";
  } else if (ctx.timing->period_ps <= 0.0) {
    missing = "no clock period";
  } else if (ctx.netlist->num_outputs() == 0) {
    missing = "netlist has no primary outputs";
  }
  if (missing != nullptr) {
    out.push_back(Diagnostic{Severity::kInfo, std::string(rule_id),
                             std::string("skipped: ") + missing, kNoGate,
                             kInvalidNet});
    return false;
  }
  return true;
}

/// Worst (latest) year of the sweep; 0 when there is no aging model, since
/// every year then shares the fresh delays.
double worst_year(const TimingContext& timing) {
  if (timing.aging == nullptr || timing.sweep_years.empty()) return 0.0;
  return *std::max_element(timing.sweep_years.begin(),
                           timing.sweep_years.end());
}

StaResult aged_sta(const Netlist& nl, const TimingContext& timing,
                   double years) {
  if (timing.aging == nullptr) return run_sta(nl, *timing.tech);
  const std::vector<double> scales = timing.aging->delay_scales_at(years);
  return run_sta(nl, *timing.tech, scales);
}

// ---------------------------------------------------------------------------
// timing.razor-coverage — the paper's central safety invariant: any output
// whose worst-case (aged) arrival can exceed one clock period must be
// captured by a Razor flip-flop, or a mispredicted one-cycle issue commits
// a wrong product with no error signal.
// ---------------------------------------------------------------------------
class RazorCoverageRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "timing.razor-coverage";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "every output whose aged worst path exceeds T_clk is "
           "Razor-protected";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const double years = worst_year(timing);
    const StaResult sta = aged_sta(nl, timing, years);

    std::size_t can_exceed = 0;
    std::size_t uncovered = 0;
    double worst_ps = 0.0;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      const double arrival = sta.arrival_ps[o];
      worst_ps = std::max(worst_ps, arrival);
      if (arrival <= timing.period_ps) continue;
      ++can_exceed;
      if (!timing.output_protected(i)) {
        ++uncovered;
        out.push_back(Diagnostic{
            Severity::kError, std::string(id()),
            "output " + nl.output_name(i) + " worst aged arrival " +
                fmt_ps(arrival) + " (year " + fmt_years(years) +
                ") exceeds T_clk = " + fmt_ps(timing.period_ps) +
                " but is not Razor-protected: a late settle commits "
                "silently",
            kNoGate, o});
      }
    }
    if (uncovered == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: " + std::to_string(can_exceed) + " of " +
              std::to_string(nl.num_outputs()) +
              " outputs can exceed T_clk = " + fmt_ps(timing.period_ps) +
              " at year " + fmt_years(years) + " (worst " + fmt_ps(worst_ps) +
              "); all are Razor-protected",
          kNoGate, kInvalidNet});
    }
  }
};

// ---------------------------------------------------------------------------
// timing.shadow-window — Razor only recovers violations the shadow latch
// still captures correctly. A protected output whose aged arrival lands
// beyond the shadow window is a violation Razor *cannot* detect, which the
// repo's RunStats counts as `undetected` — statically that must be
// impossible.
// ---------------------------------------------------------------------------
class ShadowWindowRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "timing.shadow-window";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "no aged path can settle beyond the Razor shadow window "
           "(undetectable violation)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const double years = worst_year(timing);
    const StaResult sta = aged_sta(nl, timing, years);
    const double window_ps =
        timing.period_ps * (1.0 + timing.razor.shadow_window_cycles);

    std::size_t beyond = 0;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      const double arrival = sta.arrival_ps[o];
      // Unprotected late outputs are razor-coverage errors; this rule owns
      // the protected-but-unrecoverable case.
      if (arrival <= window_ps || !timing.output_protected(i)) continue;
      ++beyond;
      out.push_back(Diagnostic{
          Severity::kError, std::string(id()),
          "output " + nl.output_name(i) + " worst aged arrival " +
              fmt_ps(arrival) + " (year " + fmt_years(years) +
              ") lands beyond the Razor shadow window " + fmt_ps(window_ps) +
              ": the violation is undetectable even with Razor",
          kNoGate, o});
    }
    if (beyond == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: every aged output arrival fits the Razor shadow window " +
              fmt_ps(window_ps),
          kNoGate, kInvalidNet});
    }
  }
};

// ---------------------------------------------------------------------------
// timing.hold-count — the AHL can stretch an operation to at most
// `max_hold_cycles` cycles; the statically computed aged critical path must
// fit that budget at *every* point of the scenario sweep, or the
// variable-latency guarantee ("every path fits in two cycles") breaks as
// the silicon ages.
// ---------------------------------------------------------------------------
class HoldCountRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "timing.hold-count"; }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "the aged critical path fits the AHL hold-cycle budget across "
           "the scenario sweep";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const double budget_ps = timing.period_ps * timing.max_hold_cycles;

    std::vector<double> years = timing.sweep_years;
    if (years.empty() || timing.aging == nullptr) years = {0.0};
    std::sort(years.begin(), years.end());

    double first_bad_year = -1.0;
    double worst_crit = 0.0;
    double worst_crit_year = 0.0;
    for (const double y : years) {
      const double crit = aged_sta(nl, timing, y).critical_path_ps;
      if (crit > worst_crit) {
        worst_crit = crit;
        worst_crit_year = y;
      }
      if (crit > budget_ps && first_bad_year < 0.0) first_bad_year = y;
    }

    if (first_bad_year >= 0.0) {
      out.push_back(Diagnostic{
          Severity::kError, std::string(id()),
          "aged critical path " + fmt_ps(worst_crit) + " (year " +
              fmt_years(worst_crit_year) + ", first violation at year " +
              fmt_years(first_bad_year) + ") exceeds the AHL hold budget " +
              std::to_string(timing.max_hold_cycles) + " x T_clk = " +
              fmt_ps(budget_ps) +
              ": a held operation can still miss its deadline",
          kNoGate, kInvalidNet});
    } else {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: critical path stays within the hold budget " +
              std::to_string(timing.max_hold_cycles) + " x T_clk = " +
              fmt_ps(budget_ps) + " across " + std::to_string(years.size()) +
              " sweep points (worst " + fmt_ps(worst_crit) + " at year " +
              fmt_years(worst_crit_year) + ", margin " +
              fmt_ps(budget_ps - worst_crit) + ")",
          kNoGate, kInvalidNet});
    }
  }
};

}  // namespace

void register_timing_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<RazorCoverageRule>());
  registry.add(std::make_unique<ShadowWindowRule>());
  registry.add(std::make_unique<HoldCountRule>());
}

}  // namespace agingsim::lint
