#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/aging/scenario.hpp"
#include "src/lint/rule.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/sta.hpp"

namespace agingsim::lint {
namespace {

std::string fmt_ps(double ps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f ps", ps);
  return buf;
}

std::string fmt_years(double years) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", years);
  return buf;
}

/// Shared preconditions of the timing rules. Emits an info diagnostic
/// naming the missing piece so the report records *why* a rule did not run.
bool timing_ready(const LintContext& ctx, std::string_view rule_id,
                  std::vector<Diagnostic>& out) {
  const char* missing = nullptr;
  if (ctx.timing == nullptr) {
    missing = "no timing context";
  } else if (ctx.timing->tech == nullptr) {
    missing = "no technology library";
  } else if (ctx.timing->period_ps <= 0.0) {
    missing = "no clock period";
  } else if (ctx.netlist->num_outputs() == 0) {
    missing = "netlist has no primary outputs";
  }
  if (missing != nullptr) {
    out.push_back(Diagnostic{Severity::kInfo, std::string(rule_id),
                             std::string("skipped: ") + missing, kNoGate,
                             kInvalidNet});
    return false;
  }
  return true;
}

/// One multi-corner min/max pass over the whole sweep. Every timing rule
/// reads the same result, so setup and hold verdicts are provably computed
/// from identical arrival planes.
MinMaxStaResult sweep_sta(const Netlist& nl, const TimingContext& timing) {
  const StaEngine engine(nl, *timing.tech);
  const std::vector<StaCorner> corners = aging_corners(nl, timing);
  return engine.run(corners);
}

// ---------------------------------------------------------------------------
// timing.razor-coverage — the paper's central safety invariant: any output
// whose worst-case (aged) arrival can exceed one clock period must be
// captured by a Razor flip-flop, or a mispredicted one-cycle issue commits
// a wrong product with no error signal.
// ---------------------------------------------------------------------------
class RazorCoverageRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "timing.razor-coverage";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "every output whose aged worst path exceeds T_clk is "
           "Razor-protected";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const MinMaxStaResult sta = sweep_sta(nl, timing);

    std::size_t can_exceed = 0;
    std::size_t uncovered = 0;
    double worst_ps = 0.0;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      // Worst arrival over the whole sweep (aging is monotone, but the rule
      // does not rely on that — every corner is checked).
      double arrival = 0.0;
      const CornerTiming* at = nullptr;
      for (const CornerTiming& c : sta.corners) {
        if (c.max_arrival_ps[o] >= arrival) {
          arrival = c.max_arrival_ps[o];
          at = &c;
        }
      }
      worst_ps = std::max(worst_ps, arrival);
      if (arrival <= timing.period_ps) continue;
      ++can_exceed;
      if (!timing.output_protected(i)) {
        ++uncovered;
        out.push_back(Diagnostic{
            Severity::kError, std::string(id()),
            "output " + nl.output_name(i) + " worst aged arrival " +
                fmt_ps(arrival) + " (" + at->name +
                ") exceeds T_clk = " + fmt_ps(timing.period_ps) +
                " but is not Razor-protected: a late settle commits "
                "silently",
            kNoGate, o});
      }
    }
    if (uncovered == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: " + std::to_string(can_exceed) + " of " +
              std::to_string(nl.num_outputs()) +
              " outputs can exceed T_clk = " + fmt_ps(timing.period_ps) +
              " across " + std::to_string(sta.corners.size()) +
              " corners (worst " + fmt_ps(worst_ps) +
              "); all are Razor-protected",
          kNoGate, kInvalidNet});
    }
  }
};

// ---------------------------------------------------------------------------
// timing.shadow-window — Razor only recovers violations the shadow latch
// still captures correctly. A protected output whose aged arrival lands
// beyond the shadow window is a violation Razor *cannot* detect, which the
// repo's RunStats counts as `undetected` — statically that must be
// impossible.
// ---------------------------------------------------------------------------
class ShadowWindowRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "timing.shadow-window";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "no aged path can settle beyond the Razor shadow window "
           "(undetectable violation)";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const MinMaxStaResult sta = sweep_sta(nl, timing);
    const double window_ps =
        timing.period_ps * (1.0 + timing.razor.shadow_window_cycles);

    std::size_t beyond = 0;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      const NetId o = nl.output_nets()[i];
      // Unprotected late outputs are razor-coverage errors; this rule owns
      // the protected-but-unrecoverable case.
      if (!timing.output_protected(i)) continue;
      for (const CornerTiming& c : sta.corners) {
        const double arrival = c.max_arrival_ps[o];
        if (arrival <= window_ps) continue;
        ++beyond;
        out.push_back(Diagnostic{
            Severity::kError, std::string(id()),
            "output " + nl.output_name(i) + " worst aged arrival " +
                fmt_ps(arrival) + " (" + c.name +
                ") lands beyond the Razor shadow window " + fmt_ps(window_ps) +
                ": the violation is undetectable even with Razor",
            kNoGate, o});
        break;  // one diagnostic per output, at its first failing corner
      }
    }
    if (beyond == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: every aged output arrival fits the Razor shadow window " +
              fmt_ps(window_ps),
          kNoGate, kInvalidNet});
    }
  }
};

// ---------------------------------------------------------------------------
// timing.hold-count — the AHL can stretch an operation to at most
// `max_hold_cycles` cycles; the statically computed aged critical path must
// fit that budget at *every* corner of the scenario sweep, or the
// variable-latency guarantee ("every path fits in two cycles") breaks as
// the silicon ages.
// ---------------------------------------------------------------------------
class HoldCountRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "timing.hold-count"; }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "the aged critical path fits the AHL hold-cycle budget across "
           "the scenario sweep";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    const double budget_ps = timing.period_ps * timing.max_hold_cycles;
    const MinMaxStaResult sta = sweep_sta(nl, timing);

    const CornerTiming* first_bad = nullptr;
    const CornerTiming* worst = nullptr;
    for (const CornerTiming& c : sta.corners) {
      if (worst == nullptr || c.critical_path_ps > worst->critical_path_ps) {
        worst = &c;
      }
      if (c.critical_path_ps > budget_ps && first_bad == nullptr) {
        first_bad = &c;
      }
    }

    if (first_bad != nullptr) {
      out.push_back(Diagnostic{
          Severity::kError, std::string(id()),
          "aged critical path " + fmt_ps(worst->critical_path_ps) + " (" +
              worst->name + ", first violation at " + first_bad->name +
              ") exceeds the AHL hold budget " +
              std::to_string(timing.max_hold_cycles) + " x T_clk = " +
              fmt_ps(budget_ps) +
              ": a held operation can still miss its deadline",
          kNoGate, kInvalidNet});
    } else {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: critical path stays within the hold budget " +
              std::to_string(timing.max_hold_cycles) + " x T_clk = " +
              fmt_ps(budget_ps) + " across " +
              std::to_string(sta.corners.size()) + " corners (worst " +
              fmt_ps(worst->critical_path_ps) + " at " + worst->name +
              ", margin " + fmt_ps(budget_ps - worst->critical_path_ps) + ")",
          kNoGate, kInvalidNet});
    }
  }
};

// ---------------------------------------------------------------------------
// timing.hold-window — the min-path dual of timing.shadow-window. The shadow
// latch samples a Razor-protected output W = shadow_window_cycles x T_clk
// after the main capture edge, which is exactly when the *next* operation has
// been computing for W. If any min-corner arrival of a protected output is
// below W (+ margin), the next operation's data races through the short path
// and tramples the shadow capture — Razor then compares the main flop against
// garbage, so a real late settle can be "confirmed" correct. The legacy
// max-only rules are structurally blind to this: it is a failure of the
// *earliest* arrival, and (per the StaEngine min-plane contract) tri-state
// bypass enables make real short paths even shorter than an always-enabled
// reading admits.
//
// Gated behind TimingContext::check_hold because bare generated multipliers
// genuinely violate it (p[0] is a single AND gate); the hold-repair pass
// (src/lint/repair.hpp) exists to make designs pass this rule.
// ---------------------------------------------------------------------------
class HoldWindowRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "timing.hold-window";
  }
  RuleCategory category() const noexcept override {
    return RuleCategory::kTiming;
  }
  std::string_view description() const noexcept override {
    return "no Razor-protected output's earliest (min-corner) arrival falls "
           "inside the shadow sampling window";
  }
  void run(const LintContext& ctx, std::vector<Diagnostic>& out) const override {
    if (!timing_ready(ctx, id(), out)) return;
    const Netlist& nl = *ctx.netlist;
    const TimingContext& timing = *ctx.timing;
    if (!timing.check_hold) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "skipped: hold analysis disabled (enable with "
          "TimingContext::check_hold / aginglint --hold)",
          kNoGate, kInvalidNet});
      return;
    }
    const MinMaxStaResult sta = sweep_sta(nl, timing);
    const double window_ps =
        timing.period_ps * timing.razor.shadow_window_cycles;
    const double required_ps = window_ps + timing.hold_margin_ps;

    std::size_t violating = 0;
    std::size_t protected_outputs = 0;
    double tightest = 0.0;
    bool have_margin = false;
    for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
      if (!timing.output_protected(i)) continue;
      ++protected_outputs;
      const NetId o = nl.output_nets()[i];
      for (const CornerTiming& c : sta.corners) {
        const double arrival = c.min_arrival_ps[o];
        if (arrival < required_ps) {
          ++violating;
          out.push_back(Diagnostic{
              Severity::kError, std::string(id()),
              "output " + nl.output_name(i) + " earliest arrival " +
                  fmt_ps(arrival) + " (" + c.name +
                  ") falls inside the shadow sampling window " +
                  fmt_ps(window_ps) + " + margin " +
                  fmt_ps(timing.hold_margin_ps) +
                  ": the next operation's short path overwrites the shadow "
                  "capture before it samples, making real violations "
                  "undetectable",
              kNoGate, o});
          break;  // one diagnostic per output, at its first failing corner
        }
        const double margin = arrival - required_ps;
        if (!have_margin || margin < tightest) {
          tightest = margin;
          have_margin = true;
        }
      }
    }
    if (violating == 0) {
      out.push_back(Diagnostic{
          Severity::kInfo, std::string(id()),
          "proved: all " + std::to_string(protected_outputs) +
              " Razor-protected outputs clear the shadow sampling window " +
              fmt_ps(window_ps) + " + margin " +
              fmt_ps(timing.hold_margin_ps) + " across " +
              std::to_string(sta.corners.size()) + " corners" +
              (have_margin ? " (tightest hold margin " + fmt_ps(tightest) + ")"
                           : ""),
          kNoGate, kInvalidNet});
    }
  }
};

}  // namespace

std::vector<StaCorner> aging_corners(const Netlist& netlist,
                                     const TimingContext& timing) {
  std::vector<StaCorner> corners;
  if (timing.aging == nullptr || timing.sweep_years.empty()) {
    corners.push_back(StaCorner{"fresh", {}});
    return corners;
  }
  std::vector<double> years = timing.sweep_years;
  std::sort(years.begin(), years.end());
  years.erase(std::unique(years.begin(), years.end()), years.end());
  corners.reserve(years.size());
  for (const double y : years) {
    StaCorner c;
    c.name = "year " + fmt_years(y);
    c.gate_delay_scale = timing.aging->delay_scales_at(y);
    if (c.gate_delay_scale.size() != netlist.num_gates()) {
      throw std::invalid_argument(
          "aging_corners: scenario overlay is not sized one-per-gate (the "
          "aging scenario was built for a different netlist)");
    }
    corners.push_back(std::move(c));
  }
  return corners;
}

void register_timing_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<RazorCoverageRule>());
  registry.add(std::make_unique<ShadowWindowRule>());
  registry.add(std::make_unique<HoldCountRule>());
  registry.add(std::make_unique<HoldWindowRule>());
}

}  // namespace agingsim::lint
