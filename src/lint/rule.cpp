#include "src/lint/rule.hpp"

#include <stdexcept>
#include <string>

namespace agingsim::lint {

std::string_view category_name(RuleCategory category) noexcept {
  switch (category) {
    case RuleCategory::kStructural: return "structural";
    case RuleCategory::kTiming: return "timing";
    case RuleCategory::kConsistency: return "consistency";
  }
  return "?";
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  if (rule == nullptr) {
    throw std::invalid_argument("RuleRegistry::add: null rule");
  }
  if (find(rule->id()) != nullptr) {
    throw std::invalid_argument("RuleRegistry::add: duplicate rule id " +
                                std::string(rule->id()));
  }
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const noexcept {
  for (const auto& rule : rules_) {
    if (rule->id() == id) return rule.get();
  }
  return nullptr;
}

}  // namespace agingsim::lint
