#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/razor.hpp"
#include "src/lint/diagnostic.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
class AgingScenario;
struct MultiplierNetlist;
}  // namespace agingsim

namespace agingsim::lint {

/// Timing-safety context for the timing rule family. The rules prove the
/// paper's architectural contract over the *static* worst case: every path
/// that can exceed one (aged) clock period must end in a Razor-protected
/// flop, and the whole aged critical path must fit inside the AHL's
/// hold-cycle budget across the scenario sweep.
struct TimingContext {
  /// Cell delays the STA runs with. Required for any timing rule to fire.
  const TechLibrary* tech = nullptr;
  /// Aging scenario supplying per-gate delay multipliers per year;
  /// nullptr lints fresh silicon only.
  const AgingScenario* aging = nullptr;
  /// Years the hold-count rule sweeps (the paper's 7-year horizon).
  std::vector<double> sweep_years{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  /// Clock period the design is linted at. <= 0 skips the timing rules.
  double period_ps = 0.0;
  /// Maximum cycles the AHL can hold an operation (1- or 2-cycle issue in
  /// the paper's Fig. 12 design, so 2).
  int max_hold_cycles = 2;
  /// Razor bank configuration (shadow-window width drives detectability).
  RazorConfig razor{};
  /// Per-primary-output Razor protection flags; empty means the full output
  /// bank is Razor-protected (the paper's Fig. 8 architecture). A 0 entry
  /// models a severed Razor tap on that output.
  std::vector<std::uint8_t> razor_protected{};
  /// Enables the min-path (hold) side: timing.hold-window proves every
  /// Razor-protected output's earliest arrival clears the shadow sampling
  /// window at every corner. Off by default because a bare combinational
  /// multiplier genuinely has short paths (p[0] is one AND gate) — the rule
  /// is meant to be run together with the hold-repair pass.
  bool check_hold = false;
  /// Extra guard band (ps) the min arrival must clear beyond the shadow
  /// window (clock skew / latch aperture allowance).
  double hold_margin_ps = 0.0;

  bool output_protected(std::size_t output_index) const noexcept {
    return razor_protected.empty() || (output_index < razor_protected.size() &&
                                       razor_protected[output_index] != 0);
  }
};

/// Options for the consistency rule family (netlist-vs-golden-function
/// equivalence on a seeded vector set).
struct ConsistencyContext {
  std::size_t vectors = 256;
  std::uint64_t seed = 0x11A7C0DEULL;
};

/// Everything a rule may look at. Only `netlist` is mandatory; rules whose
/// prerequisites are missing report an info diagnostic saying why they did
/// not run instead of failing.
struct LintContext {
  const Netlist* netlist = nullptr;
  /// Generator metadata (arch, width, operand layout). Enables the
  /// consistency rules.
  const MultiplierNetlist* multiplier = nullptr;
  /// Enables the timing-safety rules.
  const TimingContext* timing = nullptr;
  ConsistencyContext consistency{};
};

enum class RuleCategory { kStructural = 0, kTiming = 1, kConsistency = 2 };

std::string_view category_name(RuleCategory category) noexcept;

/// One static-analysis rule. Rules are stateless: `run` inspects the
/// context and appends any findings to `out`. Rules must never crash on a
/// corrupted netlist — flagging the corruption is their job (the lint fuzz
/// suite feeds them deliberately broken structures).
class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable id, e.g. "structural.pin-arity"; used in reports and filters.
  virtual std::string_view id() const noexcept = 0;
  virtual RuleCategory category() const noexcept = 0;
  /// One-line human description of what the rule proves or flags.
  virtual std::string_view description() const noexcept = 0;
  virtual void run(const LintContext& ctx,
                   std::vector<Diagnostic>& out) const = 0;
};

/// Ordered collection of rules. Registration order is execution (and
/// report) order; ids must be unique.
class RuleRegistry {
 public:
  /// Throws std::invalid_argument on a duplicate rule id.
  void add(std::unique_ptr<Rule> rule);
  std::span<const std::unique_ptr<Rule>> rules() const noexcept {
    return rules_;
  }
  /// nullptr when no rule has this id.
  const Rule* find(std::string_view id) const noexcept;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Built-in rule families. LintEngine registers all three; callers needing
/// a subset (e.g. Netlist::validate's structural-only pass) can compose
/// their own registry.
void register_structural_rules(RuleRegistry& registry);
void register_timing_rules(RuleRegistry& registry);
void register_consistency_rules(RuleRegistry& registry);

/// The STA corners a TimingContext describes: one per sweep year, each
/// carrying that year's per-gate aging overlay (or no overlay when the
/// context has no scenario — a single "fresh" corner). Shared by the timing
/// rule family and the hold-repair pass so both prove the same corners.
/// Throws std::invalid_argument when an overlay is not sized one-per-gate.
std::vector<StaCorner> aging_corners(const Netlist& netlist,
                                     const TimingContext& timing);

}  // namespace agingsim::lint
