#pragma once

#include <string>
#include <string_view>

#include "src/netlist/netlist.hpp"

namespace agingsim::lint {

/// Severity grading of a lint diagnostic. Errors are correctness-threatening
/// (a netlist that simulates wrongly or a timing-safety hole that lets wrong
/// products commit); warnings are structural smells that waste area/power or
/// hide bugs; infos document what a rule proved or why it did not run.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

std::string_view severity_name(Severity severity) noexcept;

/// Sentinel for "no gate attached to this diagnostic".
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

/// One finding of one rule. `gate`/`net` anchor the finding in the netlist
/// when applicable (kNoGate / kInvalidNet otherwise); `message` already
/// carries the human-readable names so the diagnostic is self-contained.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule;     ///< rule id, e.g. "structural.pin-arity"
  std::string message;  ///< human-readable, includes gate/net names
  GateId gate = kNoGate;
  NetId net = kInvalidNet;
};

/// Human-readable identity of a net: "a[3] (net 3)" for a primary input,
/// "p[31] (net 812)" for a primary output, "net 42" for an internal net,
/// "net 99 (nonexistent)" when out of range. Linear in the I/O count — meant
/// for diagnostics, not hot loops.
std::string describe_net(const Netlist& netlist, NetId net);

/// Human-readable identity of a gate: "gate 17 (nand2)"; guards against
/// out-of-range ids and invalid cell kinds.
std::string describe_gate(const Netlist& netlist, GateId gate);

}  // namespace agingsim::lint
