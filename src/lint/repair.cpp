#include "src/lint/repair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/netlist/surgeon.hpp"
#include "src/sim/batch_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim::lint {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Absolute slop for limit comparisons: arrivals are short sums of
/// picosecond-scale doubles, so a micro-ps tolerance is orders of magnitude
/// above rounding noise and below any physical margin.
constexpr double kEpsPs = 1e-6;

/// One setup-limit endpoint class for the slack checks: a set of endpoint
/// output nets that share one max-arrival ceiling.
struct EndpointClass {
  std::vector<std::uint8_t> mask;  // one flag per net
  double limit_ps = 0.0;
  bool any = false;
};

double corner_scale(const StaCorner& corner, GateId g) {
  return corner.gate_delay_scale.empty() ? 1.0 : corner.gate_delay_scale[g];
}

/// Splices overlay entries of value `scale` for `count` buffers inserted at
/// gate position `pos` (insert_buffer renumbering); `pos == npos` appends
/// (insert_output_buffer). An empty overlay means "1.0 everywhere", so for
/// `scale != 1.0` it is materialized first (`prior_gates` = gate count
/// before the insertion).
void splice_overlays(std::vector<StaCorner>& corners, std::size_t pos,
                     int count, double scale, std::size_t prior_gates) {
  for (StaCorner& c : corners) {
    if (c.gate_delay_scale.empty()) {
      if (scale == 1.0) continue;
      c.gate_delay_scale.assign(prior_gates, 1.0);
    }
    if (pos == std::string::npos) {
      c.gate_delay_scale.insert(c.gate_delay_scale.end(),
                                static_cast<std::size_t>(count), scale);
    } else {
      c.gate_delay_scale.insert(
          c.gate_delay_scale.begin() + static_cast<std::ptrdiff_t>(pos),
          static_cast<std::size_t>(count), scale);
    }
  }
}

}  // namespace

EquivalenceSummary check_logic_equivalence(const Netlist& a, const Netlist& b,
                                           const TechLibrary& tech,
                                           std::size_t vectors,
                                           std::uint64_t seed) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument(
        "check_logic_equivalence: netlists have different interfaces");
  }
  EquivalenceSummary s;
  if (vectors == 0) return s;
  s.checked = true;

  BatchTimingSim sim_a(a, tech);
  BatchTimingSim sim_b(b, tech);
  Rng rng(seed);
  std::vector<std::uint64_t> words(a.num_inputs());
  bool first_word = true;
  std::size_t done = 0;
  while (done < vectors) {
    const int lanes = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(kBatchLanes), vectors - done));
    for (std::uint64_t& w : words) w = rng.next();
    if (first_word) {
      // Lane 0 of the first word drives every input to 1: the all-ones
      // corner flushes power-up X through tri-state keeper structures the
      // same way in both netlists before random lanes are compared.
      for (std::uint64_t& w : words) w |= 1ULL;
      first_word = false;
    }
    sim_a.step_word(words, lanes);
    sim_b.step_word(words, lanes);
    for (std::size_t i = 0; i < a.num_outputs(); ++i) {
      const NetId oa = a.output_nets()[i];
      const NetId ob = b.output_nets()[i];
      for (int l = 0; l < lanes; ++l) {
        if (sim_a.lane_value(oa, l) != sim_b.lane_value(ob, l)) {
          ++s.mismatches;
        }
      }
    }
    done += static_cast<std::size_t>(lanes);
  }
  s.vectors = done;
  return s;
}

HoldRepairResult repair_hold(Netlist& netlist, const TechLibrary& tech,
                             const TimingContext& timing,
                             const HoldRepairConfig& config) {
  if (timing.period_ps <= 0.0) {
    throw std::invalid_argument("repair_hold: clock period must be positive");
  }
  const double period = timing.period_ps;
  const double window = period * timing.razor.shadow_window_cycles;
  const double required = window + timing.hold_margin_ps;
  const double budget = period * timing.max_hold_cycles;
  const double ceiling = period * (1.0 + timing.razor.shadow_window_cycles);
  const double d_buf = tech.delay(CellKind::kBuf);
  if (!(d_buf > 0.0)) {
    throw std::invalid_argument(
        "repair_hold: the buffer cell has a non-positive delay");
  }
  const double d_buf_guard =
      d_buf * std::max(1.0, config.new_buffer_max_scale);

  HoldRepairResult res;
  res.period_ps = period;
  res.window_ps = window;
  res.required_min_ps = required;

  const std::size_t n_out = netlist.num_outputs();
  if (n_out == 0) {
    res.hold_clean = true;
    res.max_clean = true;
    return res;
  }

  // Snapshot for the equivalence proof before any surgery.
  const Netlist original = netlist;

  // New buffers are absent from any extracted aging scenario, so the two
  // planes model them asymmetrically: scale 1.0 in the hold/min corners
  // (aging only slows a gate, so fresh buffers bound the earliest arrival
  // from below) and the `new_buffer_max_scale` guard in the setup/max
  // corners, bounding whatever scale a later re-extraction assigns them.
  // With a rebuild_corners callback the overlays always carry true scales
  // and one corner set serves both planes.
  std::vector<StaCorner> corners = config.rebuild_corners
                                       ? config.rebuild_corners(netlist)
                                       : aging_corners(netlist, timing);
  const double guard_scale = std::max(1.0, config.new_buffer_max_scale);
  const bool dual_planes = !config.rebuild_corners && guard_scale > 1.0;
  std::vector<StaCorner> setup_corners =
      dual_planes ? corners : std::vector<StaCorner>{};

  std::vector<int> attributed(n_out, 0);
  std::vector<double> before_min(n_out, 0.0), before_max(n_out, 0.0);
  // Unprotected outputs that fit one period pre-repair must still fit it
  // after (an insertion must not create a new razor-coverage error).
  std::vector<std::uint8_t> unprot_was_fast(n_out, 0);
  bool recorded_before = false;
  bool stuck = false;

  std::vector<double> worst_min(n_out), worst_max(n_out);
  const auto collect_worst = [&](const MinMaxStaResult& sta_min,
                                 const MinMaxStaResult& sta_max) {
    for (std::size_t i = 0; i < n_out; ++i) {
      const NetId o = netlist.output_nets()[i];
      double lo = kInf, hi = -kInf;
      for (const CornerTiming& c : sta_min.corners) {
        lo = std::min(lo, c.min_arrival_ps[o]);
      }
      for (const CornerTiming& c : sta_max.corners) {
        hi = std::max(hi, c.max_arrival_ps[o]);
      }
      worst_min[i] = lo;
      worst_max[i] = hi;
    }
  };

  for (int pass = 0; pass < config.max_passes; ++pass) {
    const StaEngine engine(netlist, tech);
    const MinMaxStaResult sta = engine.run(corners);
    const MinMaxStaResult setup_sta =
        dual_planes ? engine.run(setup_corners) : MinMaxStaResult{};
    const MinMaxStaResult& sta_max = dual_planes ? setup_sta : sta;
    collect_worst(sta, sta_max);
    if (!recorded_before) {
      before_min = worst_min;
      before_max = worst_max;
      for (std::size_t i = 0; i < n_out; ++i) {
        unprot_was_fast[i] = !timing.output_protected(i) &&
                             worst_max[i] <= period + kEpsPs;
      }
      recorded_before = true;
    }

    std::vector<std::size_t> violating;
    for (std::size_t i = 0; i < n_out; ++i) {
      if (timing.output_protected(i) && worst_min[i] < required - kEpsPs) {
        violating.push_back(i);
      }
    }
    if (violating.empty()) break;
    res.passes = pass + 1;
    if (res.buffers_inserted >= config.max_buffers) {
      stuck = true;
      break;
    }

    // Phase A: endpoint padding. Appending n buffers at the output shifts
    // both planes up by n*d_buf, so it works exactly when the max side has
    // room for the whole min-side deficit (guard-scaled).
    bool padded = false;
    for (const std::size_t i : violating) {
      const double deficit = required - worst_min[i];
      const int needed =
          std::max(1, static_cast<int>(std::ceil(deficit / d_buf)));
      const double headroom = std::min(budget, ceiling) - worst_max[i];
      if (static_cast<double>(needed) * d_buf_guard > headroom + kEpsPs) {
        continue;
      }
      if (res.buffers_inserted + needed > config.max_buffers) continue;
      const std::size_t prior = netlist.num_gates();
      NetlistSurgeon(netlist).insert_output_buffer(i, needed);
      if (!config.rebuild_corners) {
        splice_overlays(corners, std::string::npos, needed, 1.0, prior);
        if (dual_planes) {
          splice_overlays(setup_corners, std::string::npos, needed,
                          guard_scale, prior);
        }
      }
      attributed[i] += needed;
      res.buffers_inserted += needed;
      padded = true;
    }
    if (padded) {
      if (config.rebuild_corners) corners = config.rebuild_corners(netlist);
      continue;
    }

    // Phase B: one upstream insertion on a violating output's min-critical
    // path, at the edge with the largest worst-corner setup slack. One edge
    // per pass keeps every slack check valid against the arrivals it was
    // computed from.
    std::vector<EndpointClass> classes(3);
    classes[0].limit_ps = budget;  // every output: AHL hold budget
    classes[1].limit_ps = ceiling; // protected: shadow-window ceiling
    classes[2].limit_ps = period;  // unprotected & fast: stay within T_clk
    for (EndpointClass& ec : classes) {
      ec.mask.assign(netlist.num_nets(), 0);
    }
    for (std::size_t i = 0; i < n_out; ++i) {
      const NetId o = netlist.output_nets()[i];
      classes[0].mask[o] = 1;
      classes[0].any = true;
      if (timing.output_protected(i)) {
        classes[1].mask[o] = 1;
        classes[1].any = true;
      } else if (unprot_was_fast[i]) {
        classes[2].mask[o] = 1;
        classes[2].any = true;
      }
    }
    // Setup slack is always judged in the guard-scaled plane.
    const std::vector<StaCorner>& max_corners =
        dual_planes ? setup_corners : corners;
    std::vector<std::vector<StaEngine::Downstream>> down(max_corners.size());
    for (std::size_t ci = 0; ci < max_corners.size(); ++ci) {
      for (const EndpointClass& ec : classes) {
        down[ci].push_back(ec.any
                               ? engine.downstream(max_corners[ci], ec.mask)
                               : StaEngine::Downstream{});
      }
    }

    // Slowest-first (smallest worst_min first would leave the biggest
    // deficit for last) — take the most-violating output that still has a
    // legal edge.
    std::sort(violating.begin(), violating.end(),
              [&](std::size_t a, std::size_t b) {
                return worst_min[a] < worst_min[b];
              });
    bool inserted = false;
    for (const std::size_t i : violating) {
      // Min-critical path in the corner attaining this output's worst min.
      const NetId o = netlist.output_nets()[i];
      std::size_t worst_ci = 0;
      for (std::size_t ci = 1; ci < sta.corners.size(); ++ci) {
        if (sta.corners[ci].min_arrival_ps[o] <
            sta.corners[worst_ci].min_arrival_ps[o]) {
          worst_ci = ci;
        }
      }
      const CornerTiming& wc = sta.corners[worst_ci];
      std::vector<std::pair<NetId, GateId>> edges;
      NetId n = o;
      while (true) {
        const std::int32_t drv = netlist.driver_of(n);
        if (drv < 0) break;
        const auto g = static_cast<GateId>(drv);
        const Gate& gt = netlist.gate(g);
        if (gt.in_count == 0) break;
        NetId best_in = netlist.gate_inputs(g)[0];
        for (const NetId in : netlist.gate_inputs(g)) {
          if (wc.min_arrival_ps[in] < wc.min_arrival_ps[best_in]) {
            best_in = in;
          }
        }
        edges.emplace_back(best_in, g);
        n = best_in;
      }

      int best_cap = 0;
      std::size_t best_edge = edges.size();
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const auto [in, g] = edges[e];
        const Gate& gt = netlist.gate(g);
        double cap = kInf;
        for (std::size_t ci = 0; ci < max_corners.size(); ++ci) {
          const CornerTiming& c = sta_max.corners[ci];
          const double dg =
              tech.delay(gt.kind) * corner_scale(max_corners[ci], g);
          for (std::size_t k = 0; k < classes.size(); ++k) {
            if (!classes[k].any) continue;
            const double dn = down[ci][k].max_ps[gt.out];
            if (dn == -kInf) continue;  // no such endpoint below this edge
            const double avail =
                classes[k].limit_ps - (c.max_arrival_ps[in] + dg + dn);
            cap = std::min(cap, std::floor((avail + kEpsPs) / d_buf_guard));
          }
        }
        const int cap_i =
            cap == kInf ? 0 : static_cast<int>(std::max(0.0, cap));
        if (cap_i > best_cap) {
          best_cap = cap_i;
          best_edge = e;
        }
      }
      if (best_cap <= 0 || best_edge == edges.size()) continue;

      const double deficit = required - worst_min[i];
      const int needed =
          std::max(1, static_cast<int>(std::ceil(deficit / d_buf)));
      const int count =
          std::min({best_cap, needed,
                    config.max_buffers - res.buffers_inserted});
      if (count <= 0) continue;
      const auto [in, g] = edges[best_edge];
      const std::size_t prior = netlist.num_gates();
      NetlistSurgeon(netlist).insert_buffer(in, g, count);
      if (config.rebuild_corners) {
        corners = config.rebuild_corners(netlist);
      } else {
        splice_overlays(corners, g, count, 1.0, prior);
        if (dual_planes) {
          splice_overlays(setup_corners, g, count, guard_scale, prior);
        }
      }
      attributed[i] += count;
      res.buffers_inserted += count;
      inserted = true;
      break;
    }
    if (!inserted) {
      // No violating output has a legal insertion left at this period:
      // report honestly instead of looping.
      stuck = true;
      break;
    }
  }

  // Final verdicts from a fresh full analysis of the repaired netlist.
  const StaEngine engine(netlist, tech);
  const MinMaxStaResult sta = engine.run(corners);
  const MinMaxStaResult setup_sta =
      dual_planes ? engine.run(setup_corners) : MinMaxStaResult{};
  const MinMaxStaResult& sta_max = dual_planes ? setup_sta : sta;
  collect_worst(sta, sta_max);
  if (!recorded_before) {
    before_min = worst_min;
    before_max = worst_max;
  }

  res.hold_clean = true;
  res.max_clean = true;
  double crit = 0.0;
  for (const CornerTiming& c : sta_max.corners) {
    crit = std::max(crit, c.critical_path_ps);
  }
  if (crit > budget + kEpsPs) res.max_clean = false;
  res.outputs.resize(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    OutputHoldReport& r = res.outputs[i];
    r.name = netlist.output_name(i);
    r.output_index = i;
    r.razor_protected = timing.output_protected(i);
    r.buffers_inserted = attributed[i];
    r.min_before_ps = before_min[i];
    r.max_before_ps = before_max[i];
    r.min_after_ps = worst_min[i];
    r.max_after_ps = worst_max[i];
    r.hold_ok_after = !r.razor_protected || worst_min[i] >= required - kEpsPs;
    if (r.razor_protected) {
      if (!r.hold_ok_after) res.hold_clean = false;
      if (worst_max[i] > ceiling + kEpsPs) res.max_clean = false;
    } else if (unprot_was_fast[i] && worst_max[i] > period + kEpsPs) {
      res.max_clean = false;
    }
  }
  (void)stuck;  // `stuck` only shortens the loop; verdicts come from the STA

  if (config.verify_equivalence) {
    res.equivalence = check_logic_equivalence(
        original, netlist, tech, config.equiv_vectors, config.equiv_seed);
  }
  return res;
}

}  // namespace agingsim::lint
