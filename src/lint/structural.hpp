#pragma once

#include <vector>

#include "src/lint/diagnostic.hpp"

namespace agingsim::lint {

/// Runs the structural rule family over `netlist` and returns every
/// diagnostic. This is the engine-less entry point `Netlist::validate()`
/// delegates to, so construction-time validation and the `aginglint` CLI
/// agree on what "structurally sound" means. Never throws and never reads
/// out of bounds, whatever the corruption.
std::vector<Diagnostic> structural_diagnostics(const Netlist& netlist);

}  // namespace agingsim::lint
