#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/lint/rule.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/sta.hpp"

namespace agingsim::lint {

/// Tuning knobs for `repair_hold`.
struct HoldRepairConfig {
  /// Repair iterations (each pass re-runs the full min/max multi-corner STA
  /// before deciding the next insertion). The pass count bounds work on
  /// unrepairable designs; a clean exit happens as soon as the min side is
  /// clean. Upstream (phase-B) repair inserts one chain per pass, so wide
  /// multipliers legitimately take O(outputs x chain-length) passes — 16-bit
  /// designs converge around a thousand.
  int max_passes = 4000;
  /// Total delay-buffer budget across the whole repair.
  int max_buffers = 100000;
  /// Planning guard for the *setup* side of every insertion: a buffer
  /// inserted fresh (delay scale 1.0 in every corner) will itself age, so
  /// the slack checks charge each new buffer `delay * new_buffer_max_scale`
  /// against the setup limits. The min (hold) side deliberately credits only
  /// the fresh delay — aging slows buffers, so fresh is the conservative
  /// bound for earliest arrivals.
  double new_buffer_max_scale = 1.2;
  /// Re-prove logic equivalence (repaired vs. original netlist, exact
  /// per-lane value comparison through the batch timing kernel) after repair.
  bool verify_equivalence = true;
  std::size_t equiv_vectors = 256;
  std::uint64_t equiv_seed = 0x401DFACEULL;
  /// Optional: rebuild the STA corner overlays on the evolving netlist after
  /// each mutating pass (e.g. re-extract an aging scenario so inserted
  /// buffers get real stress-derived scales). Default (unset): the pass
  /// splices unit-scale entries for inserted buffers into the initial
  /// corners, which together with `new_buffer_max_scale` is conservative on
  /// both planes. Must return overlays sized for the netlist it is given.
  std::function<std::vector<StaCorner>(const Netlist&)> rebuild_corners;
};

/// Per-primary-output before/after summary of one repair run. Arrival
/// numbers are the worst over all corners (min plane: smallest earliest
/// arrival; max plane: largest latest arrival).
struct OutputHoldReport {
  std::string name;
  std::size_t output_index = 0;
  bool razor_protected = false;
  /// Buffers inserted while this output was the repair target (endpoint
  /// padding plus upstream short-path insertions attributed to it).
  int buffers_inserted = 0;
  double min_before_ps = 0.0;
  double max_before_ps = 0.0;
  double min_after_ps = 0.0;
  double max_after_ps = 0.0;
  bool hold_ok_after = false;
};

/// Result of the post-repair logic-equivalence check.
struct EquivalenceSummary {
  bool checked = false;
  std::size_t vectors = 0;
  std::size_t mismatches = 0;
  bool ok() const noexcept { return checked && mismatches == 0; }
};

/// Everything `repair_hold` did and proved.
struct HoldRepairResult {
  double period_ps = 0.0;
  /// Shadow sampling window W = shadow_window_cycles x T_clk.
  double window_ps = 0.0;
  /// W + hold_margin_ps: what every protected output's min arrival must
  /// clear at every corner.
  double required_min_ps = 0.0;
  int passes = 0;
  int buffers_inserted = 0;
  /// Min side clean after repair: every Razor-protected output's earliest
  /// arrival clears `required_min_ps` at every corner.
  bool hold_clean = false;
  /// Setup side still clean after repair: critical path within the AHL hold
  /// budget, protected outputs within the shadow window, and no previously
  /// sub-period unprotected output pushed past T_clk.
  bool max_clean = false;
  std::vector<OutputHoldReport> outputs;
  EquivalenceSummary equivalence;

  /// Repair succeeded: both timing sides clean and (when checked) the
  /// repaired netlist is logic-equivalent to the original.
  bool clean() const noexcept {
    return hold_clean && max_clean &&
           (!equivalence.checked || equivalence.mismatches == 0);
  }
};

/// Automatic hold repair: inserts delay buffers (via
/// NetlistSurgeon::insert_buffer / insert_output_buffer) until every
/// Razor-protected output's *min-corner* arrival clears the shadow sampling
/// window at every aging corner of `timing`, without breaking the setup
/// side (AHL hold budget, shadow-window ceiling, razor-coverage status of
/// unprotected outputs).
///
/// Strategy per pass, driven by a fresh min/max multi-corner STA:
///  1. Violating outputs whose max-side headroom fits the whole deficit are
///     fixed by appending a buffer chain at the endpoint (shifts min and max
///     equally — only feasible when span = max - min leaves room).
///  2. Otherwise one upstream insertion is placed on the violating output's
///     min-critical path, at the edge with the largest worst-corner setup
///     slack (computed from `StaEngine::downstream` bounds), so the shortest
///     path is lengthened without touching the setup-critical path.
/// Passes repeat until clean, the pass budget runs out, or no legal
/// insertion exists (the result then reports `hold_clean == false` with the
/// honest per-output numbers).
///
/// `timing` supplies period, shadow window, margin, protection flags and the
/// aging sweep (via `aging_corners`); `timing.check_hold` need not be set.
/// Throws std::invalid_argument on a structurally invalid netlist, a
/// non-positive period, or mis-sized aging overlays.
HoldRepairResult repair_hold(Netlist& netlist, const TechLibrary& tech,
                             const TimingContext& timing,
                             const HoldRepairConfig& config = {});

/// Exact logic-equivalence check between two netlists with identical
/// input/output interfaces: drives both through the 64-lane batch timing
/// kernel on `vectors` seeded patterns (the first is all-ones, flushing
/// power-up X through tri-state keeper structures) and compares every
/// primary output's settled Logic value lane by lane — X-safe, no
/// output_bits packing. Throws std::invalid_argument when the interfaces
/// differ.
EquivalenceSummary check_logic_equivalence(const Netlist& a, const Netlist& b,
                                           const TechLibrary& tech,
                                           std::size_t vectors,
                                           std::uint64_t seed);

}  // namespace agingsim::lint
