#include "src/lint/engine.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "src/report/json.hpp"

namespace agingsim::lint {

std::size_t LintReport::count(Severity severity) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

std::string LintReport::summary() const {
  const auto plural = [](std::size_t n, const char* noun) {
    return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  return plural(errors(), "error") + ", " + plural(warnings(), "warning") +
         ", " + plural(infos(), "info");
}

void LintReport::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("counts").begin_object();
  writer.key("error").value(static_cast<std::uint64_t>(errors()));
  writer.key("warning").value(static_cast<std::uint64_t>(warnings()));
  writer.key("info").value(static_cast<std::uint64_t>(infos()));
  writer.end_object();
  writer.key("diagnostics").begin_array();
  for (const Diagnostic& d : diagnostics) {
    writer.begin_object();
    writer.key("severity").value(severity_name(d.severity));
    writer.key("rule").value(d.rule);
    writer.key("message").value(d.message);
    writer.key("gate").value(
        d.gate == kNoGate ? std::int64_t{-1} : static_cast<std::int64_t>(d.gate));
    writer.key("net").value(d.net == kInvalidNet
                                ? std::int64_t{-1}
                                : static_cast<std::int64_t>(d.net));
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

LintEngine::LintEngine() {
  register_structural_rules(registry_);
  register_timing_rules(registry_);
  register_consistency_rules(registry_);
}

LintEngine::LintEngine(RuleRegistry registry)
    : registry_(std::move(registry)) {}

LintReport LintEngine::run(const LintContext& ctx) const {
  if (ctx.netlist == nullptr) {
    throw std::invalid_argument("LintEngine::run: context has no netlist");
  }
  LintReport report;
  for (const auto& rule : registry_.rules()) {
    try {
      rule->run(ctx, report.diagnostics);
    } catch (const std::exception& e) {
      report.diagnostics.push_back(
          Diagnostic{Severity::kError, std::string(rule->id()),
                     std::string("rule aborted with exception: ") + e.what(),
                     kNoGate, kInvalidNet});
    }
  }
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return report;
}

}  // namespace agingsim::lint
