#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "src/lint/rule.hpp"

namespace agingsim {
class JsonWriter;
}

namespace agingsim::lint {

/// Result of one LintEngine::run: every diagnostic from every rule, sorted
/// most severe first (stable within a severity, i.e. in rule order).
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity severity) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::kError); }
  std::size_t warnings() const noexcept { return count(Severity::kWarning); }
  std::size_t infos() const noexcept { return count(Severity::kInfo); }
  /// True when no error-severity diagnostic was raised (warnings allowed).
  bool clean() const noexcept { return errors() == 0; }

  /// "2 errors, 1 warning, 4 infos"
  std::string summary() const;

  /// Emits this report as a JSON object:
  ///   { "counts": {"error": E, "warning": W, "info": I},
  ///     "diagnostics": [ {"severity", "rule", "message", "gate", "net"} ] }
  /// `gate`/`net` are -1 when the diagnostic has no anchor. The writer must
  /// be positioned where a value is legal (after key(), or inside an array).
  void write_json(JsonWriter& writer) const;
};

/// Runs a rule registry over a lint context. A rule that throws does not
/// abort the run: the exception is converted into an error diagnostic under
/// the rule's own id (so a crash in analysis code is itself a finding, and
/// the fuzz suite's "never crashes" guarantee holds engine-wide).
class LintEngine {
 public:
  /// All built-in rule families (structural, timing, consistency).
  LintEngine();
  /// A custom rule set.
  explicit LintEngine(RuleRegistry registry);

  const RuleRegistry& registry() const noexcept { return registry_; }

  /// Throws std::invalid_argument when `ctx.netlist` is null.
  LintReport run(const LintContext& ctx) const;

 private:
  RuleRegistry registry_;
};

}  // namespace agingsim::lint
