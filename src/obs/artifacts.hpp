#pragma once

// Environment-driven observability artifacts (docs/OBSERVABILITY.md):
//
//   AGINGSIM_TRACE=out.json    enable span recording, write a Chrome
//                              trace-event file at process exit
//   AGINGSIM_METRICS=out.json  enable metrics, write a snapshot at exit
//
// A static initializer in artifacts.cpp reads both variables before
// main(), flips the corresponding recorder on, and registers an atexit
// flush — so every binary linking agingsim (benches, tools, examples)
// emits artifacts with zero per-binary wiring. With neither variable set,
// nothing is enabled and no file is ever created.

namespace agingsim::obs {

/// Writes the env-configured artifacts now (no-op when the variables are
/// unset). Also runs from atexit; calling it earlier — e.g. right after a
/// bench body, see AGINGSIM_BENCH_MAIN — just makes the files appear
/// sooner, the atexit rewrite supersedes them with the final state.
void flush_env_artifacts() noexcept;

}  // namespace agingsim::obs
