#include "src/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "src/report/json.hpp"

namespace agingsim::obs {
namespace detail {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace detail

namespace {

/// Slot budget per shard. Registration is programmer-controlled (a few
/// dozen metrics; histograms take bounds+2 slots), so a fixed budget keeps
/// shards allocation-free and index-stable for the process lifetime.
constexpr std::uint32_t kMaxSlots = 1024;

/// One thread's slice of every metric. Slots are written with relaxed
/// atomics by the owning thread only and read by snapshotters, so there is
/// never a data race and never cross-thread write contention. When a
/// thread exits, its shard is retired but kept — the counts it accumulated
/// stay in every later snapshot — and the next new thread adopts it
/// (continuing its totals), which bounds memory by the peak thread count.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
};

struct Descriptor {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool deterministic = true;
  std::uint32_t base_slot = 0;
  std::vector<double> bounds;  // histogram only
};

}  // namespace

/// Lets this translation unit construct handles despite their private
/// members (the public API hands out const references only).
struct RegistryAccess {
  static Counter make_counter(std::uint32_t slot) {
    Counter c;
    c.slot_ = slot;
    return c;
  }
  static Gauge make_gauge(std::uint32_t slot) {
    Gauge g;
    g.slot_ = slot;
    return g;
  }
  static Histogram make_histogram(std::uint32_t slot, const double* bounds,
                                  std::uint32_t num_bounds) {
    Histogram h;
    h.slot_ = slot;
    h.bounds_ = bounds;
    h.num_bounds_ = num_bounds;
    return h;
  }
};

namespace {

struct Registry {
  std::mutex mutex;
  std::deque<Descriptor> descriptors;  // deque: stable bounds addresses
  std::deque<Counter> counters;        // handle storage (stable refs)
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  // name -> (descriptor index, handle pointer) found by linear scan; the
  // metric count is tiny and registration is one-time per site.
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::size_t> free_shards;
  std::uint32_t next_slot = 0;

  std::uint32_t take_slots(std::uint32_t n) {
    if (next_slot + n > kMaxSlots) {
      throw std::logic_error("obs: metric slot budget exhausted");
    }
    const std::uint32_t base = next_slot;
    next_slot += n;
    return base;
  }

  static constexpr std::size_t kNotFound = ~std::size_t{0};

  std::size_t find(std::string_view name) const {
    for (std::size_t i = 0; i < descriptors.size(); ++i) {
      if (descriptors[i].name == name) return i;
    }
    return kNotFound;
  }
};

/// Leaked singleton: usable from static initializers and atexit handlers
/// in any order.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Thread-local shard handle; releases the shard for adoption on thread
/// exit (without clearing it — retired counts must survive into the final
/// snapshot).
struct TlsShard {
  Shard* shard = nullptr;
  std::size_t index = 0;

  ~TlsShard() {
    if (shard == nullptr) return;
    Registry& reg = registry();
    std::lock_guard lk(reg.mutex);
    reg.free_shards.push_back(index);
  }
};

thread_local TlsShard tls_shard;

Shard& local_shard() {
  if (tls_shard.shard == nullptr) {
    Registry& reg = registry();
    std::lock_guard lk(reg.mutex);
    if (!reg.free_shards.empty()) {
      tls_shard.index = reg.free_shards.back();
      reg.free_shards.pop_back();
    } else {
      reg.shards.push_back(std::make_unique<Shard>());
      tls_shard.index = reg.shards.size() - 1;
    }
    tls_shard.shard = reg.shards[tls_shard.index].get();
  }
  return *tls_shard.shard;
}

void check_kind(const Descriptor& d, MetricKind kind) {
  if (d.kind != kind) {
    throw std::logic_error("obs: metric '" + d.name +
                           "' re-registered with a different kind");
  }
}

}  // namespace

namespace detail {

void slot_add(std::uint32_t slot, std::uint64_t delta) noexcept {
  local_shard().slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void slot_max(std::uint32_t slot, std::int64_t value) noexcept {
  std::atomic<std::uint64_t>& cell = local_shard().slots[slot];
  // Only the owning thread writes this slot, so load+store (no CAS) is
  // enough to keep the per-thread maximum.
  const auto current =
      static_cast<std::int64_t>(cell.load(std::memory_order_relaxed));
  if (value > current) {
    cell.store(static_cast<std::uint64_t>(value),
               std::memory_order_relaxed);
  }
}

void hist_observe(std::uint32_t base_slot, const double* bounds,
                  std::uint32_t num_bounds, double value) noexcept {
  std::uint32_t bucket = 0;
  while (bucket < num_bounds && value > bounds[bucket]) ++bucket;
  slot_add(base_slot + bucket, 1);
  const double clamped = std::max(0.0, value);
  slot_add(base_slot + num_bounds + 1,
           static_cast<std::uint64_t>(std::llround(clamped)));
}

}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

const Counter& counter(std::string_view name, bool deterministic) {
  Registry& reg = registry();
  std::lock_guard lk(reg.mutex);
  if (const std::size_t i = reg.find(name); i != Registry::kNotFound) {
    check_kind(reg.descriptors[i], MetricKind::kCounter);
    return reg.counters[i];
  }
  const std::uint32_t slot = reg.take_slots(1);
  reg.descriptors.push_back({std::string(name), MetricKind::kCounter,
                             deterministic, slot, {}});
  reg.counters.push_back(RegistryAccess::make_counter(slot));
  reg.gauges.emplace_back();      // keep handle deques index-aligned
  reg.histograms.emplace_back();  // with the descriptor deque
  return reg.counters.back();
}

const Gauge& gauge(std::string_view name, bool deterministic) {
  Registry& reg = registry();
  std::lock_guard lk(reg.mutex);
  if (const std::size_t i = reg.find(name); i != Registry::kNotFound) {
    check_kind(reg.descriptors[i], MetricKind::kGauge);
    return reg.gauges[i];
  }
  const std::uint32_t slot = reg.take_slots(1);
  reg.descriptors.push_back(
      {std::string(name), MetricKind::kGauge, deterministic, slot, {}});
  reg.counters.emplace_back();
  reg.gauges.push_back(RegistryAccess::make_gauge(slot));
  reg.histograms.emplace_back();
  return reg.gauges.back();
}

const Histogram& histogram(std::string_view name,
                           std::span<const double> bucket_bounds,
                           bool deterministic) {
  if (bucket_bounds.empty() ||
      !std::is_sorted(bucket_bounds.begin(), bucket_bounds.end())) {
    throw std::logic_error("obs: histogram '" + std::string(name) +
                           "' needs ascending bucket bounds");
  }
  Registry& reg = registry();
  std::lock_guard lk(reg.mutex);
  if (const std::size_t i = reg.find(name); i != Registry::kNotFound) {
    check_kind(reg.descriptors[i], MetricKind::kHistogram);
    return reg.histograms[i];
  }
  const auto num_bounds = static_cast<std::uint32_t>(bucket_bounds.size());
  // num_bounds+1 bucket counts (last = overflow) plus the sum slot.
  const std::uint32_t slot = reg.take_slots(num_bounds + 2);
  reg.descriptors.push_back(
      {std::string(name), MetricKind::kHistogram, deterministic, slot,
       std::vector<double>(bucket_bounds.begin(), bucket_bounds.end())});
  reg.counters.emplace_back();
  reg.gauges.emplace_back();
  reg.histograms.push_back(RegistryAccess::make_histogram(
      slot, reg.descriptors.back().bounds.data(), num_bounds));
  return reg.histograms.back();
}

std::vector<MetricValue> metrics_snapshot(bool deterministic_only) {
  Registry& reg = registry();
  std::lock_guard lk(reg.mutex);
  std::vector<MetricValue> out;
  out.reserve(reg.descriptors.size());
  for (const Descriptor& d : reg.descriptors) {
    if (deterministic_only && !d.deterministic) continue;
    MetricValue v;
    v.name = d.name;
    v.kind = d.kind;
    v.deterministic = d.deterministic;
    // Merge shards in index order — sums and maxima are order-independent,
    // but a fixed order keeps the walk itself deterministic.
    const auto merged = [&](std::uint32_t slot) {
      std::uint64_t total = 0;
      for (const auto& shard : reg.shards) {
        total += shard->slots[slot].load(std::memory_order_relaxed);
      }
      return total;
    };
    switch (d.kind) {
      case MetricKind::kCounter:
        v.value = merged(d.base_slot);
        break;
      case MetricKind::kGauge: {
        std::int64_t best = 0;
        for (const auto& shard : reg.shards) {
          best = std::max(best,
                          static_cast<std::int64_t>(shard->slots[d.base_slot]
                              .load(std::memory_order_relaxed)));
        }
        v.value = static_cast<std::uint64_t>(best);
        break;
      }
      case MetricKind::kHistogram: {
        v.bounds = d.bounds;
        const auto buckets = static_cast<std::uint32_t>(d.bounds.size()) + 1;
        v.buckets.resize(buckets);
        for (std::uint32_t b = 0; b < buckets; ++b) {
          v.buckets[b] = merged(d.base_slot + b);
          v.value += v.buckets[b];
        }
        v.sum = merged(d.base_slot + buckets);
        break;
      }
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::string metrics_json(bool deterministic_only) {
  const std::vector<MetricValue> snap = metrics_snapshot(deterministic_only);
  JsonWriter json;
  json.begin_object();
  json.key("tool").value("agingsim");
  json.key("schema_version").value(std::int64_t{1});
  json.key("metrics").begin_array();
  for (const MetricValue& m : snap) {
    json.begin_object();
    json.key("name").value(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        json.key("kind").value("counter");
        json.key("value").value(m.value);
        break;
      case MetricKind::kGauge:
        json.key("kind").value("gauge");
        json.key("value").value(static_cast<std::int64_t>(m.value));
        break;
      case MetricKind::kHistogram:
        json.key("kind").value("histogram");
        json.key("count").value(m.value);
        json.key("sum").value(m.sum);
        json.key("bounds").begin_array();
        for (const double b : m.bounds) json.value(b);
        json.end_array();
        json.key("buckets").begin_array();
        for (const std::uint64_t b : m.buckets) json.value(b);
        json.end_array();
        break;
    }
    json.key("deterministic").value(m.deterministic);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool write_metrics_json(const std::string& path, bool deterministic_only) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write %s\n", tmp.c_str());
      return false;
    }
    out << metrics_json(deterministic_only) << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "obs: cannot rename %s\n", tmp.c_str());
    return false;
  }
  return true;
}

void reset_metrics() noexcept {
  Registry& reg = registry();
  std::lock_guard lk(reg.mutex);
  for (const auto& shard : reg.shards) {
    for (auto& slot : shard->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace agingsim::obs
