#pragma once

// Process-wide metrics registry (docs/OBSERVABILITY.md): counters, gauges
// and fixed-bucket histograms, recorded into thread-local shards and
// merged deterministically in shard-index order at snapshot time.
//
// Cost model. Every instrumentation site is compiled in unconditionally
// but guarded by one relaxed atomic load (`metrics_enabled()`); with
// recording disabled — the default — a site is a load, a predictable
// branch, and nothing else. Enabled sites do one relaxed fetch_add into a
// slot owned by the calling thread, so there is no cross-thread cache-line
// contention on hot counters and no lock anywhere near a hot path.
//
// Determinism. Counter and histogram merges are sums and gauge merges are
// maxima — all order-independent — so for a workload whose per-thread
// totals are scheduling-independent (everything in this repo; see
// docs/PERF.md) the merged snapshot is byte-identical for any thread
// count. Metrics that measure wall time or instantaneous occupancy are
// registered with `deterministic = false` and can be filtered out of a
// snapshot, which is how tests/parallel_determinism_test.cpp asserts
// 1-thread vs 8-thread snapshot equality.
//
// Naming convention: lowercase `subsystem.metric` (sim.gates_evaluated,
// runner.retries, checkpoint.discarded_crc). Handles come from
// `obs::counter()/gauge()/histogram()` and are stable for the process
// lifetime; idiomatic use is one function-local static per site.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace agingsim::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
void slot_add(std::uint32_t slot, std::uint64_t delta) noexcept;
void slot_max(std::uint32_t slot, std::int64_t value) noexcept;
void hist_observe(std::uint32_t base_slot, const double* bounds,
                  std::uint32_t num_bounds, double value) noexcept;
}  // namespace detail

/// One relaxed atomic load — the entire cost of a disabled site.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic event count; shards sum at snapshot time.
class Counter {
 public:
  void add(std::uint64_t delta = 1) const noexcept {
    if (!metrics_enabled()) return;
    detail::slot_add(slot_, delta);
  }

 private:
  friend struct RegistryAccess;
  std::uint32_t slot_ = 0;
};

/// High-watermark value (queue depth, in-flight units): each thread keeps
/// the maximum it has seen since the last reset; shards merge by max.
class Gauge {
 public:
  void record(std::int64_t value) const noexcept {
    if (!metrics_enabled()) return;
    detail::slot_max(slot_, value);
  }

 private:
  friend struct RegistryAccess;
  std::uint32_t slot_ = 0;
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration
/// (plus an implicit overflow bucket); per-shard bucket counts and an
/// integer sum of the observed values merge by addition. The handle holds
/// the bucket layout, so observe() never touches the registry.
class Histogram {
 public:
  void observe(double value) const noexcept {
    if (!metrics_enabled()) return;
    detail::hist_observe(slot_, bounds_, num_bounds_, value);
  }

 private:
  friend struct RegistryAccess;
  std::uint32_t slot_ = 0;  ///< num_bounds_+1 bucket slots, then the sum
  const double* bounds_ = nullptr;  ///< registry-owned, ascending
  std::uint32_t num_bounds_ = 0;
};

/// Registers (or looks up — registration is idempotent by name) a metric.
/// `deterministic = false` marks wall-time/occupancy metrics excluded from
/// determinism-checked snapshots. Re-registering a name with a different
/// kind throws std::logic_error. Returned references live for the process.
const Counter& counter(std::string_view name, bool deterministic = true);
const Gauge& gauge(std::string_view name, bool deterministic = true);
const Histogram& histogram(std::string_view name,
                           std::span<const double> bucket_bounds,
                           bool deterministic = true);

/// One merged metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool deterministic = true;
  std::uint64_t value = 0;           ///< counter total / gauge maximum
  std::uint64_t sum = 0;             ///< histogram: sum of observations
  std::vector<double> bounds;        ///< histogram bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< histogram counts (+1 overflow)
};

/// Merged view of every registered metric, sorted by name (stable across
/// registration order, which may race between threads).
std::vector<MetricValue> metrics_snapshot(bool deterministic_only = false);

/// The snapshot as a JSON document ({"tool":"agingsim","metrics":[...]}).
std::string metrics_json(bool deterministic_only = false);

/// Atomically (tmp + rename) writes metrics_json() to `path`; returns
/// false (with a stderr diagnostic) on I/O failure — never throws, so it
/// is safe from atexit handlers.
bool write_metrics_json(const std::string& path,
                        bool deterministic_only = false);

/// Zeroes every shard of every metric. Test-only: callers must guarantee
/// no thread is concurrently recording.
void reset_metrics() noexcept;

}  // namespace agingsim::obs
