#pragma once

// Scoped trace spans recorded into per-thread ring buffers and exported
// as Chrome trace-event JSON (docs/OBSERVABILITY.md) — open the file in
// chrome://tracing or https://ui.perfetto.dev. Like the metrics registry,
// a disabled span site costs one relaxed atomic load and nothing else; an
// enabled span costs two steady_clock reads and one store into a buffer
// owned by the recording thread (no locks, no allocation — span names
// must be string literals or otherwise outlive the process).
//
// Ring semantics: each thread's buffer holds the newest
// `AGINGSIM_TRACE_CAPACITY` (default 16384) spans; older spans are
// overwritten and counted as dropped in the export's otherData. Rings are
// retired when their thread exits and adopted (with a fresh tid) by the
// next new thread, bounding memory by the peak thread count.
//
// Export (`trace_json` / `write_trace_json`) walks the rings under the
// registry lock; call it from the coordinating thread after parallel
// regions have completed — spans recorded concurrently with an export may
// be torn. Naming convention: `subsystem.verb` (runner.unit,
// checkpoint.persist, pool.job), with the optional integer arg exported
// as args.v (unit index, trial index, job size, ...).

#include <atomic>
#include <cstdint>
#include <string>

namespace agingsim::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::uint64_t now_ns() noexcept;
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t arg) noexcept;
}  // namespace detail

/// Sentinel for "span carries no argument".
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

/// One relaxed atomic load — the entire cost of a disabled site.
inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept;

/// RAII span: construction stamps the begin time, destruction records one
/// complete ("ph":"X") event into the calling thread's ring. `name` must
/// outlive the process (use string literals). A span whose construction
/// saw tracing disabled records nothing even if tracing is enabled later.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     std::uint64_t arg = kNoArg) noexcept
      : name_(name),
        arg_(arg),
        begin_ns_(trace_enabled() ? detail::now_ns() : kInactive) {}
  ~TraceSpan() {
    if (begin_ns_ != kInactive) detail::record_span(name_, begin_ns_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};
  const char* name_;
  std::uint64_t arg_;
  std::uint64_t begin_ns_;
};

/// The recorded spans as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}, complete events sorted by begin time).
std::string trace_json();

/// Atomically (tmp + rename) writes trace_json() to `path`; returns false
/// (with a stderr diagnostic) on I/O failure — never throws, so it is
/// safe from atexit handlers.
bool write_trace_json(const std::string& path);

/// Spans overwritten across all rings (newest-wins wraparound).
std::uint64_t trace_dropped_spans();

/// Clears every ring. Test-only: callers must guarantee no thread is
/// concurrently recording.
void reset_trace() noexcept;

/// Overrides the per-thread ring capacity (default 16384, or
/// AGINGSIM_TRACE_CAPACITY). Applies lazily: each ring adopts the new
/// capacity (discarding its contents) at its next recorded span.
/// Test-only knob.
void set_trace_ring_capacity(std::size_t spans);

}  // namespace agingsim::obs
