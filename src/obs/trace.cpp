#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/env.hpp"
#include "src/report/json.hpp"

namespace agingsim::obs {
namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t now_ns() noexcept {
  // Monotonic nanoseconds since the first call — every ring shares this
  // origin, so cross-thread span ordering in the export is meaningful.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = kNoArg;
};

struct Ring {
  std::vector<TraceEvent> events;  // sized to capacity at (re)adoption
  std::uint64_t total = 0;         // spans ever pushed (wraps the index)
  int tid = 0;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<std::size_t> free_rings;
  /// Resolved lazily from the environment; atomic because record sites
  /// compare it against their ring's size without taking the lock.
  std::atomic<std::size_t> capacity{0};
  int next_tid = 1;  // tid 0 is reserved for "unknown"

  std::size_t resolve_capacity() {
    std::size_t cap = capacity.load(std::memory_order_relaxed);
    if (cap == 0) {
      cap = static_cast<std::size_t>(
          env::long_or("AGINGSIM_TRACE_CAPACITY", 16384, 16, 1 << 24));
      capacity.store(cap, std::memory_order_relaxed);
    }
    return cap;
  }
};

TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

struct TlsRing {
  Ring* ring = nullptr;
  std::size_t index = 0;

  ~TlsRing() {
    if (ring == nullptr) return;
    TraceRegistry& reg = registry();
    std::lock_guard lk(reg.mutex);
    reg.free_rings.push_back(index);
  }
};

thread_local TlsRing tls_ring;

Ring& local_ring() {
  TraceRegistry& reg = registry();
  if (tls_ring.ring == nullptr) {
    std::lock_guard lk(reg.mutex);
    const std::size_t cap = reg.resolve_capacity();
    if (!reg.free_rings.empty()) {
      tls_ring.index = reg.free_rings.back();
      reg.free_rings.pop_back();
    } else {
      reg.rings.push_back(std::make_unique<Ring>());
      tls_ring.index = reg.rings.size() - 1;
    }
    Ring& ring = *reg.rings[tls_ring.index];
    // Adopted rings restart empty under a fresh tid so one tid never
    // mixes spans from two threads.
    ring.events.assign(cap, TraceEvent{});
    ring.total = 0;
    ring.tid = reg.next_tid++;
    tls_ring.ring = &ring;
  }
  Ring& ring = *tls_ring.ring;
  // Lazy capacity change (set_trace_ring_capacity): re-adopt in place.
  const std::size_t cap = reg.capacity.load(std::memory_order_relaxed);
  if (cap != 0 && ring.events.size() != cap) {
    std::lock_guard lk(reg.mutex);
    ring.events.assign(reg.capacity.load(std::memory_order_relaxed),
                       TraceEvent{});
    ring.total = 0;
  }
  return ring;
}

}  // namespace

namespace detail {

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t arg) noexcept {
  const std::uint64_t end_ns = now_ns();
  Ring& ring = local_ring();
  TraceEvent& slot = ring.events[ring.total % ring.events.size()];
  slot.name = name;
  slot.begin_ns = begin_ns;
  slot.dur_ns = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  slot.arg = arg;
  ++ring.total;
}

}  // namespace detail

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_spans() {
  TraceRegistry& reg = registry();
  std::lock_guard lk(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    if (ring->total > ring->events.size()) {
      dropped += ring->total - ring->events.size();
    }
  }
  return dropped;
}

std::string trace_json() {
  struct Exported {
    TraceEvent event;
    int tid;
  };
  std::vector<Exported> events;
  std::uint64_t dropped = 0;
  {
    TraceRegistry& reg = registry();
    std::lock_guard lk(reg.mutex);
    for (const auto& ring : reg.rings) {
      const std::size_t cap = ring->events.size();
      if (cap == 0) continue;
      const std::uint64_t kept = std::min<std::uint64_t>(ring->total, cap);
      dropped += ring->total - kept;
      // Oldest-first within the ring: indices [total-kept, total).
      for (std::uint64_t i = ring->total - kept; i < ring->total; ++i) {
        events.push_back({ring->events[i % cap], ring->tid});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Exported& a, const Exported& b) {
                     if (a.event.begin_ns != b.event.begin_ns) {
                       return a.event.begin_ns < b.event.begin_ns;
                     }
                     return a.tid < b.tid;
                   });

  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").begin_object();
  json.key("tool").value("agingsim");
  json.key("dropped_events").value(dropped);
  json.end_object();
  json.key("traceEvents").begin_array();
  for (const Exported& e : events) {
    json.begin_object();
    json.key("name").value(e.event.name);
    json.key("cat").value("agingsim");
    json.key("ph").value("X");
    json.key("pid").value(1);
    json.key("tid").value(e.tid);
    // Chrome trace timestamps are microseconds; fractional is allowed.
    json.key("ts").value(static_cast<double>(e.event.begin_ns) / 1000.0);
    json.key("dur").value(static_cast<double>(e.event.dur_ns) / 1000.0);
    if (e.event.arg != kNoArg) {
      json.key("args").begin_object();
      json.key("v").value(e.event.arg);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool write_trace_json(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write %s\n", tmp.c_str());
      return false;
    }
    out << trace_json() << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "obs: cannot rename %s\n", tmp.c_str());
    return false;
  }
  return true;
}

void reset_trace() noexcept {
  TraceRegistry& reg = registry();
  std::lock_guard lk(reg.mutex);
  for (const auto& ring : reg.rings) {
    ring->total = 0;
  }
}

void set_trace_ring_capacity(std::size_t spans) {
  TraceRegistry& reg = registry();
  std::lock_guard lk(reg.mutex);
  reg.capacity = std::max<std::size_t>(1, spans);
}

}  // namespace agingsim::obs
