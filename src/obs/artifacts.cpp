#include "src/obs/artifacts.hpp"

#include <cstdlib>
#include <optional>
#include <string>

#include "src/core/env.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace agingsim::obs {
namespace {

struct EnvArtifacts {
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
};

EnvArtifacts& env_artifacts() {
  static EnvArtifacts* a = new EnvArtifacts;
  return *a;
}

/// Runs during static initialization, before main(): recorders must be on
/// before the first instrumented site executes, and sites themselves only
/// ever check the enabled flag (one relaxed load).
struct Initializer {
  Initializer() {
    EnvArtifacts& a = env_artifacts();
    a.trace_path = env::str_var("AGINGSIM_TRACE");
    a.metrics_path = env::str_var("AGINGSIM_METRICS");
    if (a.trace_path.has_value()) set_trace_enabled(true);
    if (a.metrics_path.has_value()) set_metrics_enabled(true);
    if (a.trace_path.has_value() || a.metrics_path.has_value()) {
      std::atexit([] { flush_env_artifacts(); });
    }
  }
};

const Initializer g_initializer;

}  // namespace

void flush_env_artifacts() noexcept {
  const EnvArtifacts& a = env_artifacts();
  if (a.trace_path.has_value()) (void)write_trace_json(*a.trace_path);
  if (a.metrics_path.has_value()) (void)write_metrics_json(*a.metrics_path);
}

}  // namespace agingsim::obs
