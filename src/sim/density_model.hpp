#pragma once

// Constants of the transition-density glitch/energy model (docs/MODEL.md
// section on switching activity). They live in one header because TWO step
// kernels evaluate the model — the scalar one in timing_sim.cpp and the
// 64-lane batch one in batch_sweep.inl — and the bit-identity guarantee
// between them (tests/batch_kernel_test.cpp) requires the exact same
// literals on both sides.

namespace agingsim::density_model {

/// Driver + register output capacitance charged per changed primary input.
inline constexpr double kInputCapFf = 1.0;

// Transition-density weights: an edge on one input of a controlled gate
// propagates when the other inputs sit at non-controlling values (weight
// 1). A controlling value that changed this step blocks edges only after
// it lands (weight kBlockedPass for the window before); one that was
// already stable blocks essentially everything (kStableBlock). Unknowns
// are ambiguous (0.5).
inline constexpr float kBlockedPass = 0.2f;
inline constexpr float kStableBlock = 0.02f;
inline constexpr float kDensityClamp = 32.0f;

}  // namespace agingsim::density_model
