#include "src/sim/sequential.hpp"

#include <stdexcept>
#include <vector>

namespace agingsim {

SequentialSim::SequentialSim(const Netlist& netlist, const TechLibrary& tech,
                             std::vector<RegisterBinding> registers)
    : netlist_(&netlist),
      sim_(netlist, tech),
      regs_(std::move(registers)),
      pi_values_(netlist.num_inputs(), Logic::kZero) {
  std::vector<bool> used(netlist.num_inputs(), false);
  for (const RegisterBinding& r : regs_) {
    if (r.d_net >= netlist.num_nets()) {
      throw std::invalid_argument("SequentialSim: register D net invalid");
    }
    if (r.q_input < 0 ||
        r.q_input >= static_cast<int>(netlist.num_inputs()) ||
        used[static_cast<std::size_t>(r.q_input)]) {
      throw std::invalid_argument(
          "SequentialSim: register Q input invalid or bound twice");
    }
    if (r.enable_net != kInvalidNet && r.enable_net >= netlist.num_nets()) {
      throw std::invalid_argument("SequentialSim: enable net invalid");
    }
    used[static_cast<std::size_t>(r.q_input)] = true;
    q_.push_back(r.init);
  }
}

void SequentialSim::set_input(int pi_index, Logic value) {
  if (pi_index < 0 || pi_index >= static_cast<int>(pi_values_.size())) {
    throw std::invalid_argument("SequentialSim::set_input: bad input index");
  }
  for (const RegisterBinding& r : regs_) {
    if (r.q_input == pi_index) {
      throw std::invalid_argument(
          "SequentialSim::set_input: input is driven by a register");
    }
  }
  pi_values_[static_cast<std::size_t>(pi_index)] = value;
}

StepResult SequentialSim::clock() {
  // Drive register outputs, settle combinational logic.
  for (std::size_t r = 0; r < regs_.size(); ++r) {
    pi_values_[static_cast<std::size_t>(regs_[r].q_input)] = q_[r];
  }
  const StepResult result = sim_.step(pi_values_);
  // Simultaneous clock edge: sample every enabled D.
  std::vector<Logic> next = q_;
  for (std::size_t r = 0; r < regs_.size(); ++r) {
    const RegisterBinding& reg = regs_[r];
    const Logic en = reg.enable_net == kInvalidNet
                         ? Logic::kOne
                         : sim_.value(reg.enable_net);
    if (en == Logic::kOne) {
      next[r] = sim_.value(reg.d_net);
    } else if (en != Logic::kZero) {
      next[r] = Logic::kX;  // unknown enable: pessimistic
    }
  }
  q_ = std::move(next);
  return result;
}

}  // namespace agingsim
