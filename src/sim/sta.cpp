#include "src/sim/sta.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace agingsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StaEngine::StaEngine(const Netlist& netlist, const TechLibrary& tech)
    : netlist_(&netlist), tech_(&tech) {
  const std::size_t num_gates = netlist.num_gates();
  const std::size_t num_nets = netlist.num_nets();
  const std::size_t num_pins = netlist.num_pins();

  // Validate up front so the sweeps below can index without checks. The
  // engine is reachable from lint rules running over deliberately corrupted
  // netlists; throwing (which the LintEngine converts into an error
  // diagnostic) is the contract, crashing is not.
  base_delay_ps_.resize(num_gates);
  std::vector<std::int32_t> level(num_gates, 0);
  int depth = 0;
  for (GateId g = 0; g < num_gates; ++g) {
    const Gate& gate = netlist.gate(g);
    if (static_cast<int>(gate.kind) >= kNumCellKinds) {
      throw std::invalid_argument("StaEngine: gate " + std::to_string(g) +
                                  " has a cell kind outside the library");
    }
    if (gate.in_begin > num_pins || gate.in_begin + gate.in_count > num_pins) {
      throw std::invalid_argument("StaEngine: gate " + std::to_string(g) +
                                  " has a pin window out of bounds");
    }
    if (gate.out >= num_nets) {
      throw std::invalid_argument("StaEngine: gate " + std::to_string(g) +
                                  " drives a nonexistent net");
    }
    std::int32_t lvl = 0;
    for (NetId in : netlist.gate_inputs(g)) {
      if (in >= num_nets || in >= gate.out) {
        throw std::invalid_argument(
            "StaEngine: gate " + std::to_string(g) +
            " reads a net that is not topologically earlier than its output");
      }
      const std::int32_t d = netlist.driver_of(in);
      if (d >= 0) lvl = std::max(lvl, level[static_cast<GateId>(d)] + 1);
    }
    level[g] = lvl;
    depth = std::max(depth, lvl + 1);
    base_delay_ps_[g] = tech.delay(gate.kind);
  }
  num_levels_ = num_gates == 0 ? 0 : depth;

  // Counting sort into level-major order: gates of level L are contiguous,
  // ascending id within the level (the schedule a level-synchronous parallel
  // traversal would hand to worker threads).
  level_begin_.assign(static_cast<std::size_t>(num_levels_) + 1, 0);
  for (GateId g = 0; g < num_gates; ++g) {
    ++level_begin_[static_cast<std::size_t>(level[g]) + 1];
  }
  for (std::size_t l = 1; l < level_begin_.size(); ++l) {
    level_begin_[l] += level_begin_[l - 1];
  }
  level_order_.resize(num_gates);
  std::vector<std::uint32_t> cursor(level_begin_.begin(),
                                    level_begin_.end() - 1);
  for (GateId g = 0; g < num_gates; ++g) {
    level_order_[cursor[static_cast<std::size_t>(level[g])]++] = g;
  }
}

std::span<const GateId> StaEngine::level_gates(int lvl) const {
  if (lvl < 0 || lvl >= num_levels_) return {};
  return {level_order_.data() + level_begin_[static_cast<std::size_t>(lvl)],
          level_begin_[static_cast<std::size_t>(lvl) + 1] -
              level_begin_[static_cast<std::size_t>(lvl)]};
}

void StaEngine::check_corner(const StaCorner& corner) const {
  if (!corner.gate_delay_scale.empty() &&
      corner.gate_delay_scale.size() != netlist_->num_gates()) {
    throw std::invalid_argument("StaEngine: corner '" + corner.name +
                                "' gate_delay_scale must have one entry per "
                                "gate");
  }
}

CornerTiming StaEngine::forward(const StaCorner& corner) const {
  const Netlist& nl = *netlist_;
  CornerTiming t;
  t.name = corner.name;
  // Max plane starts at 0 for every net (primary inputs launch at t = 0 and
  // undriven nets stay there — the legacy run_sta convention, preserved so
  // the max plane is exactly == the legacy numbers). The min plane starts at
  // 0 on primary inputs and is assigned on every gate-driven net; gates with
  // no fanin (tie cells) seed their own delay in both planes.
  t.max_arrival_ps.assign(nl.num_nets(), 0.0);
  t.min_arrival_ps.assign(nl.num_nets(), 0.0);
  const bool scaled = !corner.gate_delay_scale.empty();
  for (const GateId g : level_order_) {
    const Gate& gate = nl.gate(g);
    double in_min = kInf;
    double in_max = 0.0;
    for (NetId in : nl.gate_inputs(g)) {
      in_min = std::min(in_min, t.min_arrival_ps[in]);
      in_max = std::max(in_max, t.max_arrival_ps[in]);
    }
    if (gate.in_count == 0) in_min = 0.0;
    double d = base_delay_ps_[g];
    if (scaled) d *= corner.gate_delay_scale[g];
    t.min_arrival_ps[gate.out] = in_min + d;
    t.max_arrival_ps[gate.out] = in_max + d;
  }
  t.critical_path_ps = 0.0;
  t.earliest_output_ps = kInf;
  for (NetId out : nl.output_nets()) {
    t.critical_path_ps = std::max(t.critical_path_ps, t.max_arrival_ps[out]);
    t.earliest_output_ps =
        std::min(t.earliest_output_ps, t.min_arrival_ps[out]);
  }
  return t;
}

MinMaxStaResult StaEngine::run(std::span<const StaCorner> corners) const {
  for (const StaCorner& c : corners) check_corner(c);
  MinMaxStaResult r;
  r.corners.reserve(corners.size());
  // One logical pass: per-corner planes are independent flat arrays and the
  // schedule is walked once per corner batch. The arithmetic per gate only
  // depends on its fanin's final values, so per-corner results are
  // bit-identical whether corners share the gate loop or not; keeping the
  // corner loop outermost keeps each plane's working set contiguous.
  for (const StaCorner& c : corners) r.corners.push_back(forward(c));
  return r;
}

CornerTiming StaEngine::run_corner(const StaCorner& corner) const {
  check_corner(corner);
  return forward(corner);
}

StaEngine::Downstream StaEngine::downstream(
    const StaCorner& corner, std::span<const std::uint8_t> endpoint_net) const {
  check_corner(corner);
  const Netlist& nl = *netlist_;
  if (endpoint_net.size() != nl.num_nets()) {
    throw std::invalid_argument(
        "StaEngine::downstream: endpoint mask must have one entry per net");
  }
  Downstream d;
  d.min_ps.assign(nl.num_nets(), kInf);
  d.max_ps.assign(nl.num_nets(), -kInf);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (endpoint_net[n] != 0) {
      d.min_ps[n] = 0.0;
      d.max_ps[n] = 0.0;
    }
  }
  const bool scaled = !corner.gate_delay_scale.empty();
  // Reverse level-major order: every consumer of a net has a strictly
  // larger gate id and level, so its downstream bounds are final before the
  // net's driver is visited.
  for (std::size_t i = level_order_.size(); i-- > 0;) {
    const GateId g = level_order_[i];
    const Gate& gate = nl.gate(g);
    const double dn_min = d.min_ps[gate.out];
    const double dn_max = d.max_ps[gate.out];
    if (dn_min == kInf && dn_max == -kInf) continue;  // no endpoint below
    double delay = base_delay_ps_[g];
    if (scaled) delay *= corner.gate_delay_scale[g];
    for (NetId in : nl.gate_inputs(g)) {
      d.min_ps[in] = std::min(d.min_ps[in], delay + dn_min);
      d.max_ps[in] = std::max(d.max_ps[in], delay + dn_max);
    }
  }
  return d;
}

StaResult run_sta(const Netlist& netlist, const TechLibrary& tech,
                  std::span<const double> gate_delay_scale) {
  if (!gate_delay_scale.empty() &&
      gate_delay_scale.size() != netlist.num_gates()) {
    throw std::invalid_argument(
        "run_sta: gate_delay_scale must have one entry per gate");
  }
  const StaEngine engine(netlist, tech);
  StaCorner corner;
  corner.gate_delay_scale.assign(gate_delay_scale.begin(),
                                 gate_delay_scale.end());
  CornerTiming t = engine.run_corner(corner);
  StaResult r;
  r.arrival_ps = std::move(t.max_arrival_ps);
  r.critical_path_ps = t.critical_path_ps;
  return r;
}

}  // namespace agingsim
