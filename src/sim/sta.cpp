#include "src/sim/sta.hpp"

#include <algorithm>
#include <stdexcept>

namespace agingsim {

StaResult run_sta(const Netlist& netlist, const TechLibrary& tech,
                  std::span<const double> gate_delay_scale) {
  if (!gate_delay_scale.empty() &&
      gate_delay_scale.size() != netlist.num_gates()) {
    throw std::invalid_argument(
        "run_sta: gate_delay_scale must have one entry per gate");
  }
  StaResult r;
  r.arrival_ps.assign(netlist.num_nets(), 0.0);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    double in_max = 0.0;
    for (NetId in : netlist.gate_inputs(g)) {
      in_max = std::max(in_max, r.arrival_ps[in]);
    }
    double d = tech.delay(gate.kind);
    if (!gate_delay_scale.empty()) d *= gate_delay_scale[g];
    r.arrival_ps[gate.out] = in_max + d;
  }
  for (NetId out : netlist.output_nets()) {
    r.critical_path_ps = std::max(r.critical_path_ps, r.arrival_ps[out]);
  }
  return r;
}

}  // namespace agingsim
