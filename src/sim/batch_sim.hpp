#pragma once

// 64-lane SWAR batch timing kernel (ROADMAP item 1, docs/PERF.md "Batch
// kernel").
//
// One BatchTimingSim consumes patterns 64 at a time ("one word"): lane l of
// every per-net machine word holds the value that net settles to on the
// l-th pattern of the word. A single ascending-gate-id sweep (gate ids are
// a topological order, the same order both scalar kernels use) evaluates a
// whole word: values move as two bit-planes per net (the 2-bit Logic code:
// plane0 = value bit, plane1 = unknown bit), so AND/OR/NAND/XOR/MUX over
// all 64 lanes cost a handful of word ops. A gate whose fanin word shows no
// activity in any lane is skipped outright — the word-granular analogue of
// the sparse kernel's worklist.
//
// Timing and energy are NOT approximated. The scalar kernel's sensitized-
// arrival and transition-density recurrences use only selects, min/max, and
// one multiply-add chain per gate — so the batch kernel carries an exact
// float[64] density lane array and double[64] arrival lane array per net
// and replays the *same per-lane operation order* the scalar kernel uses.
// min/max/select are rounding-free and the mul/add chains are evaluated in
// the identical order (the build compiles with -ffp-contract=off so no
// kernel gains a fused multiply-add the other lacks), hence every
// StepResult field, net value, arrival and density is exactly `==` the
// scalar sparse/dense kernels' — the same guarantee PR 2 proved for
// sparse-vs-dense, extended lane-wise. tests/batch_kernel_test.cpp is the
// differential suite.
//
// The guard-margin replay (AGINGSIM_BATCH_GUARD_PS) is therefore not a
// correctness crutch but a *runtime self-audit*: lanes whose settled output
// delay lands within the guard of a caller-supplied decision threshold
// (cycle period, 2x period, ...) — exactly the lanes where a wrong bit
// would flip an AHL/Razor decision — are re-run through a real scalar
// TimingSim reconstructed at lane k-1 via TimingSim::install_state, and
// the scalar result replaces (and is checked against) the lane result.
// The replay fraction is reported in sim.batch.* metrics and the bench
// JSON; a mismatch increments sim.batch.audit_mismatches (a tripwire that
// stays 0).
//
// Fault overlays keep scalar semantics: stuck-ats force both planes
// unconditionally, transients invert exactly the lane whose global step
// index matches the armed cycle (X stays X), and delay outliers fold into
// the per-gate delay table. Overlay/aging swaps force the next word to
// evaluate every gate, mirroring the scalar force-dense sweep.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/netlist/logic.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/timing_sim.hpp"

namespace agingsim {

/// Lanes per word. The SWAR baseline packs 64 patterns per uint64_t; the
/// AVX2 backend (runtime-dispatched, see batch_sim.cpp) vectorizes the
/// per-lane density/arrival recurrences over the same 64-lane words.
inline constexpr int kBatchLanes = 64;

/// Cumulative counters for one BatchTimingSim (mirrored into the process
/// sim.batch.* metrics when obs is enabled).
struct BatchStats {
  std::uint64_t words = 0;             ///< words swept
  std::uint64_t lanes = 0;             ///< patterns simulated
  std::uint64_t gates_evaluated = 0;   ///< word-granular union-cone evals
  std::uint64_t replayed_lanes = 0;    ///< lanes re-run through the scalar sim
  std::uint64_t audit_mismatches = 0;  ///< replay disagreed (tripwire: 0)

  double replay_fraction() const noexcept {
    return lanes == 0 ? 0.0
                      : static_cast<double>(replayed_lanes) /
                            static_cast<double>(lanes);
  }
};

class BatchTimingSim {
 public:
  /// Same construction contract as TimingSim: `gate_delay_scale`, if
  /// non-empty, is the per-gate aging multiplier table (copied).
  BatchTimingSim(const Netlist& netlist, const TechLibrary& tech,
                 std::span<const double> gate_delay_scale = {});

  /// Replaces the aging multipliers; the next word re-evaluates every gate
  /// (the analogue of the scalar forced dense sweep).
  void set_aging(std::span<const double> gate_delay_scale);

  /// Installs (nullptr: removes) a fault overlay; scalar semantics, see
  /// TimingSim::set_fault_overlay. The overlay must outlive its use here.
  void set_fault_overlay(const FaultOverlay* overlay);
  const FaultOverlay* fault_overlay() const noexcept { return overlay_; }

  /// Patterns consumed so far — the global step index transient-fault
  /// cycles are matched against (lane l of the next word is step
  /// steps() + l).
  std::int64_t steps() const noexcept { return step_base_; }

  /// Arms the scalar-replay audit: a lane whose output_settle_ps lands
  /// within `guard_ps` of any threshold is replayed through the scalar
  /// kernel. Empty thresholds or guard_ps <= 0 disables replay. The
  /// thresholds are copied.
  void set_timing_audit(std::span<const double> thresholds_ps,
                        double guard_ps);

  /// Evaluates lanes [0, lanes) in one sweep. `input_bits` holds one word
  /// per primary input (in input order): bit l is the value that input
  /// takes on lane l. All input lanes are known 0/1 — operands come from
  /// registers, exactly like TimingSim::load_bus patterns. Returns one
  /// StepResult per lane, each exactly what the corresponding scalar
  /// step() would have returned; the span is valid until the next call.
  std::span<const StepResult> step_word(
      std::span<const std::uint64_t> input_bits, int lanes = kBatchLanes);

  /// Value of `net` as it stood after lane `lane` of the last word.
  Logic lane_value(NetId net, int lane) const;

  /// Primary outputs of lane `lane` of the last word, packed LSB-first.
  /// Throws std::logic_error like TimingSim::output_bits on X/Z outputs.
  std::uint64_t output_bits(int lane) const;

  /// Packs an unsigned value's bit `i` into `input_bits[first_input + i]`
  /// at lane `lane` (the word analogue of TimingSim::load_bus).
  void load_bus_lane(std::span<std::uint64_t> input_bits, std::uint64_t value,
                     int width, int first_input, int lane) const;

  const BatchStats& stats() const noexcept { return stats_; }
  const Netlist& netlist() const noexcept { return *netlist_; }

  /// Name of the lane-loop backend selected at runtime ("avx2" when the CPU
  /// supports it and the build carries the AVX2 translation unit, else
  /// "generic"). Both produce bit-identical results; dispatch is per
  /// process, decided once.
  static const char* lane_backend() noexcept;

 private:
  void rebuild_delays();
  /// Net values as of lane `lane` of the current word; lane -1 means the
  /// state the word started from.
  void state_at_lane(int lane, std::span<Logic> out) const;
  void replay_audit(std::span<const std::uint64_t> input_bits, int lanes);

  const Netlist* netlist_;
  const TechLibrary* tech_;
  const FaultOverlay* overlay_ = nullptr;
  std::int64_t step_base_ = 0;  ///< global step index of lane 0 of next word
  bool force_all_ = true;       ///< next word evaluates every gate
  int last_lanes_ = 0;          ///< lanes of the most recent word

  std::vector<double> aging_scale_;    // per gate (possibly empty)
  std::vector<double> base_delay_ps_;  // per gate, aging + faults folded in
  std::vector<double> cell_cap_ff_;    // per gate

  // Per-net lane state. A net not stamped with the current epoch did not
  // change and carried zero density in every lane of the current word; its
  // value in every lane is last_value_[net].
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> plane0_, plane1_;  // per net, lane-packed value
  std::vector<std::uint64_t> changed_, active_;  // per net, lane masks
  std::vector<std::uint64_t> word_epoch_;        // per net
  std::vector<Logic> last_value_;       // per net: value after last lane
  std::vector<Logic> word_start_value_; // per net: value before this word
  std::vector<float> density_;          // per net x kBatchLanes
  std::vector<double> arrival_;         // per net x kBatchLanes

  std::array<StepResult, kBatchLanes> results_{};

  // Scalar-replay audit.
  std::vector<double> audit_thresholds_ps_;
  double guard_ps_ = 0.0;
  TimingSim replay_sim_;
  std::vector<Logic> replay_state_;   // scratch: one value per net
  std::vector<Logic> replay_inputs_;  // scratch: one value per input

  BatchStats stats_;
};

}  // namespace agingsim
