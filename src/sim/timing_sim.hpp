#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/netlist/logic.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Outcome of applying one input pattern.
struct StepResult {
  /// Time (ps) at which the last *primary output* settles, i.e. the path
  /// delay of this operation. 0 if no output changed. This is the quantity
  /// the Razor flip-flops compare against the cycle period.
  double output_settle_ps = 0.0;
  /// Time (ps) at which the last net anywhere settles (>= output_settle_ps).
  double settle_ps = 0.0;
  /// Number of gate outputs that settled to a new value (0<->1).
  std::uint64_t toggles = 0;
  /// Effective switched capacitance (fF) of this transition, including the
  /// glitch estimate — drives the dynamic-energy model. Computed by
  /// transition-density propagation (Najm-style): every changed primary
  /// input seeds one transition, each gate passes its inputs' densities
  /// weighted by how often the other inputs let edges through, and XOR
  /// trees sum densities. This is what makes deep carry-save arrays (the
  /// plain AM) expensive and frozen bypassed columns free, reproducing the
  /// paper's power ordering (AM > VL-bypassing > FL-bypassing).
  double switched_cap_ff = 0.0;
};

/// Per-pattern functional + timing simulator.
///
/// This is the substitute for the paper's Nanosim transistor-level timing
/// runs. Each `step()` applies a new input pattern (a transition from the
/// previously applied one) and performs a single topological pass computing,
/// for every gate, the new output value and its *sensitized* arrival time:
///
///  - a net whose value does not change is stable and contributes neither
///    delay nor switching energy (transition pruning, zero-delay/glitch-free
///    activity model);
///  - when a gate's output settles to a value fixed by a controlling input
///    (0 on an AND, 1 on an OR, ...), the arrival is the *earliest*
///    controlling input, not the latest input — this short-circuit is what
///    makes bypassed columns/rows fast and is the physical mechanism behind
///    the paper's Figs. 5-6 delay distributions;
///  - disabled tri-state buffers hold their previous value (bus keeper), so
///    a bypassed full adder neither toggles nor delays anything.
class TimingSim {
 public:
  /// `gate_delay_scale`, if non-empty, is a per-gate delay multiplier (aging
  /// overlay); it is copied and can be replaced later with `set_aging()`.
  TimingSim(const Netlist& netlist, const TechLibrary& tech,
            std::span<const double> gate_delay_scale = {});

  /// Replaces the per-gate aging multipliers (empty = fresh circuit).
  void set_aging(std::span<const double> gate_delay_scale);

  /// Installs (or, with nullptr, removes) a fault overlay. The overlay is
  /// consulted during every subsequent `step()`: stuck-at faults force the
  /// affected gate outputs, transients invert them on their armed cycle
  /// (matched against `steps()`), and delay-outlier factors are folded into
  /// the per-gate delays on top of the aging overlay. The shared netlist is
  /// never mutated, so many simulators with different overlays can run over
  /// one netlist concurrently. The overlay must outlive its installation.
  /// Throws std::invalid_argument if the overlay was sized for a different
  /// netlist.
  void set_fault_overlay(const FaultOverlay* overlay);
  const FaultOverlay* fault_overlay() const noexcept { return overlay_; }

  /// Number of `step()` calls performed so far — the cycle count transient
  /// faults are matched against.
  std::int64_t steps() const noexcept { return step_index_; }

  /// Applies `input_values` (one per primary input, in input order) and
  /// settles the netlist. The first call establishes the power-up state (all
  /// nets transition from X); its timing numbers are still well defined.
  StepResult step(std::span<const Logic> input_values);

  /// Applies an unsigned pattern to an input bus laid out LSB-first starting
  /// at primary-input index `first_input`.
  void load_bus(std::span<Logic> pattern_buffer, std::uint64_t value,
                int width, int first_input) const;

  Logic value(NetId net) const noexcept { return value_[net]; }
  double arrival(NetId net) const noexcept { return arrival_[net]; }

  /// Packs the primary outputs LSB-first into an integer. Throws
  /// std::logic_error if any output is X/Z or there are more than 64 outputs.
  std::uint64_t output_bits() const;

  const Netlist& netlist() const noexcept { return *netlist_; }

 private:
  void rebuild_delays();

  const Netlist* netlist_;
  const TechLibrary* tech_;
  const FaultOverlay* overlay_ = nullptr;
  std::int64_t step_index_ = 0;
  std::vector<double> aging_scale_;    // per gate (possibly empty)
  std::vector<double> base_delay_ps_;  // per gate, aging + faults folded in
  std::vector<double> cell_cap_ff_;    // per gate
  std::vector<Logic> value_;           // per net
  std::vector<double> arrival_;        // per net, valid when changed_
  std::vector<std::uint8_t> changed_;  // per net, this step
  std::vector<float> density_;         // per net: transition-density estimate
};

}  // namespace agingsim
