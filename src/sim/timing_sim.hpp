#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/netlist/logic.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Step-kernel families the trace/campaign/serving layers can drive. The
/// scalar kernels live in TimingSim (Mode::kDense / Mode::kSparse); kBatch
/// selects the 64-lane SWAR kernel in src/sim/batch_sim.hpp. All three are
/// bit-identical on every guaranteed StepResult/OpTrace field; they differ
/// only in throughput and in the gates_evaluated diagnostic.
enum class SimKernel : std::uint8_t { kAuto = 0, kDense, kSparse, kBatch };

/// Resolves kAuto against AGINGSIM_KERNEL (dense|sparse|batch; an
/// unrecognized value warns once and falls back to sparse, the scalar
/// default). Non-auto values pass through untouched.
SimKernel resolve_kernel(SimKernel requested);

const char* kernel_name(SimKernel kernel) noexcept;

/// Outcome of applying one input pattern.
struct StepResult {
  /// Time (ps) at which the last *primary output* settles, i.e. the path
  /// delay of this operation. 0 if no output changed. This is the quantity
  /// the Razor flip-flops compare against the cycle period.
  double output_settle_ps = 0.0;
  /// Time (ps) at which the last net anywhere settles (>= output_settle_ps).
  double settle_ps = 0.0;
  /// Number of gate outputs that settled to a new value (0<->1).
  std::uint64_t toggles = 0;
  /// Effective switched capacitance (fF) of this transition, including the
  /// glitch estimate — drives the dynamic-energy model. Computed by
  /// transition-density propagation (Najm-style): every changed primary
  /// input seeds one transition, each gate passes its inputs' densities
  /// weighted by how often the other inputs let edges through, and XOR
  /// trees sum densities. This is what makes deep carry-save arrays (the
  /// plain AM) expensive and frozen bypassed columns free, reproducing the
  /// paper's power ordering (AM > VL-bypassing > FL-bypassing).
  double switched_cap_ff = 0.0;
  /// Gates the kernel actually evaluated this step. The dense kernel always
  /// evaluates every gate; the sparse kernel only the changed/glitching
  /// cone, so gates_evaluated / gates_total is the per-step activity factor
  /// benches report. Diagnostics only: these two fields are kernel-dependent
  /// and excluded from the dense/sparse equivalence guarantee.
  std::uint64_t gates_evaluated = 0;
  /// Total gates in the netlist (the denominator for gates_evaluated).
  std::uint64_t gates_total = 0;
};

/// Per-pattern functional + timing simulator.
///
/// This is the substitute for the paper's Nanosim transistor-level timing
/// runs. Each `step()` applies a new input pattern (a transition from the
/// previously applied one) and settles the netlist in one topological pass —
/// event-driven over the changed cone by default (Mode::kSparse), or over
/// every gate (Mode::kDense) — computing, for every evaluated gate, the new
/// output value and its *sensitized* arrival time:
///
///  - a net whose value does not change is stable and contributes neither
///    delay nor switching energy (transition pruning, zero-delay/glitch-free
///    activity model);
///  - when a gate's output settles to a value fixed by a controlling input
///    (0 on an AND, 1 on an OR, ...), the arrival is the *earliest*
///    controlling input, not the latest input — this short-circuit is what
///    makes bypassed columns/rows fast and is the physical mechanism behind
///    the paper's Figs. 5-6 delay distributions;
///  - disabled tri-state buffers hold their previous value (bus keeper), so
///    a bypassed full adder neither toggles nor delays anything.
class TimingSim {
 public:
  /// Step-kernel selection. Both kernels produce bit-identical results
  /// (StepResult timing/energy fields, net values, arrivals, densities);
  /// they differ only in cost and in the gates_evaluated diagnostic.
  ///
  ///  - kSparse (default): event-driven. A step seeds a worklist with the
  ///    consumers of changed primary inputs and propagates only through the
  ///    cone whose values or transition densities actually move, processing
  ///    gates in ascending gate-id order (a topological order that also
  ///    matches the dense kernel's floating-point accumulation order — this
  ///    is what makes the two kernels bit-identical, not just equivalent).
  ///    Power-up, transient-fault windows and overlay/aging swaps fall back
  ///    to one dense sweep; see docs/PERF.md.
  ///  - kDense: the original full topological sweep over every gate. Kept
  ///    for differential testing and as the fallback path.
  enum class Mode { kSparse, kDense };

  /// `gate_delay_scale`, if non-empty, is a per-gate delay multiplier (aging
  /// overlay); it is copied and can be replaced later with `set_aging()`.
  TimingSim(const Netlist& netlist, const TechLibrary& tech,
            std::span<const double> gate_delay_scale = {});

  void set_mode(Mode mode) noexcept { mode_ = mode; }
  Mode mode() const noexcept { return mode_; }

  /// Replaces the per-gate aging multipliers (empty = fresh circuit).
  void set_aging(std::span<const double> gate_delay_scale);

  /// Installs (or, with nullptr, removes) a fault overlay. The overlay is
  /// consulted during every subsequent `step()`: stuck-at faults force the
  /// affected gate outputs, transients invert them on their armed cycle
  /// (matched against `steps()`), and delay-outlier factors are folded into
  /// the per-gate delays on top of the aging overlay. The shared netlist is
  /// never mutated, so many simulators with different overlays can run over
  /// one netlist concurrently. The overlay must outlive its installation.
  /// Throws std::invalid_argument if the overlay was sized for a different
  /// netlist.
  void set_fault_overlay(const FaultOverlay* overlay);
  const FaultOverlay* fault_overlay() const noexcept { return overlay_; }

  /// Number of `step()` calls performed so far — the cycle count transient
  /// faults are matched against.
  std::int64_t steps() const noexcept { return step_index_; }

  /// Applies `input_values` (one per primary input, in input order) and
  /// settles the netlist. The first call establishes the power-up state (all
  /// nets transition from X); its timing numbers are still well defined.
  StepResult step(std::span<const Logic> input_values);

  /// Overwrites every net value and the step counter in one call, as if the
  /// simulator had just settled `next_step_index` patterns and left the
  /// netlist holding `net_values`. The batch kernel's guard-margin replay
  /// uses this to reconstruct the scalar state "as of lane k-1" and re-run
  /// lane k through this exact kernel: a step() from an installed state is
  /// bit-identical to the same step in an uninterrupted scalar stream,
  /// because a step depends only on the net values, the delays, and the
  /// step index (per-step density/arrival scratch is epoch-gated, so no
  /// stale data survives the install). Throws std::invalid_argument on a
  /// value count mismatch.
  void install_state(std::span<const Logic> net_values,
                     std::int64_t next_step_index);

  /// Applies an unsigned pattern to an input bus laid out LSB-first starting
  /// at primary-input index `first_input`.
  void load_bus(std::span<Logic> pattern_buffer, std::uint64_t value,
                int width, int first_input) const;

  Logic value(NetId net) const noexcept { return value_[net]; }
  double arrival(NetId net) const noexcept { return arrival_[net]; }

  /// Packs the primary outputs LSB-first into an integer. Throws
  /// std::logic_error if any output is X/Z or there are more than 64 outputs.
  std::uint64_t output_bits() const;

  const Netlist& netlist() const noexcept { return *netlist_; }

 private:
  void rebuild_delays();

  /// Evaluates one gate: value, glitch density, arrival, energy. Returns
  /// true when the gate's output is "active" this step (value changed or
  /// nonzero density) and its consumers therefore need evaluating. The
  /// overlay/transient checks are template parameters so the per-step
  /// drivers branch once, not once per gate.
  template <bool kOverlay, bool kTransient>
  bool evaluate_gate(GateId g, StepResult& result);

  template <bool kOverlay, bool kTransient>
  void run_dense(StepResult& result);
  template <bool kOverlay>
  void run_sparse(StepResult& result);

  /// Adds gate `g` to the sparse worklist (idempotent: one bit per gate).
  void enqueue(GateId g) {
    const std::size_t w = g >> 6;
    queued_words_[w] |= std::uint64_t{1} << (g & 63);
    if (w < queued_min_word_) queued_min_word_ = w;
    if (w > queued_max_word_) queued_max_word_ = w;
  }

  /// Epoch-gated reads of the per-step state: a net not stamped with the
  /// current epoch is stable this step (changed = false, density = 0) — no
  /// O(nets) clearing between steps.
  bool net_changed(NetId n) const noexcept {
    return net_epoch_[n] == epoch_ && changed_[n] != 0;
  }
  float net_density(NetId n) const noexcept {
    return net_epoch_[n] == epoch_ ? density_[n] : 0.0f;
  }

  const Netlist* netlist_;
  const TechLibrary* tech_;
  const FaultOverlay* overlay_ = nullptr;
  std::int64_t step_index_ = 0;
  Mode mode_ = Mode::kSparse;
  /// Next step must be a dense sweep: set at power-up and whenever the
  /// overlay or aging multipliers are swapped (a stuck-at can force a gate
  /// whose fanin never changes, which no worklist would reach).
  bool force_dense_ = true;
  std::uint64_t epoch_ = 0;            // current step's stamp
  std::vector<double> aging_scale_;    // per gate (possibly empty)
  std::vector<double> base_delay_ps_;  // per gate, aging + faults folded in
  std::vector<double> cell_cap_ff_;    // per gate
  std::vector<Logic> value_;           // per net
  std::vector<double> arrival_;        // per net, valid when changed this step
  std::vector<std::uint8_t> changed_;  // per net, valid at net_epoch_ == epoch_
  std::vector<float> density_;         // per net, valid at net_epoch_ == epoch_
  std::vector<std::uint64_t> net_epoch_;  // per net: last stamping step
  /// Sparse worklist: one bit per gate, popped lowest-id-first and cleared
  /// as processed, so the bitmap is all-zero between steps (no epoch or
  /// clearing pass needed). queued_*_word_ bound the live word range.
  std::vector<std::uint64_t> queued_words_;
  std::size_t queued_min_word_ = 0;
  std::size_t queued_max_word_ = 0;
};

}  // namespace agingsim
