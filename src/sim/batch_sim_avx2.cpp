// AVX2 instantiation of the batch word-sweep core. CMake compiles this
// translation unit with -mavx2 on x86-64 toolchains that support it, so the
// per-lane density/arrival loops in batch_sweep.inl vectorize 8 floats / 4
// doubles wide; batch_sim.cpp picks this sweep at runtime only when the CPU
// reports AVX2. On any other configuration the same file compiles to a plain
// forwarder, so a scalar fallback always exists and the binary never
// executes an instruction the host lacks. FP semantics are identical in
// both builds (-ffp-contract=off, no reassociation), so the choice of
// backend is invisible in every result bit.

#include <algorithm>
#include <cstring>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/sim/batch_sweep.hpp"
#include "src/sim/density_model.hpp"

namespace agingsim {
namespace detail {

#if defined(__AVX2__)

#define AGINGSIM_SWEEP_FN run_sweep_avx2
#include "src/sim/batch_sweep.inl"
#undef AGINGSIM_SWEEP_FN

bool avx2_sweep_available() noexcept { return true; }

#else

void run_sweep_avx2(SweepContext& ctx) { run_sweep_generic(ctx); }
bool avx2_sweep_available() noexcept { return false; }

#endif

}  // namespace detail
}  // namespace agingsim
