#include "src/sim/batch_sim.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/netlist/cell.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/batch_sweep.hpp"
#include "src/sim/density_model.hpp"

namespace agingsim {
namespace detail {

#define AGINGSIM_SWEEP_FN run_sweep_generic
#include "src/sim/batch_sweep.inl"
#undef AGINGSIM_SWEEP_FN

}  // namespace detail

namespace {

// Accumulated per word, never per gate (same discipline as the scalar
// kernel's SimMetrics).
struct BatchMetrics {
  const obs::Counter& words = obs::counter("sim.batch.words");
  const obs::Counter& lanes = obs::counter("sim.batch.lanes");
  const obs::Counter& gates = obs::counter("sim.batch.gates_evaluated");
  const obs::Counter& replays = obs::counter("sim.batch.replayed_lanes");
  const obs::Counter& mismatches =
      obs::counter("sim.batch.audit_mismatches");
};

const BatchMetrics& batch_metrics() {
  static const BatchMetrics m;
  return m;
}

bool use_avx2_sweep() {
  static const bool enabled = [] {
    if (!detail::avx2_sweep_available()) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return enabled;
}

}  // namespace

BatchTimingSim::BatchTimingSim(const Netlist& netlist, const TechLibrary& tech,
                               std::span<const double> gate_delay_scale)
    : netlist_(&netlist),
      tech_(&tech),
      replay_sim_(netlist, tech, gate_delay_scale) {
  base_delay_ps_.resize(netlist.num_gates());
  cell_cap_ff_.resize(netlist.num_gates());
  set_aging(gate_delay_scale);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    cell_cap_ff_[g] = tech.cap(netlist.gate(g).kind);
  }
  const std::size_t nets = netlist.num_nets();
  plane0_.assign(nets, 0);
  plane1_.assign(nets, 0);
  changed_.assign(nets, 0);
  active_.assign(nets, 0);
  word_epoch_.assign(nets, 0);
  last_value_.assign(nets, Logic::kX);  // power-up: nothing driven yet
  word_start_value_.assign(nets, Logic::kX);
  density_.assign(nets * kBatchLanes, 0.0f);
  arrival_.assign(nets * kBatchLanes, 0.0);
  replay_state_.assign(nets, Logic::kX);
  replay_inputs_.assign(netlist.num_inputs(), Logic::kX);
}

void BatchTimingSim::set_aging(std::span<const double> gate_delay_scale) {
  if (!gate_delay_scale.empty() &&
      gate_delay_scale.size() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "BatchTimingSim::set_aging: need one multiplier per gate");
  }
  aging_scale_.assign(gate_delay_scale.begin(), gate_delay_scale.end());
  rebuild_delays();
  force_all_ = true;
  replay_sim_.set_aging(gate_delay_scale);
}

void BatchTimingSim::set_fault_overlay(const FaultOverlay* overlay) {
  if (overlay != nullptr && overlay->num_gates() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "BatchTimingSim::set_fault_overlay: overlay sized for a different "
        "netlist");
  }
  overlay_ = overlay;
  rebuild_delays();
  // Installing or removing stuck-ats changes gate outputs without any fanin
  // edge; the next word sweeps every gate (the scalar force-dense analogue).
  force_all_ = true;
  replay_sim_.set_fault_overlay(overlay);
}

void BatchTimingSim::rebuild_delays() {
  for (GateId g = 0; g < netlist_->num_gates(); ++g) {
    double d = tech_->delay(netlist_->gate(g).kind);
    if (!aging_scale_.empty()) d *= aging_scale_[g];
    if (overlay_ != nullptr) d *= overlay_->delay_factor(g);
    base_delay_ps_[g] = d;
  }
}

void BatchTimingSim::set_timing_audit(std::span<const double> thresholds_ps,
                                      double guard_ps) {
  audit_thresholds_ps_.assign(thresholds_ps.begin(), thresholds_ps.end());
  guard_ps_ = guard_ps;
}

std::span<const StepResult> BatchTimingSim::step_word(
    std::span<const std::uint64_t> input_bits, int lanes) {
  const Netlist& nl = *netlist_;
  if (input_bits.size() != nl.num_inputs()) {
    throw std::invalid_argument("BatchTimingSim::step_word: wrong input count");
  }
  if (lanes < 1 || lanes > kBatchLanes) {
    throw std::invalid_argument(
        "BatchTimingSim::step_word: lanes must be in [1, 64]");
  }
  ++epoch_;
  word_start_value_ = last_value_;
  for (int l = 0; l < lanes; ++l) {
    results_[l] = StepResult{};
    results_[l].gates_total = nl.num_gates();
  }

  // Pre-scan transient strikes: lanes of this word they land in, plus the
  // cleanup spill — a strike on the last lane of the previous word must be
  // un-flipped by lane 0 even if the gate's fanin is stone stable.
  std::vector<std::pair<GateId, std::uint64_t>> transient_masks;
  std::vector<GateId> forced_gates;
  if (overlay_ != nullptr && overlay_->has_transients()) {
    for (const FaultSite& site : overlay_->faults()) {
      if (site.kind != FaultKind::kTransient) continue;
      if (site.cycle >= step_base_ && site.cycle < step_base_ + lanes) {
        const auto lane = static_cast<int>(site.cycle - step_base_);
        transient_masks.emplace_back(site.gate, std::uint64_t{1} << lane);
      }
      if (site.cycle == step_base_ - 1) forced_gates.push_back(site.gate);
    }
    std::sort(transient_masks.begin(), transient_masks.end());
    // Merge lanes of multiple strikes on the same gate.
    std::size_t w = 0;
    for (std::size_t r = 0; r < transient_masks.size(); ++r) {
      if (w > 0 && transient_masks[w - 1].first == transient_masks[r].first) {
        transient_masks[w - 1].second |= transient_masks[r].second;
      } else {
        transient_masks[w++] = transient_masks[r];
      }
    }
    transient_masks.resize(w);
    std::sort(forced_gates.begin(), forced_gates.end());
    forced_gates.erase(std::unique(forced_gates.begin(), forced_gates.end()),
                       forced_gates.end());
  }

  detail::SweepContext ctx;
  ctx.netlist = netlist_;
  ctx.overlay = overlay_;
  ctx.base_delay_ps = base_delay_ps_.data();
  ctx.cell_cap_ff = cell_cap_ff_.data();
  ctx.epoch = epoch_;
  ctx.plane0 = plane0_.data();
  ctx.plane1 = plane1_.data();
  ctx.changed = changed_.data();
  ctx.active = active_.data();
  ctx.word_epoch = word_epoch_.data();
  ctx.last_value = last_value_.data();
  ctx.density = density_.data();
  ctx.arrival = arrival_.data();
  ctx.results = results_.data();
  ctx.input_bits = input_bits.data();
  ctx.lanes = lanes;
  ctx.lane_mask = lanes == kBatchLanes
                      ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << lanes) - 1);
  ctx.force_all = force_all_;
  ctx.transient_masks = transient_masks;
  ctx.forced_gates = forced_gates;

  if (use_avx2_sweep()) {
    detail::run_sweep_avx2(ctx);
  } else {
    detail::run_sweep_generic(ctx);
  }
  force_all_ = false;
  last_lanes_ = lanes;

  // Output settle: max changed-output arrival per lane.
  for (NetId out : nl.output_nets()) {
    if (word_epoch_[out] != epoch_) continue;
    const std::uint64_t ch = changed_[out];
    if (ch == 0) continue;
    const double* arr = arrival_.data() + std::size_t(out) * kBatchLanes;
    for (int l = 0; l < lanes; ++l) {
      if (((ch >> l) & 1u) != 0 && arr[l] > results_[l].output_settle_ps) {
        results_[l].output_settle_ps = arr[l];
      }
    }
  }

  stats_.words += 1;
  stats_.lanes += static_cast<std::uint64_t>(lanes);
  stats_.gates_evaluated += ctx.gates_processed;

  replay_audit(input_bits, lanes);

  step_base_ += lanes;
  if (obs::metrics_enabled()) {
    const BatchMetrics& m = batch_metrics();
    m.words.add();
    m.lanes.add(static_cast<std::uint64_t>(lanes));
    m.gates.add(ctx.gates_processed);
  }
  return {results_.data(), static_cast<std::size_t>(lanes)};
}

void BatchTimingSim::state_at_lane(int lane, std::span<Logic> out) const {
  if (lane < 0) {
    std::copy(word_start_value_.begin(), word_start_value_.end(), out.begin());
    return;
  }
  const std::size_t nets = netlist_->num_nets();
  for (std::size_t n = 0; n < nets; ++n) {
    if (word_epoch_[n] == epoch_) {
      out[n] = static_cast<Logic>(((plane0_[n] >> lane) & 1u) |
                                  (((plane1_[n] >> lane) & 1u) << 1));
    } else {
      out[n] = last_value_[n];  // never moved this word
    }
  }
}

Logic BatchTimingSim::lane_value(NetId net, int lane) const {
  if (lane < 0 || lane >= last_lanes_) {
    throw std::out_of_range("BatchTimingSim::lane_value: lane out of range");
  }
  if (word_epoch_[net] != epoch_) return last_value_[net];
  return static_cast<Logic>(((plane0_[net] >> lane) & 1u) |
                            (((plane1_[net] >> lane) & 1u) << 1));
}

std::uint64_t BatchTimingSim::output_bits(int lane) const {
  const auto outs = netlist_->output_nets();
  if (outs.size() > 64) {
    throw std::logic_error(
        "BatchTimingSim::output_bits: more than 64 outputs");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const Logic v = lane_value(outs[i], lane);
    if (!is_known(v)) {
      throw std::logic_error("BatchTimingSim::output_bits: output " +
                             netlist_->output_name(i) + " is unknown");
    }
    if (logic_to_bool(v)) bits |= (std::uint64_t{1} << i);
  }
  return bits;
}

void BatchTimingSim::load_bus_lane(std::span<std::uint64_t> input_bits,
                                   std::uint64_t value, int width,
                                   int first_input, int lane) const {
  if (first_input + width > static_cast<int>(netlist_->num_inputs()) ||
      static_cast<std::size_t>(first_input + width) > input_bits.size()) {
    throw std::invalid_argument(
        "BatchTimingSim::load_bus_lane: bus out of range");
  }
  const std::uint64_t lane_bit = std::uint64_t{1} << lane;
  for (int i = 0; i < width; ++i) {
    if (((value >> i) & 1u) != 0) {
      input_bits[static_cast<std::size_t>(first_input + i)] |= lane_bit;
    } else {
      input_bits[static_cast<std::size_t>(first_input + i)] &= ~lane_bit;
    }
  }
}

void BatchTimingSim::replay_audit(std::span<const std::uint64_t> input_bits,
                                  int lanes) {
  if (guard_ps_ <= 0.0 || audit_thresholds_ps_.empty()) return;
  const auto input_nets = netlist_->input_nets();
  for (int l = 0; l < lanes; ++l) {
    const double settle = results_[l].output_settle_ps;
    bool flagged = false;
    for (const double thr : audit_thresholds_ps_) {
      const double dist = settle > thr ? settle - thr : thr - settle;
      if (dist <= guard_ps_) {
        flagged = true;
        break;
      }
    }
    if (!flagged) continue;

    // Rebuild the scalar state as of lane l-1, re-run lane l through the
    // real scalar kernel, and adopt (after checking) its result.
    state_at_lane(l - 1, replay_state_);
    replay_sim_.install_state(replay_state_, step_base_ + l);
    for (std::size_t i = 0; i < input_nets.size(); ++i) {
      replay_inputs_[i] =
          logic_from_bool(((input_bits[i] >> l) & 1u) != 0);
    }
    const StepResult r = replay_sim_.step(replay_inputs_);
    ++stats_.replayed_lanes;
    if (obs::metrics_enabled()) batch_metrics().replays.add();

    bool mismatch = r.output_settle_ps != results_[l].output_settle_ps ||
                    r.settle_ps != results_[l].settle_ps ||
                    r.toggles != results_[l].toggles ||
                    r.switched_cap_ff != results_[l].switched_cap_ff;
    if (!mismatch) {
      for (NetId n = 0; n < netlist_->num_nets(); ++n) {
        if (replay_sim_.value(n) != lane_value(n, l)) {
          mismatch = true;
          break;
        }
      }
    }
    if (mismatch) {
      ++stats_.audit_mismatches;
      if (obs::metrics_enabled()) batch_metrics().mismatches.add();
    }
    // The audited lane reports the scalar numbers — identical by contract,
    // and literally scalar-produced for anyone auditing the audit.
    results_[l].output_settle_ps = r.output_settle_ps;
    results_[l].settle_ps = r.settle_ps;
    results_[l].toggles = r.toggles;
    results_[l].switched_cap_ff = r.switched_cap_ff;
  }
}

const char* BatchTimingSim::lane_backend() noexcept {
  return use_avx2_sweep() ? "avx2" : "generic";
}

}  // namespace agingsim
