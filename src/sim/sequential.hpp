#pragma once

#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/timing_sim.hpp"

namespace agingsim {

/// Binds a D flip-flop around a combinational netlist: the register's Q
/// drives primary input `q_input`, its D samples net `d_net` at each clock
/// edge, optionally gated by an active-high clock-enable net (this is how
/// the paper's !(gating) signal holds the input registers for the second
/// cycle of a two-cycle pattern).
struct RegisterBinding {
  NetId d_net = kInvalidNet;
  int q_input = -1;
  NetId enable_net = kInvalidNet;  ///< kInvalidNet = always enabled
  Logic init = Logic::kZero;
};

/// Cycle-accurate simulation of a registered circuit: each `clock()` call
/// settles the combinational netlist with the current register outputs and
/// external inputs, then updates every enabled register simultaneously.
/// Built on TimingSim, so per-cycle settle times and switching activity are
/// available too.
///
/// This layer exists to validate the behavioural architecture models in
/// src/core/ against real gate-level control circuits (e.g. the Fig. 12
/// AHL gating flip-flop) — see tests/sequential_test.cpp and
/// tests/ahl_gate_level_test.cpp.
class SequentialSim {
 public:
  SequentialSim(const Netlist& netlist, const TechLibrary& tech,
                std::vector<RegisterBinding> registers);

  /// Sets an external (non-register) primary input for upcoming cycles.
  void set_input(int pi_index, Logic value);

  /// One clock cycle; returns the combinational settle/activity result.
  StepResult clock();

  /// Value of any net after the last clock()'s settle phase.
  Logic value(NetId net) const noexcept { return sim_.value(net); }
  /// Current output of register `r` (as of the last clock edge).
  Logic q(std::size_t r) const noexcept { return q_[r]; }

  std::size_t num_registers() const noexcept { return regs_.size(); }

 private:
  const Netlist* netlist_;
  TimingSim sim_;
  std::vector<RegisterBinding> regs_;
  std::vector<Logic> pi_values_;
  std::vector<Logic> q_;
};

}  // namespace agingsim
