// One 64-lane word sweep — the body of the batch kernel. This file is a
// textual include compiled twice (see batch_sweep.hpp): the including TU
// must have included batch_sweep.hpp, density_model.hpp, <algorithm>,
// <cstring> and <limits>, opened namespace agingsim::detail, and defined
// AGINGSIM_SWEEP_FN to the function name to emit.
//
// Bit-plane encoding: lane l of plane0/plane1 carries the two bits of the
// Logic code (kZero=00, kOne=01, kX=10, kZ=11; plane0 = low bit). So:
//   known(v) = ~plane1,  one(v) = plane0 & ~plane1,  zero(v) = ~plane0 & ~plane1.
//
// EXACTNESS CONTRACT: every floating-point statement below replicates the
// operation order of the scalar kernel (TimingSim::evaluate_gate /
// TimingSim::step) per lane. The selection arithmetic used for
// vectorization (m*a + (1-m)*b with m in {0.0, 1.0}, and c ? a : b blends)
// is exact — the selected side is always the scalar kernel's value — and
// the build disables FP contraction, so no statement here can round
// differently from its scalar counterpart. Change this file and
// timing_sim.cpp together or not at all; tests/batch_kernel_test.cpp
// asserts exact == lane-by-lane.
//
// SHAPE CONTRACT (this is where the throughput comes from): every per-lane
// loop below runs a fixed kBatchLanes trip count over contiguous arrays and
// contains no per-lane bit extraction and no data-dependent branches — bit
// masks are pre-expanded to 0.0/1.0 lane arrays through a byte table — so
// the compiler turns each one into straight-line SIMD (8-wide floats /
// 4-wide doubles under -mavx2). Lanes past ctx.lanes compute garbage that
// is provably never read: bit masks are lane_mask-gated, and only lanes
// < ctx.lanes are written back to StepResult.

namespace {

/// Byte -> eight 0.0/1.0 lanes, float and double flavors. One table lookup
/// + one small copy per mask byte beats 64 per-lane `(m >> l) & 1`
/// extractions and, more importantly, keeps the arithmetic loops free of
/// integer work so they vectorize.
struct ByteLanesF {
  alignas(32) float v[256][8];
};
struct ByteLanesD {
  alignas(32) double v[256][8];
};

constexpr ByteLanesF make_byte_lanes_f() {
  ByteLanesF t{};
  for (int b = 0; b < 256; ++b) {
    for (int i = 0; i < 8; ++i) t.v[b][i] = ((b >> i) & 1) != 0 ? 1.0f : 0.0f;
  }
  return t;
}
constexpr ByteLanesD make_byte_lanes_d() {
  ByteLanesD t{};
  for (int b = 0; b < 256; ++b) {
    for (int i = 0; i < 8; ++i) t.v[b][i] = ((b >> i) & 1) != 0 ? 1.0 : 0.0;
  }
  return t;
}

constexpr ByteLanesF kByteLanesF = make_byte_lanes_f();
constexpr ByteLanesD kByteLanesD = make_byte_lanes_d();

inline void mask_lanes_f(std::uint64_t m, float* out) {
  for (int b = 0; b < 8; ++b) {
    std::memcpy(out + 8 * b, kByteLanesF.v[(m >> (8 * b)) & 0xFFu],
                8 * sizeof(float));
  }
}

inline void mask_lanes_d(std::uint64_t m, double* out) {
  for (int b = 0; b < 8; ++b) {
    std::memcpy(out + 8 * b, kByteLanesD.v[(m >> (8 * b)) & 0xFFu],
                8 * sizeof(double));
  }
}

/// Lane mask of v[l] != 0.0f (same ordered-quiet semantics as the C++
/// operator). Bit packing has no portable SIMD idiom, so the AVX2 build
/// uses movemask directly; the result is identical either way.
inline std::uint64_t nonzero_lanes_f(const float* v) {
#if defined(__AVX2__)
  std::uint64_t m = 0;
  const __m256 zero = _mm256_setzero_ps();
  for (int b = 0; b < 8; ++b) {
    const __m256 x = _mm256_loadu_ps(v + 8 * b);
    const unsigned bits = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(x, zero, _CMP_NEQ_OQ)));
    m |= static_cast<std::uint64_t>(bits) << (8 * b);
  }
  return m;
#else
  std::uint64_t m = 0;
  for (int l = 0; l < kBatchLanes; ++l) {
    m |= static_cast<std::uint64_t>(v[l] != 0.0f) << l;
  }
  return m;
#endif
}

/// Per-lane pass weight of one input, matching the scalar pass_weight():
/// controlling value -> (changed ? kBlockedPass : kStableBlock), otherwise
/// known -> 1.0, unknown -> 0.5. All selects are exact 0/1 blends.
inline void lane_pass_weights(std::uint64_t is_ctrl, std::uint64_t ch,
                              std::uint64_t known, float* w) {
  alignas(32) float fc[kBatchLanes], fch[kBatchLanes], fk[kBatchLanes];
  mask_lanes_f(is_ctrl, fc);
  mask_lanes_f(ch, fch);
  mask_lanes_f(known, fk);
  for (int l = 0; l < kBatchLanes; ++l) {
    const float ctrl_w = fch[l] * density_model::kBlockedPass +
                         (1.0f - fch[l]) * density_model::kStableBlock;
    const float open_w = fk[l] * 1.0f + (1.0f - fk[l]) * 0.5f;
    w[l] = fc[l] * ctrl_w + (1.0f - fc[l]) * open_w;
  }
}

}  // namespace

void AGINGSIM_SWEEP_FN(SweepContext& ctx) {
  const Netlist& nl = *ctx.netlist;
  const int lanes = ctx.lanes;
  const std::uint64_t lane_mask = ctx.lane_mask;
  StepResult* res = ctx.results;

  static constexpr float kZeroDens[kBatchLanes] = {};

  // Word-local accumulator lanes. StepResult is an array of structs, so
  // accumulating into it directly strides every lane access; these dense
  // lanes vectorize and are written back once at the end. The per-lane
  // accumulation order is untouched: inputs first, then gates ascending —
  // exactly the scalar kernel's order. Toggle counts accumulate in float
  // (one gate adds 0.0 or 1.0; totals stay far below 2^24, so every
  // increment is exact).
  alignas(32) double cap_acc[kBatchLanes];
  alignas(32) double settle_acc[kBatchLanes];
  alignas(32) float tog_cnt[kBatchLanes];
  for (int l = 0; l < kBatchLanes; ++l) {
    cap_acc[l] = l < lanes ? res[l].switched_cap_ff : 0.0;
    settle_acc[l] = l < lanes ? res[l].settle_ps : 0.0;
    tog_cnt[l] = 0.0f;
  }
  std::uint64_t gates_done = 0;

  // ---- primary inputs (all transitions land at t = 0) ----
  const auto input_nets = nl.input_nets();
  for (std::size_t i = 0; i < input_nets.size(); ++i) {
    const NetId net = input_nets[i];
    const std::uint64_t p0 = ctx.input_bits[i] & lane_mask;
    const std::uint64_t lv = static_cast<std::uint64_t>(ctx.last_value[net]);
    // Lane l changed iff it differs from lane l-1 (lane -1 = carried value).
    const std::uint64_t prev0 = (p0 << 1) | (lv & 1u);
    const std::uint64_t prev1 = (lv >> 1) & 1u;  // input plane1 is all-zero
    const std::uint64_t ch = ((p0 ^ prev0) | prev1) & lane_mask;
    if (ch == 0) continue;  // stable across the whole word: not stamped
    ctx.plane0[net] = p0;
    ctx.plane1[net] = 0;
    ctx.changed[net] = ch;
    ctx.active[net] = ch;
    ctx.word_epoch[net] = ctx.epoch;
    float* const dens = ctx.density + std::size_t(net) * kBatchLanes;
    double* const arr = ctx.arrival + std::size_t(net) * kBatchLanes;
    // A changed input seeds one transition of density and arrives at t = 0.
    mask_lanes_f(ch, dens);
    std::memset(arr, 0, sizeof(double) * kBatchLanes);
    // Input bits are register-driven known values, so every changed lane
    // charges the input cap (the scalar is_known(nv) check always holds).
    for (int l = 0; l < kBatchLanes; ++l) {
      cap_acc[l] += dens[l] * density_model::kInputCapFf;
    }
    ctx.last_value[net] =
        ((p0 >> (lanes - 1)) & 1u) != 0 ? Logic::kOne : Logic::kZero;
  }

  // ---- gates, ascending id (topological order == the scalar kernels'
  // floating-point accumulation order) ----
  const auto* tcur = ctx.transient_masks.data();
  const auto* tend = tcur + ctx.transient_masks.size();
  const auto* fcur = ctx.forced_gates.data();
  const auto* fend = fcur + ctx.forced_gates.size();
  const GateId num_gates = static_cast<GateId>(nl.num_gates());

  for (GateId g = 0; g < num_gates; ++g) {
    const Gate& gate = nl.gate(g);
    const auto ins = nl.gate_inputs(g);
    const std::size_t nin = ins.size();

    // Materialize the input lane words (epoch-gated: an unstamped net is a
    // broadcast of its carried value with zero change/density).
    std::uint64_t ip0[3], ip1[3], ich[3];
    const float* idens[3];
    const double* iarr[3];
    std::uint64_t union_active = 0;
    for (std::size_t k = 0; k < nin; ++k) {
      const NetId n = ins[k];
      if (ctx.word_epoch[n] == ctx.epoch) {
        ip0[k] = ctx.plane0[n];
        ip1[k] = ctx.plane1[n];
        ich[k] = ctx.changed[n];
        union_active |= ctx.active[n];
        idens[k] = ctx.density + std::size_t(n) * kBatchLanes;
      } else {
        const std::uint64_t c = static_cast<std::uint64_t>(ctx.last_value[n]);
        ip0[k] = (c & 1u) != 0 ? lane_mask : 0;
        ip1[k] = (c >> 1) != 0 ? lane_mask : 0;
        ich[k] = 0;
        idens[k] = kZeroDens;
      }
      iarr[k] = ctx.arrival + std::size_t(n) * kBatchLanes;
    }

    std::uint64_t tmask = 0;
    while (tcur != tend && tcur->first < g) ++tcur;
    if (tcur != tend && tcur->first == g) tmask = tcur->second;
    bool forced = false;
    while (fcur != fend && *fcur < g) ++fcur;
    if (fcur != fend && *fcur == g) forced = true;

    // Word-granular skip: no lane of any fanin is active, no strike lands
    // here, nothing to re-establish -> the gate is inert in every lane.
    if (!ctx.force_all && union_active == 0 && tmask == 0 && !forced) {
      continue;
    }
    ++gates_done;

    // -- value planes (exact eval_cell over all lanes) --
    std::uint64_t o0 = 0, o1 = 0;
    switch (gate.kind) {
      case CellKind::kBuf:  // known passes; X/Z -> X
        o0 = ip0[0] & ~ip1[0];
        o1 = ip1[0];
        break;
      case CellKind::kInv:
        o0 = ~ip0[0] & ~ip1[0];
        o1 = ip1[0];
        break;
      case CellKind::kAnd2: {
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) | (~ip0[1] & ~ip1[1]);
        const std::uint64_t one = (ip0[0] & ~ip1[0]) & (ip0[1] & ~ip1[1]);
        o0 = one;
        o1 = ~(z | one);
        break;
      }
      case CellKind::kNand2: {
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) | (~ip0[1] & ~ip1[1]);
        const std::uint64_t one = (ip0[0] & ~ip1[0]) & (ip0[1] & ~ip1[1]);
        o0 = z;
        o1 = ~(z | one);
        break;
      }
      case CellKind::kOr2: {
        const std::uint64_t one = (ip0[0] & ~ip1[0]) | (ip0[1] & ~ip1[1]);
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) & (~ip0[1] & ~ip1[1]);
        o0 = one;
        o1 = ~(one | z);
        break;
      }
      case CellKind::kNor2: {
        const std::uint64_t one = (ip0[0] & ~ip1[0]) | (ip0[1] & ~ip1[1]);
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) & (~ip0[1] & ~ip1[1]);
        o0 = z;
        o1 = ~(one | z);
        break;
      }
      case CellKind::kXor2: {
        const std::uint64_t kk = ~ip1[0] & ~ip1[1];
        o0 = kk & (ip0[0] ^ ip0[1]);
        o1 = ~kk;
        break;
      }
      case CellKind::kXnor2: {
        const std::uint64_t kk = ~ip1[0] & ~ip1[1];
        o0 = kk & ~(ip0[0] ^ ip0[1]);
        o1 = ~kk;
        break;
      }
      case CellKind::kAnd3: {
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) | (~ip0[1] & ~ip1[1]) |
                                (~ip0[2] & ~ip1[2]);
        const std::uint64_t one =
            (ip0[0] & ~ip1[0]) & (ip0[1] & ~ip1[1]) & (ip0[2] & ~ip1[2]);
        o0 = one;
        o1 = ~(z | one);
        break;
      }
      case CellKind::kOr3: {
        const std::uint64_t one =
            (ip0[0] & ~ip1[0]) | (ip0[1] & ~ip1[1]) | (ip0[2] & ~ip1[2]);
        const std::uint64_t z = (~ip0[0] & ~ip1[0]) & (~ip0[1] & ~ip1[1]) &
                                (~ip0[2] & ~ip1[2]);
        o0 = one;
        o1 = ~(one | z);
        break;
      }
      case CellKind::kMux2: {
        const std::uint64_t sz = ~ip0[2] & ~ip1[2];
        const std::uint64_t so = ip0[2] & ~ip1[2];
        const std::uint64_t su = ~(sz | so);
        const std::uint64_t b00 = ip0[0] & ~ip1[0];  // buf(d0)
        const std::uint64_t b10 = ip0[1] & ~ip1[1];  // buf(d1)
        // Unknown select resolves only when d0 is known and equals d1.
        const std::uint64_t agree =
            ~ip1[0] & ~((ip0[0] ^ ip0[1]) | (ip1[0] ^ ip1[1]));
        o0 = (sz & b00) | (so & b10) | (su & agree & ip0[0]);
        o1 = (sz & ip1[0]) | (so & ip1[1]) | (su & ~agree);
        break;
      }
      case CellKind::kTbuf: {
        // Keeper chain is inherently serial across lanes; tri-state counts
        // are small, so a 64-step scalar loop is fine.
        Logic cur = ctx.last_value[gate.out];
        for (int l = 0; l < lanes; ++l) {
          const auto dcode = static_cast<Logic>(((ip0[0] >> l) & 1u) |
                                                (((ip1[0] >> l) & 1u) << 1));
          const auto en = static_cast<Logic>(((ip0[1] >> l) & 1u) |
                                             (((ip1[1] >> l) & 1u) << 1));
          Logic v;
          if (en == Logic::kOne) {
            v = is_known(dcode) ? dcode : Logic::kX;
          } else if (en == Logic::kZero) {
            v = cur;  // bus keeper (Z stays Z until driven)
          } else {
            v = Logic::kX;
          }
          o0 |= (static_cast<std::uint64_t>(v) & 1u) << l;
          o1 |= ((static_cast<std::uint64_t>(v) >> 1) & 1u) << l;
          cur = v;
        }
        break;
      }
      case CellKind::kTie0:
        break;  // constant 00
      case CellKind::kTie1:
        o0 = lane_mask;
        break;
      case CellKind::kCount:
        break;
    }

    if (ctx.overlay != nullptr) {
      // Stuck-at forces the output unconditionally; a transient then
      // inverts whatever would have settled (X stays X) — same order as
      // the scalar kernel.
      const Logic stuck = ctx.overlay->stuck_value(g);
      if (stuck != Logic::kX) {
        o0 = stuck == Logic::kOne ? ~std::uint64_t{0} : 0;
        o1 = 0;
      }
    }
    if (tmask != 0) {
      const std::uint64_t flipped0 = ~o0 & ~o1;  // logic_not: Z also -> X
      o0 = (o0 & ~tmask) | (flipped0 & tmask);
    }
    o0 &= lane_mask;
    o1 &= lane_mask;

    const NetId out = gate.out;
    const std::uint64_t lv = static_cast<std::uint64_t>(ctx.last_value[out]);
    const std::uint64_t prev0 = (o0 << 1) | (lv & 1u);
    const std::uint64_t prev1 = (o1 << 1) | ((lv >> 1) & 1u);
    const std::uint64_t ch = ((o0 ^ prev0) | (o1 ^ prev1)) & lane_mask;
    // A toggle is a known -> known value change.
    const std::uint64_t tog = ch & ~o1 & ~prev1;

    // -- transition density lanes (same per-lane op order as the scalar
    // formulas in TimingSim::evaluate_gate), computed in place in the
    // output net's lane array. Writing before the act != 0 decision is
    // safe: word_epoch is bumped only by the stamp below, so an unstamped
    // net's scribbled lanes are unreachable. --
    float* const __restrict od = ctx.density + std::size_t(out) * kBatchLanes;
    switch (gate.kind) {
      case CellKind::kBuf:
      case CellKind::kInv:
        std::memcpy(od, idens[0], sizeof(float) * kBatchLanes);
        break;
      case CellKind::kXor2:
      case CellKind::kXnor2: {
        const float* const d0 = idens[0];
        const float* const d1 = idens[1];
        for (int l = 0; l < kBatchLanes; ++l) od[l] = d0[l] + d1[l];
        break;
      }
      case CellKind::kAnd2:
      case CellKind::kNand2:
      case CellKind::kOr2:
      case CellKind::kNor2: {
        const bool ctrl_one = gate.kind == CellKind::kOr2 ||
                              gate.kind == CellKind::kNor2;
        std::uint64_t isc[2];
        for (int k = 0; k < 2; ++k) {
          isc[k] = ctrl_one ? (ip0[k] & ~ip1[k]) : (~ip0[k] & ~ip1[k]);
        }
        alignas(32) float w0[kBatchLanes], w1[kBatchLanes];
        lane_pass_weights(isc[0], ich[0], ~ip1[0], w0);
        lane_pass_weights(isc[1], ich[1], ~ip1[1], w1);
        const float* const d0 = idens[0];
        const float* const d1 = idens[1];
        for (int l = 0; l < kBatchLanes; ++l) {
          od[l] = d0[l] * w1[l] + d1[l] * w0[l];
        }
        break;
      }
      case CellKind::kAnd3:
      case CellKind::kOr3: {
        const bool ctrl_one = gate.kind == CellKind::kOr3;
        alignas(32) float pw[3][kBatchLanes];
        for (int k = 0; k < 3; ++k) {
          const std::uint64_t isc =
              ctrl_one ? (ip0[k] & ~ip1[k]) : (~ip0[k] & ~ip1[k]);
          lane_pass_weights(isc, ich[k], ~ip1[k], pw[k]);
        }
        const float* const d0 = idens[0];
        const float* const d1 = idens[1];
        const float* const d2 = idens[2];
        for (int l = 0; l < kBatchLanes; ++l) {
          // Scalar: w starts at 1.0f and multiplies the other two pass
          // weights in ascending j; 1.0f * x is exact, so one product each.
          float acc = d0[l] * (pw[1][l] * pw[2][l]);
          acc += d1[l] * (pw[0][l] * pw[2][l]);
          acc += d2[l] * (pw[0][l] * pw[1][l]);
          od[l] = acc;
        }
        break;
      }
      case CellKind::kMux2: {
        const std::uint64_t so = ip0[2] & ~ip1[2];  // sel == One
        const std::uint64_t neq =
            (ip0[0] ^ ip0[1]) | (ip1[0] ^ ip1[1]);  // d0 != d1 (enum)
        alignas(32) float fso[kBatchLanes], fch2[kBatchLanes],
            fneq[kBatchLanes];
        mask_lanes_f(so, fso);
        mask_lanes_f(ich[2], fch2);
        mask_lanes_f(neq, fneq);
        const float* const d0 = idens[0];
        const float* const d1 = idens[1];
        const float* const d2 = idens[2];
        for (int l = 0; l < kBatchLanes; ++l) {
          const float unselected =
              fch2[l] * density_model::kBlockedPass +
              (1.0f - fch2[l]) * density_model::kStableBlock;
          const float d_sel = fso[l] * d1[l] + (1.0f - fso[l]) * d0[l];
          const float d_uns = fso[l] * d0[l] + (1.0f - fso[l]) * d1[l];
          float acc = fneq[l] * d2[l];
          acc += d_sel;
          acc += unselected * d_uns;
          od[l] = acc;
        }
        break;
      }
      case CellKind::kTbuf: {
        const std::uint64_t eo = ip0[1] & ~ip1[1];  // enable == One
        alignas(32) float feo[kBatchLanes];
        mask_lanes_f(eo, feo);
        const float* const d0 = idens[0];
        const float* const d1 = idens[1];
        for (int l = 0; l < kBatchLanes; ++l) {
          const float enabled = d0[l] + 0.5f * d1[l];
          const float disabled = density_model::kBlockedPass * d1[l];
          od[l] = feo[l] * enabled + (1.0f - feo[l]) * disabled;
        }
        break;
      }
      case CellKind::kTie0:
      case CellKind::kTie1:
      case CellKind::kCount:
        std::memset(od, 0, sizeof(float) * kBatchLanes);
        break;
    }

    // -- per-lane finalize: toggle bump, clamp, energy, bookkeeping. The
    // bump `d = d < tf ? tf : d` with tf in {0, 1} is the scalar
    // `if (toggled && d < 1) d = 1` — densities are never negative, so a
    // zero tf never lifts d. --
    alignas(32) float tf[kBatchLanes];
    mask_lanes_f(tog, tf);
    for (int l = 0; l < kBatchLanes; ++l) {
      float d = od[l];
      d = d < tf[l] ? tf[l] : d;
      od[l] = std::min(d, density_model::kDensityClamp);
      tog_cnt[l] += tf[l];
    }
    const double half_cap = 0.5 * ctx.cell_cap_ff[g];
    for (int l = 0; l < kBatchLanes; ++l) {
      cap_acc[l] += half_cap * static_cast<double>(od[l]);
    }
    const std::uint64_t dens_nonzero = nonzero_lanes_f(od) & lane_mask;

    // -- sensitized arrival lanes (changed lanes only feed settle; stores
    // for unchanged lanes are dead, masked off by `changed` at every read).
    // Per gate kind ONE fused single-pass loop computes the arrival, the
    // store and the settle max — intermediate lane arrays cost more than
    // the arithmetic. Each lane evaluates the same op sequence as the
    // scalar kernel: v_k = changed_k * arr_k (exact: +0.0 or arr_k), the
    // latest-changed running max seeded at 0, and for controlled gates the
    // first-wins min over controlling inputs via the +inf sentinel. --
    if (ch != 0) {
      double* const __restrict oarr =
          ctx.arrival + std::size_t(out) * kBatchLanes;
      const double gd = ctx.base_delay_ps[g];

      alignas(32) double chd[3][kBatchLanes];
      for (std::size_t k = 0; k < nin; ++k) mask_lanes_d(ich[k], chd[k]);
      alignas(32) double chdo[kBatchLanes];
      mask_lanes_d(ch, chdo);

      Logic ctrl = Logic::kX;
      std::uint64_t cm = 0;  // lanes where the controlling value decides
      switch (gate.kind) {
        case CellKind::kAnd2:
        case CellKind::kAnd3:
          ctrl = Logic::kZero;
          cm = ~o0 & ~o1 & lane_mask;
          break;
        case CellKind::kNand2:
          ctrl = Logic::kZero;
          cm = o0 & ~o1;
          break;
        case CellKind::kOr2:
        case CellKind::kOr3:
          ctrl = Logic::kOne;
          cm = o0 & ~o1;
          break;
        case CellKind::kNor2:
          ctrl = Logic::kOne;
          cm = ~o0 & ~o1 & lane_mask;
          break;
        default:
          break;
      }
      if (ctrl != Logic::kX) {
        // Earliest input holding the controlling value decides. The scalar
        // first-wins running min (`!found || v < best`) is reproduced by
        // masking non-holding inputs to +inf: the first holder always
        // wins, later ones only on strict <.
        const double inf = std::numeric_limits<double>::infinity();
        std::uint64_t isc[3];
        std::uint64_t found_bits = 0;
        for (std::size_t k = 0; k < nin; ++k) {
          isc[k] = ctrl == Logic::kOne ? (ip0[k] & ~ip1[k])
                                       : (~ip0[k] & ~ip1[k]);
          found_bits |= isc[k];
        }
        // When the output planes came straight from eval_cell, a lane
        // showing the controlled result has, by construction of z/one,
        // at least one input at the controlling value: cm ⊆ found. Only a
        // stuck-at or transient-forced output breaks that, and only then
        // does the scalar `found` fallback (settle at 0) ever fire.
        const bool need_found = (cm & ~found_bits) != 0;
        alignas(32) double iscd[3][kBatchLanes];
        for (std::size_t k = 0; k < nin; ++k) mask_lanes_d(isc[k], iscd[k]);
        alignas(32) double cmd[kBatchLanes];
        mask_lanes_d(cm, cmd);
        alignas(32) double fnd[kBatchLanes];
        if (need_found) mask_lanes_d(found_bits, fnd);

        if (nin == 2 && !need_found) {
          for (int l = 0; l < kBatchLanes; ++l) {
            const double v0 = chd[0][l] * iarr[0][l];
            const double v1 = chd[1][l] * iarr[1][l];
            double t = v0 > 0.0 ? v0 : 0.0;
            t = v1 > t ? v1 : t;
            double best = iscd[0][l] != 0.0 ? v0 : inf;
            const double c1 = iscd[1][l] != 0.0 ? v1 : inf;
            best = c1 < best ? c1 : best;
            const double o = (cmd[l] != 0.0 ? best : t) + gd;
            oarr[l] = o;
            const double s = chdo[l] * o;
            settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
          }
        } else if (nin == 2) {
          for (int l = 0; l < kBatchLanes; ++l) {
            const double v0 = chd[0][l] * iarr[0][l];
            const double v1 = chd[1][l] * iarr[1][l];
            double t = v0 > 0.0 ? v0 : 0.0;
            t = v1 > t ? v1 : t;
            double best = iscd[0][l] != 0.0 ? v0 : inf;
            const double c1 = iscd[1][l] != 0.0 ? v1 : inf;
            best = c1 < best ? c1 : best;
            const double a_ctrl = fnd[l] != 0.0 ? best : 0.0;
            const double o = (cmd[l] != 0.0 ? a_ctrl : t) + gd;
            oarr[l] = o;
            const double s = chdo[l] * o;
            settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
          }
        } else if (!need_found) {  // nin == 3
          for (int l = 0; l < kBatchLanes; ++l) {
            const double v0 = chd[0][l] * iarr[0][l];
            const double v1 = chd[1][l] * iarr[1][l];
            const double v2 = chd[2][l] * iarr[2][l];
            double t = v0 > 0.0 ? v0 : 0.0;
            t = v1 > t ? v1 : t;
            t = v2 > t ? v2 : t;
            double best = iscd[0][l] != 0.0 ? v0 : inf;
            const double c1 = iscd[1][l] != 0.0 ? v1 : inf;
            best = c1 < best ? c1 : best;
            const double c2 = iscd[2][l] != 0.0 ? v2 : inf;
            best = c2 < best ? c2 : best;
            const double o = (cmd[l] != 0.0 ? best : t) + gd;
            oarr[l] = o;
            const double s = chdo[l] * o;
            settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
          }
        } else {  // nin == 3, stuck/struck output
          for (int l = 0; l < kBatchLanes; ++l) {
            const double v0 = chd[0][l] * iarr[0][l];
            const double v1 = chd[1][l] * iarr[1][l];
            const double v2 = chd[2][l] * iarr[2][l];
            double t = v0 > 0.0 ? v0 : 0.0;
            t = v1 > t ? v1 : t;
            t = v2 > t ? v2 : t;
            double best = iscd[0][l] != 0.0 ? v0 : inf;
            const double c1 = iscd[1][l] != 0.0 ? v1 : inf;
            best = c1 < best ? c1 : best;
            const double c2 = iscd[2][l] != 0.0 ? v2 : inf;
            best = c2 < best ? c2 : best;
            const double a_ctrl = fnd[l] != 0.0 ? best : 0.0;
            const double o = (cmd[l] != 0.0 ? a_ctrl : t) + gd;
            oarr[l] = o;
            const double s = chdo[l] * o;
            settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
          }
        }
      } else if (gate.kind == CellKind::kMux2) {
        const std::uint64_t so = ip0[2] & ~ip1[2];
        alignas(32) double sod[kBatchLanes];
        mask_lanes_d(so, sod);
        for (int l = 0; l < kBatchLanes; ++l) {
          // Selected data input if it changed, else 0; a changed select
          // that arrives later overrides — the scalar mux settle.
          const double v0 = chd[0][l] * iarr[0][l];
          const double v1 = chd[1][l] * iarr[1][l];
          double a = sod[l] != 0.0 ? v1 : v0;
          const double v2 = chd[2][l] * iarr[2][l];
          a = v2 > a ? v2 : a;
          const double o = a + gd;
          oarr[l] = o;
          const double s = chdo[l] * o;
          settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
        }
      } else if (gate.kind == CellKind::kTbuf) {
        for (int l = 0; l < kBatchLanes; ++l) {
          const double a0 = chd[0][l] * iarr[0][l];
          const double a1 = chd[1][l] * iarr[1][l];
          const double o = (a0 > a1 ? a0 : a1) + gd;
          oarr[l] = o;
          const double s = chdo[l] * o;
          settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
        }
      } else if (nin == 2) {  // Xor2/Xnor2: latest changed input
        for (int l = 0; l < kBatchLanes; ++l) {
          const double v0 = chd[0][l] * iarr[0][l];
          const double v1 = chd[1][l] * iarr[1][l];
          double t = v0 > 0.0 ? v0 : 0.0;
          t = v1 > t ? v1 : t;
          const double o = t + gd;
          oarr[l] = o;
          const double s = chdo[l] * o;
          settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
        }
      } else if (nin == 1) {  // Buf/Inv
        for (int l = 0; l < kBatchLanes; ++l) {
          const double v0 = chd[0][l] * iarr[0][l];
          const double t = v0 > 0.0 ? v0 : 0.0;
          const double o = t + gd;
          oarr[l] = o;
          const double s = chdo[l] * o;
          settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
        }
      } else {  // fanin-free (Tie under a transient): arrival is just gd
        for (int l = 0; l < kBatchLanes; ++l) {
          const double o = 0.0 + gd;
          oarr[l] = o;
          const double s = chdo[l] * o;
          settle_acc[l] = s > settle_acc[l] ? s : settle_acc[l];
        }
      }
    }

    // -- stamp the output net (skip when inert in every lane, exactly like
    // the scalar early-out: value unchanged and density clamped to 0) --
    const std::uint64_t act = ch | dens_nonzero;
    if (act != 0) {
      ctx.plane0[out] = o0;
      ctx.plane1[out] = o1;
      ctx.changed[out] = ch;
      ctx.active[out] = act;
      ctx.word_epoch[out] = ctx.epoch;
      ctx.last_value[out] =
          static_cast<Logic>(((o0 >> (lanes - 1)) & 1u) |
                             (((o1 >> (lanes - 1)) & 1u) << 1));
    }
  }

  ctx.gates_processed += gates_done;
  for (int l = 0; l < lanes; ++l) {
    res[l].switched_cap_ff = cap_acc[l];
    res[l].settle_ps = settle_acc[l];
    res[l].toggles += static_cast<std::uint64_t>(tog_cnt[l]);
    res[l].gates_evaluated += gates_done;
  }
}
