#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Result of a legacy (max-only) static timing analysis pass.
struct StaResult {
  /// Worst-case arrival time (ps) of every net, inputs at t = 0.
  std::vector<double> arrival_ps;
  /// Max arrival over the primary outputs: the critical-path delay. This is
  /// the cycle period a fixed-latency design must use (paper Section II-C).
  double critical_path_ps = 0.0;
};

/// One analysis corner: a label plus an optional per-gate delay multiplier
/// overlay (the aging overlay produced by src/aging/; empty means every gate
/// runs at its nominal library delay). Corners compose fresh/aged silicon
/// with any per-gate derating in one object, so a multi-corner run covers
/// "fresh", "year-3.5", "year-7", ... in a single graph traversal.
struct StaCorner {
  std::string name;
  /// One multiplier per gate, or empty for 1.0 everywhere.
  std::vector<double> gate_delay_scale;
};

/// Min/max arrivals of every net at one corner.
///
/// `max_arrival_ps` is the latest settle time (setup side): every gate's
/// output is max(input arrivals) + delay — identical to the legacy
/// `run_sta` numbers, bit for bit.
///
/// `min_arrival_ps` is the *earliest time the net can change* after the
/// launch edge (hold side): min over all input arcs + delay. Tri-state
/// buffers deliberately include the enable arc in the min plane — a bypass
/// select toggling can propagate new data through a kTbuf as soon as the
/// enable arrives, even when the data pin is still settling. The legacy
/// "always enabled" reading (correct as a max-side worst case) would drop
/// that arc, because a statically-enabled buffer's enable never transitions;
/// for min analysis that is unsound and hides exactly the short paths the
/// Razor shadow window is vulnerable to.
struct CornerTiming {
  std::string name;
  std::vector<double> min_arrival_ps;
  std::vector<double> max_arrival_ps;
  /// Max over the primary outputs of `max_arrival_ps` (setup-critical path).
  double critical_path_ps = 0.0;
  /// Min over the primary outputs of `min_arrival_ps` (the shortest path a
  /// hold/shadow-window constraint has to live with); +inf with no outputs.
  double earliest_output_ps = 0.0;
};

/// One `StaEngine::run`: per-corner min/max arrivals, corners in call order.
struct MinMaxStaResult {
  std::vector<CornerTiming> corners;
};

/// Levelized, struct-of-arrays min/max static timing engine.
///
/// Construction validates the netlist (cell kinds in the library, pin
/// windows in bounds, topological net order) and builds a level schedule —
/// gates grouped by topological level, level-major — plus a flat per-gate
/// nominal-delay table. A `run` then propagates the earliest and latest
/// arrival of every net across *all* requested corners in one traversal of
/// that schedule: the per-corner arrival planes are separate flat arrays
/// (struct-of-arrays), and each gate is visited exactly once with an inner
/// corner loop, so adding corners costs arithmetic, not graph walks.
///
/// Throws std::invalid_argument from the constructor when the netlist is
/// structurally broken; lint rules rely on that (the LintEngine converts a
/// throwing rule into an error diagnostic instead of crashing).
class StaEngine {
 public:
  StaEngine(const Netlist& netlist, const TechLibrary& tech);

  /// Min/max arrivals for every corner in one levelized pass. Each corner's
  /// `gate_delay_scale` must be empty or sized one-per-gate (throws
  /// std::invalid_argument otherwise).
  MinMaxStaResult run(std::span<const StaCorner> corners) const;

  /// Single-corner convenience.
  CornerTiming run_corner(const StaCorner& corner) const;

  /// Downstream path-delay bounds from every net to a set of endpoint nets:
  /// `min_ps[n]` / `max_ps[n]` are the shortest / longest additional delay
  /// from a transition on net `n` to any endpoint (0 when `n` itself is an
  /// endpoint, +inf / -inf when no endpoint is reachable). Combined with
  /// `run`'s forward arrivals this gives per-edge hold and setup slacks —
  /// what the hold-repair pass uses to prove a delay buffer is safe to
  /// insert. `endpoint_net` holds one flag per net.
  struct Downstream {
    std::vector<double> min_ps;
    std::vector<double> max_ps;
  };
  Downstream downstream(const StaCorner& corner,
                        std::span<const std::uint8_t> endpoint_net) const;

  int num_levels() const noexcept { return num_levels_; }
  /// Gates of one topological level, ascending gate id within the level.
  std::span<const GateId> level_gates(int level) const;

  const Netlist& netlist() const noexcept { return *netlist_; }

 private:
  void check_corner(const StaCorner& corner) const;
  CornerTiming forward(const StaCorner& corner) const;

  const Netlist* netlist_;
  const TechLibrary* tech_;
  std::vector<double> base_delay_ps_;   // per gate, nominal library delay
  std::vector<GateId> level_order_;     // gates, level-major
  std::vector<std::uint32_t> level_begin_;  // size num_levels_ + 1
  int num_levels_ = 0;
};

/// Legacy value-independent worst-case timing — the **max corner only**.
/// Every gate's output arrival is max(input arrivals) + gate delay;
/// tri-state buffers are treated as always enabled, which is a conservative
/// worst case *for late settles only*. This entry point has no min-delay
/// plane and must not be used for hold / short-path reasoning: a min
/// analysis derived from the same always-enabled assumption would drop the
/// tbuf enable arc and overestimate how slow the fastest path is. Use
/// `StaEngine` (whose max plane is exactly `==` these numbers) wherever
/// earliest arrivals matter. `gate_delay_scale`, if non-empty, gives a
/// per-gate delay multiplier; it must have one entry per gate.
StaResult run_sta(const Netlist& netlist, const TechLibrary& tech,
                  std::span<const double> gate_delay_scale = {});

}  // namespace agingsim
