#pragma once

#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Result of a static timing analysis pass.
struct StaResult {
  /// Worst-case arrival time (ps) of every net, inputs at t = 0.
  std::vector<double> arrival_ps;
  /// Max arrival over the primary outputs: the critical-path delay. This is
  /// the cycle period a fixed-latency design must use (paper Section II-C).
  double critical_path_ps = 0.0;
};

/// Value-independent worst-case timing: every gate's output arrival is
/// max(input arrivals) + gate delay. Tri-state buffers are treated as always
/// enabled (worst case). `gate_delay_scale`, if non-empty, gives a per-gate
/// delay multiplier (the aging overlay produced by src/aging/); it must have
/// one entry per gate.
StaResult run_sta(const Netlist& netlist, const TechLibrary& tech,
                  std::span<const double> gate_delay_scale = {});

}  // namespace agingsim
