#include "src/sim/timing_sim.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace agingsim {
namespace {

constexpr double kInputCapFf = 1.0;  // driver + register output cap per PI

}  // namespace

TimingSim::TimingSim(const Netlist& netlist, const TechLibrary& tech,
                     std::span<const double> gate_delay_scale)
    : netlist_(&netlist), tech_(&tech) {
  base_delay_ps_.resize(netlist.num_gates());
  cell_cap_ff_.resize(netlist.num_gates());
  set_aging(gate_delay_scale);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    cell_cap_ff_[g] = tech.cap(netlist.gate(g).kind);
  }
  value_.assign(netlist.num_nets(), Logic::kX);
  arrival_.assign(netlist.num_nets(), 0.0);
  changed_.assign(netlist.num_nets(), 0);
  density_.assign(netlist.num_nets(), 0.0f);
}

void TimingSim::set_aging(std::span<const double> gate_delay_scale) {
  if (!gate_delay_scale.empty() &&
      gate_delay_scale.size() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "TimingSim::set_aging: need one multiplier per gate");
  }
  aging_scale_.assign(gate_delay_scale.begin(), gate_delay_scale.end());
  rebuild_delays();
}

void TimingSim::set_fault_overlay(const FaultOverlay* overlay) {
  if (overlay != nullptr && overlay->num_gates() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "TimingSim::set_fault_overlay: overlay sized for a different "
        "netlist");
  }
  overlay_ = overlay;
  rebuild_delays();
}

void TimingSim::rebuild_delays() {
  for (GateId g = 0; g < netlist_->num_gates(); ++g) {
    double d = tech_->delay(netlist_->gate(g).kind);
    if (!aging_scale_.empty()) d *= aging_scale_[g];
    if (overlay_ != nullptr) d *= overlay_->delay_factor(g);
    base_delay_ps_[g] = d;
  }
}

void TimingSim::load_bus(std::span<Logic> pattern_buffer, std::uint64_t value,
                         int width, int first_input) const {
  if (first_input + width > static_cast<int>(netlist_->num_inputs()) ||
      static_cast<std::size_t>(first_input + width) > pattern_buffer.size()) {
    throw std::invalid_argument("TimingSim::load_bus: bus out of range");
  }
  for (int i = 0; i < width; ++i) {
    pattern_buffer[static_cast<std::size_t>(first_input + i)] =
        logic_from_bool(((value >> i) & 1u) != 0);
  }
}

StepResult TimingSim::step(std::span<const Logic> input_values) {
  const Netlist& nl = *netlist_;
  if (input_values.size() != nl.num_inputs()) {
    throw std::invalid_argument("TimingSim::step: wrong input count");
  }
  StepResult result;

  // Apply primary inputs (all input transitions land at t = 0). A changed
  // input seeds one transition of density.
  const auto input_nets = nl.input_nets();
  for (std::size_t i = 0; i < input_nets.size(); ++i) {
    const NetId net = input_nets[i];
    const Logic nv = input_values[i];
    if (nv != value_[net]) {
      value_[net] = nv;
      arrival_[net] = 0.0;
      changed_[net] = 1;
      density_[net] = 1.0f;
      if (is_known(nv)) result.switched_cap_ff += kInputCapFf;
    } else {
      changed_[net] = 0;
      density_[net] = 0.0f;
    }
  }

  // One topological pass. The netlist's construction order is topological,
  // so a single forward sweep settles everything.
  //
  // Transition-density weights: an edge on one input of a controlled gate
  // propagates when the other inputs sit at non-controlling values (weight
  // 1). A controlling value that changed this step blocks edges only after
  // it lands (weight kBlockedPass for the window before); one that was
  // already stable blocks essentially everything (kStableBlock). Unknowns
  // are ambiguous (0.5).
  constexpr float kBlockedPass = 0.2f;
  constexpr float kStableBlock = 0.02f;
  constexpr float kDensityClamp = 32.0f;
  const auto pass_weight = [this](NetId net, Logic v, Logic controlling) {
    if (v == controlling) return changed_[net] ? kBlockedPass : kStableBlock;
    if (is_known(v)) return 1.0f;
    return 0.5f;
  };

  std::array<Logic, 4> in_vals;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const auto ins = nl.gate_inputs(g);
    for (std::size_t k = 0; k < ins.size(); ++k) in_vals[k] = value_[ins[k]];

    const Logic prev = value_[gate.out];
    Logic next = eval_cell(gate.kind, {in_vals.data(), ins.size()}, prev);
    if (overlay_ != nullptr) {
      // Fault overlay: a stuck-at forces the output unconditionally; a
      // transient armed for this cycle inverts whatever would have settled
      // (X stays X — a strike cannot conjure a known value).
      const Logic stuck = overlay_->stuck_value(g);
      if (stuck != Logic::kX) next = stuck;
      if (overlay_->has_transients() &&
          overlay_->transient_fires(g, step_index_)) {
        next = logic_not(next);
      }
    }

    // Glitch/activity estimate for this gate, independent of whether the
    // *final* value changed.
    float density = 0.0f;
    switch (gate.kind) {
      case CellKind::kBuf:
      case CellKind::kInv:
        density = density_[ins[0]];
        break;
      case CellKind::kXor2:
      case CellKind::kXnor2:
        density = density_[ins[0]] + density_[ins[1]];
        break;
      case CellKind::kAnd2:
      case CellKind::kNand2:
      case CellKind::kOr2:
      case CellKind::kNor2: {
        const Logic ctrl = (gate.kind == CellKind::kAnd2 ||
                            gate.kind == CellKind::kNand2)
                               ? Logic::kZero
                               : Logic::kOne;
        density = density_[ins[0]] * pass_weight(ins[1], in_vals[1], ctrl) +
                  density_[ins[1]] * pass_weight(ins[0], in_vals[0], ctrl);
        break;
      }
      case CellKind::kAnd3:
      case CellKind::kOr3: {
        const Logic ctrl =
            (gate.kind == CellKind::kAnd3) ? Logic::kZero : Logic::kOne;
        for (std::size_t k = 0; k < 3; ++k) {
          float w = 1.0f;
          for (std::size_t j = 0; j < 3; ++j) {
            if (j != k) w *= pass_weight(ins[j], in_vals[j], ctrl);
          }
          density += density_[ins[k]] * w;
        }
        break;
      }
      case CellKind::kMux2: {
        const std::size_t sel_k = (in_vals[2] == Logic::kOne) ? 1u : 0u;
        const float unselected =
            changed_[ins[2]] ? kBlockedPass : kStableBlock;
        // Select edges reach the output only while the two data inputs
        // disagree (a mux with equal data is select-insensitive — exact).
        const float sel_visible = (in_vals[0] != in_vals[1]) ? 1.0f : 0.0f;
        density = sel_visible * density_[ins[2]] + density_[ins[sel_k]] +
                  unselected * density_[ins[1 - sel_k]];
        break;
      }
      case CellKind::kTbuf:
        if (in_vals[1] == Logic::kOne) {
          // Enable edges matter only when the newly driven value differs
          // from the kept one; count them at half weight.
          density = density_[ins[0]] + 0.5f * density_[ins[1]];
        } else {
          // Disabled: the keeper is frozen; only the disable edge itself
          // moves charge.
          density = kBlockedPass * density_[ins[1]];
        }
        break;
      case CellKind::kTie0:
      case CellKind::kTie1:
      case CellKind::kCount:
        break;
    }

    if (next == prev) {
      changed_[gate.out] = 0;
      density_[gate.out] = std::min(density, kDensityClamp);
      result.switched_cap_ff += 0.5 * cell_cap_ff_[g] * density_[gate.out];
      continue;
    }
    value_[gate.out] = next;
    changed_[gate.out] = 1;
    if (is_known(prev) && is_known(next)) {
      ++result.toggles;
      if (density < 1.0f) density = 1.0f;  // the real toggle is an edge too
    }
    density_[gate.out] = std::min(density, kDensityClamp);
    result.switched_cap_ff += 0.5 * cell_cap_ff_[g] * density_[gate.out];

    // Sensitized arrival: earliest controlling input when the new value is
    // the controlled one, otherwise latest changed input. Stable inputs
    // contribute arrival 0 (they were settled before the step began).
    const auto in_arr = [&](std::size_t k) {
      return changed_[ins[k]] ? arrival_[ins[k]] : 0.0;
    };
    double arr = 0.0;
    Logic ctrl = Logic::kX;  // controlling input value, if the kind has one
    bool ctrl_makes_out = false;
    switch (gate.kind) {
      case CellKind::kAnd2:
      case CellKind::kAnd3:
        ctrl = Logic::kZero;
        ctrl_makes_out = (next == Logic::kZero);
        break;
      case CellKind::kNand2:
        ctrl = Logic::kZero;
        ctrl_makes_out = (next == Logic::kOne);
        break;
      case CellKind::kOr2:
      case CellKind::kOr3:
        ctrl = Logic::kOne;
        ctrl_makes_out = (next == Logic::kOne);
        break;
      case CellKind::kNor2:
        ctrl = Logic::kOne;
        ctrl_makes_out = (next == Logic::kZero);
        break;
      default:
        break;
    }
    if (ctrl_makes_out) {
      // Earliest input holding the controlling value decides the output.
      double best = -1.0;
      for (std::size_t k = 0; k < ins.size(); ++k) {
        if (in_vals[k] == ctrl) {
          const double a = in_arr(k);
          if (best < 0.0 || a < best) best = a;
        }
      }
      arr = best < 0.0 ? 0.0 : best;
    } else if (gate.kind == CellKind::kMux2) {
      const Logic sel = in_vals[2];
      const std::size_t data_k = (sel == Logic::kOne) ? 1u : 0u;
      arr = in_arr(data_k);
      if (changed_[ins[2]]) arr = std::max(arr, in_arr(2));
    } else if (gate.kind == CellKind::kTbuf) {
      // Only reached when enabled (disabled TBUF holds => next == prev).
      arr = std::max(in_arr(0), in_arr(1));
    } else {
      // Non-controlled settle: latest changed input.
      for (std::size_t k = 0; k < ins.size(); ++k) {
        if (changed_[ins[k]]) arr = std::max(arr, in_arr(k));
      }
    }
    arrival_[gate.out] = arr + base_delay_ps_[g];
    result.settle_ps = std::max(result.settle_ps, arrival_[gate.out]);
  }

  for (NetId out : nl.output_nets()) {
    if (changed_[out]) {
      result.output_settle_ps = std::max(result.output_settle_ps,
                                         arrival_[out]);
    }
  }
  ++step_index_;
  return result;
}

std::uint64_t TimingSim::output_bits() const {
  const auto outs = netlist_->output_nets();
  if (outs.size() > 64) {
    throw std::logic_error("TimingSim::output_bits: more than 64 outputs");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const Logic v = value_[outs[i]];
    if (!is_known(v)) {
      throw std::logic_error("TimingSim::output_bits: output " +
                             netlist_->output_name(i) + " is unknown");
    }
    if (logic_to_bool(v)) bits |= (std::uint64_t{1} << i);
  }
  return bits;
}

}  // namespace agingsim
