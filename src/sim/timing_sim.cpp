#include "src/sim/timing_sim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "src/core/env.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/density_model.hpp"

namespace agingsim {
namespace {

// Shared with the batch kernel's lane loops — same literals, or the
// kernel bit-identity guarantee breaks (see density_model.hpp).
using density_model::kBlockedPass;
using density_model::kDensityClamp;
using density_model::kInputCapFf;
using density_model::kStableBlock;

// Everything here accumulates per *step*, never per gate — the per-gate
// loops stay metric-free so an enabled run stays close to a disabled one.
struct SimMetrics {
  const obs::Counter& steps_dense = obs::counter("sim.steps_dense");
  const obs::Counter& steps_sparse = obs::counter("sim.steps_sparse");
  const obs::Counter& gates_evaluated = obs::counter("sim.gates_evaluated");
  // Why a sparse-mode sim fell back to a dense sweep this step:
  const obs::Counter& fallback_swap =
      obs::counter("sim.dense_fallback_swap");  // set_aging/set_fault_overlay
  const obs::Counter& fallback_transient =
      obs::counter("sim.dense_fallback_transient");  // strike or cleanup
  const obs::Counter& aging_swaps = obs::counter("sim.aging_swaps");
  const obs::Counter& overlay_swaps = obs::counter("sim.overlay_swaps");
};

const SimMetrics& sim_metrics() {
  static const SimMetrics m;
  return m;
}

}  // namespace

SimKernel resolve_kernel(SimKernel requested) {
  if (requested != SimKernel::kAuto) return requested;
  static constexpr const char* kChoices[] = {"dense", "sparse", "batch"};
  static constexpr SimKernel kKernels[] = {SimKernel::kDense,
                                           SimKernel::kSparse,
                                           SimKernel::kBatch};
  const auto idx = env::choice_var("AGINGSIM_KERNEL", kChoices);
  return idx.has_value() ? kKernels[*idx] : SimKernel::kSparse;
}

const char* kernel_name(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kAuto: return "auto";
    case SimKernel::kDense: return "dense";
    case SimKernel::kSparse: return "sparse";
    case SimKernel::kBatch: return "batch";
  }
  return "?";
}

TimingSim::TimingSim(const Netlist& netlist, const TechLibrary& tech,
                     std::span<const double> gate_delay_scale)
    : netlist_(&netlist), tech_(&tech) {
  base_delay_ps_.resize(netlist.num_gates());
  cell_cap_ff_.resize(netlist.num_gates());
  set_aging(gate_delay_scale);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    cell_cap_ff_[g] = tech.cap(netlist.gate(g).kind);
  }
  value_.assign(netlist.num_nets(), Logic::kX);
  arrival_.assign(netlist.num_nets(), 0.0);
  changed_.assign(netlist.num_nets(), 0);
  density_.assign(netlist.num_nets(), 0.0f);
  net_epoch_.assign(netlist.num_nets(), 0);
  queued_words_.assign((netlist.num_gates() + 63) / 64, 0);
}

void TimingSim::set_aging(std::span<const double> gate_delay_scale) {
  if (!gate_delay_scale.empty() &&
      gate_delay_scale.size() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "TimingSim::set_aging: need one multiplier per gate");
  }
  aging_scale_.assign(gate_delay_scale.begin(), gate_delay_scale.end());
  rebuild_delays();
  force_dense_ = true;
  sim_metrics().aging_swaps.add();
}

void TimingSim::set_fault_overlay(const FaultOverlay* overlay) {
  if (overlay != nullptr && overlay->num_gates() != netlist_->num_gates()) {
    throw std::invalid_argument(
        "TimingSim::set_fault_overlay: overlay sized for a different "
        "netlist");
  }
  overlay_ = overlay;
  rebuild_delays();
  // Installing or removing stuck-ats changes gate outputs without any fanin
  // edge; only a full sweep re-establishes (or releases) them everywhere.
  force_dense_ = true;
  sim_metrics().overlay_swaps.add();
}

void TimingSim::rebuild_delays() {
  for (GateId g = 0; g < netlist_->num_gates(); ++g) {
    double d = tech_->delay(netlist_->gate(g).kind);
    if (!aging_scale_.empty()) d *= aging_scale_[g];
    if (overlay_ != nullptr) d *= overlay_->delay_factor(g);
    base_delay_ps_[g] = d;
  }
}

void TimingSim::load_bus(std::span<Logic> pattern_buffer, std::uint64_t value,
                         int width, int first_input) const {
  if (first_input + width > static_cast<int>(netlist_->num_inputs()) ||
      static_cast<std::size_t>(first_input + width) > pattern_buffer.size()) {
    throw std::invalid_argument("TimingSim::load_bus: bus out of range");
  }
  for (int i = 0; i < width; ++i) {
    pattern_buffer[static_cast<std::size_t>(first_input + i)] =
        logic_from_bool(((value >> i) & 1u) != 0);
  }
}

template <bool kOverlay, bool kTransient>
bool TimingSim::evaluate_gate(GateId g, StepResult& result) {
  const Netlist& nl = *netlist_;
  const Gate& gate = nl.gate(g);
  const auto ins = nl.gate_inputs(g);
  std::array<Logic, 4> in_vals;
  for (std::size_t k = 0; k < ins.size(); ++k) in_vals[k] = value_[ins[k]];

  const Logic prev = value_[gate.out];
  Logic next = eval_cell(gate.kind, {in_vals.data(), ins.size()}, prev);
  if constexpr (kOverlay) {
    // Fault overlay: a stuck-at forces the output unconditionally; a
    // transient armed for this cycle inverts whatever would have settled
    // (X stays X — a strike cannot conjure a known value).
    const Logic stuck = overlay_->stuck_value(g);
    if (stuck != Logic::kX) next = stuck;
    if constexpr (kTransient) {
      if (overlay_->transient_fires(g, step_index_)) next = logic_not(next);
    }
  }

  const auto pass_weight = [this](NetId net, Logic v, Logic controlling) {
    if (v == controlling) return net_changed(net) ? kBlockedPass : kStableBlock;
    if (is_known(v)) return 1.0f;
    return 0.5f;
  };

  // Glitch/activity estimate for this gate, independent of whether the
  // *final* value changed. Every formula is linear in the input densities,
  // so a gate whose fanin is entirely stable computes exactly 0 — which is
  // what lets the sparse kernel skip it without changing any result.
  float density = 0.0f;
  switch (gate.kind) {
    case CellKind::kBuf:
    case CellKind::kInv:
      density = net_density(ins[0]);
      break;
    case CellKind::kXor2:
    case CellKind::kXnor2:
      density = net_density(ins[0]) + net_density(ins[1]);
      break;
    case CellKind::kAnd2:
    case CellKind::kNand2:
    case CellKind::kOr2:
    case CellKind::kNor2: {
      const Logic ctrl = (gate.kind == CellKind::kAnd2 ||
                          gate.kind == CellKind::kNand2)
                             ? Logic::kZero
                             : Logic::kOne;
      density = net_density(ins[0]) * pass_weight(ins[1], in_vals[1], ctrl) +
                net_density(ins[1]) * pass_weight(ins[0], in_vals[0], ctrl);
      break;
    }
    case CellKind::kAnd3:
    case CellKind::kOr3: {
      const Logic ctrl =
          (gate.kind == CellKind::kAnd3) ? Logic::kZero : Logic::kOne;
      for (std::size_t k = 0; k < 3; ++k) {
        float w = 1.0f;
        for (std::size_t j = 0; j < 3; ++j) {
          if (j != k) w *= pass_weight(ins[j], in_vals[j], ctrl);
        }
        density += net_density(ins[k]) * w;
      }
      break;
    }
    case CellKind::kMux2: {
      const std::size_t sel_k = (in_vals[2] == Logic::kOne) ? 1u : 0u;
      const float unselected =
          net_changed(ins[2]) ? kBlockedPass : kStableBlock;
      // Select edges reach the output only while the two data inputs
      // disagree (a mux with equal data is select-insensitive — exact).
      const float sel_visible = (in_vals[0] != in_vals[1]) ? 1.0f : 0.0f;
      density = sel_visible * net_density(ins[2]) + net_density(ins[sel_k]) +
                unselected * net_density(ins[1 - sel_k]);
      break;
    }
    case CellKind::kTbuf:
      if (in_vals[1] == Logic::kOne) {
        // Enable edges matter only when the newly driven value differs
        // from the kept one; count them at half weight.
        density = net_density(ins[0]) + 0.5f * net_density(ins[1]);
      } else {
        // Disabled: the keeper is frozen; only the disable edge itself
        // moves charge.
        density = kBlockedPass * net_density(ins[1]);
      }
      break;
    case CellKind::kTie0:
    case CellKind::kTie1:
    case CellKind::kCount:
      break;
  }

  ++result.gates_evaluated;
  if (next == prev) {
    const float clamped = std::min(density, kDensityClamp);
    if (clamped == 0.0f) return false;  // stable and glitch-free: inert
    net_epoch_[gate.out] = epoch_;
    changed_[gate.out] = 0;
    density_[gate.out] = clamped;
    result.switched_cap_ff += 0.5 * cell_cap_ff_[g] * clamped;
    return true;
  }
  value_[gate.out] = next;
  net_epoch_[gate.out] = epoch_;
  changed_[gate.out] = 1;
  if (is_known(prev) && is_known(next)) {
    ++result.toggles;
    if (density < 1.0f) density = 1.0f;  // the real toggle is an edge too
  }
  density_[gate.out] = std::min(density, kDensityClamp);
  result.switched_cap_ff += 0.5 * cell_cap_ff_[g] * density_[gate.out];

  // Sensitized arrival: earliest controlling input when the new value is
  // the controlled one, otherwise latest changed input. Stable inputs
  // contribute arrival 0 (they were settled before the step began).
  const auto in_arr = [&](std::size_t k) {
    return net_changed(ins[k]) ? arrival_[ins[k]] : 0.0;
  };
  double arr = 0.0;
  Logic ctrl = Logic::kX;  // controlling input value, if the kind has one
  bool ctrl_makes_out = false;
  switch (gate.kind) {
    case CellKind::kAnd2:
    case CellKind::kAnd3:
      ctrl = Logic::kZero;
      ctrl_makes_out = (next == Logic::kZero);
      break;
    case CellKind::kNand2:
      ctrl = Logic::kZero;
      ctrl_makes_out = (next == Logic::kOne);
      break;
    case CellKind::kOr2:
    case CellKind::kOr3:
      ctrl = Logic::kOne;
      ctrl_makes_out = (next == Logic::kOne);
      break;
    case CellKind::kNor2:
      ctrl = Logic::kOne;
      ctrl_makes_out = (next == Logic::kZero);
      break;
    default:
      break;
  }
  if (ctrl_makes_out) {
    // Earliest input holding the controlling value decides the output.
    double best = -1.0;
    for (std::size_t k = 0; k < ins.size(); ++k) {
      if (in_vals[k] == ctrl) {
        const double a = in_arr(k);
        if (best < 0.0 || a < best) best = a;
      }
    }
    arr = best < 0.0 ? 0.0 : best;
  } else if (gate.kind == CellKind::kMux2) {
    const Logic sel = in_vals[2];
    const std::size_t data_k = (sel == Logic::kOne) ? 1u : 0u;
    arr = in_arr(data_k);
    if (net_changed(ins[2])) arr = std::max(arr, in_arr(2));
  } else if (gate.kind == CellKind::kTbuf) {
    // Only reached when enabled (disabled TBUF holds => next == prev).
    arr = std::max(in_arr(0), in_arr(1));
  } else {
    // Non-controlled settle: latest changed input.
    for (std::size_t k = 0; k < ins.size(); ++k) {
      if (net_changed(ins[k])) arr = std::max(arr, in_arr(k));
    }
  }
  arrival_[gate.out] = arr + base_delay_ps_[g];
  result.settle_ps = std::max(result.settle_ps, arrival_[gate.out]);
  return true;
}

template <bool kOverlay, bool kTransient>
void TimingSim::run_dense(StepResult& result) {
  const GateId n = static_cast<GateId>(netlist_->num_gates());
  for (GateId g = 0; g < n; ++g) {
    evaluate_gate<kOverlay, kTransient>(g, result);
  }
}

template <bool kOverlay>
void TimingSim::run_sparse(StepResult& result) {
  const Netlist& nl = *netlist_;
  const Netlist::FanoutView fan = nl.fanout_view();
  // Pop queued gates lowest-id-first via the worklist bitmap, re-reading
  // each word after every pop: a consumer enqueued while draining always
  // has a larger id than the gate being processed (consumers are created
  // after their drivers), so it lands at the cursor or ahead of it. That
  // ascending-id schedule is both topologically valid and exactly the dense
  // kernel's floating-point accumulation order for switched_cap_ff — hence
  // bit-identical results. Bits are cleared as they are popped, leaving the
  // bitmap all-zero for the next step.
  for (std::size_t w = queued_min_word_;
       w <= queued_max_word_ && w < queued_words_.size(); ++w) {
    while (queued_words_[w] != 0) {
      const std::uint64_t bits = queued_words_[w];
      queued_words_[w] = bits & (bits - 1);  // clear lowest set bit
      const GateId g =
          static_cast<GateId>((w << 6) | std::countr_zero(bits));
      if (evaluate_gate<kOverlay, false>(g, result)) {
        const NetId out = nl.gate(g).out;
        for (std::uint32_t k = fan.begin[out]; k < fan.begin[out + 1]; ++k) {
          enqueue(fan.consumers[k]);
        }
      }
    }
  }
}

StepResult TimingSim::step(std::span<const Logic> input_values) {
  const Netlist& nl = *netlist_;
  if (input_values.size() != nl.num_inputs()) {
    throw std::invalid_argument("TimingSim::step: wrong input count");
  }
  StepResult result;
  result.gates_total = nl.num_gates();
  ++epoch_;
  queued_min_word_ = queued_words_.size();
  queued_max_word_ = 0;

  // A transient strike forces a value with no fanin edge, and the next step
  // must un-flip it the same way — both run dense.
  const bool transient_now = overlay_ != nullptr &&
                             overlay_->has_transients() &&
                             overlay_->transient_fires_on(step_index_);
  const bool transient_cleanup = overlay_ != nullptr &&
                                 overlay_->has_transients() &&
                                 overlay_->transient_fires_on(step_index_ - 1);
  const bool forced_swap = force_dense_;  // cleared by the dense sweep below
  const bool dense = mode_ == Mode::kDense || force_dense_ || transient_now ||
                     transient_cleanup;

  // Apply primary inputs (all input transitions land at t = 0). A changed
  // input seeds one transition of density; unchanged inputs are simply not
  // stamped with this epoch, which downstream reads as stable/zero.
  const Netlist::FanoutView fan =
      dense ? Netlist::FanoutView{} : nl.fanout_view();
  const auto input_nets = nl.input_nets();
  for (std::size_t i = 0; i < input_nets.size(); ++i) {
    const NetId net = input_nets[i];
    const Logic nv = input_values[i];
    if (nv == value_[net]) continue;
    value_[net] = nv;
    arrival_[net] = 0.0;
    net_epoch_[net] = epoch_;
    changed_[net] = 1;
    density_[net] = 1.0f;
    if (is_known(nv)) result.switched_cap_ff += kInputCapFf;
    if (!dense) {
      for (std::uint32_t k = fan.begin[net]; k < fan.begin[net + 1]; ++k) {
        enqueue(fan.consumers[k]);
      }
    }
  }

  if (dense) {
    if (overlay_ != nullptr) {
      if (transient_now) {
        run_dense<true, true>(result);
      } else {
        run_dense<true, false>(result);
      }
    } else {
      run_dense<false, false>(result);
    }
    force_dense_ = false;
  } else if (overlay_ != nullptr) {
    run_sparse<true>(result);
  } else {
    run_sparse<false>(result);
  }

  for (NetId out : nl.output_nets()) {
    if (net_changed(out)) {
      result.output_settle_ps = std::max(result.output_settle_ps,
                                         arrival_[out]);
    }
  }
  ++step_index_;
  if (obs::metrics_enabled()) {
    const SimMetrics& m = sim_metrics();
    (dense ? m.steps_dense : m.steps_sparse).add();
    m.gates_evaluated.add(result.gates_evaluated);
    if (mode_ != Mode::kDense && dense) {
      // Attribute the fallback: a pending delay-table swap wins over a
      // transient window when both apply this step.
      (forced_swap ? m.fallback_swap : m.fallback_transient).add();
    }
  }
  return result;
}

void TimingSim::install_state(std::span<const Logic> net_values,
                              std::int64_t next_step_index) {
  if (net_values.size() != netlist_->num_nets()) {
    throw std::invalid_argument(
        "TimingSim::install_state: need one value per net");
  }
  value_.assign(net_values.begin(), net_values.end());
  step_index_ = next_step_index;
  // One dense sweep next: the installed state may be the all-X power-up
  // snapshot, whose fanin-free Tie cells only a dense sweep evaluates. For
  // settled mid-stream snapshots the dense and sparse kernels are
  // bit-identical anyway, so this costs one sweep and changes no result.
  force_dense_ = true;
}

std::uint64_t TimingSim::output_bits() const {
  const auto outs = netlist_->output_nets();
  if (outs.size() > 64) {
    throw std::logic_error("TimingSim::output_bits: more than 64 outputs");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const Logic v = value_[outs[i]];
    if (!is_known(v)) {
      throw std::logic_error("TimingSim::output_bits: output " +
                             netlist_->output_name(i) + " is unknown");
    }
    if (logic_to_bool(v)) bits |= (std::uint64_t{1} << i);
  }
  return bits;
}

}  // namespace agingsim
