#pragma once

// Internal interface between BatchTimingSim (batch_sim.cpp) and the
// word-sweep core (batch_sweep.inl). The core is compiled twice: once with
// the library's baseline flags (run_sweep_generic) and once in a translation
// unit built with -mavx2 on x86-64 (run_sweep_avx2), so the per-lane
// density/arrival loops vectorize 8/4-wide. Dispatch between them is a
// one-time runtime CPU check in batch_sim.cpp; both backends execute the
// same source with the same IEEE semantics (-ffp-contract=off, no
// reassociation), so results are bit-identical either way.

#include <cstdint>
#include <span>
#include <utility>

#include "src/fault/fault.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/batch_sim.hpp"

namespace agingsim::detail {

/// Borrowed views of one BatchTimingSim's per-word state. All per-net
/// arrays are indexed by NetId; density/arrival are kBatchLanes-strided.
struct SweepContext {
  const Netlist* netlist = nullptr;
  const FaultOverlay* overlay = nullptr;  // may be null
  const double* base_delay_ps = nullptr;  // per gate
  const double* cell_cap_ff = nullptr;    // per gate
  std::uint64_t epoch = 0;
  std::uint64_t* plane0 = nullptr;   // per net: lane-packed value bit 0
  std::uint64_t* plane1 = nullptr;   // per net: lane-packed value bit 1
  std::uint64_t* changed = nullptr;  // per net: lanes whose value changed
  std::uint64_t* active = nullptr;   // per net: changed or nonzero density
  std::uint64_t* word_epoch = nullptr;  // per net
  Logic* last_value = nullptr;          // per net: value after the last lane
  float* density = nullptr;             // per net x kBatchLanes
  double* arrival = nullptr;            // per net x kBatchLanes
  StepResult* results = nullptr;        // kBatchLanes entries
  const std::uint64_t* input_bits = nullptr;  // one word per primary input
  int lanes = 0;
  std::uint64_t lane_mask = 0;
  bool force_all = false;
  /// Transient strikes falling inside this word, as (gate, lane mask)
  /// pairs sorted by gate id (masks pre-merged per gate).
  std::span<const std::pair<GateId, std::uint64_t>> transient_masks;
  /// Gates whose transient fired on the last lane of the previous word:
  /// they must be evaluated so lane 0 un-flips them (the batch analogue of
  /// the scalar transient-cleanup dense step). Sorted by gate id.
  std::span<const GateId> forced_gates;
  std::uint64_t gates_processed = 0;  // out: gates the sweep evaluated
};

void run_sweep_generic(SweepContext& ctx);

/// Real AVX2 code when the build and architecture allow (batch_sim_avx2.cpp
/// compiled with -mavx2); otherwise a forwarder to run_sweep_generic.
void run_sweep_avx2(SweepContext& ctx);
bool avx2_sweep_available() noexcept;

}  // namespace agingsim::detail
