#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace agingsim {

/// Simple aligned-text / CSV table emitter used by every bench binary to
/// print the paper's tables and figure series.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Aligned monospace rendering with the title on top.
  std::string to_text() const;
  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  void print(std::ostream& os) const;

  // Formatting helpers shared by the benches.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double ratio, int precision = 2);  // 0.5 -> "50.00%"
  static std::string num(std::uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace agingsim
