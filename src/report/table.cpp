#include "src/report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace agingsim {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out = "== " + title_ + " ==\n";
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += cells[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(std::ostream& os) const { os << to_text() << "\n"; }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace agingsim
