#include "src/report/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace agingsim {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::newline_indent() {
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::pre_value() {
  if (!stack_.empty() && stack_.back() == 'o' && !key_pending_) {
    throw std::logic_error("JsonWriter: value inside object needs a key");
  }
  if (!key_pending_) {
    if (comma_pending_) out_.push_back(',');
    if (!stack_.empty()) newline_indent();
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: duplicate key call");
  if (comma_pending_) out_.push_back(',');
  newline_indent();
  append_escaped(out_, name);
  out_ += ": ";
  key_pending_ = true;
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_.push_back('{');
  stack_.push_back('o');
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o' || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  stack_.pop_back();
  if (comma_pending_) newline_indent();
  out_.push_back('}');
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_.push_back('[');
  stack_.push_back('a');
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  stack_.pop_back();
  if (comma_pending_) newline_indent();
  out_.push_back(']');
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  }
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  append_escaped(out_, v);
  comma_pending_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers");
  }
  return out_;
}

}  // namespace agingsim
