#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agingsim {

/// Minimal streaming JSON emitter for machine-readable bench output
/// (bench_fault_campaign et al.). Ordered, pretty-printed with two-space
/// indentation; keys are emitted in call order. The caller is responsible
/// for well-formedness (`key()` inside objects, balanced begin/end) —
/// violations throw std::logic_error rather than emitting bad JSON.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  /// The finished document. Throws if containers are still open.
  const std::string& str() const;

 private:
  void pre_value();
  void newline_indent();

  std::string out_;
  std::vector<char> stack_;  // 'o' = object, 'a' = array
  bool comma_pending_ = false;
  bool key_pending_ = false;
};

}  // namespace agingsim
