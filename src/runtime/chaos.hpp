#pragma once

// Deterministic chaos injection for the campaign runtime — the software
// dual of the hardware FaultOverlay (docs/ROBUSTNESS.md). A policy is a
// seeded, rate-controlled decision function over (work unit, attempt):
// identical runs make identical chaos decisions, so every recovery path
// (retry, quarantine, resume-after-crash) can be exercised repeatably in
// CI. Enabled via AGINGSIM_CHAOS=seed:rate[:actions] with actions a subset
// of "t" (transient throw), "p" (permanent throw), "s" (cooperative stall)
// and "c" (simulated crash — the process _Exit()s with kCrashExitCode
// after a seed-determined number of completed units; scheduled by the
// RobustRunner so each crashed run still makes forward progress and a
// resume loop always terminates).

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace agingsim::runtime {

/// Exit code of a chaos-simulated crash, distinguishable from real
/// failures by resume loops (CI restarts the run while it sees this code).
inline constexpr int kCrashExitCode = 86;

enum class ChaosAction {
  kNone,
  kThrowTransient,  ///< RunError(kTransient): must be absorbed by retry
  kThrowPermanent,  ///< RunError(kPermanent): must quarantine, not abort
  kStall,           ///< busy-wait polling the cancel token (watchdog prey)
};

std::string_view chaos_action_name(ChaosAction action);

struct ChaosPolicy {
  std::uint64_t seed = 0;
  double rate = 0.0;  ///< per-(unit, attempt) injection probability
  bool throw_transient = true;
  bool throw_permanent = false;
  bool stall = false;
  bool crash = false;
  std::chrono::milliseconds stall_duration{50};

  bool enabled() const noexcept { return rate > 0.0; }

  /// Parses "seed:rate[:actions]"; actions defaults to "t". Returns
  /// nullopt (and fills *error) for malformed specs: non-numeric fields,
  /// rate outside [0, 1], unknown action letters.
  static std::optional<ChaosPolicy> parse(std::string_view spec,
                                          std::string* error = nullptr);

  /// Policy from AGINGSIM_CHAOS; a malformed value warns once on stderr
  /// and yields a disabled policy (chaos must never break a real run).
  static ChaosPolicy from_env();

  /// Pure decision for one task attempt. Independent of process history,
  /// so a resumed campaign quarantines exactly the units an uninterrupted
  /// one would — the byte-identical-output contract survives chaos.
  ChaosAction decide(std::uint64_t unit, int attempt) const;

  /// Number of completed units after which a run under this policy
  /// simulates a crash (0 = never). Varies with `epoch` (units already
  /// checkpointed when the run started) so each resume draws a fresh crash
  /// point and the resume loop provably terminates: a crash is only
  /// scheduled after at least one more unit has been persisted.
  std::uint64_t crash_after_units(std::uint64_t epoch) const;
};

}  // namespace agingsim::runtime
