#pragma once

// Crash-safe execution layer wrapped around exec::parallel_for_indexed
// (docs/ROBUSTNESS.md). A campaign is n independent work units, each
// producing a serialized payload; the runner
//
//  - skips units already present in an attached CheckpointStore (resume),
//  - retries units that fail with a retryable RunError (transient/timeout)
//    under exponential backoff, up to max_retries extra attempts,
//  - quarantines poison units after the retry budget — the unit is
//    recorded as failed in the RunReport and the campaign keeps going
//    (graceful degradation, the harness analogue of the AHL storm
//    fallback) — permanent/unclassified failures quarantine immediately,
//  - arms a watchdog thread per attempt when a deadline is configured:
//    past the deadline the task's CancelToken flips and a cooperative task
//    observes it via poll(), which throws RunError(kTimeout),
//  - persists every completed payload to the checkpoint store the moment
//    it finishes, so a SIGKILL loses at most the in-flight units,
//  - optionally schedules a chaos-simulated crash (ChaosPolicy, action
//    'c') after a deterministic number of fresh units.
//
// Determinism contract: payloads are produced by the caller's task
// function, which must be deterministic per unit; retries, thread counts,
// restores and chaos only decide *whether/when* a unit runs, never what it
// computes — so resumed, chaos-ridden and uninterrupted campaigns emit
// byte-identical results for every non-quarantined unit.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/exec/thread_pool.hpp"
#include "src/runtime/chaos.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/run_error.hpp"

namespace agingsim::runtime {

/// Cooperative cancellation flag shared between a task attempt and the
/// watchdog. Long-running tasks call poll() at convenient boundaries.
class CancelToken {
 public:
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  /// Flips the flag and wakes any wait_until() sleeper immediately.
  void cancel() noexcept;
  /// Throws RunError(kTimeout) once the watchdog has cancelled the attempt.
  void poll() const;
  /// Blocks until `deadline` or cancellation, whichever comes first — the
  /// deadline-aware replacement for fixed-tick polling loops (a cancel
  /// ends the wait immediately instead of after the current tick).
  /// Returns without throwing either way; pair with poll().
  void wait_until(std::chrono::steady_clock::time_point deadline) const;

 private:
  std::atomic<bool> flag_{false};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
};

struct RunnerConfig {
  /// Extra attempts after the first for retryable failures (0 = fail fast).
  int max_retries = 3;
  /// Per-attempt watchdog deadline; 0 disables the watchdog.
  std::chrono::milliseconds deadline{0};
  /// Backoff before retry k (1-based): base * growth^(k-1), capped.
  std::chrono::milliseconds backoff_base{25};
  double backoff_growth = 2.0;
  std::chrono::milliseconds backoff_cap{2000};
  ChaosPolicy chaos{};
  /// Optional resume/persist store (not owned). Call load() before run().
  CheckpointStore* checkpoints = nullptr;
  /// Optional pool to fan out on (not owned); null = one-shot pool per run
  /// honoring AGINGSIM_THREADS.
  exec::ThreadPool* pool = nullptr;
  /// Optional external stop signal (not owned): when it flips, units not
  /// yet started are skipped (UnitState::kSkipped) and in-flight attempts
  /// are cancelled cooperatively, exactly like a watchdog deadline — each
  /// completed unit has already been persisted, so a stopped campaign
  /// resumes from where it left off. This is how SIGTERM/SIGINT handlers
  /// (tools/agingrun) and the serving daemon's drain/deadline paths
  /// (docs/SERVING.md) stop a campaign without losing work.
  const CancelToken* stop = nullptr;

  /// Config with chaos from AGINGSIM_CHAOS plus AGINGSIM_MAX_RETRIES and
  /// AGINGSIM_DEADLINE_MS overrides — how the bench binaries opt in
  /// without growing flag parsers.
  static RunnerConfig from_env();
};

enum class UnitState {
  kComputed,     ///< executed (possibly after retries) this run
  kRestored,     ///< loaded from the checkpoint store, not executed
  kQuarantined,  ///< failed past the retry budget; payload empty
  kSkipped,      ///< not started: the external stop token fired first
};

struct UnitOutcome {
  UnitState state = UnitState::kComputed;
  int attempts = 0;  ///< executions this run (0 for restored units)
  ErrorCategory category = ErrorCategory::kTransient;  ///< quarantine cause
  std::string error;  ///< last failure message (quarantined units)
};

struct RunReport {
  std::vector<UnitOutcome> units;
  std::size_t computed = 0;
  std::size_t restored = 0;
  std::size_t quarantined = 0;
  std::size_t skipped = 0;    ///< not started before the stop token fired
  std::uint64_t retries = 0;  ///< total extra attempts across all units

  bool all_ok() const noexcept { return quarantined == 0 && skipped == 0; }
  /// The run was cut short by the external stop token; completed units are
  /// persisted, so a resumed run picks up the skipped ones.
  bool interrupted() const noexcept { return skipped > 0; }
  /// One line for operators: "12 computed, 3 restored, 1 quarantined, ...".
  std::string summary() const;
};

class RobustRunner {
 public:
  /// task(unit, cancel) returns the unit's serialized payload; it may
  /// throw RunError to classify failures and should poll `cancel` if it
  /// can run past a configured deadline.
  using Task =
      std::function<std::string(std::uint64_t unit, const CancelToken&)>;

  /// Ordered completion-frontier callback: invoked once per unit in strict
  /// unit order (0, 1, 2, …) as the contiguous done-prefix advances —
  /// restored units interleaved with computed ones exactly where they sit.
  /// A unit is reported only after its payload is durable (persisted when
  /// a store is attached), so `unit` is always a safe resume cursor.
  /// Invocations are serialized under an internal mutex but may come from
  /// any pool thread. Quarantined/skipped units stall the frontier: units
  /// past the first failure are never reported (the RunReport still covers
  /// them). Keep the callback cheap — it holds up frontier advancement.
  using Progress = std::function<void(
      std::uint64_t unit, const std::string& payload, UnitState state)>;

  explicit RobustRunner(RunnerConfig config = {});

  /// Runs units [0, n); returns payloads in unit order (empty string for
  /// quarantined units — check the report). Thread-safe per runner
  /// instance in the same sense as ThreadPool::for_each_index: one run()
  /// at a time.
  std::vector<std::string> run(std::size_t n, const Task& task,
                               RunReport* report = nullptr,
                               const Progress& progress = {});

  const RunnerConfig& config() const noexcept { return config_; }

  /// Backoff before retry `retry_index` (1-based) under `config` — exposed
  /// for tests so the schedule is a checked contract, not an accident.
  static std::chrono::milliseconds backoff_delay(const RunnerConfig& config,
                                                 int retry_index);

 private:
  RunnerConfig config_;
};

}  // namespace agingsim::runtime
