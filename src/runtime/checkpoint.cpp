#include "src/runtime/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/serial.hpp"

namespace agingsim::runtime {
namespace {

struct CheckpointMetrics {
  const obs::Counter& persisted = obs::counter("checkpoint.persisted");
  const obs::Counter& loaded = obs::counter("checkpoint.loaded");
  const obs::Counter& discarded = obs::counter("checkpoint.discarded");
};

const CheckpointMetrics& checkpoint_metrics() {
  static const CheckpointMetrics m;
  return m;
}

/// One counter per discard reason, so a resume that silently re-runs work
/// still says *why* in the metrics snapshot. Reasons map to the strings
/// read_unit_file returns (plus "tmp file" for interrupted writes).
void count_discard(const char* why) {
  if (!obs::metrics_enabled()) return;
  static const struct {
    const char* why;
    const obs::Counter& counter;
  } kReasons[] = {
      {"tmp file", obs::counter("checkpoint.discarded_tmp")},
      {"unreadable", obs::counter("checkpoint.discarded_unreadable")},
      {"truncated header", obs::counter("checkpoint.discarded_truncated")},
      {"bad magic", obs::counter("checkpoint.discarded_magic")},
      {"format version skew", obs::counter("checkpoint.discarded_version")},
      {"config digest mismatch",
       obs::counter("checkpoint.discarded_digest")},
      {"truncated payload", obs::counter("checkpoint.discarded_truncated")},
      {"payload CRC mismatch", obs::counter("checkpoint.discarded_crc")},
  };
  checkpoint_metrics().discarded.add();
  for (const auto& reason : kReasons) {
    if (std::strcmp(reason.why, why) == 0) {
      reason.counter.add();
      return;
    }
  }
}

constexpr std::uint32_t kMagic = 0x4B434741u;  // "AGCK" little-endian
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 4;

std::string header_bytes(std::uint64_t digest, std::uint64_t unit,
                         std::string_view payload) {
  ByteWriter w;
  w.u32(kMagic)
      .u32(CheckpointStore::kFormatVersion)
      .u64(digest)
      .u64(unit)
      .u64(payload.size())
      .u32(crc32(payload));
  return w.take();
}

CheckpointWriteHook g_write_hook = nullptr;

/// Which syscall of the durable-write sequence failed, and its errno —
/// surfaced verbatim in the RunError so "disk full" reads as disk full,
/// not as a generic cannot-write.
struct WriteFailure {
  const char* step = "";
  int err = 0;
};

/// POSIX durable write: payload to fd, fsync, close. Returns false on any
/// failure (the caller treats the file as unwritable) and fills `failure`.
/// Short writes are continued (a signal landing mid-write(2) legally
/// returns a partial count) and EINTR is retried; only a real error — or
/// an error surfacing at fsync/close, where delayed-allocation filesystems
/// first report ENOSPC — fails the write.
bool write_durable(const std::filesystem::path& path, std::string_view header,
                   std::string_view payload, WriteFailure& failure) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    failure = {"open", errno};
    return false;
  }
  bool ok = true;
  const auto write_all = [&](std::string_view bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n =
          g_write_hook != nullptr
              ? g_write_hook(fd, bytes.data() + done, bytes.size() - done)
              : ::write(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        failure = {"write", errno};
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  };
  ok = write_all(header) && write_all(payload);
  if (ok && ::fsync(fd) != 0) {
    failure = {"fsync", errno};
    ok = false;
  }
  if (::close(fd) != 0 && ok) {
    failure = {"close", errno};
    ok = false;
  }
  return ok;
}

/// Best-effort fsync of the directory so the rename itself is durable.
void sync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void diagnose(const std::filesystem::path& file, const char* why) {
  std::fprintf(stderr,
               "checkpoint: discarding %s (%s); the unit will be re-run\n",
               file.string().c_str(), why);
}

/// Validates one checkpoint file. On success fills unit/payload and returns
/// nullptr; otherwise returns a static reason string.
const char* read_unit_file(const std::filesystem::path& file,
                           std::uint64_t expected_digest, std::uint64_t& unit,
                           std::string& payload) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return "unreadable";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < kHeaderBytes) return "truncated header";

  ByteReader r(bytes);
  try {
    if (r.u32() != kMagic) return "bad magic";
    if (r.u32() != CheckpointStore::kFormatVersion) {
      return "format version skew";
    }
    if (r.u64() != expected_digest) return "config digest mismatch";
    unit = r.u64();
    const std::uint64_t len = r.u64();
    const std::uint32_t crc = r.u32();
    if (r.remaining() != len) return "truncated payload";
    payload = bytes.substr(kHeaderBytes);
    if (crc32(payload) != crc) return "payload CRC mismatch";
  } catch (const RunError&) {
    return "truncated header";
  }
  return nullptr;
}

}  // namespace

void set_checkpoint_write_hook_for_testing(CheckpointWriteHook hook) {
  g_write_hook = hook;
}

CheckpointStore::CheckpointStore(std::filesystem::path dir,
                                 std::uint64_t config_digest)
    : dir_(std::move(dir)), digest_(config_digest) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw RunError(ErrorCategory::kPermanent,
                   "CheckpointStore: cannot create directory '" +
                       dir_.string() + "': " + ec.message());
  }
}

std::filesystem::path CheckpointStore::unit_path(std::uint64_t unit) const {
  char name[32];
  std::snprintf(name, sizeof name, "unit-%06llu.ckpt",
                static_cast<unsigned long long>(unit));
  return dir_ / name;
}

CheckpointScan CheckpointStore::load() {
  obs::TraceSpan span("checkpoint.load");
  std::lock_guard lk(mutex_);
  CheckpointScan scan;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::filesystem::path& file = entry.path();
    if (file.extension() == ".tmp") {
      // A write the crash interrupted before the rename; never valid.
      std::filesystem::remove(file, ec);
      ++scan.discarded;
      count_discard("tmp file");
      continue;
    }
    if (file.extension() != ".ckpt") continue;  // foreign file: leave alone
    std::uint64_t unit = 0;
    std::string payload;
    if (const char* why = read_unit_file(file, digest_, unit, payload)) {
      diagnose(file, why);
      std::filesystem::remove(file, ec);
      ++scan.discarded;
      count_discard(why);
      continue;
    }
    units_[unit] = std::move(payload);
    ++scan.loaded;
  }
  checkpoint_metrics().loaded.add(scan.loaded);
  return scan;
}

void CheckpointStore::clear() {
  std::lock_guard lk(mutex_);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::filesystem::path& file = entry.path();
    if (file.extension() == ".ckpt" || file.extension() == ".tmp") {
      std::filesystem::remove(file, ec);
    }
  }
  units_.clear();
}

void CheckpointStore::persist(std::uint64_t unit, std::string_view payload) {
  obs::TraceSpan span("checkpoint.persist", unit);
  const std::filesystem::path final_path = unit_path(unit);
  // The tmp name is unique per process and per writer: two stores pointed
  // at the same directory (e.g. concurrent identically-configured
  // campaigns) must not O_TRUNC each other's in-progress file, or a torn
  // write could be renamed into place as a valid-looking .ckpt. Keeps the
  // ".tmp" extension so load() still sweeps up orphans after a crash.
  static std::atomic<std::uint64_t> tmp_seq{0};
  std::filesystem::path tmp_path = final_path;
  tmp_path += "." + std::to_string(::getpid()) + "-" +
              std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed)) +
              ".tmp";

  const std::string header = header_bytes(digest_, unit, payload);
  WriteFailure failure;
  if (!write_durable(tmp_path, header, payload, failure)) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    // Permanent on purpose: retrying a full disk burns the retry budget
    // without helping. The .tmp was removed above, so no torn file is
    // visible; completed .ckpt units stay valid for --resume.
    const std::string detail =
        failure.err == ENOSPC
            ? std::string("disk full (ENOSPC at ") + failure.step + ")"
            : std::string(failure.step) + " failed: " +
                  std::strerror(failure.err);
    throw RunError(ErrorCategory::kPermanent,
                   "CheckpointStore: cannot write " + tmp_path.string() +
                       " (" + detail +
                       "); completed checkpoints remain valid — free space "
                       "and rerun with --resume");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    throw RunError(ErrorCategory::kPermanent,
                   "CheckpointStore: cannot rename into " +
                       final_path.string());
  }
  sync_dir(dir_);
  checkpoint_metrics().persisted.add();

  std::lock_guard lk(mutex_);
  units_[unit] = std::string(payload);
}

bool CheckpointStore::has(std::uint64_t unit) const {
  std::lock_guard lk(mutex_);
  return units_.contains(unit);
}

std::optional<std::string> CheckpointStore::restore(
    std::uint64_t unit) const {
  std::lock_guard lk(mutex_);
  const auto it = units_.find(unit);
  if (it == units_.end()) return std::nullopt;
  return it->second;
}

std::size_t CheckpointStore::size() const {
  std::lock_guard lk(mutex_);
  return units_.size();
}

}  // namespace agingsim::runtime
