#include "src/runtime/serial.hpp"

#include <array>

namespace agingsim::runtime {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Digest& Digest::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (8 * i)) & 0xFFu;
    state_ *= kPrime;
  }
  return *this;
}

Digest& Digest::mix(std::string_view bytes) {
  // Length first so mix("ab") + mix("c") != mix("a") + mix("bc").
  mix(static_cast<std::uint64_t>(bytes.size()));
  for (char ch : bytes) {
    state_ ^= static_cast<unsigned char>(ch);
    state_ *= kPrime;
  }
  return *this;
}

ByteWriter& ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
  return *this;
}

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
  return *this;
}

ByteWriter& ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s);
  return *this;
}

void ByteReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw RunError(ErrorCategory::kCorrupt,
                   "ByteReader: truncated record (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void ByteReader::expect_end() const {
  if (!at_end()) {
    throw RunError(ErrorCategory::kCorrupt,
                   "ByteReader: " + std::to_string(remaining()) +
                       " trailing bytes after record");
  }
}

}  // namespace agingsim::runtime
