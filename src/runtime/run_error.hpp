#pragma once

// Error taxonomy of the crash-safe campaign runtime (docs/ROBUSTNESS.md).
// Worker tasks signal failures as RunError with a category that tells the
// RobustRunner what to do: transient/timeout failures are retried with
// exponential backoff, permanent and corrupt ones quarantine the work unit
// immediately. Exceptions that are not RunError are treated as permanent —
// an unclassified failure must not be retried blindly.

#include <stdexcept>
#include <string>
#include <string_view>

namespace agingsim::runtime {

enum class ErrorCategory {
  kTransient,  ///< retry may succeed (resource blip, chaos soft fault)
  kTimeout,    ///< watchdog deadline expired; retried like a transient
  kPermanent,  ///< deterministic failure; retrying cannot help
  kCorrupt,    ///< data-integrity violation (checkpoint CRC, codec skew)
};

std::string_view error_category_name(ErrorCategory category);

/// Whether the runner's retry-with-backoff policy applies to the category.
constexpr bool is_retryable(ErrorCategory category) noexcept {
  return category == ErrorCategory::kTransient ||
         category == ErrorCategory::kTimeout;
}

class RunError : public std::runtime_error {
 public:
  RunError(ErrorCategory category, const std::string& what)
      : std::runtime_error(what), category_(category) {}

  ErrorCategory category() const noexcept { return category_; }
  bool retryable() const noexcept { return is_retryable(category_); }

 private:
  ErrorCategory category_;
};

}  // namespace agingsim::runtime
