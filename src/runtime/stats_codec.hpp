#pragma once

// Bit-exact checkpoint codec for RunStats — the payload type of every
// campaign work unit (a fault trial, a sweep point, a seven-year row).
// Encoded records carry a field-count tag so schema drift between the
// binary that wrote a checkpoint and the one restoring it is detected as
// RunError(kCorrupt) instead of silently mis-decoded (docs/ROBUSTNESS.md).

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/vl_multiplier.hpp"

namespace agingsim::runtime {

std::string encode_run_stats(const RunStats& stats);
/// Throws RunError(kCorrupt) on truncation, trailing bytes or field-count
/// skew. decode(encode(s)) == s exactly (doubles via their bit patterns).
RunStats decode_run_stats(std::string_view payload);

/// Length-prefixed sequence of RunStats in one payload (e.g. the five
/// designs of one seven-year row).
std::string encode_run_stats_row(std::span<const RunStats> row);
std::vector<RunStats> decode_run_stats_row(std::string_view payload);

}  // namespace agingsim::runtime
