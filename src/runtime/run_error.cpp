#include "src/runtime/run_error.hpp"

namespace agingsim::runtime {

std::string_view error_category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kTransient: return "transient";
    case ErrorCategory::kTimeout: return "timeout";
    case ErrorCategory::kPermanent: return "permanent";
    case ErrorCategory::kCorrupt: return "corrupt";
  }
  return "unknown";
}

}  // namespace agingsim::runtime
