#include "src/runtime/chaos.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "src/core/env.hpp"

namespace agingsim::runtime {
namespace {

/// splitmix64 — the repo-standard bit mixer (see workload/rng.hpp).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double to_unit_interval(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view chaos_action_name(ChaosAction action) {
  switch (action) {
    case ChaosAction::kNone: return "none";
    case ChaosAction::kThrowTransient: return "throw-transient";
    case ChaosAction::kThrowPermanent: return "throw-permanent";
    case ChaosAction::kStall: return "stall";
  }
  return "unknown";
}

std::optional<ChaosPolicy> ChaosPolicy::parse(std::string_view spec,
                                              std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ChaosPolicy> {
    if (error != nullptr) {
      *error = "chaos spec '" + std::string(spec) + "': " + why +
               " (expected seed:rate[:actions], actions in [tpsc])";
    }
    return std::nullopt;
  };

  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    fields.emplace_back(spec.substr(
        start, colon == std::string_view::npos ? colon : colon - start));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (fields.size() < 2 || fields.size() > 3) {
    return fail("need 2 or 3 colon-separated fields");
  }

  ChaosPolicy policy;
  // Strict whole-field parses (src/core/env.hpp): trailing garbage in any
  // field rejects the spec instead of silently truncating it.
  const auto seed = env::parse_u64(fields[0], 0);  // base 0: 0x ok
  if (!seed.has_value()) return fail("bad seed");
  policy.seed = *seed;
  const auto rate = env::parse_double(fields[1]);
  if (!rate.has_value() || *rate < 0.0 || *rate > 1.0) {
    return fail("rate must be a number in [0, 1]");
  }
  policy.rate = *rate;

  if (fields.size() == 3) {
    policy.throw_transient = false;
    if (fields[2].empty()) return fail("empty actions field");
    for (char c : fields[2]) {
      switch (c) {
        case 't': policy.throw_transient = true; break;
        case 'p': policy.throw_permanent = true; break;
        case 's': policy.stall = true; break;
        case 'c': policy.crash = true; break;
        default: return fail(std::string("unknown action '") + c + "'");
      }
    }
  }
  return policy;
}

ChaosPolicy ChaosPolicy::from_env() {
  const char* env = std::getenv("AGINGSIM_CHAOS");
  if (env == nullptr || *env == '\0') return {};
  std::string error;
  if (const auto policy = parse(env, &error)) return *policy;
  static std::once_flag warned;
  std::call_once(warned, [&] {
    std::fprintf(stderr, "AGINGSIM_CHAOS ignored: %s\n", error.c_str());
  });
  return {};
}

ChaosAction ChaosPolicy::decide(std::uint64_t unit, int attempt) const {
  if (!enabled()) return ChaosAction::kNone;
  std::array<ChaosAction, 3> enabled_actions{};
  std::size_t n = 0;
  if (throw_transient) enabled_actions[n++] = ChaosAction::kThrowTransient;
  if (throw_permanent) enabled_actions[n++] = ChaosAction::kThrowPermanent;
  if (stall) enabled_actions[n++] = ChaosAction::kStall;
  if (n == 0) return ChaosAction::kNone;

  const std::uint64_t h =
      mix64(seed ^ mix64(unit + 1) ^
            mix64(static_cast<std::uint64_t>(attempt) * 0x5DEECE66DULL));
  if (to_unit_interval(h) >= rate) return ChaosAction::kNone;
  return enabled_actions[mix64(h) % n];
}

std::uint64_t ChaosPolicy::crash_after_units(std::uint64_t epoch) const {
  if (!enabled() || !crash) return 0;
  // Span ~ 1/rate units, so the crash frequency tracks the configured rate;
  // minimum 1 guarantees at least one fresh unit is persisted per run.
  const std::uint64_t span =
      rate >= 1.0 ? 1 : static_cast<std::uint64_t>(1.0 / rate);
  return 1 + mix64(seed ^ mix64(epoch + 0x9E37ULL)) % span;
}

}  // namespace agingsim::runtime
