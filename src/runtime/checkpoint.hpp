#pragma once

// Crash-safe checkpoint store for long campaigns (docs/ROBUSTNESS.md).
//
// One file per completed work unit (a fault trial, a sweep point, a
// seven-year row), written atomically: payload goes to a writer-unique
// `unit-N.ckpt.<pid>-<seq>.tmp` (so two stores sharing a directory never
// truncate each other's in-progress file), is fsync'ed, then renamed over
// `unit-N.ckpt` — so a SIGKILL at any instant leaves either the previous
// state or the complete new file, never a torn one. Every file carries a magic, a format version, the campaign
// configuration digest and a CRC-32 of the payload; load() discards (with
// a one-line stderr diagnostic) anything truncated, corrupted, from an old
// format or from a different configuration, which degrades to a clean
// re-run of those units — never a crash, never a silently wrong result.

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace agingsim::runtime {

/// Test-only fault injection for the durable write path: when set, persist()
/// routes every write(2) through this function instead (same contract:
/// bytes written, or -1 with errno set). Lets tests exercise short writes,
/// EINTR storms and ENOSPC without an actual full disk. Not thread-safe
/// against concurrent persist() — install before the run, clear after.
using CheckpointWriteHook = long (*)(int fd, const void* buf,
                                     std::size_t count);
void set_checkpoint_write_hook_for_testing(CheckpointWriteHook hook);

/// What load() found on disk.
struct CheckpointScan {
  std::size_t loaded = 0;     ///< valid units restored into memory
  std::size_t discarded = 0;  ///< invalid/stale files removed
};

class CheckpointStore {
 public:
  /// Bumped whenever the on-disk layout changes; older files are discarded.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Creates `dir` (and parents) if needed. `config_digest` fingerprints
  /// the campaign configuration (see Digest); units written under any
  /// other digest are rejected at load(). Throws RunError(kPermanent) when
  /// the directory cannot be created or is not writable.
  CheckpointStore(std::filesystem::path dir, std::uint64_t config_digest);

  /// Scans the directory and loads every valid unit; invalid or stale
  /// files are deleted with a stderr diagnostic. Call once before run().
  CheckpointScan load();

  /// Removes every unit file (fresh-run semantics, the opposite of
  /// --resume) and forgets loaded payloads.
  void clear();

  /// Atomically persists one completed unit. Thread-safe; later calls for
  /// the same unit overwrite the earlier file.
  void persist(std::uint64_t unit, std::string_view payload);

  bool has(std::uint64_t unit) const;
  /// Payload of a loaded/persisted unit, or nullopt. Copies out so callers
  /// never hold references into the store across persist() calls.
  std::optional<std::string> restore(std::uint64_t unit) const;

  std::size_t size() const;
  const std::filesystem::path& dir() const noexcept { return dir_; }
  std::uint64_t config_digest() const noexcept { return digest_; }

 private:
  std::filesystem::path unit_path(std::uint64_t unit) const;

  mutable std::mutex mutex_;
  std::filesystem::path dir_;
  std::uint64_t digest_;
  std::map<std::uint64_t, std::string> units_;
};

}  // namespace agingsim::runtime
