#include "src/runtime/robust_runner.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace agingsim::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// Deadline enforcement thread. Attempts are armed with their CancelToken;
/// the thread sleeps until the oldest armed deadline (all attempts share
/// one deadline duration, so deadlines expire in arm order) and cancels
/// whatever has expired. Cancellation is cooperative: the token flips, the
/// task observes it at its next poll() and unwinds with
/// RunError(kTimeout). A disabled watchdog (deadline 0) spawns no thread.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::milliseconds deadline)
      : deadline_(deadline) {
    if (deadline_.count() > 0) {
      thread_ = std::jthread([this](std::stop_token stop) { loop(stop); });
    }
  }

  /// Registers one attempt; returns an id for disarm() (0 when disabled).
  std::uint64_t arm(CancelToken* token) {
    if (deadline_.count() <= 0) return 0;
    std::lock_guard lk(mutex_);
    const std::uint64_t id = ++next_id_;
    armed_.emplace(id, Entry{token, Clock::now() + deadline_});
    cv_.notify_all();
    return id;
  }

  void disarm(std::uint64_t id) {
    if (id == 0) return;
    std::lock_guard lk(mutex_);
    armed_.erase(id);
  }

 private:
  struct Entry {
    CancelToken* token;
    Clock::time_point deadline;
  };

  void loop(std::stop_token stop) {
    std::unique_lock lk(mutex_);
    while (!stop.stop_requested()) {
      const Clock::time_point now = Clock::now();
      Clock::time_point earliest = Clock::time_point::max();
      for (auto it = armed_.begin(); it != armed_.end();) {
        if (it->second.deadline <= now) {
          it->second.token->cancel();
          it = armed_.erase(it);
        } else {
          earliest = std::min(earliest, it->second.deadline);
          ++it;
        }
      }
      if (earliest == Clock::time_point::max()) {
        cv_.wait(lk, stop, [&] { return !armed_.empty(); });
      } else {
        cv_.wait_until(lk, stop, earliest, [] { return false; });
      }
    }
  }

  std::chrono::milliseconds deadline_;
  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::map<std::uint64_t, Entry> armed_;
  std::uint64_t next_id_ = 0;
  std::jthread thread_;
};

void apply_chaos(const ChaosPolicy& chaos, std::uint64_t unit, int attempt,
                 const CancelToken& cancel) {
  switch (chaos.decide(unit, attempt)) {
    case ChaosAction::kNone:
      return;
    case ChaosAction::kThrowTransient:
      throw RunError(ErrorCategory::kTransient,
                     "chaos: injected transient fault (unit " +
                         std::to_string(unit) + ", attempt " +
                         std::to_string(attempt) + ")");
    case ChaosAction::kThrowPermanent:
      throw RunError(ErrorCategory::kPermanent,
                     "chaos: injected permanent fault (unit " +
                         std::to_string(unit) + ")");
    case ChaosAction::kStall: {
      const Clock::time_point until = Clock::now() + chaos.stall_duration;
      while (Clock::now() < until) {
        cancel.poll();  // a watchdog cancellation ends the stall
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
  }
}

long env_long(const char* name, long fallback, long min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < min_value) {
    std::fprintf(stderr, "%s='%s' ignored (want integer >= %ld)\n", name,
                 env, min_value);
    return fallback;
  }
  return v;
}

}  // namespace

void CancelToken::poll() const {
  if (cancelled()) {
    throw RunError(ErrorCategory::kTimeout,
                   "task cancelled by watchdog deadline");
  }
}

RunnerConfig RunnerConfig::from_env() {
  RunnerConfig config;
  config.chaos = ChaosPolicy::from_env();
  config.max_retries =
      static_cast<int>(env_long("AGINGSIM_MAX_RETRIES", config.max_retries, 0));
  config.deadline = std::chrono::milliseconds(
      env_long("AGINGSIM_DEADLINE_MS", config.deadline.count(), 0));
  return config;
}

std::string RunReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "units: %zu computed, %zu restored, %zu quarantined of %zu; "
                "retries: %llu",
                computed, restored, quarantined, units.size(),
                static_cast<unsigned long long>(retries));
  return buf;
}

RobustRunner::RobustRunner(RunnerConfig config) : config_(config) {
  if (config_.max_retries < 0) {
    throw RunError(ErrorCategory::kPermanent,
                   "RobustRunner: max_retries must be >= 0");
  }
  if (!(config_.backoff_growth >= 1.0)) {
    throw RunError(ErrorCategory::kPermanent,
                   "RobustRunner: backoff_growth must be >= 1");
  }
}

std::chrono::milliseconds RobustRunner::backoff_delay(
    const RunnerConfig& config, int retry_index) {
  const double ms =
      static_cast<double>(config.backoff_base.count()) *
      std::pow(config.backoff_growth, static_cast<double>(retry_index - 1));
  const double capped =
      std::min(ms, static_cast<double>(config.backoff_cap.count()));
  return std::chrono::milliseconds(static_cast<long long>(capped));
}

std::vector<std::string> RobustRunner::run(std::size_t n, const Task& task,
                                           RunReport* report) {
  RunReport local;
  RunReport& rep = report != nullptr ? *report : local;
  rep = RunReport{};
  rep.units.assign(n, UnitOutcome{});
  std::vector<std::string> payloads(n);

  CheckpointStore* store = config_.checkpoints;
  std::vector<std::uint64_t> pending;
  pending.reserve(n);
  for (std::uint64_t unit = 0; unit < n; ++unit) {
    std::optional<std::string> restored;
    if (store != nullptr) restored = store->restore(unit);
    if (restored.has_value()) {
      payloads[unit] = std::move(*restored);
      rep.units[unit].state = UnitState::kRestored;
    } else {
      pending.push_back(unit);
    }
  }

  // Chaos crash scheduling: die (std::_Exit) after a deterministic number
  // of freshly persisted units. Armed only with a checkpoint store — a
  // crash without checkpoints would just discard the campaign.
  const std::uint64_t crash_after =
      store != nullptr ? config_.chaos.crash_after_units(n - pending.size())
                       : 0;
  std::atomic<std::uint64_t> fresh_done{0};

  Watchdog watchdog(config_.deadline);
  const auto run_unit = [&](std::size_t pending_index) {
    const std::uint64_t unit = pending[pending_index];
    UnitOutcome& outcome = rep.units[unit];
    for (int attempt = 0;; ++attempt) {
      CancelToken cancel;
      const std::uint64_t armed = watchdog.arm(&cancel);
      ++outcome.attempts;
      try {
        apply_chaos(config_.chaos, unit, attempt, cancel);
        std::string payload = task(unit, cancel);
        watchdog.disarm(armed);
        payloads[unit] = std::move(payload);
        outcome.state = UnitState::kComputed;
        if (store != nullptr) {
          try {
            store->persist(unit, payloads[unit]);
          } catch (const RunError& e) {
            // A dead disk must not kill a finished computation: the run
            // continues, only resumability of this unit is lost.
            std::fprintf(stderr, "checkpoint: persist failed: %s\n",
                         e.what());
          }
          if (crash_after != 0 &&
              fresh_done.fetch_add(1, std::memory_order_relaxed) + 1 >=
                  crash_after) {
            std::_Exit(kCrashExitCode);
          }
        }
        return;
      } catch (const RunError& e) {
        watchdog.disarm(armed);
        if (e.retryable() && attempt < config_.max_retries) {
          std::this_thread::sleep_for(backoff_delay(config_, attempt + 1));
          continue;
        }
        outcome.state = UnitState::kQuarantined;
        outcome.category = e.category();
        outcome.error = e.what();
        return;
      } catch (const std::exception& e) {
        watchdog.disarm(armed);
        outcome.state = UnitState::kQuarantined;
        outcome.category = ErrorCategory::kPermanent;
        outcome.error = e.what();
        return;
      }
    }
  };

  if (config_.pool != nullptr) {
    config_.pool->for_each_index(pending.size(), run_unit);
  } else {
    exec::ThreadPool pool;
    pool.for_each_index(pending.size(), run_unit);
  }

  for (const UnitOutcome& outcome : rep.units) {
    switch (outcome.state) {
      case UnitState::kComputed: ++rep.computed; break;
      case UnitState::kRestored: ++rep.restored; break;
      case UnitState::kQuarantined: ++rep.quarantined; break;
    }
    if (outcome.attempts > 1) {
      rep.retries += static_cast<std::uint64_t>(outcome.attempts - 1);
    }
  }
  return payloads;
}

}  // namespace agingsim::runtime
