#include "src/runtime/robust_runner.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "src/core/env.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace agingsim::runtime {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kPersistBoundsUs[] = {100.0, 1000.0, 10000.0, 100000.0,
                                       1000000.0};

struct RunnerMetrics {
  const obs::Counter& units_computed = obs::counter("runner.units_computed");
  const obs::Counter& units_restored = obs::counter("runner.units_restored");
  const obs::Counter& units_quarantined =
      obs::counter("runner.units_quarantined");
  const obs::Counter& retries = obs::counter("runner.retries");
  const obs::Counter& backoff_waits = obs::counter("runner.backoff_waits");
  const obs::Counter& backoff_wait_ms =
      obs::counter("runner.backoff_wait_ms");
  // Wall-time driven: whether a deadline fires depends on scheduling.
  const obs::Counter& watchdog_fires =
      obs::counter("runner.watchdog_fires", /*deterministic=*/false);
  const obs::Histogram& persist_us = obs::histogram(
      "runner.persist_us", kPersistBoundsUs, /*deterministic=*/false);
};

const RunnerMetrics& runner_metrics() {
  static const RunnerMetrics m;
  return m;
}

/// Deadline enforcement thread. Attempts are armed with their CancelToken;
/// the thread sleeps until the oldest armed deadline (all attempts share
/// one deadline duration, so deadlines expire in arm order) and cancels
/// whatever has expired. Cancellation is cooperative: the token flips, the
/// task observes it at its next poll() and unwinds with
/// RunError(kTimeout). A disabled watchdog (deadline 0) spawns no thread.
class Watchdog {
 public:
  /// `stop` (optional, not owned) is the runner's external stop token:
  /// when it flips, every armed attempt is cancelled immediately, same as
  /// a deadline expiry. The thread spawns when either trigger can fire.
  Watchdog(std::chrono::milliseconds deadline, const CancelToken* stop)
      : deadline_(deadline), stop_(stop) {
    if (deadline_.count() > 0 || stop_ != nullptr) {
      thread_ = std::jthread([this](std::stop_token st) { loop(st); });
    }
  }

  /// Registers one attempt; returns an id for disarm() (0 when disabled).
  std::uint64_t arm(CancelToken* token) {
    if (deadline_.count() <= 0 && stop_ == nullptr) return 0;
    std::lock_guard lk(mutex_);
    if (stopped_) {
      // The stop token already fired: cancel straight away so the attempt
      // unwinds at its first poll.
      token->cancel();
    }
    const std::uint64_t id = ++next_id_;
    const Clock::time_point deadline = deadline_.count() > 0
                                           ? Clock::now() + deadline_
                                           : Clock::time_point::max();
    armed_.emplace(id, Entry{token, deadline});
    cv_.notify_all();
    return id;
  }

  void disarm(std::uint64_t id) {
    if (id == 0) return;
    std::lock_guard lk(mutex_);
    armed_.erase(id);
  }

 private:
  struct Entry {
    CancelToken* token;
    Clock::time_point deadline;
  };

  void loop(std::stop_token stop) {
    std::unique_lock lk(mutex_);
    while (!stop.stop_requested()) {
      if (stop_ != nullptr && !stopped_ && stop_->cancelled()) {
        // External stop: flush every armed attempt at once. The flag stays
        // set so late arms are cancelled on entry.
        stopped_ = true;
        for (auto& [id, entry] : armed_) entry.token->cancel();
        armed_.clear();
      }
      const Clock::time_point now = Clock::now();
      Clock::time_point earliest = Clock::time_point::max();
      for (auto it = armed_.begin(); it != armed_.end();) {
        if (it->second.deadline <= now) {
          it->second.token->cancel();
          runner_metrics().watchdog_fires.add();
          it = armed_.erase(it);
        } else {
          earliest = std::min(earliest, it->second.deadline);
          ++it;
        }
      }
      // The external stop token has no way to wake this cv, so cap the
      // sleep at a short poll tick while one is configured.
      if (stop_ != nullptr) {
        earliest = std::min(earliest, now + std::chrono::milliseconds(20));
      }
      if (earliest == Clock::time_point::max()) {
        cv_.wait(lk, stop, [&] { return !armed_.empty(); });
      } else {
        cv_.wait_until(lk, stop, earliest, [] { return false; });
      }
    }
  }

  std::chrono::milliseconds deadline_;
  const CancelToken* stop_;
  bool stopped_ = false;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::map<std::uint64_t, Entry> armed_;
  std::uint64_t next_id_ = 0;
  std::jthread thread_;
};

void apply_chaos(const ChaosPolicy& chaos, std::uint64_t unit, int attempt,
                 const CancelToken& cancel) {
  switch (chaos.decide(unit, attempt)) {
    case ChaosAction::kNone:
      return;
    case ChaosAction::kThrowTransient:
      throw RunError(ErrorCategory::kTransient,
                     "chaos: injected transient fault (unit " +
                         std::to_string(unit) + ", attempt " +
                         std::to_string(attempt) + ")");
    case ChaosAction::kThrowPermanent:
      throw RunError(ErrorCategory::kPermanent,
                     "chaos: injected permanent fault (unit " +
                         std::to_string(unit) + ")");
    case ChaosAction::kStall: {
      // Deadline-aware: one blocking wait that a watchdog cancel() ends
      // immediately. The old fixed-tick poll loop kept a cancelled task
      // stalling for up to a full tick past its deadline — and, worse,
      // burned a wakeup per millisecond for the whole stall.
      cancel.wait_until(Clock::now() + chaos.stall_duration);
      cancel.poll();  // a watchdog cancellation ends the stall
      return;
    }
  }
}

}  // namespace

void CancelToken::cancel() noexcept {
  flag_.store(true, std::memory_order_release);
  // Taking the lock before notifying orders the store against a sleeper's
  // predicate re-check: a wait_until that just saw the flag clear is
  // guaranteed to observe the notification.
  std::lock_guard lk(mutex_);
  cv_.notify_all();
}

void CancelToken::poll() const {
  if (cancelled()) {
    throw RunError(ErrorCategory::kTimeout,
                   "task cancelled by watchdog deadline");
  }
}

void CancelToken::wait_until(
    std::chrono::steady_clock::time_point deadline) const {
  std::unique_lock lk(mutex_);
  cv_.wait_until(lk, deadline, [this] { return cancelled(); });
}

RunnerConfig RunnerConfig::from_env() {
  RunnerConfig config;
  config.chaos = ChaosPolicy::from_env();
  config.max_retries = static_cast<int>(
      env::long_or("AGINGSIM_MAX_RETRIES", config.max_retries, 0));
  config.deadline = std::chrono::milliseconds(env::long_or(
      "AGINGSIM_DEADLINE_MS", static_cast<long>(config.deadline.count()), 0));
  return config;
}

std::string RunReport::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "units: %zu computed, %zu restored, %zu quarantined, "
                "%zu skipped of %zu; retries: %llu",
                computed, restored, quarantined, skipped, units.size(),
                static_cast<unsigned long long>(retries));
  return buf;
}

RobustRunner::RobustRunner(RunnerConfig config) : config_(config) {
  if (config_.max_retries < 0) {
    throw RunError(ErrorCategory::kPermanent,
                   "RobustRunner: max_retries must be >= 0");
  }
  if (!(config_.backoff_growth >= 1.0)) {
    throw RunError(ErrorCategory::kPermanent,
                   "RobustRunner: backoff_growth must be >= 1");
  }
}

std::chrono::milliseconds RobustRunner::backoff_delay(
    const RunnerConfig& config, int retry_index) {
  const double ms =
      static_cast<double>(config.backoff_base.count()) *
      std::pow(config.backoff_growth, static_cast<double>(retry_index - 1));
  const double capped =
      std::min(ms, static_cast<double>(config.backoff_cap.count()));
  return std::chrono::milliseconds(static_cast<long long>(capped));
}

std::vector<std::string> RobustRunner::run(std::size_t n, const Task& task,
                                           RunReport* report,
                                           const Progress& progress) {
  obs::TraceSpan run_span("runner.run", n);
  RunReport local;
  RunReport& rep = report != nullptr ? *report : local;
  rep = RunReport{};
  rep.units.assign(n, UnitOutcome{});
  std::vector<std::string> payloads(n);

  CheckpointStore* store = config_.checkpoints;
  std::vector<std::uint64_t> pending;
  pending.reserve(n);
  for (std::uint64_t unit = 0; unit < n; ++unit) {
    std::optional<std::string> restored;
    if (store != nullptr) restored = store->restore(unit);
    if (restored.has_value()) {
      payloads[unit] = std::move(*restored);
      rep.units[unit].state = UnitState::kRestored;
    } else {
      pending.push_back(unit);
    }
  }

  // Ordered progress frontier. Completions arrive in any order from the
  // pool; the callback contract is strict unit order, so each completion
  // marks its unit done and drains the contiguous prefix under one mutex.
  // The mutex also publishes payloads[] writes from completing threads to
  // the draining thread.
  std::mutex progress_mutex;
  std::vector<char> unit_done;
  std::uint64_t frontier = 0;
  const auto drain_frontier_locked = [&] {
    while (frontier < n && unit_done[frontier] != 0) {
      progress(frontier, payloads[frontier], rep.units[frontier].state);
      ++frontier;
    }
  };
  if (progress) {
    unit_done.assign(n, 0);
    for (std::uint64_t unit = 0; unit < n; ++unit) {
      if (rep.units[unit].state == UnitState::kRestored) unit_done[unit] = 1;
    }
    // A resumed campaign replays its restored prefix immediately — this is
    // the "re-attach and stream the tail" path of docs/SERVING.md (the
    // caller filters against its resume cursor).
    std::lock_guard lk(progress_mutex);
    drain_frontier_locked();
  }
  const auto report_done = [&](std::uint64_t unit) {
    if (!progress) return;
    std::lock_guard lk(progress_mutex);
    unit_done[unit] = 1;
    drain_frontier_locked();
  };

  // Chaos crash scheduling: die (std::_Exit) after a deterministic number
  // of freshly persisted units. Armed only with a checkpoint store — a
  // crash without checkpoints would just discard the campaign.
  const std::uint64_t crash_after =
      store != nullptr ? config_.chaos.crash_after_units(n - pending.size())
                       : 0;
  std::atomic<std::uint64_t> fresh_done{0};

  Watchdog watchdog(config_.deadline, config_.stop);
  const auto stop_requested = [&] {
    return config_.stop != nullptr && config_.stop->cancelled();
  };
  const auto run_unit = [&](std::size_t pending_index) {
    const std::uint64_t unit = pending[pending_index];
    obs::TraceSpan unit_span("runner.unit", unit);
    UnitOutcome& outcome = rep.units[unit];
    if (stop_requested()) {
      outcome.state = UnitState::kSkipped;
      return;
    }
    for (int attempt = 0;; ++attempt) {
      CancelToken cancel;
      const std::uint64_t armed = watchdog.arm(&cancel);
      ++outcome.attempts;
      try {
        apply_chaos(config_.chaos, unit, attempt, cancel);
        std::string payload = task(unit, cancel);
        watchdog.disarm(armed);
        payloads[unit] = std::move(payload);
        outcome.state = UnitState::kComputed;
        if (store != nullptr) {
          try {
            const Clock::time_point t0 = Clock::now();
            {
              obs::TraceSpan persist_span("runner.persist", unit);
              store->persist(unit, payloads[unit]);
            }
            runner_metrics().persist_us.observe(
                std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count());
          } catch (const RunError& e) {
            // A dead disk must not kill a finished computation: the run
            // continues, only resumability of this unit is lost.
            std::fprintf(stderr, "checkpoint: persist failed: %s\n",
                         e.what());
          }
          if (crash_after != 0 &&
              fresh_done.fetch_add(1, std::memory_order_relaxed) + 1 >=
                  crash_after) {
            std::_Exit(kCrashExitCode);
          }
        }
        report_done(unit);
        return;
      } catch (const RunError& e) {
        watchdog.disarm(armed);
        if (stop_requested()) {
          // The cancellation came from the external stop, not a failure of
          // this unit: record it as skipped so a resume re-runs it.
          outcome.state = UnitState::kSkipped;
          return;
        }
        if (e.retryable() && attempt < config_.max_retries) {
          const std::chrono::milliseconds delay =
              backoff_delay(config_, attempt + 1);
          runner_metrics().backoff_waits.add();
          runner_metrics().backoff_wait_ms.add(
              static_cast<std::uint64_t>(delay.count()));
          std::this_thread::sleep_for(delay);
          continue;
        }
        outcome.state = UnitState::kQuarantined;
        outcome.category = e.category();
        outcome.error = e.what();
        return;
      } catch (const std::exception& e) {
        watchdog.disarm(armed);
        outcome.state = UnitState::kQuarantined;
        outcome.category = ErrorCategory::kPermanent;
        outcome.error = e.what();
        return;
      }
    }
  };

  if (config_.pool != nullptr) {
    config_.pool->for_each_index(pending.size(), run_unit);
  } else {
    exec::ThreadPool pool;
    pool.for_each_index(pending.size(), run_unit);
  }

  for (const UnitOutcome& outcome : rep.units) {
    switch (outcome.state) {
      case UnitState::kComputed: ++rep.computed; break;
      case UnitState::kRestored: ++rep.restored; break;
      case UnitState::kQuarantined: ++rep.quarantined; break;
      case UnitState::kSkipped: ++rep.skipped; break;
    }
    if (outcome.attempts > 1) {
      rep.retries += static_cast<std::uint64_t>(outcome.attempts - 1);
    }
  }
  if (obs::metrics_enabled()) {
    const RunnerMetrics& m = runner_metrics();
    m.units_computed.add(rep.computed);
    m.units_restored.add(rep.restored);
    m.units_quarantined.add(rep.quarantined);
    m.retries.add(rep.retries);
  }
  return payloads;
}

}  // namespace agingsim::runtime
