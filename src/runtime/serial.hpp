#pragma once

// Fixed-width little-endian byte codec for checkpoint payloads, plus the
// CRC-32 and FNV-1a digests the checkpoint format is built on. Doubles are
// stored as their IEEE-754 bit pattern, so an encode/decode round trip is
// bit-exact — the property that lets a resumed campaign produce
// byte-identical JSON to an uninterrupted one (docs/ROBUSTNESS.md).

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/runtime/run_error.hpp"

namespace agingsim::runtime {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
/// crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view bytes);

/// Incremental FNV-1a 64-bit digest used to fingerprint campaign
/// configurations: a checkpoint written under one configuration must never
/// be restored into a different one.
class Digest {
 public:
  Digest& mix(std::uint64_t v);
  Digest& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Digest& mix(int v) { return mix(static_cast<std::int64_t>(v)); }
  Digest& mix(bool v) { return mix(std::uint64_t{v ? 1u : 0u}); }
  Digest& mix(double v) { return mix(std::bit_cast<std::uint64_t>(v)); }
  Digest& mix(std::string_view bytes);

  std::uint64_t value() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state_ = kOffset;
};

/// Append-only encoder. All integers little-endian, strings length-prefixed.
class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v);
  ByteWriter& u32(std::uint32_t v);
  ByteWriter& u64(std::uint64_t v);
  ByteWriter& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  ByteWriter& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  ByteWriter& boolean(bool v) { return u8(v ? 1 : 0); }
  ByteWriter& str(std::string_view s);

  const std::string& data() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Decoder over a byte view; any read past the end throws
/// RunError(kCorrupt) so truncated checkpoints surface as a classified,
/// recoverable failure instead of undefined behavior.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }
  /// Throws RunError(kCorrupt) unless every byte was consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace agingsim::runtime
