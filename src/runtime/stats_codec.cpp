#include "src/runtime/stats_codec.hpp"

#include "src/runtime/serial.hpp"

namespace agingsim::runtime {
namespace {

// Bump when RunStats gains/loses fields so stale checkpoints are rejected.
constexpr std::uint32_t kRunStatsFields = 26;

void encode_into(ByteWriter& w, const RunStats& s) {
  w.u32(kRunStatsFields);
  w.u64(s.ops)
      .u64(s.one_cycle_ops)
      .u64(s.two_cycle_ops)
      .u64(s.errors)
      .u64(s.undetected)
      .u64(s.razor_escapes)
      .u64(s.sdc_ops)
      .u64(s.masked_faults)
      .u64(s.total_cycles)
      .boolean(s.switched_to_second_block)
      .u64(s.storm_engagements)
      .u64(s.storm_recoveries)
      .u64(s.storm_ops)
      .f64(s.period_ps)
      .f64(s.avg_cycles)
      .f64(s.avg_latency_ps)
      .f64(s.one_cycle_ratio)
      .f64(s.errors_per_10k_ops)
      .f64(s.sdc_per_10k_ops)
      .f64(s.total_energy_fj)
      .f64(s.comb_energy_fj)
      .f64(s.register_energy_fj)
      .f64(s.ahl_energy_fj)
      .f64(s.leakage_energy_fj)
      .f64(s.avg_power_mw)
      .f64(s.edp_mw_ns2);
}

RunStats decode_from(ByteReader& r) {
  const std::uint32_t fields = r.u32();
  if (fields != kRunStatsFields) {
    throw RunError(ErrorCategory::kCorrupt,
                   "RunStats codec: field-count skew (payload " +
                       std::to_string(fields) + ", binary " +
                       std::to_string(kRunStatsFields) + ")");
  }
  RunStats s;
  s.ops = r.u64();
  s.one_cycle_ops = r.u64();
  s.two_cycle_ops = r.u64();
  s.errors = r.u64();
  s.undetected = r.u64();
  s.razor_escapes = r.u64();
  s.sdc_ops = r.u64();
  s.masked_faults = r.u64();
  s.total_cycles = r.u64();
  s.switched_to_second_block = r.boolean();
  s.storm_engagements = r.u64();
  s.storm_recoveries = r.u64();
  s.storm_ops = r.u64();
  s.period_ps = r.f64();
  s.avg_cycles = r.f64();
  s.avg_latency_ps = r.f64();
  s.one_cycle_ratio = r.f64();
  s.errors_per_10k_ops = r.f64();
  s.sdc_per_10k_ops = r.f64();
  s.total_energy_fj = r.f64();
  s.comb_energy_fj = r.f64();
  s.register_energy_fj = r.f64();
  s.ahl_energy_fj = r.f64();
  s.leakage_energy_fj = r.f64();
  s.avg_power_mw = r.f64();
  s.edp_mw_ns2 = r.f64();
  return s;
}

}  // namespace

std::string encode_run_stats(const RunStats& stats) {
  ByteWriter w;
  encode_into(w, stats);
  return w.take();
}

RunStats decode_run_stats(std::string_view payload) {
  ByteReader r(payload);
  const RunStats s = decode_from(r);
  r.expect_end();
  return s;
}

std::string encode_run_stats_row(std::span<const RunStats> row) {
  ByteWriter w;
  w.u64(row.size());
  for (const RunStats& s : row) encode_into(w, s);
  return w.take();
}

std::vector<RunStats> decode_run_stats_row(std::string_view payload) {
  ByteReader r(payload);
  const std::uint64_t count = r.u64();
  std::vector<RunStats> row;
  row.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) row.push_back(decode_from(r));
  r.expect_end();
  return row;
}

}  // namespace agingsim::runtime
