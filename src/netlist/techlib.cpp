#include "src/netlist/techlib.hpp"

#include <cmath>
#include <stdexcept>

namespace agingsim {
namespace {

// Representative 32 nm-class standard-cell delays (ps) and switched
// capacitance (fF). Relative magnitudes follow typical library data:
// inverting 2-input gates fastest, XOR/MUX ~2x a NAND, tri-state buffers
// close to a buffer. Tie cells are sources with no propagation.
TechLibrary make_default() {
  TechLibrary t{};
  auto set = [&t](CellKind k, double d_ps, double c_ff) {
    t.delay_ps[static_cast<std::size_t>(k)] = d_ps;
    t.switch_cap_ff[static_cast<std::size_t>(k)] = c_ff;
  };
  set(CellKind::kBuf, 16.0, 1.2);
  set(CellKind::kInv, 9.0, 0.7);
  set(CellKind::kAnd2, 17.0, 1.3);
  set(CellKind::kNand2, 12.0, 1.0);
  set(CellKind::kOr2, 18.0, 1.3);
  set(CellKind::kNor2, 14.0, 1.0);
  set(CellKind::kXor2, 26.0, 2.0);
  set(CellKind::kXnor2, 26.0, 2.0);
  set(CellKind::kAnd3, 21.0, 1.6);
  set(CellKind::kOr3, 22.0, 1.6);
  // MUX2/TBUF are transmission-gate cells: their internal switched charge
  // per output transition is well below a full static gate's.
  set(CellKind::kMux2, 24.0, 1.1);
  set(CellKind::kTbuf, 15.0, 0.7);
  set(CellKind::kTie0, 0.0, 0.0);
  set(CellKind::kTie1, 0.0, 0.0);
  return t;
}

}  // namespace

const TechLibrary& default_tech_library() {
  static const TechLibrary lib = make_default();
  return lib;
}

TechLibrary TechLibrary::scaled(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("TechLibrary::scaled: factor must be > 0");
  }
  TechLibrary out = *this;
  for (auto& d : out.delay_ps) d *= factor;
  return out;
}

double delay_scale_from_dvth(const TechLibrary& tech, double dvth_v) {
  const double drive0 = tech.vdd_v - tech.vth0_v;
  const double drive = drive0 - dvth_v;
  if (!(drive > 0.0)) {
    throw std::invalid_argument(
        "delay_scale_from_dvth: dVth drives gate overdrive non-positive");
  }
  return std::pow(drive0 / drive, tech.alpha_power);
}

}  // namespace agingsim
