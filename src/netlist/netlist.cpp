#include "src/netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/lint/structural.hpp"

namespace agingsim {

Netlist::Netlist() : index_once_(std::make_unique<std::once_flag>()) {}

Netlist::Netlist(const Netlist& other)
    : gates_(other.gates_),
      pins_(other.pins_),
      driver_(other.driver_),
      input_nets_(other.input_nets_),
      output_nets_(other.output_nets_),
      input_names_(other.input_names_),
      output_names_(other.output_names_),
      index_once_(std::make_unique<std::once_flag>()) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this != &other) {
    gates_ = other.gates_;
    pins_ = other.pins_;
    driver_ = other.driver_;
    input_nets_ = other.input_nets_;
    output_nets_ = other.output_nets_;
    input_names_ = other.input_names_;
    output_names_ = other.output_names_;
    index_once_ = std::make_unique<std::once_flag>();
    index_ = FanoutIndex{};
    index_built_ = false;
  }
  return *this;
}

NetId Netlist::add_input(std::string name) {
  invalidate_index();
  const NetId id = static_cast<NetId>(driver_.size());
  driver_.push_back(-1);
  input_nets_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

NetId Netlist::add_gate(CellKind kind, std::span<const NetId> inputs) {
  const CellTraits& traits = cell_traits(kind);
  if (inputs.size() != static_cast<std::size_t>(traits.num_inputs)) {
    throw std::invalid_argument(std::string("Netlist::add_gate: cell ") +
                                std::string(traits.name) + " expects " +
                                std::to_string(traits.num_inputs) +
                                " inputs, got " +
                                std::to_string(inputs.size()));
  }
  for (NetId in : inputs) {
    if (in >= driver_.size()) {
      throw std::invalid_argument(
          "Netlist::add_gate: input net does not exist yet (nets must be "
          "created before use; this also guarantees acyclicity)");
    }
  }
  invalidate_index();
  const NetId out = static_cast<NetId>(driver_.size());
  const std::uint32_t in_begin = static_cast<std::uint32_t>(pins_.size());
  pins_.insert(pins_.end(), inputs.begin(), inputs.end());
  driver_.push_back(static_cast<std::int32_t>(gates_.size()));
  gates_.push_back(Gate{kind, out, in_begin,
                        static_cast<std::uint16_t>(inputs.size())});
  return out;
}

void Netlist::mark_output(NetId net, std::string name) {
  if (net >= driver_.size()) {
    throw std::invalid_argument("Netlist::mark_output: net does not exist");
  }
  output_nets_.push_back(net);
  output_names_.push_back(std::move(name));
}

std::span<const GateId> Netlist::fanout(NetId net) const {
  if (net >= driver_.size()) {
    throw std::invalid_argument("Netlist::fanout: net does not exist");
  }
  ensure_index();
  return {index_.consumers.data() + index_.begin[net],
          index_.begin[net + 1] - index_.begin[net]};
}

Netlist::FanoutView Netlist::fanout_view() const {
  ensure_index();
  return {index_.begin.data(), index_.consumers.data()};
}

int Netlist::level(GateId g) const {
  if (g >= gates_.size()) {
    throw std::invalid_argument("Netlist::level: gate does not exist");
  }
  ensure_index();
  return index_.level[g];
}

int Netlist::depth() const {
  ensure_index();
  return index_.depth;
}

void Netlist::ensure_index() const {
  std::call_once(*index_once_, [this] {
    build_index();
    index_built_ = true;
  });
}

void Netlist::build_index() const {
  index_.begin.assign(num_nets() + 1, 0);
  index_.consumers.resize(pins_.size());
  index_.level.assign(gates_.size(), 0);
  index_.depth = 0;

  // Counting sort of the flat pin array into per-net consumer runs. Gates
  // are scanned in id order, so each run comes out sorted by gate id.
  for (NetId in : pins_) ++index_.begin[in + 1];
  for (std::size_t n = 1; n < index_.begin.size(); ++n) {
    index_.begin[n] += index_.begin[n - 1];
  }
  std::vector<std::uint32_t> cursor(index_.begin.begin(),
                                    index_.begin.end() - 1);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    for (NetId in : gate_inputs(static_cast<GateId>(gi))) {
      index_.consumers[cursor[in]++] = static_cast<GateId>(gi);
    }
  }

  // Levels in one forward pass (gate order is topological by construction).
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    std::int32_t lvl = 0;
    for (NetId in : gate_inputs(static_cast<GateId>(gi))) {
      const std::int32_t drv = driver_[in];
      if (drv >= 0) lvl = std::max(lvl, index_.level[drv] + 1);
    }
    index_.level[gi] = lvl;
    index_.depth = std::max(index_.depth, static_cast<int>(lvl) + 1);
  }
}

void Netlist::invalidate_index() {
  if (index_built_) {
    index_once_ = std::make_unique<std::once_flag>();
    index_ = FanoutIndex{};
    index_built_ = false;
  }
}

std::int64_t Netlist::transistor_count() const noexcept {
  std::int64_t total = 0;
  for (const Gate& g : gates_) total += cell_traits(g.kind).transistor_count;
  return total;
}

std::vector<std::size_t> Netlist::gate_count_by_kind() const {
  std::vector<std::size_t> counts(kNumCellKinds, 0);
  for (const Gate& g : gates_) ++counts[static_cast<std::size_t>(g.kind)];
  return counts;
}

void Netlist::validate() const {
  const std::vector<lint::Diagnostic> diagnostics =
      lint::structural_diagnostics(*this);
  std::size_t errors = 0;
  std::string details;
  for (const lint::Diagnostic& d : diagnostics) {
    if (d.severity != lint::Severity::kError) continue;
    ++errors;
    details += "\n  [" + d.rule + "] " + d.message;
  }
  if (errors != 0) {
    throw std::logic_error("Netlist::validate: " + std::to_string(errors) +
                           " structural violation(s):" + details);
  }
}

}  // namespace agingsim
