#include "src/netlist/netlist.hpp"

#include <stdexcept>
#include <string>

namespace agingsim {

NetId Netlist::add_input(std::string name) {
  const NetId id = static_cast<NetId>(driver_.size());
  driver_.push_back(-1);
  input_nets_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

NetId Netlist::add_gate(CellKind kind, std::span<const NetId> inputs) {
  const CellTraits& traits = cell_traits(kind);
  if (inputs.size() != static_cast<std::size_t>(traits.num_inputs)) {
    throw std::invalid_argument(std::string("Netlist::add_gate: cell ") +
                                std::string(traits.name) + " expects " +
                                std::to_string(traits.num_inputs) +
                                " inputs, got " +
                                std::to_string(inputs.size()));
  }
  for (NetId in : inputs) {
    if (in >= driver_.size()) {
      throw std::invalid_argument(
          "Netlist::add_gate: input net does not exist yet (nets must be "
          "created before use; this also guarantees acyclicity)");
    }
  }
  const NetId out = static_cast<NetId>(driver_.size());
  const std::uint32_t in_begin = static_cast<std::uint32_t>(pins_.size());
  pins_.insert(pins_.end(), inputs.begin(), inputs.end());
  driver_.push_back(static_cast<std::int32_t>(gates_.size()));
  gates_.push_back(Gate{kind, out, in_begin,
                        static_cast<std::uint16_t>(inputs.size())});
  return out;
}

void Netlist::mark_output(NetId net, std::string name) {
  if (net >= driver_.size()) {
    throw std::invalid_argument("Netlist::mark_output: net does not exist");
  }
  output_nets_.push_back(net);
  output_names_.push_back(std::move(name));
}

std::int64_t Netlist::transistor_count() const noexcept {
  std::int64_t total = 0;
  for (const Gate& g : gates_) total += cell_traits(g.kind).transistor_count;
  return total;
}

std::vector<std::size_t> Netlist::gate_count_by_kind() const {
  std::vector<std::size_t> counts(kNumCellKinds, 0);
  for (const Gate& g : gates_) ++counts[static_cast<std::size_t>(g.kind)];
  return counts;
}

void Netlist::validate() const {
  if (driver_.size() != input_nets_.size() + gates_.size()) {
    throw std::logic_error("Netlist::validate: net/driver count mismatch");
  }
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    const CellTraits& traits = cell_traits(g.kind);
    if (g.in_count != traits.num_inputs) {
      throw std::logic_error("Netlist::validate: pin count mismatch on gate " +
                             std::to_string(gi));
    }
    if (g.out >= driver_.size() ||
        driver_[g.out] != static_cast<std::int32_t>(gi)) {
      throw std::logic_error("Netlist::validate: bad driver for gate " +
                             std::to_string(gi));
    }
    for (NetId in : gate_inputs(static_cast<GateId>(gi))) {
      if (in >= g.out) {
        throw std::logic_error(
            "Netlist::validate: gate input not topologically earlier than "
            "its output (cycle or forward reference)");
      }
    }
  }
  for (NetId in : input_nets_) {
    if (in >= driver_.size() || driver_[in] != -1) {
      throw std::logic_error("Netlist::validate: primary input has a driver");
    }
  }
  for (NetId out : output_nets_) {
    if (out >= driver_.size()) {
      throw std::logic_error("Netlist::validate: dangling primary output");
    }
  }
}

}  // namespace agingsim
