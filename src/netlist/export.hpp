#pragma once

#include <string>

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Structural-Verilog emitter. The output instantiates one primitive module
/// per cell kind (definitions included in the emitted text), so the result
/// is self-contained and synthesizable/simulatable with any Verilog tool —
/// the paper's own flow (Verilog -> Laker -> Nanosim) can consume these
/// netlists directly. Tri-state keepers are emitted as `bufif1` with a
/// `trireg` net, matching the simulator's hold semantics.
std::string to_verilog(const Netlist& netlist, const std::string& module_name);

/// Graphviz DOT emitter for small netlists (schematics, documentation).
/// `max_gates` guards against accidentally dumping a 10k-gate multiplier
/// into a .dot file; throws std::invalid_argument beyond it.
std::string to_dot(const Netlist& netlist, const std::string& graph_name,
                   std::size_t max_gates = 2000);

}  // namespace agingsim
