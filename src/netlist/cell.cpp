#include "src/netlist/cell.hpp"

#include <array>
#include <cassert>

namespace agingsim {
namespace {

// Transistor counts are standard static-CMOS implementations:
// INV 2, NAND2/NOR2 4, AND2/OR2 6 (NAND/NOR + INV), XOR2/XNOR2 10,
// AND3/OR3 8, transmission-gate MUX2 12 (incl. select inverter and output
// buffer), TBUF 8 (incl. enable inverter), tie cells 2.
constexpr std::array<CellTraits, kNumCellKinds> kTraits{{
    {"BUF", 1, 4},
    {"INV", 1, 2},
    {"AND2", 2, 6},
    {"NAND2", 2, 4},
    {"OR2", 2, 6},
    {"NOR2", 2, 4},
    {"XOR2", 2, 10},
    {"XNOR2", 2, 10},
    {"AND3", 3, 8},
    {"OR3", 3, 8},
    {"MUX2", 3, 12},
    {"TBUF", 2, 8},
    {"TIE0", 0, 2},
    {"TIE1", 0, 2},
}};

}  // namespace

const CellTraits& cell_traits(CellKind kind) noexcept {
  assert(kind < CellKind::kCount);
  return kTraits[static_cast<std::size_t>(kind)];
}

Logic eval_cell(CellKind kind, std::span<const Logic> inputs,
                Logic prev_out) noexcept {
  assert(inputs.size() ==
         static_cast<std::size_t>(cell_traits(kind).num_inputs));
  switch (kind) {
    case CellKind::kBuf:
      return is_known(inputs[0]) ? inputs[0] : Logic::kX;
    case CellKind::kInv:
      return logic_not(inputs[0]);
    case CellKind::kAnd2:
      return logic_and(inputs[0], inputs[1]);
    case CellKind::kNand2:
      return logic_not(logic_and(inputs[0], inputs[1]));
    case CellKind::kOr2:
      return logic_or(inputs[0], inputs[1]);
    case CellKind::kNor2:
      return logic_not(logic_or(inputs[0], inputs[1]));
    case CellKind::kXor2:
      return logic_xor(inputs[0], inputs[1]);
    case CellKind::kXnor2:
      return logic_not(logic_xor(inputs[0], inputs[1]));
    case CellKind::kAnd3:
      return logic_and(logic_and(inputs[0], inputs[1]), inputs[2]);
    case CellKind::kOr3:
      return logic_or(logic_or(inputs[0], inputs[1]), inputs[2]);
    case CellKind::kMux2: {
      const Logic sel = inputs[2];
      if (sel == Logic::kZero) return is_known(inputs[0]) ? inputs[0] : Logic::kX;
      if (sel == Logic::kOne) return is_known(inputs[1]) ? inputs[1] : Logic::kX;
      // Unknown select: output known only if both data inputs agree.
      if (is_known(inputs[0]) && inputs[0] == inputs[1]) return inputs[0];
      return Logic::kX;
    }
    case CellKind::kTbuf: {
      const Logic en = inputs[1];
      if (en == Logic::kOne) return is_known(inputs[0]) ? inputs[0] : Logic::kX;
      if (en == Logic::kZero) {
        // Disabled: bus keeper retains the last driven value; if the net was
        // never driven it floats (Z at power-up, then X once observed).
        return prev_out == Logic::kZ ? Logic::kZ : prev_out;
      }
      return Logic::kX;
    }
    case CellKind::kTie0:
      return Logic::kZero;
    case CellKind::kTie1:
      return Logic::kOne;
    case CellKind::kCount:
      break;
  }
  assert(false && "invalid cell kind");
  return Logic::kX;
}

}  // namespace agingsim
