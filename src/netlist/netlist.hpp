#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/cell.hpp"

namespace agingsim {

/// Index of a net (wire) inside a Netlist.
using NetId = std::uint32_t;
/// Index of a gate inside a Netlist.
using GateId = std::uint32_t;

inline constexpr NetId kInvalidNet = static_cast<NetId>(-1);

/// One gate instance. Input nets live in the netlist's flat pin array
/// (`Netlist::gate_inputs`), keeping evaluation cache-friendly.
struct Gate {
  CellKind kind;
  NetId out;
  std::uint32_t in_begin;
  std::uint16_t in_count;
};

/// A combinational gate-level netlist.
///
/// Structural invariants, enforced at construction time:
///  - every net has exactly one driver (a primary input or a gate output);
///  - a gate's input nets must exist before the gate is added, so the gate
///    order is a topological order and the netlist is acyclic by
///    construction (`validate()` re-checks everything).
///
/// Sequential elements (input registers, Razor flip-flops) are *not* part of
/// the netlist: the paper's architecture (Fig. 8) wraps a purely
/// combinational multiplier in registers, and the system-level behaviour of
/// those registers is modelled in src/core/.
class Netlist {
 public:
  Netlist();
  Netlist(Netlist&&) noexcept = default;
  Netlist& operator=(Netlist&&) noexcept = default;
  /// Copies the structure; the derived fanout index is not shared and is
  /// rebuilt lazily in the copy.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);

  /// Creates a primary-input net.
  NetId add_input(std::string name);

  /// Creates a gate plus its output net; returns the output net.
  /// Throws std::invalid_argument on bad pin count or unknown input net.
  NetId add_gate(CellKind kind, std::span<const NetId> inputs);
  NetId add_gate(CellKind kind, std::initializer_list<NetId> inputs) {
    return add_gate(kind, std::span<const NetId>(inputs.begin(), inputs.size()));
  }

  /// Registers a net as a primary output. A net may be registered only once.
  void mark_output(NetId net, std::string name);

  std::size_t num_nets() const noexcept { return driver_.size(); }
  std::size_t num_gates() const noexcept { return gates_.size(); }
  std::size_t num_inputs() const noexcept { return input_nets_.size(); }
  std::size_t num_outputs() const noexcept { return output_nets_.size(); }
  /// Size of the flat gate-input pin array. The lint rules bounds-check
  /// gate pin windows against this before dereferencing them, so corrupted
  /// structures are reported instead of read out of bounds.
  std::size_t num_pins() const noexcept { return pins_.size(); }

  const Gate& gate(GateId g) const noexcept { return gates_[g]; }
  std::span<const NetId> gate_inputs(GateId g) const noexcept {
    const Gate& gt = gates_[g];
    return {pins_.data() + gt.in_begin, gt.in_count};
  }

  std::span<const NetId> input_nets() const noexcept { return input_nets_; }
  std::span<const NetId> output_nets() const noexcept { return output_nets_; }
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const {
    return output_names_[i];
  }

  /// Driving gate of `net`, or -1 if `net` is a primary input.
  std::int32_t driver_of(NetId net) const noexcept { return driver_[net]; }

  /// Gates that read `net` (its consumers), in ascending gate-id order.
  /// Backed by a CSR index over the flat pin array, built lazily on first
  /// access (thread-safe: concurrent readers of a non-mutating netlist may
  /// race to trigger the build) and invalidated by add_input/add_gate. A
  /// gate listing the same net on several pins appears once per pin.
  std::span<const GateId> fanout(NetId net) const;

  /// Raw CSR view of the whole fanout index: consumers of net `n` are
  /// `consumers[begin[n]] .. consumers[begin[n+1]]`. One `ensure_index`
  /// per call, so hot loops (the event-driven simulator kernel) grab a view
  /// once per step instead of paying the lazy-init check per net. The view
  /// is invalidated by add_input/add_gate, like any span into the netlist.
  struct FanoutView {
    const std::uint32_t* begin = nullptr;
    const GateId* consumers = nullptr;
  };
  FanoutView fanout_view() const;

  /// Topological level of gate `g`: 0 when every input is a primary input,
  /// otherwise 1 + the maximum level of its driving gates. Gate ids are
  /// themselves a topological order refining these levels (a driver's id is
  /// always smaller than its consumers'), which is what the event-driven
  /// simulator kernel relies on.
  int level(GateId g) const;

  /// Number of distinct levels (max level + 1); 0 for a gate-free netlist.
  int depth() const;

  /// Total transistor count (the paper's area metric, Fig. 25).
  std::int64_t transistor_count() const noexcept;

  /// Number of gates of each kind (diagnostics and area breakdowns).
  std::vector<std::size_t> gate_count_by_kind() const;

  /// Full structural re-check, delegated to the lint subsystem's
  /// structural rule family (src/lint/structural.hpp). Throws one
  /// std::logic_error aggregating *every* error-severity diagnostic (pin
  /// arity, driver-table consistency, topological order, dangling or
  /// duplicate outputs, ...), each carrying gate/net names. Warnings (dead
  /// logic, aliased bypass pins) do not throw — run the LintEngine for the
  /// full report.
  void validate() const;

 private:
  /// Test-only structural surgery (tests/ and the lint fuzzers); see
  /// src/netlist/surgeon.hpp.
  friend class NetlistSurgeon;
  /// Per-net consumer lists (CSR over pins_) plus per-gate topological
  /// levels. Derived data: rebuilt on demand after structural edits.
  struct FanoutIndex {
    std::vector<std::uint32_t> begin;  // size num_nets() + 1
    std::vector<GateId> consumers;     // size pins_.size()
    std::vector<std::int32_t> level;   // per gate
    int depth = 0;
  };

  void ensure_index() const;
  void build_index() const;
  void invalidate_index();

  std::vector<Gate> gates_;
  std::vector<NetId> pins_;           // flat gate-input array
  std::vector<std::int32_t> driver_;  // per net: gate index or -1 (PI)
  std::vector<NetId> input_nets_;
  std::vector<NetId> output_nets_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;

  // Lazily built derived index. The once_flag lives behind a unique_ptr so
  // the netlist stays movable; invalidation swaps in a fresh flag.
  mutable FanoutIndex index_;
  mutable std::unique_ptr<std::once_flag> index_once_;
  mutable bool index_built_ = false;
};

}  // namespace agingsim
