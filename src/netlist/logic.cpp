#include "src/netlist/logic.hpp"

namespace agingsim {

char logic_to_char(Logic v) noexcept {
  switch (v) {
    case Logic::kZero: return '0';
    case Logic::kOne: return '1';
    case Logic::kX: return 'X';
    case Logic::kZ: return 'Z';
  }
  return '?';
}

std::ostream& operator<<(std::ostream& os, Logic v) {
  return os << logic_to_char(v);
}

}  // namespace agingsim
