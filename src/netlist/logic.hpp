#pragma once

#include <cstdint>
#include <ostream>

namespace agingsim {

/// Four-state logic value used throughout the gate-level simulator.
///
/// `kX` is the "unknown" state a net holds before it has ever been driven
/// (e.g. the data input of a disabled tri-state gate at power-up). `kZ` is
/// high impedance, produced only by a disabled tri-state buffer whose output
/// net has no keeper state yet. Both propagate pessimistically through the
/// evaluation rules in `cell.hpp`.
enum class Logic : std::uint8_t {
  kZero = 0,
  kOne = 1,
  kX = 2,
  kZ = 3,
};

/// True for kZero / kOne.
constexpr bool is_known(Logic v) noexcept {
  return v == Logic::kZero || v == Logic::kOne;
}

constexpr Logic logic_from_bool(bool b) noexcept {
  return b ? Logic::kOne : Logic::kZero;
}

/// Converts a known value to bool. Precondition: is_known(v).
constexpr bool logic_to_bool(Logic v) noexcept { return v == Logic::kOne; }

/// Logical negation; X/Z map to X.
constexpr Logic logic_not(Logic v) noexcept {
  switch (v) {
    case Logic::kZero: return Logic::kOne;
    case Logic::kOne: return Logic::kZero;
    default: return Logic::kX;
  }
}

/// Three-valued AND with controlling-zero short-circuit.
constexpr Logic logic_and(Logic a, Logic b) noexcept {
  if (a == Logic::kZero || b == Logic::kZero) return Logic::kZero;
  if (a == Logic::kOne && b == Logic::kOne) return Logic::kOne;
  return Logic::kX;
}

/// Three-valued OR with controlling-one short-circuit.
constexpr Logic logic_or(Logic a, Logic b) noexcept {
  if (a == Logic::kOne || b == Logic::kOne) return Logic::kOne;
  if (a == Logic::kZero && b == Logic::kZero) return Logic::kZero;
  return Logic::kX;
}

/// Three-valued XOR (X-propagating).
constexpr Logic logic_xor(Logic a, Logic b) noexcept {
  if (!is_known(a) || !is_known(b)) return Logic::kX;
  return logic_from_bool(logic_to_bool(a) != logic_to_bool(b));
}

char logic_to_char(Logic v) noexcept;
std::ostream& operator<<(std::ostream& os, Logic v);

}  // namespace agingsim
