#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Sum/carry pair produced by adder helpers.
struct AdderBits {
  NetId sum;
  NetId carry;
};

/// Convenience layer for structural netlist construction.
///
/// Adds cached constant nets, bus helpers and adder macros (with
/// constant-folding: a full adder fed a constant-zero pin degenerates to a
/// half adder or a wire, which is exactly how the hand-drawn arrays in the
/// paper's Figs. 1-3 are built — first rows use half adders).
class NetlistBuilder {
 public:
  Netlist& netlist() noexcept { return nl_; }
  const Netlist& netlist() const noexcept { return nl_; }

  /// Constant-zero / constant-one nets (created on first use, then cached).
  NetId zero();
  NetId one();
  bool is_zero(NetId n) const noexcept { return zero_ != kInvalidNet && n == zero_; }
  bool is_one(NetId n) const noexcept { return one_ != kInvalidNet && n == one_; }

  NetId input(std::string name) { return nl_.add_input(std::move(name)); }
  /// Creates `width` inputs named `name[0] .. name[width-1]`, LSB first.
  std::vector<NetId> input_bus(const std::string& name, int width);
  /// Marks `bits` (LSB first) as outputs `name[0..]`.
  void output_bus(const std::string& name, const std::vector<NetId>& bits);

  NetId buf(NetId a) { return nl_.add_gate(CellKind::kBuf, {a}); }
  NetId inv(NetId a) { return nl_.add_gate(CellKind::kInv, {a}); }
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  /// out = sel ? d1 : d0
  NetId mux2(NetId d0, NetId d1, NetId sel) {
    return nl_.add_gate(CellKind::kMux2, {d0, d1, sel});
  }
  /// out = en ? d : hold
  NetId tbuf(NetId d, NetId en) {
    return nl_.add_gate(CellKind::kTbuf, {d, en});
  }

  /// Instantiates `sub` as a subcircuit: `sub`'s primary inputs are bound
  /// to `inputs` (same order), its gates are copied with nets remapped, and
  /// the nets corresponding to `sub`'s primary outputs are returned. This
  /// is how generated blocks (e.g. the AHL judging-block netlists) compose
  /// into larger circuits.
  std::vector<NetId> instantiate(const Netlist& sub,
                                 std::span<const NetId> inputs);

  /// Half adder: sum = a^b, carry = a&b (constant-folded).
  AdderBits half_adder(NetId a, NetId b);
  /// Full adder built from 2 XOR + 2 AND + 1 OR (constant-folded when any
  /// input is the constant-zero net).
  AdderBits full_adder(NetId a, NetId b, NetId cin);

 private:
  Netlist nl_;
  NetId zero_ = kInvalidNet;
  NetId one_ = kInvalidNet;
};

}  // namespace agingsim
