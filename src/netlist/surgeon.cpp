#include "src/netlist/surgeon.hpp"

#include <stdexcept>

namespace agingsim {

void NetlistSurgeon::set_gate_kind(GateId gate, CellKind kind) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].kind = kind;
}

void NetlistSurgeon::set_gate_pin_count(GateId gate, std::uint16_t count) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].in_count = count;
}

void NetlistSurgeon::set_gate_pin_begin(GateId gate, std::uint32_t begin) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].in_begin = begin;
}

void NetlistSurgeon::set_pin(std::size_t pin_index, NetId net) {
  if (pin_index >= nl_.pins_.size()) {
    throw std::invalid_argument("NetlistSurgeon: pin index out of range");
  }
  nl_.invalidate_index();
  nl_.pins_[pin_index] = net;
}

void NetlistSurgeon::set_driver(NetId net, std::int32_t driver) {
  if (net >= nl_.num_nets()) {
    throw std::invalid_argument("NetlistSurgeon: net does not exist");
  }
  nl_.invalidate_index();
  nl_.driver_[net] = driver;
}

void NetlistSurgeon::set_gate_out(GateId gate, NetId net) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].out = net;
}

void NetlistSurgeon::set_output_net(std::size_t output_index, NetId net) {
  if (output_index >= nl_.num_outputs()) {
    throw std::invalid_argument("NetlistSurgeon: output index out of range");
  }
  nl_.invalidate_index();
  nl_.output_nets_[output_index] = net;
}

NetId NetlistSurgeon::insert_buffer(NetId net, GateId sink, int count) {
  if (count < 1) {
    throw std::invalid_argument("NetlistSurgeon::insert_buffer: count < 1");
  }
  if (sink >= nl_.num_gates()) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_buffer: sink gate does not exist");
  }
  if (net >= nl_.num_nets()) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_buffer: net does not exist");
  }
  const Gate sink_gate = nl_.gates_[sink];
  if (sink_gate.in_begin > nl_.pins_.size() ||
      sink_gate.in_begin + sink_gate.in_count > nl_.pins_.size()) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_buffer: sink pin window out of bounds");
  }
  bool reads = false;
  for (std::uint32_t p = sink_gate.in_begin;
       p < sink_gate.in_begin + sink_gate.in_count; ++p) {
    reads |= nl_.pins_[p] == net;
  }
  if (!reads) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_buffer: sink does not read net");
  }
  nl_.invalidate_index();

  // The chain takes gate ids [pos_g, pos_g+count) and net ids
  // [pos_n, pos_n+count). `net` is read by `sink`, so net < pos_n and its id
  // survives the renumbering unchanged.
  const GateId pos_g = sink;
  const NetId pos_n = sink_gate.out;
  const auto shift = static_cast<NetId>(count);

  for (NetId& pin : nl_.pins_) {
    if (pin >= pos_n && pin != kInvalidNet) pin += shift;
  }
  for (std::int32_t& drv : nl_.driver_) {
    if (drv >= static_cast<std::int32_t>(pos_g)) drv += count;
  }
  for (NetId& in : nl_.input_nets_) {
    if (in >= pos_n) in += shift;
  }
  for (NetId& out : nl_.output_nets_) {
    if (out >= pos_n && out != kInvalidNet) out += shift;
  }
  for (Gate& g : nl_.gates_) {
    if (g.out >= pos_n) g.out += shift;
  }

  // Splice the chain in: buffer j (gate pos_g+j) drives net pos_n+j and
  // reads the previous link (or `net` for the head). Its pin lives at the
  // end of the flat pin array — pin windows need not follow gate order.
  nl_.gates_.insert(nl_.gates_.begin() + pos_g, static_cast<std::size_t>(count),
                    Gate{});
  nl_.driver_.insert(nl_.driver_.begin() + pos_n,
                     static_cast<std::size_t>(count), -1);
  for (int j = 0; j < count; ++j) {
    const auto pin_index = static_cast<std::uint32_t>(nl_.pins_.size());
    nl_.pins_.push_back(j == 0 ? net : pos_n + static_cast<NetId>(j) - 1);
    nl_.gates_[pos_g + static_cast<GateId>(j)] =
        Gate{CellKind::kBuf, pos_n + static_cast<NetId>(j), pin_index, 1};
    nl_.driver_[pos_n + static_cast<NetId>(j)] =
        static_cast<std::int32_t>(pos_g) + j;
  }

  // Rewire every sink pin that read `net` to the chain's output. The sink
  // now sits at pos_g + count; its pin window positions are unchanged.
  const NetId tail = pos_n + shift - 1;
  const Gate& moved_sink = nl_.gates_[pos_g + static_cast<GateId>(count)];
  for (std::uint32_t p = moved_sink.in_begin;
       p < moved_sink.in_begin + moved_sink.in_count; ++p) {
    if (nl_.pins_[p] == net) nl_.pins_[p] = tail;
  }
  return tail;
}

NetId NetlistSurgeon::insert_output_buffer(std::size_t output_index,
                                           int count) {
  if (count < 1) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_output_buffer: count < 1");
  }
  if (output_index >= nl_.num_outputs()) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_output_buffer: output index out of range");
  }
  NetId prev = nl_.output_nets_[output_index];
  if (prev >= nl_.num_nets()) {
    throw std::invalid_argument(
        "NetlistSurgeon::insert_output_buffer: output net does not exist");
  }
  nl_.invalidate_index();
  for (int j = 0; j < count; ++j) {
    const auto out = static_cast<NetId>(nl_.driver_.size());
    const auto pin_index = static_cast<std::uint32_t>(nl_.pins_.size());
    nl_.pins_.push_back(prev);
    nl_.driver_.push_back(static_cast<std::int32_t>(nl_.gates_.size()));
    nl_.gates_.push_back(Gate{CellKind::kBuf, out, pin_index, 1});
    prev = out;
  }
  nl_.output_nets_[output_index] = prev;
  return prev;
}

}  // namespace agingsim
