#include "src/netlist/surgeon.hpp"

#include <stdexcept>

namespace agingsim {

void NetlistSurgeon::set_gate_kind(GateId gate, CellKind kind) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].kind = kind;
}

void NetlistSurgeon::set_gate_pin_count(GateId gate, std::uint16_t count) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].in_count = count;
}

void NetlistSurgeon::set_gate_pin_begin(GateId gate, std::uint32_t begin) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].in_begin = begin;
}

void NetlistSurgeon::set_pin(std::size_t pin_index, NetId net) {
  if (pin_index >= nl_.pins_.size()) {
    throw std::invalid_argument("NetlistSurgeon: pin index out of range");
  }
  nl_.invalidate_index();
  nl_.pins_[pin_index] = net;
}

void NetlistSurgeon::set_driver(NetId net, std::int32_t driver) {
  if (net >= nl_.num_nets()) {
    throw std::invalid_argument("NetlistSurgeon: net does not exist");
  }
  nl_.invalidate_index();
  nl_.driver_[net] = driver;
}

void NetlistSurgeon::set_gate_out(GateId gate, NetId net) {
  if (gate >= nl_.num_gates()) {
    throw std::invalid_argument("NetlistSurgeon: gate does not exist");
  }
  nl_.invalidate_index();
  nl_.gates_[gate].out = net;
}

void NetlistSurgeon::set_output_net(std::size_t output_index, NetId net) {
  if (output_index >= nl_.num_outputs()) {
    throw std::invalid_argument("NetlistSurgeon: output index out of range");
  }
  nl_.invalidate_index();
  nl_.output_nets_[output_index] = net;
}

}  // namespace agingsim
