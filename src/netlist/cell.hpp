#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "src/netlist/logic.hpp"

namespace agingsim {

/// Standard-cell kinds available to netlist generators.
///
/// Pin conventions (input order matters):
///  - kMux2:  in[0] = d0, in[1] = d1, in[2] = sel;  out = sel ? d1 : d0
///  - kTbuf:  in[0] = d,  in[1] = en;               out = en ? d : Z (keeper)
///  - kTie0 / kTie1: no inputs, constant output.
/// All other kinds take their natural number of symmetric inputs.
enum class CellKind : std::uint8_t {
  kBuf = 0,
  kInv,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAnd3,
  kOr3,
  kMux2,
  kTbuf,
  kTie0,
  kTie1,
  kCount,  // sentinel
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::kCount);

/// Static, technology-independent properties of a cell kind.
struct CellTraits {
  std::string_view name;
  int num_inputs;
  /// CMOS transistor count of a typical static implementation; used for the
  /// paper's Fig. 25 area comparison (area is reported in transistors).
  int transistor_count;
};

/// Traits lookup. `kind` must be a valid (non-sentinel) cell kind.
const CellTraits& cell_traits(CellKind kind) noexcept;

/// Functional evaluation of one cell over four-state logic.
///
/// `inputs.size()` must equal `cell_traits(kind).num_inputs`.
/// `prev_out` is the previous value of the output net; it is needed only by
/// kTbuf, whose disabled output keeps its last driven value (bus-keeper
/// semantics — this models the tri-state input gating of the bypassing
/// multipliers, where a disabled full adder simply holds state and burns no
/// switching power).
Logic eval_cell(CellKind kind, std::span<const Logic> inputs,
                Logic prev_out) noexcept;

}  // namespace agingsim
