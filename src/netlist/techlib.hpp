#pragma once

#include <array>

#include "src/netlist/cell.hpp"

namespace agingsim {

/// Technology parameters of the 32 nm high-k/metal-gate class process the
/// paper simulates (PTM 32 nm HK). Per-cell nominal delays and input
/// capacitances are representative standard-cell values; a single global
/// scale factor is applied at calibration time so that the 16x16
/// column-bypassing multiplier's critical path matches the paper's 1.88 ns
/// (see core/calibration.hpp). All relative numbers — which design is
/// faster, where the variable-latency crossovers fall — come from circuit
/// structure, not from the calibration point.
struct TechLibrary {
  /// Per-cell-kind propagation delay in picoseconds (input-to-output, FO4-ish
  /// loading assumed; wire delay folded in).
  std::array<double, kNumCellKinds> delay_ps;
  /// Per-cell-kind switched capacitance in femtofarads (gate + local wire);
  /// drives the dynamic-energy model (power/power.hpp).
  std::array<double, kNumCellKinds> switch_cap_ff;

  double vdd_v = 0.9;          ///< Supply voltage (PTM 32 nm HK).
  double vth0_v = 0.30;        ///< Nominal |Vth| at time zero.
  double alpha_power = 1.3;    ///< Alpha-power-law velocity-saturation index.
  double temperature_k = 398.15;  ///< 125 C, the paper's stress temperature.

  double delay(CellKind kind) const noexcept {
    return delay_ps[static_cast<std::size_t>(kind)];
  }
  double cap(CellKind kind) const noexcept {
    return switch_cap_ff[static_cast<std::size_t>(kind)];
  }

  /// Returns a copy with all delays multiplied by `factor` (calibration).
  TechLibrary scaled(double factor) const;
};

/// The default (uncalibrated) 32 nm-class library.
const TechLibrary& default_tech_library();

/// Converts a threshold-voltage shift into a gate-delay multiplier using the
/// alpha-power law:  d(t)/d(0) = ((Vdd - Vth0) / (Vdd - Vth0 - dVth))^alpha.
/// This is how the BTI model's dVth(t) becomes per-gate delay degradation.
double delay_scale_from_dvth(const TechLibrary& tech, double dvth_v);

}  // namespace agingsim
