#pragma once

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Structural surgery on a Netlist.
///
/// `Netlist`'s public construction API makes invalid structures
/// unrepresentable (pin counts checked, nets must exist before use, drivers
/// assigned exactly once) but is append-only. The surgeon reaches through
/// the encapsulation for the two cases that need more:
///
///  - **Corruption primitives** (`set_*`): deliberately break the raw
///    tables — mirroring real generator-bug classes like dropped pins,
///    duplicated drivers and dangling outputs — so tests and the lint
///    fuzzers can prove every rule fires and nothing crashes. A netlist
///    mutated this way violates the invariants every simulator relies on;
///    test-only.
///  - **Repair primitives** (`insert_buffer`, `insert_output_buffer`):
///    structure-preserving edits with a structural-lint-clean guarantee —
///    applied to a valid netlist they yield a valid netlist with identical
///    logic function. The hold-repair pass (src/lint/repair.hpp) uses them
///    to pad short paths with delay buffers; the lint fuzzers use them as
///    benign mutations that must never trip a rule.
///
/// Every mutation invalidates the netlist's derived fanout index.
class NetlistSurgeon {
 public:
  explicit NetlistSurgeon(Netlist& netlist) : nl_(netlist) {}

  /// Overwrites a gate's cell kind without touching its pins (kind/arity
  /// mismatch, or an out-of-library kind such as CellKind::kCount).
  void set_gate_kind(GateId gate, CellKind kind);

  /// Shrinks or grows a gate's pin window ("dropped pin" when shrunk).
  void set_gate_pin_count(GateId gate, std::uint16_t count);

  /// Repoints a gate's pin window start.
  void set_gate_pin_begin(GateId gate, std::uint32_t begin);

  /// Rewires one entry of the flat pin array (forward references, aliased
  /// bypass pins, nonexistent nets).
  void set_pin(std::size_t pin_index, NetId net);

  /// Overwrites a net's driver entry ("duplicated driver" when pointed at
  /// a gate that drives another net; orphaned net when set to -1).
  void set_driver(NetId net, std::int32_t driver);

  /// Overwrites which net a gate claims to drive.
  void set_gate_out(GateId gate, NetId net);

  /// Repoints a registered primary output at an arbitrary (possibly
  /// nonexistent) net, bypassing mark_output's existence check.
  void set_output_net(std::size_t output_index, NetId net);

  /// Inserts a chain of `count` kBuf cells between `net` and gate `sink`:
  /// every pin of `sink` that reads `net` is rewired to the chain's output,
  /// all other consumers of `net` are untouched. The chain is spliced *in
  /// place* — the buffer gates take ids `sink .. sink+count-1` and their
  /// output nets take ids `gate(sink).out .. +count-1`, with every later
  /// gate and net renumbered — so the edited netlist still satisfies the
  /// topological-order invariant (gate ids and net ids both remain
  /// topological orders) and passes the full structural rule family.
  /// Callers holding per-gate or per-net side tables (aging overlays,
  /// arrival arrays) must splice them identically.
  ///
  /// Returns the net id now feeding `sink` (the last buffer's output).
  /// Throws std::invalid_argument when `sink` does not read `net`, either id
  /// is out of range, the sink's pin window is corrupt, or count < 1.
  NetId insert_buffer(NetId net, GateId sink, int count = 1);

  /// Inserts a chain of `count` kBuf cells between primary output
  /// `output_index` and its driving net, repointing only that output entry.
  /// Append-only: existing gate and net ids are unchanged (per-gate side
  /// tables extend with `count` trailing entries). Returns the new output
  /// net. Throws std::invalid_argument on a bad index, an output net out of
  /// range (dangling-output corruption), or count < 1.
  NetId insert_output_buffer(std::size_t output_index, int count = 1);

 private:
  Netlist& nl_;
};

}  // namespace agingsim
