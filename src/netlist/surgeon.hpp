#pragma once

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Test-only structural surgery on a Netlist.
///
/// `Netlist`'s public construction API makes invalid structures
/// unrepresentable (pin counts checked, nets must exist before use, drivers
/// assigned exactly once). That is the right property for production code
/// and the wrong one for testing the lint subsystem, whose whole job is to
/// diagnose broken structures. The surgeon is the sanctioned hole: it
/// reaches through the encapsulation and corrupts the raw tables —
/// mirroring real generator-bug classes like dropped pins, duplicated
/// drivers and dangling outputs — so tests and the lint fuzzers can prove
/// every rule fires and nothing crashes.
///
/// Every mutation invalidates the netlist's derived fanout index. Do not
/// use outside tests: a mutated netlist violates the invariants every
/// simulator relies on.
class NetlistSurgeon {
 public:
  explicit NetlistSurgeon(Netlist& netlist) : nl_(netlist) {}

  /// Overwrites a gate's cell kind without touching its pins (kind/arity
  /// mismatch, or an out-of-library kind such as CellKind::kCount).
  void set_gate_kind(GateId gate, CellKind kind);

  /// Shrinks or grows a gate's pin window ("dropped pin" when shrunk).
  void set_gate_pin_count(GateId gate, std::uint16_t count);

  /// Repoints a gate's pin window start.
  void set_gate_pin_begin(GateId gate, std::uint32_t begin);

  /// Rewires one entry of the flat pin array (forward references, aliased
  /// bypass pins, nonexistent nets).
  void set_pin(std::size_t pin_index, NetId net);

  /// Overwrites a net's driver entry ("duplicated driver" when pointed at
  /// a gate that drives another net; orphaned net when set to -1).
  void set_driver(NetId net, std::int32_t driver);

  /// Overwrites which net a gate claims to drive.
  void set_gate_out(GateId gate, NetId net);

  /// Repoints a registered primary output at an arbitrary (possibly
  /// nonexistent) net, bypassing mark_output's existence check.
  void set_output_net(std::size_t output_index, NetId net);

 private:
  Netlist& nl_;
};

}  // namespace agingsim
