#include "src/netlist/builder.hpp"

#include <stdexcept>

namespace agingsim {

NetId NetlistBuilder::zero() {
  if (zero_ == kInvalidNet) zero_ = nl_.add_gate(CellKind::kTie0, {});
  return zero_;
}

NetId NetlistBuilder::one() {
  if (one_ == kInvalidNet) one_ = nl_.add_gate(CellKind::kTie1, {});
  return one_;
}

std::vector<NetId> NetlistBuilder::input_bus(const std::string& name,
                                             int width) {
  std::vector<NetId> bits;
  bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bits.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bits;
}

void NetlistBuilder::output_bus(const std::string& name,
                                const std::vector<NetId>& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    nl_.mark_output(bits[i], name + "[" + std::to_string(i) + "]");
  }
}

NetId NetlistBuilder::and2(NetId a, NetId b) {
  if (is_zero(a) || is_zero(b)) return zero();
  if (is_one(a)) return b;
  if (is_one(b)) return a;
  return nl_.add_gate(CellKind::kAnd2, {a, b});
}

NetId NetlistBuilder::or2(NetId a, NetId b) {
  if (is_one(a) || is_one(b)) return one();
  if (is_zero(a)) return b;
  if (is_zero(b)) return a;
  return nl_.add_gate(CellKind::kOr2, {a, b});
}

NetId NetlistBuilder::xor2(NetId a, NetId b) {
  if (is_zero(a)) return b;
  if (is_zero(b)) return a;
  if (is_one(a)) return inv(b);
  if (is_one(b)) return inv(a);
  return nl_.add_gate(CellKind::kXor2, {a, b});
}

std::vector<NetId> NetlistBuilder::instantiate(
    const Netlist& sub, std::span<const NetId> inputs) {
  if (inputs.size() != sub.num_inputs()) {
    throw std::invalid_argument(
        "NetlistBuilder::instantiate: input binding count mismatch");
  }
  std::vector<NetId> map(sub.num_nets(), kInvalidNet);
  const auto sub_inputs = sub.input_nets();
  for (std::size_t i = 0; i < sub_inputs.size(); ++i) {
    map[sub_inputs[i]] = inputs[i];
  }
  for (GateId g = 0; g < sub.num_gates(); ++g) {
    const Gate& gate = sub.gate(g);
    std::vector<NetId> mapped;
    for (NetId in : sub.gate_inputs(g)) mapped.push_back(map[in]);
    map[gate.out] = nl_.add_gate(gate.kind, mapped);
  }
  std::vector<NetId> outs;
  outs.reserve(sub.num_outputs());
  for (NetId out : sub.output_nets()) outs.push_back(map[out]);
  return outs;
}

AdderBits NetlistBuilder::half_adder(NetId a, NetId b) {
  if (is_zero(a)) return {b, zero()};
  if (is_zero(b)) return {a, zero()};
  return {xor2(a, b), and2(a, b)};
}

AdderBits NetlistBuilder::full_adder(NetId a, NetId b, NetId cin) {
  // Constant folding: any zero pin reduces the FA to a half adder; two zero
  // pins reduce it to a wire.
  if (is_zero(cin)) return half_adder(a, b);
  if (is_zero(a)) return half_adder(b, cin);
  if (is_zero(b)) return half_adder(a, cin);
  const NetId t = xor2(a, b);
  const NetId sum = xor2(t, cin);
  const NetId g = and2(a, b);
  const NetId p = and2(t, cin);
  const NetId carry = or2(g, p);
  return {sum, carry};
}

}  // namespace agingsim
