#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/logic.hpp"
#include "src/netlist/netlist.hpp"

namespace agingsim {

/// The fault classes the resilience subsystem can inject (docs/FAULTS.md).
///
/// The paper's architecture is sold on *tolerating* aging-induced timing
/// failures; these overlays let the simulator measure that claim instead of
/// assuming it: which faults Razor detects, which the judging logic masks,
/// and which silently corrupt a committed product (SDC).
enum class FaultKind : std::uint8_t {
  /// Gate output permanently forced to logic 0 (manufacturing defect,
  /// hard breakdown). Functionally wrong but timing-clean: invisible to
  /// Razor — the canonical SDC source.
  kStuckAt0,
  /// Gate output permanently forced to logic 1.
  kStuckAt1,
  /// Single-event transient: the gate's output value is inverted for
  /// exactly one operation (particle strike on a combinational node that
  /// gets latched).
  kTransient,
  /// Delay outlier: one gate's propagation delay is multiplied by a large
  /// factor, modeling a worst-case Vth-variation / NBTI-outlier device
  /// (Heidary & Joardar: variation tails, not mean drift, dominate
  /// multiplier failure). Timing-visible: this is what Razor is for.
  kDelayOutlier,
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One injected fault, anchored to the output of a gate.
struct FaultSite {
  FaultKind kind = FaultKind::kStuckAt0;
  GateId gate = 0;
  /// kDelayOutlier: multiplier applied on top of the aging overlay (> 0).
  double delay_factor = 1.0;
  /// kTransient: 0-based step() index at which the flip fires.
  std::int64_t cycle = -1;
};

/// A set of faults applied *on top of* a TimingSim without mutating the
/// shared netlist: the overlay is consulted during evaluation, so one
/// netlist can serve a whole campaign of fault trials concurrently.
///
/// Install with `TimingSim::set_fault_overlay(&overlay)`; the overlay must
/// outlive the simulator's use of it. Lookups on the hot path are O(1)
/// dense-vector reads.
class FaultOverlay {
 public:
  /// `num_gates` must match the netlist the overlay will be applied to.
  explicit FaultOverlay(std::size_t num_gates);

  /// Adds a fault. Throws std::invalid_argument on an out-of-range gate, a
  /// non-positive delay factor, or a negative transient cycle. Multiple
  /// faults may target the same gate (the last stuck-at wins).
  void add(const FaultSite& fault);

  std::size_t num_gates() const noexcept { return stuck_.size(); }
  std::size_t num_faults() const noexcept { return faults_.size(); }
  const std::vector<FaultSite>& faults() const noexcept { return faults_; }

  /// kX when the gate is not stuck; the forced value otherwise.
  Logic stuck_value(GateId g) const noexcept {
    const std::uint8_t s = stuck_[g];
    return s == 0 ? Logic::kX : (s == 1 ? Logic::kZero : Logic::kOne);
  }

  /// Delay multiplier for the gate (1.0 when unaffected).
  double delay_factor(GateId g) const noexcept { return delay_factor_[g]; }
  bool has_delay_faults() const noexcept { return has_delay_faults_; }

  /// True when a transient on gate `g` fires at step `cycle`.
  bool transient_fires(GateId g, std::int64_t cycle) const noexcept;
  bool has_transients() const noexcept { return !transients_.empty(); }

  /// True when any transient (on any gate) is armed for exactly `cycle`.
  /// The sparse timing kernel falls back to a dense sweep on such cycles
  /// (and the one after, which un-flips the struck gate), so transient
  /// semantics never depend on worklist reachability.
  bool transient_fires_on(std::int64_t cycle) const noexcept {
    for (const FaultSite& t : transients_) {
      if (t.cycle == cycle) return true;
    }
    return false;
  }

  /// True when any fault can affect step `cycle`: persistent faults
  /// (stuck-at, delay outlier) are active on every cycle, transients only
  /// on their armed cycle. Drives the OpTrace::fault_active flag.
  bool active_at(std::int64_t cycle) const noexcept;

 private:
  std::vector<FaultSite> faults_;
  std::vector<std::uint8_t> stuck_;       // 0 = none, 1 = s-a-0, 2 = s-a-1
  std::vector<double> delay_factor_;      // per gate, default 1.0
  std::vector<FaultSite> transients_;     // usually 0 or 1 entries
  std::size_t persistent_faults_ = 0;
  bool has_delay_faults_ = false;
};

}  // namespace agingsim
