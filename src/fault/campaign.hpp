#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "src/core/vl_multiplier.hpp"
#include "src/fault/fault.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {

/// Configuration of one fault-injection campaign: `trials` independent
/// injections of `sites_per_trial` faults of one kind, each replayed over
/// the same operand stream through the full Razor + AHL architecture.
struct FaultCampaignConfig {
  FaultKind kind = FaultKind::kStuckAt0;
  int trials = 20;
  int sites_per_trial = 1;
  /// Delay multiplier applied per faulted gate (kDelayOutlier only). A
  /// moderate factor keeps faulted paths inside the Razor shadow window
  /// (detectable); a large one pushes them past 2T (uncoverable — SDC).
  double delay_factor = 4.0;
  std::uint64_t seed = 0xFA17;
};

/// Aggregate results of a campaign. The three violation counters partition
/// every timing violation seen across all trials by detector outcome; the
/// SDC / masked counters classify the *architectural* outcome per op.
struct FaultCampaignStats {
  FaultKind kind = FaultKind::kStuckAt0;
  std::uint64_t trials = 0;
  std::uint64_t ops = 0;               ///< total ops across all trials
  std::uint64_t faults_injected = 0;   ///< total fault sites across trials

  std::uint64_t detected_violations = 0;   ///< Razor flagged + re-executed
  std::uint64_t escaped_violations = 0;    ///< in-window metastability miss
  std::uint64_t uncovered_violations = 0;  ///< settled past the shadow window
  std::uint64_t sdc_ops = 0;               ///< wrong product committed
  std::uint64_t masked_faults = 0;         ///< fault present, output correct
  std::uint64_t trials_with_sdc = 0;
  std::uint64_t storm_engagements = 0;
  std::uint64_t storm_recoveries = 0;
  /// Trials whose worker task failed past the runtime's retry budget and
  /// was quarantined (crash-safe runs only; see runtime::RobustRunner).
  /// Quarantined trials contribute to no other counter: `trials` counts
  /// completed trials only, so `trials + trials_quarantined` equals the
  /// configured trial count.
  std::uint64_t trials_quarantined = 0;

  /// detected / (detected + escaped + uncovered); 1.0 when no violations.
  double detection_coverage = 1.0;
  double sdc_per_10k_ops = 0.0;
  double avg_cycles_faulty = 0.0;
  double avg_cycles_baseline = 0.0;
  /// avg_cycles_faulty / avg_cycles_baseline - 1: the throughput cost of
  /// surviving the faults (re-execution penalties + storm fallback).
  double throughput_degradation = 0.0;
  double baseline_errors_per_10k_ops = 0.0;

  /// Exact field-wise equality — campaigns must be bit-reproducible across
  /// thread counts (see tests/parallel_determinism_test.cpp).
  friend bool operator==(const FaultCampaignStats&,
                         const FaultCampaignStats&) = default;
};

/// Delay-outlier cluster on the multiplier's output cone: multiplies the
/// delay of the driver gate of every `stride`-th primary output by
/// `factor`. Unlike uniformly random sites — which mostly land off the
/// short paths that one-cycle patterns exercise, precisely because the
/// bypassing architecture keeps those paths shallow — every operation's
/// path crosses this region, so the overlay reliably produces the error
/// storms the AHL graceful-degradation fallback is designed for (modeling
/// e.g. an aged final adder row or a slow voltage domain).
FaultOverlay output_cone_delay_overlay(const Netlist& netlist, double factor,
                                       int stride = 2);

/// q-th percentile (q in [0, 1]) of the per-op path delays; 0 for an empty
/// trace. Used to pick demonstration periods with a known violation rate.
///// Nearest-rank convention (src/core/quantile.hpp): the smallest delay d
/// such that at least q*N of the ops are <= d — the historic floor(q*N)
/// index sat one rank high of this.
double delay_percentile_ps(std::span<const OpTrace> trace, double q);

/// Largest per-op path delay in the trace (0 for an empty trace). A period
/// of at least half this keeps two-cycle issue sound even under delay
/// faults.
double max_delay_ps(std::span<const OpTrace> trace);

/// Options of one crash-safe campaign execution (`FaultCampaign::run`).
struct CampaignRunOptions {
  std::span<const double> gate_delay_scale = {};
  double mean_dvth_v = 0.0;
  /// Step kernel for the gate-level traces (kAuto: AGINGSIM_KERNEL, default
  /// sparse). Deliberately NOT part of config_digest: kernels are
  /// bit-identical, so a campaign checkpointed under one kernel resumes
  /// byte-identically under another.
  SimKernel kernel = SimKernel::kAuto;
  /// Crash-safe execution layer (retry/backoff, watchdog, quarantine,
  /// checkpoint/resume — docs/ROBUSTNESS.md). Null runs the plain parallel
  /// path. Work units: unit 0 is the fault-free baseline, units 1..trials
  /// are the trials, so a checkpoint store attached to the runner resumes
  /// a killed campaign with byte-identical results.
  runtime::RobustRunner* runner = nullptr;
  /// Filled with per-unit outcomes when `runner` is given.
  runtime::RunReport* report = nullptr;
  /// Incremental progress (crash-safe path only; requires `runner`).
  /// Invoked in strict unit order as the completion frontier advances:
  /// units_done counts finished units (unit 0 = baseline, so trials done
  /// = units_done - 1 once > 0), units_total = trials + 1, and `partial`
  /// aggregates the first units_done units. Deterministic: the partial
  /// stats at a given units_done are a pure function of the campaign
  /// config, independent of thread count or restore pattern — the
  /// property the serving layer's streaming resume contract rests on
  /// (docs/SERVING.md). Called from pool threads, serialized.
  std::function<void(std::uint64_t units_done, std::uint64_t units_total,
                     const FaultCampaignStats& partial)>
      progress = {};
};

/// Drives fault-injection campaigns against one multiplier + system config.
/// Each trial samples fresh fault sites (seeded — campaigns are
/// bit-reproducible), computes a faulty gate-level trace via a FaultOverlay
/// (the shared netlist is never mutated) and replays it through a
/// VariableLatencySystem.
class FaultCampaign {
 public:
  FaultCampaign(const MultiplierNetlist& mult, const TechLibrary& tech,
                VlSystemConfig system, FaultCampaignConfig config);

  /// Samples the overlay for one trial (exposed for tests and custom
  /// harnesses). `num_ops` bounds the transient cycles.
  FaultOverlay sample_overlay(Rng& rng, std::size_t num_ops) const;

  /// Runs the whole campaign over `patterns` with an optional aging overlay.
  FaultCampaignStats run(std::span<const OperandPattern> patterns,
                         std::span<const double> gate_delay_scale = {},
                         double mean_dvth_v = 0.0) const;

  /// Crash-safe variant: same statistics, executed under the options'
  /// RobustRunner when one is given. Throws runtime::RunError(kPermanent)
  /// if the baseline unit itself is quarantined — no faulty trial can be
  /// normalized without it.
  FaultCampaignStats run(std::span<const OperandPattern> patterns,
                         const CampaignRunOptions& options) const;

  /// Fingerprint of everything that determines this campaign's work-unit
  /// payloads (multiplier, system config, campaign config, workload,
  /// aging overlay) — the config digest a CheckpointStore must be keyed
  /// by, so stale checkpoints from a different setup are discarded.
  std::uint64_t config_digest(std::span<const OperandPattern> patterns,
                              std::span<const double> gate_delay_scale = {},
                              double mean_dvth_v = 0.0) const;

  const FaultCampaignConfig& config() const noexcept { return config_; }

 private:
  const MultiplierNetlist* mult_;
  const TechLibrary* tech_;
  VlSystemConfig system_;
  FaultCampaignConfig config_;
};

}  // namespace agingsim
