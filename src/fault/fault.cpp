#include "src/fault/fault.hpp"

#include <stdexcept>
#include <string>

namespace agingsim {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kStuckAt0: return "stuck-at-0";
    case FaultKind::kStuckAt1: return "stuck-at-1";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kDelayOutlier: return "delay-outlier";
  }
  return "?";
}

FaultOverlay::FaultOverlay(std::size_t num_gates)
    : stuck_(num_gates, 0), delay_factor_(num_gates, 1.0) {}

void FaultOverlay::add(const FaultSite& fault) {
  if (fault.gate >= stuck_.size()) {
    throw std::invalid_argument("FaultOverlay::add: gate " +
                                std::to_string(fault.gate) +
                                " out of range (netlist has " +
                                std::to_string(stuck_.size()) + " gates)");
  }
  switch (fault.kind) {
    case FaultKind::kStuckAt0:
      stuck_[fault.gate] = 1;
      ++persistent_faults_;
      break;
    case FaultKind::kStuckAt1:
      stuck_[fault.gate] = 2;
      ++persistent_faults_;
      break;
    case FaultKind::kTransient:
      if (fault.cycle < 0) {
        throw std::invalid_argument(
            "FaultOverlay::add: transient needs a cycle >= 0");
      }
      transients_.push_back(fault);
      break;
    case FaultKind::kDelayOutlier:
      if (!(fault.delay_factor > 0.0)) {
        throw std::invalid_argument(
            "FaultOverlay::add: delay factor must be > 0");
      }
      delay_factor_[fault.gate] *= fault.delay_factor;
      has_delay_faults_ = true;
      ++persistent_faults_;
      break;
  }
  faults_.push_back(fault);
}

bool FaultOverlay::transient_fires(GateId g, std::int64_t cycle) const noexcept {
  for (const FaultSite& t : transients_) {
    if (t.gate == g && t.cycle == cycle) return true;
  }
  return false;
}

bool FaultOverlay::active_at(std::int64_t cycle) const noexcept {
  if (persistent_faults_ > 0) return true;
  for (const FaultSite& t : transients_) {
    if (t.cycle == cycle) return true;
  }
  return false;
}

}  // namespace agingsim
