#include "src/fault/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/quantile.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/serial.hpp"
#include "src/runtime/stats_codec.hpp"

namespace agingsim {
namespace {

struct CampaignMetrics {
  const obs::Counter& runs = obs::counter("campaign.runs");
  const obs::Counter& overlays = obs::counter("campaign.overlays_sampled");
  const obs::Counter& baselines = obs::counter("campaign.baseline_runs");
  const obs::Counter& trials = obs::counter("campaign.trials_completed");
};

const CampaignMetrics& campaign_metrics() {
  static const CampaignMetrics m;
  return m;
}

// Shared between the final aggregation and the streaming progress path so
// a partial snapshot at units_done = n+1 is byte-identical to a full run
// over n trials — the streaming resume contract depends on the two never
// diverging.
struct TrialAccumulator {
  FaultCampaignStats agg;
  std::uint64_t total_cycles = 0;

  explicit TrialAccumulator(FaultKind kind) { agg.kind = kind; }

  void add_trial(const RunStats& s, std::uint64_t faults) {
    ++agg.trials;
    agg.ops += s.ops;
    agg.faults_injected += faults;
    agg.detected_violations += s.errors;
    agg.escaped_violations += s.razor_escapes;
    agg.uncovered_violations += s.undetected;
    agg.sdc_ops += s.sdc_ops;
    agg.masked_faults += s.masked_faults;
    if (s.sdc_ops > 0) ++agg.trials_with_sdc;
    agg.storm_engagements += s.storm_engagements;
    agg.storm_recoveries += s.storm_recoveries;
    total_cycles += s.total_cycles;
  }

  /// Aggregate with the derived fields filled in. `baseline` may be null
  /// early in a streamed campaign (progress frames before unit 0 cannot
  /// happen — unit 0 is first — but the guard keeps this total).
  FaultCampaignStats finalize(const RunStats* baseline) const {
    FaultCampaignStats out = agg;
    if (baseline != nullptr) {
      out.avg_cycles_baseline = baseline->avg_cycles;
      out.baseline_errors_per_10k_ops = baseline->errors_per_10k_ops;
    }
    const std::uint64_t violations = out.detected_violations +
                                     out.escaped_violations +
                                     out.uncovered_violations;
    out.detection_coverage =
        violations == 0 ? 1.0
                        : static_cast<double>(out.detected_violations) /
                              static_cast<double>(violations);
    if (out.ops > 0) {
      out.sdc_per_10k_ops = static_cast<double>(out.sdc_ops) * 10000.0 /
                            static_cast<double>(out.ops);
      out.avg_cycles_faulty =
          static_cast<double>(total_cycles) / static_cast<double>(out.ops);
    }
    if (out.avg_cycles_baseline > 0.0) {
      out.throughput_degradation =
          out.avg_cycles_faulty / out.avg_cycles_baseline - 1.0;
    }
    return out;
  }
};

}  // namespace

FaultOverlay output_cone_delay_overlay(const Netlist& netlist, double factor,
                                       int stride) {
  if (stride < 1) {
    throw std::invalid_argument(
        "output_cone_delay_overlay: stride must be >= 1");
  }
  FaultOverlay overlay(netlist.num_gates());
  const auto outs = netlist.output_nets();
  for (std::size_t i = 0; i < outs.size();
       i += static_cast<std::size_t>(stride)) {
    const std::int32_t driver = netlist.driver_of(outs[i]);
    if (driver < 0) continue;  // output fed directly by a primary input
    overlay.add({.kind = FaultKind::kDelayOutlier,
                 .gate = static_cast<GateId>(driver),
                 .delay_factor = factor});
  }
  return overlay;
}

double delay_percentile_ps(std::span<const OpTrace> trace, double q) {
  if (trace.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("delay_percentile_ps: q must be in [0, 1]");
  }
  std::vector<double> delays;
  delays.reserve(trace.size());
  for (const OpTrace& op : trace) delays.push_back(op.delay_ps);
  std::sort(delays.begin(), delays.end());
  return quantile::nearest_rank(delays, q);
}

double max_delay_ps(std::span<const OpTrace> trace) {
  double max = 0.0;
  for (const OpTrace& op : trace) max = std::max(max, op.delay_ps);
  return max;
}

FaultCampaign::FaultCampaign(const MultiplierNetlist& mult,
                             const TechLibrary& tech, VlSystemConfig system,
                             FaultCampaignConfig config)
    : mult_(&mult), tech_(&tech), system_(system), config_(config) {
  if (config.trials < 1) {
    throw std::invalid_argument("FaultCampaign: trials must be >= 1");
  }
  if (config.sites_per_trial < 1) {
    throw std::invalid_argument(
        "FaultCampaign: sites_per_trial must be >= 1");
  }
  if (config.kind == FaultKind::kDelayOutlier &&
      !(config.delay_factor > 0.0)) {
    throw std::invalid_argument("FaultCampaign: delay factor must be > 0");
  }
}

FaultOverlay FaultCampaign::sample_overlay(Rng& rng,
                                           std::size_t num_ops) const {
  const std::size_t num_gates = mult_->netlist.num_gates();
  FaultOverlay overlay(num_gates);
  for (int i = 0; i < config_.sites_per_trial; ++i) {
    FaultSite site;
    site.kind = config_.kind;
    site.gate = static_cast<GateId>(rng.next_below(num_gates));
    if (config_.kind == FaultKind::kTransient) {
      // Skip cycle 0: the power-up step transitions every net from X, so a
      // strike there is indistinguishable from initialization.
      site.cycle = num_ops > 1
                       ? 1 + static_cast<std::int64_t>(
                                 rng.next_below(num_ops - 1))
                       : 0;
    } else if (config_.kind == FaultKind::kDelayOutlier) {
      site.delay_factor = config_.delay_factor;
    }
    overlay.add(site);
  }
  return overlay;
}

FaultCampaignStats FaultCampaign::run(
    std::span<const OperandPattern> patterns,
    std::span<const double> gate_delay_scale, double mean_dvth_v) const {
  CampaignRunOptions options;
  options.gate_delay_scale = gate_delay_scale;
  options.mean_dvth_v = mean_dvth_v;
  return run(patterns, options);
}

std::uint64_t FaultCampaign::config_digest(
    std::span<const OperandPattern> patterns,
    std::span<const double> gate_delay_scale, double mean_dvth_v) const {
  runtime::Digest d;
  d.mix(std::string_view("FaultCampaign/v1"));
  d.mix(mult_->width)
      .mix(static_cast<std::uint64_t>(mult_->netlist.num_gates()))
      .mix(static_cast<std::uint64_t>(mult_->netlist.num_nets()));
  d.mix(system_.period_ps)
      .mix(system_.razor_seed)
      .mix(system_.ahl.width)
      .mix(system_.ahl.skip)
      .mix(system_.ahl.adaptive)
      .mix(system_.ahl.second_block_offset)
      .mix(system_.ahl.indicator.window_ops)
      .mix(system_.ahl.indicator.error_threshold)
      .mix(system_.ahl.indicator.sticky)
      .mix(system_.ahl.storm_fallback)
      .mix(system_.ahl.storm_error_threshold)
      .mix(system_.ahl.storm_calm_windows)
      .mix(system_.razor.shadow_window_cycles)
      .mix(system_.razor.reexec_penalty_cycles)
      .mix(system_.razor.metastability_window_ps)
      .mix(system_.razor.edge_escape_prob);
  d.mix(static_cast<int>(config_.kind))
      .mix(config_.trials)
      .mix(config_.sites_per_trial)
      .mix(config_.delay_factor)
      .mix(config_.seed);
  d.mix(static_cast<std::uint64_t>(patterns.size()));
  for (const OperandPattern& p : patterns) d.mix(p.a).mix(p.b);
  d.mix(static_cast<std::uint64_t>(gate_delay_scale.size()));
  for (const double s : gate_delay_scale) d.mix(s);
  d.mix(mean_dvth_v);
  return d.value();
}

FaultCampaignStats FaultCampaign::run(std::span<const OperandPattern> patterns,
                                      const CampaignRunOptions& options) const {
  const std::span<const double> gate_delay_scale = options.gate_delay_scale;
  const double mean_dvth_v = options.mean_dvth_v;
  obs::TraceSpan run_span("campaign.run",
                          static_cast<std::uint64_t>(config_.trials));
  campaign_metrics().runs.add();

  // Overlay sampling draws from one shared Rng, so it stays serial (and
  // bit-identical to the historical single-threaded campaign); the trials
  // themselves are independent — each gets its own simulator + system over
  // the shared, never-mutated netlist — and fan out across the pool.
  Rng rng(config_.seed);
  std::vector<FaultOverlay> overlays;
  overlays.reserve(static_cast<std::size_t>(config_.trials));
  for (int trial = 0; trial < config_.trials; ++trial) {
    overlays.push_back(sample_overlay(rng, patterns.size()));
  }
  campaign_metrics().overlays.add(overlays.size());

  // Fault-free reference run: the throughput and error-rate baseline the
  // faulty runs are measured against.
  const auto run_baseline = [&] {
    obs::TraceSpan span("campaign.baseline");
    const auto baseline_trace =
        compute_op_trace(*mult_, *tech_, patterns,
                         TraceOptions{.gate_delay_scale = gate_delay_scale,
                                      .kernel = options.kernel});
    VariableLatencySystem system(*mult_, *tech_, system_);
    auto stats = system.run(baseline_trace, mean_dvth_v);
    campaign_metrics().baselines.add();
    return stats;
  };
  const auto run_trial = [&](std::size_t t) {
    obs::TraceSpan span("campaign.trial", t);
    const auto faulty_trace = compute_op_trace(
        *mult_, *tech_, patterns,
        TraceOptions{.gate_delay_scale = gate_delay_scale,
                     .faults = &overlays[t],
                     .kernel = options.kernel});
    VariableLatencySystem trial_system(*mult_, *tech_, system_);
    auto stats = trial_system.run(faulty_trace, mean_dvth_v);
    campaign_metrics().trials.add();
    return stats;
  };

  RunStats baseline;
  std::vector<RunStats> trial_stats;
  std::vector<char> trial_ok;
  std::uint64_t quarantined = 0;
  if (options.runner == nullptr) {
    baseline = run_baseline();
    trial_stats = exec::parallel_for_indexed(overlays.size(), run_trial);
    trial_ok.assign(trial_stats.size(), 1);
  } else {
    // Crash-safe path: unit 0 = baseline, units 1..trials = trials. Each
    // unit's payload is its bit-exact encoded RunStats, so units restored
    // from a checkpoint aggregate identically to freshly computed ones.
    runtime::RunReport local_report;
    runtime::RunReport& report =
        options.report != nullptr ? *options.report : local_report;
    const std::size_t units = overlays.size() + 1;
    // Streaming: decode each unit as it joins the completion frontier and
    // hand the caller a running aggregate. The runner serializes progress
    // calls and delivers units in strict unit order, so `acc` needs no
    // locking and the partial at units_done = k covers exactly units
    // [0, k) — unit 0 being the baseline.
    runtime::RobustRunner::Progress runner_progress;
    TrialAccumulator stream_acc(config_.kind);
    RunStats stream_baseline;
    bool stream_has_baseline = false;
    if (options.progress) {
      runner_progress = [&](std::uint64_t unit, const std::string& payload,
                            runtime::UnitState) {
        const RunStats s = runtime::decode_run_stats(payload);
        if (unit == 0) {
          stream_baseline = s;
          stream_has_baseline = true;
        } else {
          stream_acc.add_trial(s, overlays[unit - 1].num_faults());
        }
        options.progress(
            unit + 1, units,
            stream_acc.finalize(stream_has_baseline ? &stream_baseline
                                                    : nullptr));
      };
    }
    const auto payloads = options.runner->run(
        units,
        [&](std::uint64_t unit, const runtime::CancelToken&) {
          return runtime::encode_run_stats(unit == 0 ? run_baseline()
                                                     : run_trial(unit - 1));
        },
        &report, runner_progress);
    if (report.interrupted()) {
      // A stop token cut the run short; completed units are checkpointed,
      // so the right move is resume, not aggregation over holes.
      throw runtime::RunError(
          runtime::ErrorCategory::kTransient,
          "FaultCampaign: interrupted before completion (" +
              std::to_string(report.skipped) +
              " units skipped); resume to continue");
    }
    if (report.units[0].state == runtime::UnitState::kQuarantined) {
      throw runtime::RunError(
          runtime::ErrorCategory::kPermanent,
          "FaultCampaign: baseline unit quarantined (" +
              report.units[0].error + "); campaign cannot be normalized");
    }
    baseline = runtime::decode_run_stats(payloads[0]);
    trial_stats.resize(overlays.size());
    trial_ok.assign(overlays.size(), 0);
    for (std::size_t t = 0; t < overlays.size(); ++t) {
      if (report.units[t + 1].state == runtime::UnitState::kQuarantined) {
        ++quarantined;
        continue;
      }
      trial_stats[t] = runtime::decode_run_stats(payloads[t + 1]);
      trial_ok[t] = 1;
    }
  }

  // Aggregation runs in trial-index order; every accumulator is an
  // integer, so the totals are independent of scheduling anyway.
  TrialAccumulator acc(config_.kind);
  for (std::size_t t = 0; t < trial_stats.size(); ++t) {
    if (trial_ok[t] == 0) continue;  // quarantined: contributes nothing
    acc.add_trial(trial_stats[t], overlays[t].num_faults());
  }
  FaultCampaignStats agg = acc.finalize(&baseline);
  agg.trials_quarantined = quarantined;
  return agg;
}

}  // namespace agingsim
