#include "src/multiplier/detail.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {

// Column-bypassing multiplier (Wen et al. [22], paper Fig. 2).
//
// Column j of the CSA array is controlled by multiplicand bit a_j. When
// a_j = 0 every partial product in the column is 0 and — because the carry
// produced inside a bypassed column is killed — every carry entering the
// column's adders is 0 too, so FA(i,j) would compute 0 + S[i-1][j+1] + 0.
// The modified cell therefore:
//   - gates the sum-from-above and carry-in pins with tri-state buffers
//     (en = a_j). The partial-product pin needs no tri-state: AND(a_j, b_i)
//     is already frozen at 0 when a_j = 0. With all three inputs frozen the
//     idle adder holds state and burns no switching power — this is the
//     power-saving mechanism of [22];
//   - selects the adder sum or the bypassed upper sum with a MUX (sel=a_j);
//   - kills the carry with an AND (carry & a_j), which both keeps the column
//     arithmetic correct and blocks the stale adder output.
// The final ripple row is left unmodified, as in [22]: its carry inputs are
// already zero for bypassed columns.
MultiplierNetlist build_column_bypass_multiplier(int width) {
  detail::check_width(width);
  NetlistBuilder nb;
  auto frame = detail::make_frame(nb, width);
  const std::size_t n = static_cast<std::size_t>(width);

  std::vector<NetId> product;
  product.reserve(2 * n);

  std::vector<NetId> sum(n), carry(n, nb.zero());
  for (std::size_t j = 0; j < n; ++j) sum[j] = frame.pp[0][j];
  product.push_back(sum[0]);

  for (std::size_t i = 1; i < n; ++i) {
    std::vector<NetId> nsum(n), ncarry(n);
    for (std::size_t j = 0; j < n; ++j) {
      const NetId sel = frame.a[j];
      const NetId s_above = (j + 1 < n) ? sum[j + 1] : nb.zero();
      // Tri-state input gating (skipped for constant-zero pins, which have
      // no toggling to suppress).
      const NetId s_in = nb.is_zero(s_above) ? s_above : nb.tbuf(s_above, sel);
      const NetId cin_in =
          nb.is_zero(carry[j]) ? carry[j] : nb.tbuf(carry[j], sel);
      const AdderBits fa = nb.full_adder(frame.pp[i][j], s_in, cin_in);
      // Sum bypass. When the adder degenerated to a wire equal to the
      // bypass value, the MUX is redundant; keep the fold.
      nsum[j] = (fa.sum == s_above) ? s_above : nb.mux2(s_above, fa.sum, sel);
      // Carry kill keeps bypassed columns carry-free.
      ncarry[j] = nb.and2(fa.carry, sel);
    }
    sum = std::move(nsum);
    carry = std::move(ncarry);
    product.push_back(sum[0]);
  }

  detail::append_ripple_row(nb, width, sum, carry, product, nb.zero());
  nb.output_bus("p", product);
  nb.netlist().validate();
  return MultiplierNetlist{std::move(nb.netlist()),
                           MultiplierArch::kColumnBypass, width, 0, width};
}

}  // namespace agingsim
