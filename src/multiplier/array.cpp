#include <stdexcept>

#include "src/multiplier/detail.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {
namespace detail {

void check_width(int width) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument("multiplier width must be in [2, 32]");
  }
}

// Shared scaffolding: creates input buses and the partial-product AND plane.
// pp[i][j] = a_j & b_i (weight i + j).
ArrayFrame make_frame(NetlistBuilder& nb, int width) {
  ArrayFrame f;
  f.a = nb.input_bus("a", width);
  f.b = nb.input_bus("b", width);
  f.pp.assign(static_cast<std::size_t>(width),
              std::vector<NetId>(static_cast<std::size_t>(width)));
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < width; ++j) {
      f.pp[i][j] = nb.and2(f.a[j], f.b[i]);
    }
  }
  return f;
}

// The final carry-propagate (ripple) row shared by all three architectures.
// Consumes the last CSA row's sums S[j] (j in [0, n], S[n] = 0) and carries
// C[j], appends product bits p_n .. p_{2n-1}.
void append_ripple_row(NetlistBuilder& nb, int width,
                       const std::vector<NetId>& last_sum,
                       const std::vector<NetId>& last_carry,
                       std::vector<NetId>& product, NetId cin) {
  for (int j = 0; j < width; ++j) {
    const NetId s_in =
        (j + 1 < width) ? last_sum[static_cast<std::size_t>(j + 1)] : nb.zero();
    const AdderBits fa =
        nb.full_adder(s_in, last_carry[static_cast<std::size_t>(j)], cin);
    product.push_back(fa.sum);
    cin = fa.carry;
  }
  // The weight-2n carry is arithmetically always zero ((2^n-1)^2 < 2^{2n});
  // the MSB product bit is the sum of the last ripple stage, already pushed.
}

}  // namespace detail

MultiplierNetlist build_array_multiplier(int width) {
  detail::check_width(width);
  NetlistBuilder nb;
  auto frame = detail::make_frame(nb, width);
  const std::size_t n = static_cast<std::size_t>(width);

  std::vector<NetId> product;
  product.reserve(2 * n);

  // Row 0 is just the b_0 partial products.
  std::vector<NetId> sum(n), carry(n, nb.zero());
  for (std::size_t j = 0; j < n; ++j) sum[j] = frame.pp[0][j];
  product.push_back(sum[0]);

  // CSA rows i = 1 .. n-1: FA(i,j) adds pp[i][j] (weight i+j), the shifted
  // sum from above S[i-1][j+1] and the carry from above C[i-1][j]. Sum bits
  // go down, carries go to the next row (paper Fig. 1).
  for (std::size_t i = 1; i < n; ++i) {
    std::vector<NetId> nsum(n), ncarry(n);
    for (std::size_t j = 0; j < n; ++j) {
      const NetId s_above = (j + 1 < n) ? sum[j + 1] : nb.zero();
      const AdderBits fa = nb.full_adder(frame.pp[i][j], s_above, carry[j]);
      nsum[j] = fa.sum;
      ncarry[j] = fa.carry;
    }
    sum = std::move(nsum);
    carry = std::move(ncarry);
    product.push_back(sum[0]);
  }

  detail::append_ripple_row(nb, width, sum, carry, product, nb.zero());
  nb.output_bus("p", product);
  nb.netlist().validate();
  return MultiplierNetlist{std::move(nb.netlist()), MultiplierArch::kArray,
                           width, 0, width};
}

}  // namespace agingsim
