#include "src/multiplier/detail.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {

// Row-bypassing multiplier (Ohban et al. [23], paper Fig. 3).
//
// Row i of the CSA array is controlled by multiplicator bit b_i. When
// b_i = 0 the whole row adds nothing and becomes transparent:
//   - sums bypass diagonally:   S[i][j] = S[i-1][j+1]
//   - carries bypass diagonally: C[i][j] = C[i-1][j+1]
// (the carry bypass must take the *diagonal* neighbour to keep weights
// aligned: C[i][j] feeds FA(i+1,j) of weight i+j+1, and the surviving carry
// of that weight from row i-1 is C[i-1][j+1]).
//
// One value per bypassed row cannot ride the diagonal: C[i-1][0], of weight
// i — the weight at which the row emits its product bit. A bypassed row
// would silently drop it. This is the structural reason the row-bypassing
// design needs the "extra correcting circuit" reported in the literature.
// We implement it as a correction chain along the low product bits:
//
//   orphan_i = !b_i & C[i-1][0]               (dropped only when bypassed)
//   (p_i, k_i) = FullAdd(p_i_raw, orphan_i, k_{i-1}),   k_0 = 0
//
// and the final correction carry k_{n-1} (weight n) enters the ripple row
// through its carry-in, which is free in the plain array.
//
// All three adder inputs are gated with tri-state buffers so an idle row
// holds state and burns no switching power; sum and carry each get a bypass
// MUX. The extra carry MUX and correction chain are why the row-bypassing
// multiplier is larger than the column-bypassing one (paper Section IV-D).
MultiplierNetlist build_row_bypass_multiplier(int width) {
  detail::check_width(width);
  NetlistBuilder nb;
  auto frame = detail::make_frame(nb, width);
  const std::size_t n = static_cast<std::size_t>(width);

  std::vector<NetId> raw_product;  // pre-correction row product bits
  std::vector<NetId> orphan;       // weight-i carry dropped by a bypassed row
  raw_product.reserve(n);
  orphan.reserve(n);

  std::vector<NetId> sum(n), carry(n, nb.zero());
  for (std::size_t j = 0; j < n; ++j) sum[j] = frame.pp[0][j];
  raw_product.push_back(sum[0]);
  orphan.push_back(nb.zero());  // row 0 has no carries above it

  for (std::size_t i = 1; i < n; ++i) {
    const NetId sel = frame.b[i];
    const NetId not_sel = nb.inv(sel);
    // The carry the diagonal bypass cannot absorb.
    orphan.push_back(nb.and2(not_sel, carry[0]));

    std::vector<NetId> nsum(n), ncarry(n);
    for (std::size_t j = 0; j < n; ++j) {
      const NetId s_above = (j + 1 < n) ? sum[j + 1] : nb.zero();
      const NetId c_above = carry[j];
      const NetId c_diag = (j + 1 < n) ? carry[j + 1] : nb.zero();
      const auto gated = [&](NetId net) {
        return nb.is_zero(net) ? net : nb.tbuf(net, sel);
      };
      // The partial-product pin is inherently gated: AND(a_j, b_i) freezes
      // at 0 while b_i = 0, so only the sum and carry pins need tri-states
      // for the idle row to be completely quiet.
      const AdderBits fa = nb.full_adder(frame.pp[i][j], gated(s_above),
                                         gated(c_above));
      nsum[j] = (fa.sum == s_above) ? s_above : nb.mux2(s_above, fa.sum, sel);
      ncarry[j] =
          (fa.carry == c_diag) ? c_diag : nb.mux2(c_diag, fa.carry, sel);
    }
    sum = std::move(nsum);
    carry = std::move(ncarry);
    raw_product.push_back(sum[0]);
  }

  // Correction chain over the low product bits.
  std::vector<NetId> product;
  product.reserve(2 * n);
  product.push_back(raw_product[0]);
  NetId k = nb.zero();
  for (std::size_t i = 1; i < n; ++i) {
    const AdderBits corr = nb.full_adder(raw_product[i], orphan[i], k);
    product.push_back(corr.sum);
    k = corr.carry;
  }

  detail::append_ripple_row(nb, width, sum, carry, product, k);
  nb.output_bus("p", product);
  nb.netlist().validate();
  return MultiplierNetlist{std::move(nb.netlist()),
                           MultiplierArch::kRowBypass, width, 0, width};
}

}  // namespace agingsim
