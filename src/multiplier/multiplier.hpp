#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"
#include "src/sim/timing_sim.hpp"

namespace agingsim {

/// The three multiplier architectures the paper evaluates (Figs. 1-3) plus
/// a Wallace tree (library extension used as a latency-optimized fixed
/// baseline in the ablation studies).
enum class MultiplierArch {
  kArray,         ///< Normal array multiplier (AM), Fig. 1.
  kColumnBypass,  ///< Column-bypassing multiplier [22], Fig. 2.
  kRowBypass,     ///< Row-bypassing multiplier [23], Fig. 3.
  kWallaceTree,   ///< Wallace-tree multiplier (extension, no bypassing).
};

const char* arch_name(MultiplierArch arch) noexcept;

/// True when the bypass select lines (and therefore the AHL judging input,
/// Fig. 12) come from the multiplicand; false when they come from the
/// multiplicator. Column bypassing selects on multiplicand bits a_j, row
/// bypassing on multiplicator bits b_i.
bool judges_on_multiplicand(MultiplierArch arch) noexcept;

/// A generated combinational multiplier netlist plus its I/O layout.
///
/// Primary inputs: a[0..width) (multiplicand) at PI indices
/// [a_first_input, a_first_input+width), then b[0..width) (multiplicator).
/// Primary outputs: p[0..2*width), LSB first.
struct MultiplierNetlist {
  Netlist netlist;
  MultiplierArch arch;
  int width;
  int a_first_input;
  int b_first_input;
};

/// Builds an n x n normal array multiplier: (n-1) carry-save rows plus a
/// ripple row (paper Fig. 1). width must be in [2, 32].
MultiplierNetlist build_array_multiplier(int width);

/// Builds an n x n column-bypassing multiplier: each CSA full adder gains
/// two tri-state input gates, a sum bypass MUX and a carry-kill AND, all
/// selected by multiplicand bit a_j (paper Fig. 2).
MultiplierNetlist build_column_bypass_multiplier(int width);

/// Builds an n x n row-bypassing multiplier: each CSA full adder gains
/// tri-state input gates plus sum and carry bypass MUXes selected by
/// multiplicator bit b_i (paper Fig. 3).
MultiplierNetlist build_row_bypass_multiplier(int width);

/// Builds an n x n Wallace-tree multiplier (extension): column-wise
/// carry-save reduction to depth O(log n), then a final ripple adder.
MultiplierNetlist build_wallace_tree_multiplier(int width);

/// Dispatcher over the three builders.
MultiplierNetlist build_multiplier(MultiplierArch arch, int width);

/// Golden reference: the product the netlist must compute.
std::uint64_t reference_multiply(std::uint64_t a, std::uint64_t b, int width);

/// Convenience harness: a TimingSim bound to a multiplier with an
/// operand-level API. One `apply()` models one operand transition latched by
/// the input registers of the paper's Fig. 8 architecture.
class MultiplierSim {
 public:
  MultiplierSim(const MultiplierNetlist& mult, const TechLibrary& tech,
                std::span<const double> gate_delay_scale = {});

  /// Applies operands and settles; returns the timing/energy of the
  /// transition. `StepResult::output_settle_ps` is this operation's path
  /// delay — the quantity Razor compares with the cycle period.
  StepResult apply(std::uint64_t a, std::uint64_t b);

  /// Product after the last apply().
  std::uint64_t product() const { return sim_.output_bits(); }

  void set_aging(std::span<const double> gate_delay_scale) {
    sim_.set_aging(gate_delay_scale);
  }

  /// Selects the step kernel (sparse event-driven vs dense sweep); see
  /// TimingSim::Mode. Results are bit-identical either way.
  void set_mode(TimingSim::Mode mode) noexcept { sim_.set_mode(mode); }

  /// Installs (nullptr: removes) a fault overlay on the underlying
  /// simulator; see TimingSim::set_fault_overlay.
  void set_fault_overlay(const FaultOverlay* overlay) {
    sim_.set_fault_overlay(overlay);
  }

  const MultiplierNetlist& multiplier() const noexcept { return *mult_; }
  TimingSim& timing_sim() noexcept { return sim_; }

 private:
  const MultiplierNetlist* mult_;
  TimingSim sim_;
  std::vector<Logic> pattern_;
};

}  // namespace agingsim
