#pragma once

// Internal helpers shared by the three multiplier generators. Not part of
// the public API.

#include <vector>

#include "src/netlist/builder.hpp"

namespace agingsim::detail {

/// Input buses and the partial-product AND plane: pp[i][j] = a_j & b_i.
struct ArrayFrame {
  std::vector<NetId> a;
  std::vector<NetId> b;
  std::vector<std::vector<NetId>> pp;
};

/// Throws std::invalid_argument unless width is in [2, 32].
void check_width(int width);

ArrayFrame make_frame(NetlistBuilder& nb, int width);

/// Appends the final carry-propagate (ripple) row: product bits
/// p_n .. p_{2n-1} from the last CSA row's sums/carries. `cin` is the
/// carry into the first ripple position (constant zero for the plain and
/// column-bypassing arrays; the row-bypassing correction chain injects its
/// final carry here).
void append_ripple_row(NetlistBuilder& nb, int width,
                       const std::vector<NetId>& last_sum,
                       const std::vector<NetId>& last_carry,
                       std::vector<NetId>& product, NetId cin);

}  // namespace agingsim::detail
