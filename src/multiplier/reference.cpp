#include <stdexcept>

#include "src/multiplier/multiplier.hpp"

namespace agingsim {

const char* arch_name(MultiplierArch arch) noexcept {
  switch (arch) {
    case MultiplierArch::kArray: return "AM";
    case MultiplierArch::kColumnBypass: return "CB";
    case MultiplierArch::kRowBypass: return "RB";
    case MultiplierArch::kWallaceTree: return "WT";
  }
  return "?";
}

bool judges_on_multiplicand(MultiplierArch arch) noexcept {
  return arch != MultiplierArch::kRowBypass;
}

MultiplierNetlist build_multiplier(MultiplierArch arch, int width) {
  switch (arch) {
    case MultiplierArch::kArray: return build_array_multiplier(width);
    case MultiplierArch::kColumnBypass:
      return build_column_bypass_multiplier(width);
    case MultiplierArch::kRowBypass: return build_row_bypass_multiplier(width);
    case MultiplierArch::kWallaceTree:
      return build_wallace_tree_multiplier(width);
  }
  throw std::invalid_argument("build_multiplier: bad arch");
}

std::uint64_t reference_multiply(std::uint64_t a, std::uint64_t b, int width) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("reference_multiply: width must be in [1,32]");
  }
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (a & mask) * (b & mask);
}

MultiplierSim::MultiplierSim(const MultiplierNetlist& mult,
                             const TechLibrary& tech,
                             std::span<const double> gate_delay_scale)
    : mult_(&mult),
      sim_(mult.netlist, tech, gate_delay_scale),
      pattern_(mult.netlist.num_inputs(), Logic::kZero) {}

StepResult MultiplierSim::apply(std::uint64_t a, std::uint64_t b) {
  sim_.load_bus(pattern_, a, mult_->width, mult_->a_first_input);
  sim_.load_bus(pattern_, b, mult_->width, mult_->b_first_input);
  return sim_.step(pattern_);
}

}  // namespace agingsim
