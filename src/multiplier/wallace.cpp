#include <deque>

#include "src/adder/adder.hpp"
#include "src/multiplier/detail.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {

// Wallace-tree multiplier: an additional (library-extension) architecture
// beyond the paper's three. The partial products are reduced column-wise
// with carry-save adders until every column holds at most two bits, then a
// final ripple adder produces the product. Depth is O(log n) instead of the
// array's O(n), so it is the latency-optimized fixed design; it has no
// bypass structure, so its per-pattern delay correlates only weakly with
// operand zeros — the ablation bench uses it to show *why* the bypassing
// multipliers are the right substrate for zero-count judging.
MultiplierNetlist build_wallace_tree_multiplier(int width) {
  detail::check_width(width);
  NetlistBuilder nb;
  auto frame = detail::make_frame(nb, width);
  const std::size_t n = static_cast<std::size_t>(width);

  // columns[w] = bits of weight w awaiting reduction.
  std::vector<std::deque<NetId>> columns(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      columns[i + j].push_back(frame.pp[i][j]);
    }
  }

  // Carry-save reduction in stages: every stage compresses the bits that
  // existed at the *start* of the stage (full adders 3->2, a half adder on
  // a leftover pair when the column still holds more than two bits), so
  // stages run in parallel and depth is O(log n). Outputs are deferred to
  // the next stage's columns.
  auto too_tall = [&columns] {
    for (const auto& col : columns) {
      if (col.size() > 2) return true;
    }
    return false;
  };
  while (too_tall()) {
    std::vector<std::deque<NetId>> next(columns.size());
    for (std::size_t w = 0; w < columns.size(); ++w) {
      auto& col = columns[w];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const AdderBits fa = nb.full_adder(col[i], col[i + 1], col[i + 2]);
        next[w].push_back(fa.sum);
        if (w + 1 < next.size()) next[w + 1].push_back(fa.carry);
        i += 3;
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const AdderBits ha = nb.half_adder(col[i], col[i + 1]);
        next[w].push_back(ha.sum);
        if (w + 1 < next.size()) next[w + 1].push_back(ha.carry);
        i += 2;
      }
      for (; i < col.size(); ++i) next[w].push_back(col[i]);
    }
    columns = std::move(next);
  }

  // Final carry-propagate stage over the remaining <= 2 bits per column,
  // using the Kogge-Stone prefix network so the multiplier keeps its
  // logarithmic depth end to end.
  std::vector<NetId> x(columns.size()), y(columns.size());
  for (std::size_t w = 0; w < columns.size(); ++w) {
    x[w] = columns[w].empty() ? nb.zero() : columns[w][0];
    y[w] = columns[w].size() > 1 ? columns[w][1] : nb.zero();
  }
  std::vector<NetId> g(columns.size()), p(columns.size());
  for (std::size_t w = 0; w < columns.size(); ++w) {
    g[w] = nb.and2(x[w], y[w]);
    p[w] = nb.xor2(x[w], y[w]);
  }
  const auto carries = kogge_stone_carries(nb, g, p, nb.zero());
  std::vector<NetId> product;
  product.reserve(2 * n);
  for (std::size_t w = 0; w < columns.size(); ++w) {
    product.push_back(nb.xor2(p[w], carries[w]));
  }

  nb.output_bus("p", product);
  nb.netlist().validate();
  return MultiplierNetlist{std::move(nb.netlist()),
                           MultiplierArch::kWallaceTree, width, 0, width};
}

}  // namespace agingsim
