#include "src/aging/stress.hpp"

#include <stdexcept>

#include "src/sim/timing_sim.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {

StressProfile estimate_stress(const Netlist& netlist, const TechLibrary& tech,
                              std::uint64_t seed, std::size_t num_patterns) {
  if (num_patterns == 0) {
    throw std::invalid_argument("estimate_stress: need at least one pattern");
  }
  TimingSim sim(netlist, tech);
  Rng rng(seed);
  std::vector<Logic> pattern(netlist.num_inputs());
  std::vector<std::uint64_t> ones(netlist.num_nets(), 0);

  for (std::size_t p = 0; p < num_patterns; ++p) {
    for (auto& v : pattern) {
      v = logic_from_bool((rng.next() & 1) != 0);
    }
    sim.step(pattern);
    for (NetId n = 0; n < netlist.num_nets(); ++n) {
      if (sim.value(n) == Logic::kOne) ++ones[n];
    }
  }

  StressProfile prof;
  prof.net_p_one.resize(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    prof.net_p_one[n] = static_cast<double>(ones[n]) /
                        static_cast<double>(num_patterns);
  }
  prof.pmos_stress.resize(netlist.num_gates());
  prof.nmos_stress.resize(netlist.num_gates());
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const double p1 = prof.net_p_one[netlist.gate(g).out];
    prof.pmos_stress[g] = p1;
    prof.nmos_stress[g] = 1.0 - p1;
  }
  return prof;
}

}  // namespace agingsim
