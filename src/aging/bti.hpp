#pragma once

#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Seconds in `years` (Julian years).
double years_to_seconds(double years) noexcept;

/// Physical parameters of the paper's Eq. (2):
///   Kdc = A * Tox * sqrt(Cox*(Vgs-Vth)) * (1 - Vds/(alpha*(Vgs-Vth)))
///         * exp(Eox/E0) * exp(-Ea/kT)
/// Defaults are 32 nm high-k/metal-gate class values at the paper's 125 C
/// stress temperature. `a_fit` is the technology-dependent prefactor "A"; it
/// is a fitting constant in the RD framework and is chosen to land in the
/// regime the paper reports (~13% critical-path degradation in 7 years).
struct PhysicalBtiParams {
  double a_fit = 0.0033;        ///< prefactor A (V / s^n per unit of the rest)
  double tox_nm = 1.2;          ///< oxide (EOT) thickness
  double cox_f_per_m2 = 0.0288; ///< eps_ox / Tox
  double vgs_v = 0.9;           ///< |Vgs| under stress = Vdd
  double vth_v = 0.30;
  double vds_v = 0.0;           ///< DC stress: transistor off-path, Vds ~ 0
  double alpha_sat = 1.3;       ///< velocity-saturation index in Eq. (2)
  double e0_v_per_m = 1.95e8;   ///< 1.95 MV/cm (paper: 1.9-2.0 MV/cm)
  double ea_ev = 0.12;          ///< activation energy (paper: 0.12 eV)
  double temperature_k = 398.15;///< 125 C
};

/// Evaluates Eq. (2). Returns Kdc in V / s^n.
double kdc_from_physical(const PhysicalBtiParams& params);

/// The AC reaction-diffusion BTI model of the paper's Eq. (1):
///
///   dVth(t) = alpha(S) * Kdc * t^n,   alpha(S) = S^n
///
/// with n = 1/6 (H2-diffusion RD exponent). S is the stress duty factor
/// (signal probability): the fraction of time the device is under bias.
/// The same law is applied to pMOS (NBTI) and nMOS (PBTI) — the paper
/// targets 32 nm high-k/metal-gate, where PBTI is comparable to NBTI.
class BtiModel {
 public:
  /// Builds the model from the physical Eq. (2) parameters.
  static BtiModel physical(const PhysicalBtiParams& params);

  /// Builds a model whose Kdc is calibrated so that a device with stress
  /// duty `ref_stress` reaches, after `years`, exactly the dVth that scales
  /// gate delay by `target_delay_scale` under `tech`'s alpha-power law.
  /// With the defaults this reproduces the paper's Fig. 7 observation: the
  /// BTI effect increases the critical-path delay by ~13% over 7 years.
  static BtiModel calibrated(const TechLibrary& tech,
                             double target_delay_scale = 1.13,
                             double years = 7.0, double ref_stress = 0.5);

  /// Threshold-voltage shift (V) after `seconds` under stress duty
  /// `stress_probability` in [0, 1].
  double delta_vth(double stress_probability, double seconds) const;

  double kdc() const noexcept { return kdc_; }
  double time_exponent() const noexcept { return n_; }

 private:
  BtiModel(double kdc, double n) : kdc_(kdc), n_(n) {}
  double kdc_;
  double n_;
};

}  // namespace agingsim
