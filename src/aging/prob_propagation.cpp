#include "src/aging/prob_propagation.hpp"

namespace agingsim {

std::vector<double> propagate_signal_probabilities(const Netlist& netlist) {
  std::vector<double> p(netlist.num_nets(), 0.5);  // primary inputs: uniform
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    const auto ins = netlist.gate_inputs(g);
    const auto in = [&](std::size_t k) { return p[ins[k]]; };
    double out = 0.5;
    switch (gate.kind) {
      case CellKind::kBuf:
        out = in(0);
        break;
      case CellKind::kInv:
        out = 1.0 - in(0);
        break;
      case CellKind::kAnd2:
        out = in(0) * in(1);
        break;
      case CellKind::kNand2:
        out = 1.0 - in(0) * in(1);
        break;
      case CellKind::kOr2:
        out = 1.0 - (1.0 - in(0)) * (1.0 - in(1));
        break;
      case CellKind::kNor2:
        out = (1.0 - in(0)) * (1.0 - in(1));
        break;
      case CellKind::kXor2:
        out = in(0) * (1.0 - in(1)) + in(1) * (1.0 - in(0));
        break;
      case CellKind::kXnor2:
        out = in(0) * in(1) + (1.0 - in(0)) * (1.0 - in(1));
        break;
      case CellKind::kAnd3:
        out = in(0) * in(1) * in(2);
        break;
      case CellKind::kOr3:
        out = 1.0 - (1.0 - in(0)) * (1.0 - in(1)) * (1.0 - in(2));
        break;
      case CellKind::kMux2:
        // in = {d0, d1, sel}
        out = (1.0 - in(2)) * in(0) + in(2) * in(1);
        break;
      case CellKind::kTbuf:
        // Steady state: whether currently driven or kept, the output is a
        // (possibly stale) sample of the data input's distribution.
        out = in(0);
        break;
      case CellKind::kTie0:
        out = 0.0;
        break;
      case CellKind::kTie1:
        out = 1.0;
        break;
      case CellKind::kCount:
        break;
    }
    p[gate.out] = out;
  }
  return p;
}

StressProfile analytic_stress(const Netlist& netlist) {
  StressProfile prof;
  prof.net_p_one = propagate_signal_probabilities(netlist);
  prof.pmos_stress.resize(netlist.num_gates());
  prof.nmos_stress.resize(netlist.num_gates());
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const double p1 = prof.net_p_one[netlist.gate(g).out];
    prof.pmos_stress[g] = p1;
    prof.nmos_stress[g] = 1.0 - p1;
  }
  return prof;
}

}  // namespace agingsim
