#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Process-variation model (cf. the paper's related work [19]: process-
/// variation-tolerant arithmetic with input-based elastic clocking).
/// Each gate's delay gets an independent multiplicative lognormal factor
/// exp(N(0, sigma)) — the standard within-die random-variation model.
/// The returned overlay composes multiplicatively with the aging overlays
/// (multiply element-wise, see combined_scales in scenario.hpp).
std::vector<double> process_variation_scales(const Netlist& netlist,
                                             double sigma,
                                             std::uint64_t seed);

/// Element-wise product of delay overlays (e.g. BTI x EM x variation).
/// All inputs must be the same length (one entry per gate); an empty vector
/// means "identity" and is skipped.
std::vector<double> combine_scales(
    std::initializer_list<std::vector<double>> overlays);

}  // namespace agingsim
