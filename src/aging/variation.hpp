#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Process-variation model (cf. the paper's related work [19]: process-
/// variation-tolerant arithmetic with input-based elastic clocking).
/// Each gate's delay gets an independent multiplicative lognormal factor
/// exp(N(0, sigma)) — the standard within-die random-variation model.
/// The returned overlay composes multiplicatively with the aging overlays
/// (multiply element-wise, see combined_scales in scenario.hpp).
///
/// The generator consumes both Box-Muller variates (cosine and sine), so a
/// fixed seed yields a different stream than releases that discarded the
/// sine — see docs/MODEL.md ("Variation streams") for the pinning note.
std::vector<double> process_variation_scales(const Netlist& netlist,
                                             double sigma,
                                             std::uint64_t seed);

/// Correlated intra-die variation (docs/MODEL.md): three lognormal
/// components composed per gate,
///
///   scale(g) = exp(sigma_die * z_die
///              + sigma_grid * z_grid(level(g))
///              + sigma_random * z_g)
///
///  - z_die: one die-to-die mean shift shared by every gate;
///  - z_grid: a level-grid systematic field — one normal per block of
///    `grid_levels` topological levels, linearly interpolated between
///    block nodes, so neighbouring logic levels (the proxy for physical
///    adjacency in a placed array multiplier) vary together;
///  - z_g: the independent per-gate term of process_variation_scales.
///
/// Every component has median 1 (log-mean 0), so the nominal delay is the
/// median die.
struct VariationModel {
  double sigma_random = 0.05;  ///< independent per-gate lognormal sigma
  double sigma_grid = 0.03;    ///< correlated level-grid sigma
  int grid_levels = 4;         ///< topological levels per grid block (>= 1)
  double sigma_die = 0.03;     ///< die-to-die mean-shift sigma
};

/// Samples one die's correlated overlay. `die_z` overrides the die-level
/// normal draw (the Monte-Carlo engine's stratified-sampling hook); the
/// draw is consumed from the stream either way, so stratified and plain
/// trials with the same seed share identical grid + random components.
std::vector<double> correlated_variation_scales(
    const Netlist& netlist, const VariationModel& model, std::uint64_t seed,
    std::optional<double> die_z = std::nullopt);

/// Stochastic-aging jitter: scales the *degradation* part of a BTI/EM
/// overlay by an independent per-gate lognormal factor,
///
///   out[g] = 1 + (base[g] - 1) * exp(sigma * z_g),
///
/// modelling device-to-device spread around the deterministic reaction-
/// diffusion trajectory (median-preserving: the median die ages exactly
/// like the nominal model). A fresh overlay (base == 1) is unchanged; the
/// per-gate draws depend only on `seed`, so one seed gives a device its
/// aging "trait" consistently across evaluation years.
std::vector<double> stochastic_aging_scales(std::span<const double> base,
                                            double sigma, std::uint64_t seed);

/// Element-wise product of delay overlays (e.g. BTI x EM x variation).
/// All inputs must be the same length (one entry per gate); an empty span
/// means "identity" and is skipped. Spans, not vectors: the overlays are
/// only read, so call sites no longer copy every overlay per call.
std::vector<double> combine_scales(
    std::initializer_list<std::span<const double>> overlays);

/// In-place variant for per-trial hot loops: acc[i] *= overlay[i]. An
/// empty overlay is identity; if `acc` is empty it becomes a copy of
/// `overlay`. Throws std::invalid_argument on a length mismatch.
void accumulate_scales(std::vector<double>& acc,
                       std::span<const double> overlay);

}  // namespace agingsim
