#pragma once

#include <vector>

#include "src/aging/stress.hpp"
#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Analytic signal-probability propagation: computes P(net = 1) for every
/// net in one topological pass, assuming independence between gate inputs
/// (the classical zero-cost alternative to Monte-Carlo extraction; exact on
/// tree-shaped fanin, approximate under reconvergence). Primary inputs are
/// assumed uniform (P = 1/2). Disabled tri-state keepers hold samples of
/// their own data distribution, so a TBUF's steady-state probability is its
/// data input's.
std::vector<double> propagate_signal_probabilities(const Netlist& netlist);

/// A StressProfile built from the analytic probabilities — a drop-in,
/// simulation-free replacement for `estimate_stress` when constructing an
/// AgingScenario for large netlists.
StressProfile analytic_stress(const Netlist& netlist);

}  // namespace agingsim
