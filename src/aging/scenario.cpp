#include "src/aging/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace agingsim {

AgingScenario::AgingScenario(const Netlist& netlist, const TechLibrary& tech,
                             BtiModel model, std::uint64_t seed,
                             std::size_t stress_patterns)
    : netlist_(&netlist),
      tech_(&tech),
      model_(model),
      stress_(estimate_stress(netlist, tech, seed, stress_patterns)) {}

AgingScenario::AgingScenario(const Netlist& netlist, const TechLibrary& tech,
                             BtiModel model, StressProfile profile)
    : netlist_(&netlist),
      tech_(&tech),
      model_(model),
      stress_(std::move(profile)) {
  if (stress_.pmos_stress.size() != netlist.num_gates()) {
    throw std::invalid_argument(
        "AgingScenario: stress profile does not match the netlist");
  }
}

std::vector<double> AgingScenario::delay_scales_at(double years) const {
  const double t = years_to_seconds(years);
  std::vector<double> scales(netlist_->num_gates(), 1.0);
  if (years <= 0.0) return scales;
  for (GateId g = 0; g < netlist_->num_gates(); ++g) {
    const double dv_p = model_.delta_vth(stress_.pmos_stress[g], t);
    const double dv_n = model_.delta_vth(stress_.nmos_stress[g], t);
    scales[g] = 0.5 * (delay_scale_from_dvth(*tech_, dv_p) +
                       delay_scale_from_dvth(*tech_, dv_n));
  }
  return scales;
}

double AgingScenario::mean_dvth_at(double years) const {
  if (years <= 0.0 || netlist_->num_gates() == 0) return 0.0;
  const double t = years_to_seconds(years);
  double sum = 0.0;
  for (GateId g = 0; g < netlist_->num_gates(); ++g) {
    sum += 0.5 * (model_.delta_vth(stress_.pmos_stress[g], t) +
                  model_.delta_vth(stress_.nmos_stress[g], t));
  }
  return sum / static_cast<double>(netlist_->num_gates());
}

}  // namespace agingsim
