#pragma once

#include <cstdint>
#include <vector>

#include "src/aging/bti.hpp"
#include "src/aging/stress.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Binds a netlist to a BTI model plus an extracted stress profile and
/// produces the per-gate delay-degradation overlays that the timing
/// simulators consume. This is the piece that replaces the paper's
/// "Vth drift ... added into the SPICE files during simulation".
class AgingScenario {
 public:
  /// Extracts the stress profile with `stress_patterns` random vectors.
  AgingScenario(const Netlist& netlist, const TechLibrary& tech,
                BtiModel model, std::uint64_t seed = 0x5eed,
                std::size_t stress_patterns = 2000);

  /// Uses a precomputed stress profile (e.g. `analytic_stress` from
  /// aging/prob_propagation.hpp) instead of Monte-Carlo extraction.
  AgingScenario(const Netlist& netlist, const TechLibrary& tech,
                BtiModel model, StressProfile profile);

  /// Per-gate delay multipliers after `years` of stress (one per gate,
  /// >= 1.0). Rise degradation comes from pMOS NBTI, fall from nMOS PBTI;
  /// the simulator keeps a single delay per gate, so the two are averaged.
  std::vector<double> delay_scales_at(double years) const;

  /// Average dVth (V) across all devices after `years` — drives the
  /// leakage-reduction side of the power model.
  double mean_dvth_at(double years) const;

  const StressProfile& stress() const noexcept { return stress_; }
  const BtiModel& model() const noexcept { return model_; }

 private:
  const Netlist* netlist_;
  const TechLibrary* tech_;
  BtiModel model_;
  StressProfile stress_;
};

}  // namespace agingsim
