#include "src/aging/bti.hpp"

#include <cmath>
#include <stdexcept>

namespace agingsim {
namespace {

constexpr double kBoltzmannEvPerK = 8.617333e-5;
constexpr double kRdTimeExponent = 1.0 / 6.0;

}  // namespace

double years_to_seconds(double years) noexcept {
  return years * 365.25 * 24.0 * 3600.0;
}

double kdc_from_physical(const PhysicalBtiParams& p) {
  const double overdrive = p.vgs_v - p.vth_v;
  if (!(overdrive > 0.0)) {
    throw std::invalid_argument("kdc_from_physical: Vgs must exceed Vth");
  }
  const double tox_m = p.tox_nm * 1e-9;
  const double eox = overdrive / tox_m;  // gate electric field
  const double field_term = std::exp(eox / p.e0_v_per_m);
  const double thermal_term =
      std::exp(-p.ea_ev / (kBoltzmannEvPerK * p.temperature_k));
  const double charge_term = std::sqrt(p.cox_f_per_m2 * overdrive);
  const double ds_term = 1.0 - p.vds_v / (p.alpha_sat * overdrive);
  return p.a_fit * p.tox_nm * charge_term * ds_term * field_term *
         thermal_term;
}

BtiModel BtiModel::physical(const PhysicalBtiParams& params) {
  return BtiModel(kdc_from_physical(params), kRdTimeExponent);
}

BtiModel BtiModel::calibrated(const TechLibrary& tech,
                              double target_delay_scale, double years,
                              double ref_stress) {
  if (!(target_delay_scale > 1.0) || !(years > 0.0) || !(ref_stress > 0.0) ||
      ref_stress > 1.0) {
    throw std::invalid_argument("BtiModel::calibrated: bad parameters");
  }
  // Invert the alpha-power law to find the dVth that produces the target
  // delay scale, then solve Eq. (1) for Kdc at the reference stress.
  const double drive0 = tech.vdd_v - tech.vth0_v;
  const double dvth =
      drive0 * (1.0 - std::pow(target_delay_scale, -1.0 / tech.alpha_power));
  const double t = years_to_seconds(years);
  const double kdc = dvth / (std::pow(ref_stress, kRdTimeExponent) *
                             std::pow(t, kRdTimeExponent));
  return BtiModel(kdc, kRdTimeExponent);
}

double BtiModel::delta_vth(double stress_probability, double seconds) const {
  if (stress_probability < 0.0 || stress_probability > 1.0) {
    throw std::invalid_argument("BtiModel::delta_vth: stress must be in [0,1]");
  }
  if (seconds < 0.0) {
    throw std::invalid_argument("BtiModel::delta_vth: negative time");
  }
  if (seconds == 0.0 || stress_probability == 0.0) return 0.0;
  return std::pow(stress_probability, n_) * kdc_ * std::pow(seconds, n_);
}

}  // namespace agingsim
