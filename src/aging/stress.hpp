#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/netlist/techlib.hpp"

namespace agingsim {

/// Per-gate BTI stress duty factors extracted by Monte-Carlo simulation.
///
/// In a static CMOS gate the pull-up pMOS devices conduct (and sit under
/// negative gate bias, i.e. NBTI stress) while the output is high; the
/// pull-down nMOS devices are under PBTI stress while the output is low.
/// So to first order:  S_pmos = P(out = 1),  S_nmos = P(out = 0).
struct StressProfile {
  std::vector<double> net_p_one;      ///< per net: probability of logic 1
  std::vector<double> pmos_stress;    ///< per gate: NBTI duty factor
  std::vector<double> nmos_stress;    ///< per gate: PBTI duty factor
};

/// Estimates signal probabilities by driving the netlist with `num_patterns`
/// uniform random input vectors (seeded, reproducible). Tri-state keeper
/// states are handled naturally by the timing simulator.
StressProfile estimate_stress(const Netlist& netlist, const TechLibrary& tech,
                              std::uint64_t seed, std::size_t num_patterns);

}  // namespace agingsim
