#include "src/aging/variation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

/// Standard-normal sampler over the deterministic PRNG. Box-Muller yields
/// two variates per (u1, u2) pair; both are used (the sine used to be
/// discarded, doubling the draw count for nothing), so consecutive calls
/// alternate cosine/sine of one shared pair.
class GaussianSampler {
 public:
  explicit GaussianSampler(std::uint64_t seed) noexcept : rng_(seed) {}

  double next() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = rng_.next_double();
    while (u1 <= 0.0) u1 = rng_.next_double();
    const double u2 = rng_.next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    spare_ = r * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return r * std::cos(2.0 * M_PI * u2);
  }

 private:
  Rng rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

void check_sigma(const char* who, double sigma) {
  if (sigma < 0.0) {
    throw std::invalid_argument(std::string(who) + ": sigma must be >= 0");
  }
}

}  // namespace

std::vector<double> process_variation_scales(const Netlist& netlist,
                                             double sigma,
                                             std::uint64_t seed) {
  check_sigma("process_variation_scales", sigma);
  std::vector<double> scales(netlist.num_gates(), 1.0);
  if (sigma == 0.0) return scales;
  GaussianSampler gauss(seed);
  for (std::size_t g = 0; g < scales.size(); ++g) {
    scales[g] = std::exp(sigma * gauss.next());
  }
  return scales;
}

std::vector<double> correlated_variation_scales(const Netlist& netlist,
                                                const VariationModel& model,
                                                std::uint64_t seed,
                                                std::optional<double> die_z) {
  check_sigma("correlated_variation_scales (random)", model.sigma_random);
  check_sigma("correlated_variation_scales (grid)", model.sigma_grid);
  check_sigma("correlated_variation_scales (die)", model.sigma_die);
  if (model.grid_levels < 1) {
    throw std::invalid_argument(
        "correlated_variation_scales: grid_levels must be >= 1");
  }
  const std::size_t num_gates = netlist.num_gates();
  std::vector<double> scales(num_gates, 1.0);
  if (num_gates == 0) return scales;

  GaussianSampler gauss(seed);
  // Draw order is part of the contract: die first, then the grid nodes,
  // then the per-gate random terms — a caller-supplied die_z replaces the
  // value but still consumes the draw, so stratified and plain trials with
  // one seed share identical grid + random fields.
  const double z_die_drawn = gauss.next();
  const double z_die = die_z.value_or(z_die_drawn);

  // Grid nodes at block boundaries: gate g sits at continuous coordinate
  // level(g) / grid_levels and interpolates between the two neighbouring
  // nodes, so correlation decays smoothly with level distance.
  const int depth = netlist.depth();
  const std::size_t num_nodes =
      static_cast<std::size_t>((depth + model.grid_levels - 1) /
                               model.grid_levels) +
      1;
  std::vector<double> grid_nodes(num_nodes);
  for (double& node : grid_nodes) node = gauss.next();

  for (GateId g = 0; g < num_gates; ++g) {
    const double x = static_cast<double>(netlist.level(g)) /
                     static_cast<double>(model.grid_levels);
    // num_nodes >= 2 whenever there are gates (depth >= 1), and the top
    // level lands strictly below the last node, so lo+1 is always valid
    // bar float rounding at the boundary — clamp for that case.
    std::size_t lo = static_cast<std::size_t>(x);
    if (lo > num_nodes - 2) lo = num_nodes - 2;
    const std::size_t hi = lo + 1;
    const double frac = x - static_cast<double>(lo);
    const double z_grid =
        grid_nodes[lo] + (grid_nodes[hi] - grid_nodes[lo]) * frac;
    const double z_rand = gauss.next();
    scales[g] = std::exp(model.sigma_die * z_die +
                         model.sigma_grid * z_grid +
                         model.sigma_random * z_rand);
  }
  return scales;
}

std::vector<double> stochastic_aging_scales(std::span<const double> base,
                                            double sigma,
                                            std::uint64_t seed) {
  check_sigma("stochastic_aging_scales", sigma);
  std::vector<double> out(base.begin(), base.end());
  if (sigma == 0.0) return out;
  GaussianSampler gauss(seed);
  for (double& s : out) {
    // Jitter the degradation (s - 1), not the whole scale: a fresh gate
    // stays exactly at 1 and the jitter magnitude tracks how aged the
    // gate actually is.
    s = 1.0 + (s - 1.0) * std::exp(sigma * gauss.next());
  }
  return out;
}

std::vector<double> combine_scales(
    std::initializer_list<std::span<const double>> overlays) {
  std::vector<double> out;
  for (const auto overlay : overlays) {
    accumulate_scales(out, overlay);
  }
  return out;
}

void accumulate_scales(std::vector<double>& acc,
                       std::span<const double> overlay) {
  if (overlay.empty()) return;
  if (acc.empty()) {
    acc.assign(overlay.begin(), overlay.end());
    return;
  }
  if (overlay.size() != acc.size()) {
    throw std::invalid_argument(
        "combine_scales: overlays must have equal length");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= overlay[i];
}

}  // namespace agingsim
