#include "src/aging/variation.hpp"

#include <cmath>
#include <stdexcept>

#include "src/workload/rng.hpp"

namespace agingsim {

std::vector<double> process_variation_scales(const Netlist& netlist,
                                             double sigma,
                                             std::uint64_t seed) {
  if (sigma < 0.0) {
    throw std::invalid_argument("process_variation_scales: sigma must be >= 0");
  }
  Rng rng(seed);
  std::vector<double> scales(netlist.num_gates(), 1.0);
  if (sigma == 0.0) return scales;
  // Box-Muller on the deterministic PRNG.
  for (std::size_t g = 0; g < scales.size(); ++g) {
    double u1 = rng.next_double();
    while (u1 <= 0.0) u1 = rng.next_double();
    const double u2 = rng.next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    scales[g] = std::exp(sigma * z);
  }
  return scales;
}

std::vector<double> combine_scales(
    std::initializer_list<std::vector<double>> overlays) {
  std::vector<double> out;
  for (const auto& overlay : overlays) {
    if (overlay.empty()) continue;
    if (out.empty()) {
      out = overlay;
    } else {
      if (overlay.size() != out.size()) {
        throw std::invalid_argument(
            "combine_scales: overlays must have equal length");
      }
      for (std::size_t i = 0; i < out.size(); ++i) out[i] *= overlay[i];
    }
  }
  return out;
}

}  // namespace agingsim
