#include "src/aging/electromigration.hpp"

#include <cmath>
#include <stdexcept>

namespace agingsim {
namespace {

constexpr double kBoltzmannEvPerK = 8.617333e-5;

// Normalization constants making the default EmParams yield ~10 years:
// MTTF = a_fit * kMttfNorm / J^n * exp(Ea/kT) / exp(Ea/kT_ref-ish folded).
// We simply define the reference so that J = 1 mA/um^2, Ea = 0.9 eV,
// T = 398.15 K => 10 years.
constexpr double kReferenceYears = 10.0;

}  // namespace

ElectromigrationModel::ElectromigrationModel(EmParams params)
    : params_(params) {
  if (!(params.current_density_ma_um2 > 0.0) || !(params.a_fit > 0.0)) {
    throw std::invalid_argument(
        "ElectromigrationModel: current density and prefactor must be > 0");
  }
  if (params.delay_growth_at_mttf < 0.0) {
    throw std::invalid_argument(
        "ElectromigrationModel: delay growth must be >= 0");
  }
  const EmParams ref{};  // the 10-year reference corner
  const auto black = [](const EmParams& p) {
    return p.a_fit / std::pow(p.current_density_ma_um2, p.n_exp) *
           std::exp(p.ea_ev / (kBoltzmannEvPerK * p.temperature_k));
  };
  mttf_years_ = kReferenceYears * black(params_) / black(ref);
}

double ElectromigrationModel::wire_delay_scale(double years) const {
  if (years < 0.0) {
    throw std::invalid_argument(
        "ElectromigrationModel::wire_delay_scale: negative time");
  }
  // Linear void-growth resistance drift in consumed lifetime.
  return 1.0 + params_.delay_growth_at_mttf * (years / mttf_years_);
}

}  // namespace agingsim
