#pragma once

namespace agingsim {

/// Electromigration (EM) interconnect-aging model — the second aging
/// mechanism the paper's conclusion discusses: "metal atoms will be
/// gradually displaced ... if a wire becomes narrower, the resistance and
/// delay of the wire will be increased, and in the end electromigration may
/// lead to open circuits."
///
/// Lifetime follows Black's equation,  MTTF = A / J^n * exp(Ea / kT),
/// with the classical n = 2 current-density exponent and Ea ~ 0.9 eV for
/// Cu interconnect. Before failure, the void-growth phase raises wire
/// resistance (and therefore RC delay) roughly linearly in consumed
/// lifetime; `delay_growth_at_mttf` is the fractional wire-delay increase
/// accumulated at t = MTTF.
struct EmParams {
  double current_density_ma_um2 = 1.0;  ///< average wire current density
  double n_exp = 2.0;                   ///< Black's current exponent
  double ea_ev = 0.9;                   ///< activation energy (Cu)
  double temperature_k = 398.15;        ///< 125 C, as the BTI studies
  /// Prefactor chosen so the default parameters give MTTF ~= 10 years —
  /// a representative sign-off target.
  double a_fit = 1.0;
  /// Fractional wire-delay increase when t reaches MTTF (void growth).
  double delay_growth_at_mttf = 0.10;
};

class ElectromigrationModel {
 public:
  explicit ElectromigrationModel(EmParams params = {});

  /// Median time to failure in years (Black's equation).
  double mttf_years() const noexcept { return mttf_years_; }

  /// Multiplier (>= 1) on wire delay after `years` of current stress. Wire
  /// delay is folded into the per-gate delays of the gate-level model, so
  /// this scale composes multiplicatively with the BTI per-gate scales.
  double wire_delay_scale(double years) const;

  const EmParams& params() const noexcept { return params_; }

 private:
  EmParams params_;
  double mttf_years_;
};

}  // namespace agingsim
