#pragma once

namespace agingsim {

/// Behavioural model of the 2m-bit Razor flip-flop bank at the multiplier
/// output (paper Fig. 11). The main flip-flop samples at the cycle period T;
/// the shadow latch samples on a delayed clock and is compared with an XOR.
///
/// The paper's usage contract: a one-cycle pattern whose true path delay
/// exceeds T is caught by the Razor bank, the error signal is raised, and
/// the operation is re-executed "using three extra cycles (one cycle for
/// Razor flip-flops and two cycles for re-execution)".
struct RazorConfig {
  /// How far past the main clock edge the shadow latch still captures a
  /// correct value, in cycle periods. The variable-latency scheme guarantees
  /// every path fits in two cycles, so the shadow window spans a full extra
  /// period by design.
  double shadow_window_cycles = 1.0;
  /// Extra cycles consumed by a detected violation (paper Section IV-B).
  int reexec_penalty_cycles = 3;
  /// Metastability window (ps) just past the main clock edge. A data
  /// transition landing inside it races the main flip-flop's resolution
  /// time: the error comparator may resolve to "no error" even though the
  /// captured word is marginal, letting a wrong value escape (Ernst et al.
  /// report exactly this residual SDC channel for Razor). 0 models the
  /// ideal detector with a hard `delay <= T` cutoff — the seed behaviour.
  double metastability_window_ps = 0.0;
  /// Escape probability for a transition landing exactly at the clock edge;
  /// decays linearly to 0 across the metastability window.
  double edge_escape_prob = 0.5;
};

class RazorBank {
 public:
  explicit RazorBank(RazorConfig config) : config_(config) {}

  /// Main flip-flop captured a wrong value: the operation's settled output
  /// arrived after the clock edge.
  static bool violation(double delay_ps, double period_ps) noexcept {
    return delay_ps > period_ps;
  }

  /// Whether the shadow latch still holds the correct value, i.e. the
  /// violation is recoverable at all. A delay beyond the shadow window
  /// silently corrupts the result; the system model counts such events
  /// separately and the test suite proves they cannot occur when
  /// T >= critical_path / 2 and no delay faults are injected.
  bool detectable(double delay_ps, double period_ps) const noexcept {
    return delay_ps <= period_ps * (1.0 + config_.shadow_window_cycles);
  }

  /// Probability that a violation with this delay raises the error signal.
  /// Replaces the hard shadow-window cutoff with a detection-probability
  /// profile:
  ///  - beyond the shadow window: 0 (the shadow latch itself is wrong);
  ///  - within `metastability_window_ps` of the main clock edge: ramps from
  ///    `1 - edge_escape_prob` at the edge up to 1 at the window's end;
  ///  - elsewhere inside the shadow window: 1.
  /// Precondition: violation(delay_ps, period_ps). With the default config
  /// (window 0) this reproduces the seed's deterministic semantics exactly.
  double detection_probability(double delay_ps,
                               double period_ps) const noexcept {
    if (!detectable(delay_ps, period_ps)) return 0.0;
    const double past_edge = delay_ps - period_ps;
    if (past_edge < config_.metastability_window_ps) {
      const double ramp = past_edge / config_.metastability_window_ps;
      return 1.0 - config_.edge_escape_prob * (1.0 - ramp);
    }
    return 1.0;
  }

  int reexec_penalty_cycles() const noexcept {
    return config_.reexec_penalty_cycles;
  }
  const RazorConfig& config() const noexcept { return config_; }

 private:
  RazorConfig config_;
};

}  // namespace agingsim
