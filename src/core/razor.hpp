#pragma once

namespace agingsim {

/// Behavioural model of the 2m-bit Razor flip-flop bank at the multiplier
/// output (paper Fig. 11). The main flip-flop samples at the cycle period T;
/// the shadow latch samples on a delayed clock and is compared with an XOR.
///
/// The paper's usage contract: a one-cycle pattern whose true path delay
/// exceeds T is caught by the Razor bank, the error signal is raised, and
/// the operation is re-executed "using three extra cycles (one cycle for
/// Razor flip-flops and two cycles for re-execution)".
struct RazorConfig {
  /// How far past the main clock edge the shadow latch still captures a
  /// correct value, in cycle periods. The variable-latency scheme guarantees
  /// every path fits in two cycles, so the shadow window spans a full extra
  /// period by design.
  double shadow_window_cycles = 1.0;
  /// Extra cycles consumed by a detected violation (paper Section IV-B).
  int reexec_penalty_cycles = 3;
};

class RazorBank {
 public:
  explicit RazorBank(RazorConfig config) : config_(config) {}

  /// Main flip-flop captured a wrong value: the operation's settled output
  /// arrived after the clock edge.
  static bool violation(double delay_ps, double period_ps) noexcept {
    return delay_ps > period_ps;
  }

  /// Whether the shadow latch still holds the correct value, i.e. the
  /// violation is detectable and recoverable. A delay beyond the shadow
  /// window would silently corrupt the result; the system model counts
  /// such events separately and the test suite proves they cannot occur
  /// when T >= critical_path / 2.
  bool detectable(double delay_ps, double period_ps) const noexcept {
    return delay_ps <= period_ps * (1.0 + config_.shadow_window_cycles);
  }

  int reexec_penalty_cycles() const noexcept {
    return config_.reexec_penalty_cycles;
  }
  const RazorConfig& config() const noexcept { return config_; }

 private:
  RazorConfig config_;
};

}  // namespace agingsim
