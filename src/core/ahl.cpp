#include "src/core/ahl.hpp"

#include <algorithm>

namespace agingsim {

AdaptiveHoldLogic::AdaptiveHoldLogic(AhlConfig config)
    : config_(config),
      first_(config.width, config.skip),
      // Skip-(width+1) is already the "never one cycle" block; the second
      // judging block saturates there.
      second_(config.width, std::min(config.skip + config.second_block_offset,
                                     config.width + 1)),
      indicator_(config.indicator) {}

int AdaptiveHoldLogic::decide_cycles(
    std::uint64_t judging_operand) const noexcept {
  const JudgingBlock& active = using_second_block() ? second_ : first_;
  return active.one_cycle(judging_operand) ? 1 : 2;
}

void AdaptiveHoldLogic::record_outcome(bool razor_error) {
  if (config_.adaptive) indicator_.record(razor_error);
}

}  // namespace agingsim
