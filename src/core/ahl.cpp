#include "src/core/ahl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agingsim {

AdaptiveHoldLogic::AdaptiveHoldLogic(AhlConfig config)
    : config_(config),
      first_(config.width, config.skip),
      // Skip-(width+1) is already the "never one cycle" block; the second
      // judging block saturates there.
      second_(config.width, std::min(config.skip + config.second_block_offset,
                                     config.width + 1)),
      indicator_(config.indicator) {
  if (config.storm_fallback) {
    if (config.storm_error_threshold <= 0.0 ||
        config.storm_error_threshold > 1.0) {
      throw std::invalid_argument(
          "AdaptiveHoldLogic: storm threshold must be in (0, 1]");
    }
    if (config.storm_calm_windows < 1) {
      throw std::invalid_argument(
          "AdaptiveHoldLogic: storm_calm_windows must be >= 1");
    }
    storm_trip_count_ = std::max(
        1, static_cast<int>(std::ceil(config.storm_error_threshold *
                                      config.indicator.window_ops)));
  }
}

int AdaptiveHoldLogic::decide_cycles(
    std::uint64_t judging_operand) const noexcept {
  // Graceful degradation: under an error storm every pattern is issued as
  // two cycles, which by the architectural contract always covers the path.
  if (storm_active_) return 2;
  const JudgingBlock& active = using_second_block() ? second_ : first_;
  return active.one_cycle(judging_operand) ? 1 : 2;
}

void AdaptiveHoldLogic::record_outcome(bool razor_error) {
  if (config_.adaptive) indicator_.record(razor_error);
  if (!config_.storm_fallback) return;

  ++storm_ops_in_window_;
  if (razor_error) ++storm_errors_in_window_;
  // Engage as soon as the window's error budget is blown — waiting for the
  // window boundary would only prolong the re-execution thrash.
  if (!storm_active_ && storm_errors_in_window_ >= storm_trip_count_) {
    storm_active_ = true;
    ++storm_engagements_;
    calm_streak_ = 0;
  }
  if (storm_ops_in_window_ >= config_.indicator.window_ops) {
    if (storm_active_) {
      if (storm_errors_in_window_ < storm_trip_count_) {
        ++calm_streak_;
      } else {
        calm_streak_ = 0;
      }
      if (calm_streak_ >= config_.storm_calm_windows) {
        storm_active_ = false;
        ++storm_recoveries_;
        calm_streak_ = 0;
      }
    }
    storm_ops_in_window_ = 0;
    storm_errors_in_window_ = 0;
  }
}

}  // namespace agingsim
