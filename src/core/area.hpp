#pragma once

#include <cstdint>

#include "src/multiplier/multiplier.hpp"

namespace agingsim {

/// Transistor-count area model for the paper's Fig. 25 comparison.
/// The paper reports "area overhead in transistors"; our counts come from
/// the generated netlists plus standard register/AHL cell estimates.
struct AreaBreakdown {
  std::int64_t combinational = 0;     ///< multiplier array itself
  std::int64_t input_registers = 0;   ///< 2m plain D flip-flops
  std::int64_t output_registers = 0;  ///< 2m plain DFFs or Razor FFs
  std::int64_t ahl = 0;               ///< judging blocks + indicator + gating

  std::int64_t total() const noexcept {
    return combinational + input_registers + output_registers + ahl;
  }
};

/// Transmission-gate master-slave D flip-flop.
inline constexpr int kDffTransistors = 24;
/// Razor FF: main FF + shadow latch + XOR comparator + restore mux
/// (Ernst et al. [27] report roughly double a plain flip-flop).
inline constexpr int kRazorFfTransistors = 48;

/// AHL circuit transistors for a `width`-bit judging operand: two zero
/// counters (popcount adder trees), two threshold comparators, the select
/// MUX, gating DFF + OR, and the aging-indicator error/window counters.
std::int64_t ahl_transistor_count(int width);

/// Area of a fixed-latency design: multiplier + plain input/output registers.
AreaBreakdown fixed_latency_area(const MultiplierNetlist& mult);

/// Area of the proposed design: multiplier + plain input registers +
/// Razor output registers + AHL.
AreaBreakdown variable_latency_area(const MultiplierNetlist& mult);

}  // namespace agingsim
