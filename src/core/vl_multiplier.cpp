#include "src/core/vl_multiplier.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "src/core/env.hpp"
#include "src/sim/sta.hpp"
#include "src/workload/rng.hpp"

namespace agingsim {
namespace {

// Per-bit energy of the AHL zero-counter + comparator per judged pattern.
// The AHL is a popcount tree over the judging operand: its activity scales
// with the operand width.
constexpr double kAhlEnergyPerBitFj = 0.5;

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), digits[v & 0xF]);
    v >>= 4;
  } while (v != 0);
  return out;
}

// Without injected faults a mismatch is a netlist or simulator bug; carry
// everything needed to reproduce it in the message. Shared by the scalar
// and batch trace paths so the oracle's contract is kernel-independent.
[[noreturn]] void throw_product_mismatch(std::size_t index, std::uint64_t a,
                                         std::uint64_t b, std::uint64_t golden,
                                         std::uint64_t product) {
  throw std::logic_error(
      "compute_op_trace: netlist product mismatch at pattern index " +
      std::to_string(index) + ": " + std::to_string(a) + " * " +
      std::to_string(b) + ": expected " + std::to_string(golden) + " (0x" +
      to_hex(golden) + "), netlist says " + std::to_string(product) + " (0x" +
      to_hex(product) + ")");
}

/// Fills one OpTrace from per-op observables and the previous op's state.
OpTrace make_op(std::uint64_t a, std::uint64_t b, std::uint64_t product,
                int width, double delay_ps, double switched_cap_ff,
                bool fault_active, bool first, std::uint64_t prev_a,
                std::uint64_t prev_b, std::uint64_t prev_p) {
  OpTrace op;
  op.a = a;
  op.b = b;
  op.product = product;
  op.golden = reference_multiply(a, b, width);
  op.correct = (op.product == op.golden);
  op.fault_active = fault_active;
  op.delay_ps = delay_ps;
  op.switched_cap_ff = switched_cap_ff;
  op.in_toggles =
      first ? 0 : std::popcount(a ^ prev_a) + std::popcount(b ^ prev_b);
  op.out_toggles = first ? 0 : std::popcount(product ^ prev_p);
  return op;
}

std::vector<OpTrace> compute_op_trace_batch(
    const MultiplierNetlist& mult, const TechLibrary& tech,
    std::span<const OperandPattern> patterns, const TraceOptions& options) {
  BatchTimingSim sim(mult.netlist, tech, options.gate_delay_scale);
  if (options.faults != nullptr) sim.set_fault_overlay(options.faults);
  const double guard =
      options.batch_guard_ps >= 0.0
          ? options.batch_guard_ps
          : env::double_or("AGINGSIM_BATCH_GUARD_PS", 0.0, 0.0);
  sim.set_timing_audit(options.timing_audit_thresholds_ps, guard);

  std::vector<OpTrace> trace;
  trace.reserve(patterns.size());
  std::vector<std::uint64_t> words(mult.netlist.input_nets().size());
  std::uint64_t prev_a = 0, prev_b = 0, prev_p = 0;
  bool first = true;
  for (std::size_t chunk = 0; chunk < patterns.size();
       chunk += static_cast<std::size_t>(kBatchLanes)) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kBatchLanes, patterns.size() - chunk));
    std::fill(words.begin(), words.end(), 0);
    for (int l = 0; l < lanes; ++l) {
      const OperandPattern& pat = patterns[chunk + static_cast<std::size_t>(l)];
      sim.load_bus_lane(words, pat.a, mult.width, mult.a_first_input, l);
      sim.load_bus_lane(words, pat.b, mult.width, mult.b_first_input, l);
    }
    const std::int64_t base = sim.steps();
    const std::span<const StepResult> results = sim.step_word(words, lanes);
    for (int l = 0; l < lanes; ++l) {
      const OperandPattern& pat = patterns[chunk + static_cast<std::size_t>(l)];
      const bool fault_active =
          options.faults != nullptr && options.faults->active_at(base + l);
      const OpTrace op = make_op(
          pat.a, pat.b, sim.output_bits(l), mult.width,
          results[static_cast<std::size_t>(l)].output_settle_ps,
          results[static_cast<std::size_t>(l)].switched_cap_ff, fault_active,
          first, prev_a, prev_b, prev_p);
      if (!op.correct && options.faults == nullptr) {
        throw_product_mismatch(trace.size(), pat.a, pat.b, op.golden,
                               op.product);
      }
      trace.push_back(op);
      prev_a = pat.a;
      prev_b = pat.b;
      prev_p = op.product;
      first = false;
    }
  }
  if (options.batch_stats != nullptr) *options.batch_stats = sim.stats();
  return trace;
}

}  // namespace

std::vector<OpTrace> compute_op_trace(const MultiplierNetlist& mult,
                                      const TechLibrary& tech,
                                      std::span<const OperandPattern> patterns,
                                      const TraceOptions& options) {
  const SimKernel kernel = resolve_kernel(options.kernel);
  if (kernel == SimKernel::kBatch) {
    return compute_op_trace_batch(mult, tech, patterns, options);
  }
  MultiplierSim sim(mult, tech, options.gate_delay_scale);
  if (kernel == SimKernel::kDense) sim.set_mode(TimingSim::Mode::kDense);
  if (options.faults != nullptr) sim.set_fault_overlay(options.faults);
  std::vector<OpTrace> trace;
  trace.reserve(patterns.size());
  std::uint64_t prev_a = 0, prev_b = 0, prev_p = 0;
  bool first = true;
  for (const OperandPattern& pat : patterns) {
    const std::int64_t cycle = sim.timing_sim().steps();
    const StepResult step = sim.apply(pat.a, pat.b);
    const bool fault_active =
        options.faults != nullptr && options.faults->active_at(cycle);
    const OpTrace op =
        make_op(pat.a, pat.b, sim.product(), mult.width, step.output_settle_ps,
                step.switched_cap_ff, fault_active, first, prev_a, prev_b,
                prev_p);
    if (!op.correct && options.faults == nullptr) {
      throw_product_mismatch(trace.size(), pat.a, pat.b, op.golden,
                             op.product);
    }
    trace.push_back(op);
    prev_a = pat.a;
    prev_b = pat.b;
    prev_p = op.product;
    first = false;
  }
  return trace;
}

std::vector<OpTrace> compute_op_trace(
    const MultiplierNetlist& mult, const TechLibrary& tech,
    std::span<const OperandPattern> patterns,
    std::span<const double> gate_delay_scale) {
  return compute_op_trace(mult, tech, patterns,
                          TraceOptions{.gate_delay_scale = gate_delay_scale});
}

double critical_path_ps(const MultiplierNetlist& mult, const TechLibrary& tech,
                        std::span<const double> gate_delay_scale) {
  return run_sta(mult.netlist, tech, gate_delay_scale).critical_path_ps;
}

VariableLatencySystem::VariableLatencySystem(const MultiplierNetlist& mult,
                                             const TechLibrary& tech,
                                             VlSystemConfig config)
    : mult_(&mult), tech_(&tech), config_(config), power_(tech) {
  if (!(config.period_ps > 0.0)) {
    throw std::invalid_argument("VariableLatencySystem: period must be > 0");
  }
  if (config.ahl.width != mult.width) {
    throw std::invalid_argument(
        "VariableLatencySystem: AHL width must match the multiplier width");
  }
}

RunStats VariableLatencySystem::run(std::span<const OpTrace> trace,
                                    double mean_dvth_v) {
  AdaptiveHoldLogic ahl(config_.ahl);
  RazorBank razor(config_.razor);
  const double period = config_.period_ps;
  const bool judge_on_a = judges_on_multiplicand(mult_->arch);
  const int width = mult_->width;
  const int ff_bits = 2 * width;  // per bank: two operands in, 2m product out

  Rng escape_rng(config_.razor_seed);
  RunStats s;
  s.period_ps = period;
  for (const OpTrace& op : trace) {
    const std::uint64_t judging = judge_on_a ? op.a : op.b;
    if (ahl.storm_active()) ++s.storm_ops;
    const int decided = ahl.decide_cycles(judging);
    bool error = false;
    // Whether the word the architecture finally commits equals a*b. Razor
    // re-execution recovers *timing* faults (the settled product), never
    // functional ones — a stuck-at that corrupts the settled value escapes
    // to SDC even when a violation happened to be flagged on the same op.
    bool committed_correct;
    std::uint64_t cycles;
    if (decided == 1) {
      ++s.one_cycle_ops;
      if (RazorBank::violation(op.delay_ps, period)) {
        const double p_detect = razor.detection_probability(op.delay_ps,
                                                            period);
        const bool detected =
            p_detect > 0.0 && escape_rng.next_double() < p_detect;
        if (detected) {
          error = true;
          ++s.errors;
          cycles = 1 + static_cast<std::uint64_t>(razor.reexec_penalty_cycles());
          committed_correct = op.correct;  // re-exec commits the settled word
        } else if (razor.detectable(op.delay_ps, period)) {
          // In-window violation the comparator missed (metastability): the
          // main flip-flop's marginal capture is committed unchallenged.
          ++s.razor_escapes;
          cycles = 1;
          committed_correct = false;
        } else {
          // Outside the shadow window: silently wrong result. The fault-free
          // variable-latency contract (T >= crit/2) makes this impossible;
          // tracked so tests and benches can assert it stays zero — and so
          // fault campaigns can measure when injected delay outliers break
          // the contract.
          ++s.undetected;
          cycles = 1;
          committed_correct = false;
        }
      } else {
        cycles = 1;
        committed_correct = op.correct;
      }
    } else {
      ++s.two_cycle_ops;
      cycles = 2;
      committed_correct = op.correct;
      if (op.delay_ps > 2.0 * period) {
        ++s.undetected;
        committed_correct = false;
      }
    }
    if (!committed_correct) {
      ++s.sdc_ops;
    } else if (op.fault_active && !error) {
      ++s.masked_faults;
    }
    ahl.record_outcome(error);

    s.total_cycles += cycles;
    ++s.ops;

    // Energy. Combinational switching is policy-independent; registers and
    // AHL depend on the cycle structure:
    //  - input flip-flops latch new operands once per op; hold cycles are
    //    clock-gated (the paper's !(gating) signal), so they contribute no
    //    further clock energy;
    //  - Razor flip-flops sample every cycle (they cannot be gated — they
    //    are the error detector).
    s.comb_energy_fj += power_.dynamic_energy_fj(op.switched_cap_ff);
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.in_toggles);
    s.register_energy_fj +=
        static_cast<double>(cycles) *
        power_.razor_bank_energy_fj(ff_bits, 0) +
        power_.razor_bank_energy_fj(0, op.out_toggles);
    s.ahl_energy_fj += kAhlEnergyPerBitFj * static_cast<double>(width);
  }
  s.switched_to_second_block = ahl.using_second_block();
  s.storm_engagements = ahl.storm_engagements();
  s.storm_recoveries = ahl.storm_recoveries();

  const double total_time_ps =
      static_cast<double>(s.total_cycles) * period;
  const double leak_nw =
      power_.leakage_power_nw(mult_->netlist, mean_dvth_v);
  // nW * ps = 1e-9 W * 1e-12 s = 1e-21 J = 1e-6 fJ.
  s.leakage_energy_fj = leak_nw * total_time_ps * 1e-6;
  s.total_energy_fj = s.comb_energy_fj + s.register_energy_fj +
                      s.ahl_energy_fj + s.leakage_energy_fj;

  if (s.ops > 0) {
    s.avg_cycles = static_cast<double>(s.total_cycles) /
                   static_cast<double>(s.ops);
    s.avg_latency_ps = s.avg_cycles * period;
    s.one_cycle_ratio = static_cast<double>(s.one_cycle_ops) /
                        static_cast<double>(s.ops);
    s.errors_per_10k_ops = static_cast<double>(s.errors) * 10000.0 /
                           static_cast<double>(s.ops);
    s.sdc_per_10k_ops = static_cast<double>(s.sdc_ops) * 10000.0 /
                        static_cast<double>(s.ops);
    // fJ / ps = mW.
    s.avg_power_mw = s.total_energy_fj / total_time_ps;
    s.edp_mw_ns2 = energy_delay_product(s.avg_power_mw,
                                        s.avg_latency_ps * 1e-3);
  }
  return s;
}

FixedLatencySystem::FixedLatencySystem(const MultiplierNetlist& mult,
                                       const TechLibrary& tech)
    : mult_(&mult), tech_(&tech), power_(tech) {}

RunStats FixedLatencySystem::run(std::span<const OpTrace> trace,
                                 double period_ps, double mean_dvth_v) {
  if (!(period_ps > 0.0)) {
    throw std::invalid_argument("FixedLatencySystem: period must be > 0");
  }
  const int ff_bits = 2 * mult_->width;
  RunStats s;
  s.period_ps = period_ps;
  for (const OpTrace& op : trace) {
    if (op.delay_ps > period_ps) {
      // A fixed-latency design clocked faster than its critical path is
      // simply broken; callers must pass the (aged) critical path.
      ++s.undetected;
    }
    // No Razor here: every late settle or corrupted settle commits.
    if (!op.correct || op.delay_ps > period_ps) {
      ++s.sdc_ops;
    } else if (op.fault_active) {
      ++s.masked_faults;
    }
    ++s.ops;
    s.total_cycles += 1;
    s.comb_energy_fj += power_.dynamic_energy_fj(op.switched_cap_ff);
    // Plain D flip-flop banks at input and output (paper's fairness note in
    // Section IV-E: baseline power includes both register banks).
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.in_toggles);
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.out_toggles);
  }
  const double total_time_ps =
      static_cast<double>(s.total_cycles) * period_ps;
  const double leak_nw = power_.leakage_power_nw(mult_->netlist, mean_dvth_v);
  s.leakage_energy_fj = leak_nw * total_time_ps * 1e-6;
  s.total_energy_fj =
      s.comb_energy_fj + s.register_energy_fj + s.leakage_energy_fj;
  if (s.ops > 0) {
    s.avg_cycles = 1.0;
    s.avg_latency_ps = period_ps;
    s.one_cycle_ratio = 1.0;
    s.sdc_per_10k_ops = static_cast<double>(s.sdc_ops) * 10000.0 /
                        static_cast<double>(s.ops);
    s.avg_power_mw = s.total_energy_fj / total_time_ps;
    s.edp_mw_ns2 =
        energy_delay_product(s.avg_power_mw, s.avg_latency_ps * 1e-3);
  }
  return s;
}

}  // namespace agingsim
