#include "src/core/vl_multiplier.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

// Per-bit energy of the AHL zero-counter + comparator per judged pattern.
// The AHL is a popcount tree over the judging operand: its activity scales
// with the operand width.
constexpr double kAhlEnergyPerBitFj = 0.5;

}  // namespace

std::vector<OpTrace> compute_op_trace(
    const MultiplierNetlist& mult, const TechLibrary& tech,
    std::span<const OperandPattern> patterns,
    std::span<const double> gate_delay_scale) {
  MultiplierSim sim(mult, tech, gate_delay_scale);
  std::vector<OpTrace> trace;
  trace.reserve(patterns.size());
  std::uint64_t prev_a = 0, prev_b = 0, prev_p = 0;
  bool first = true;
  for (const OperandPattern& pat : patterns) {
    const StepResult step = sim.apply(pat.a, pat.b);
    OpTrace op;
    op.a = pat.a;
    op.b = pat.b;
    op.product = sim.product();
    op.delay_ps = step.output_settle_ps;
    op.switched_cap_ff = step.switched_cap_ff;
    op.in_toggles =
        first ? 0
              : std::popcount(pat.a ^ prev_a) + std::popcount(pat.b ^ prev_b);
    op.out_toggles = first ? 0 : std::popcount(op.product ^ prev_p);

    const std::uint64_t expect = reference_multiply(pat.a, pat.b, mult.width);
    if (op.product != expect) {
      throw std::logic_error(
          "compute_op_trace: netlist product mismatch: " +
          std::to_string(pat.a) + " * " + std::to_string(pat.b) + " = " +
          std::to_string(expect) + ", netlist says " +
          std::to_string(op.product));
    }
    trace.push_back(op);
    prev_a = pat.a;
    prev_b = pat.b;
    prev_p = op.product;
    first = false;
  }
  return trace;
}

double critical_path_ps(const MultiplierNetlist& mult, const TechLibrary& tech,
                        std::span<const double> gate_delay_scale) {
  return run_sta(mult.netlist, tech, gate_delay_scale).critical_path_ps;
}

VariableLatencySystem::VariableLatencySystem(const MultiplierNetlist& mult,
                                             const TechLibrary& tech,
                                             VlSystemConfig config)
    : mult_(&mult), tech_(&tech), config_(config), power_(tech) {
  if (!(config.period_ps > 0.0)) {
    throw std::invalid_argument("VariableLatencySystem: period must be > 0");
  }
  if (config.ahl.width != mult.width) {
    throw std::invalid_argument(
        "VariableLatencySystem: AHL width must match the multiplier width");
  }
}

RunStats VariableLatencySystem::run(std::span<const OpTrace> trace,
                                    double mean_dvth_v) {
  AdaptiveHoldLogic ahl(config_.ahl);
  RazorBank razor(config_.razor);
  const double period = config_.period_ps;
  const bool judge_on_a = judges_on_multiplicand(mult_->arch);
  const int width = mult_->width;
  const int ff_bits = 2 * width;  // per bank: two operands in, 2m product out

  RunStats s;
  s.period_ps = period;
  for (const OpTrace& op : trace) {
    const std::uint64_t judging = judge_on_a ? op.a : op.b;
    const int decided = ahl.decide_cycles(judging);
    bool error = false;
    std::uint64_t cycles;
    if (decided == 1) {
      ++s.one_cycle_ops;
      if (RazorBank::violation(op.delay_ps, period)) {
        if (razor.detectable(op.delay_ps, period)) {
          error = true;
          ++s.errors;
          cycles = 1 + static_cast<std::uint64_t>(razor.reexec_penalty_cycles());
        } else {
          // Outside the shadow window: silently wrong result. The
          // variable-latency contract (T >= crit/2) makes this impossible;
          // tracked so tests and benches can assert it stays zero.
          ++s.undetected;
          cycles = 1;
        }
      } else {
        cycles = 1;
      }
    } else {
      ++s.two_cycle_ops;
      cycles = 2;
      if (op.delay_ps > 2.0 * period) ++s.undetected;
    }
    ahl.record_outcome(error);

    s.total_cycles += cycles;
    ++s.ops;

    // Energy. Combinational switching is policy-independent; registers and
    // AHL depend on the cycle structure:
    //  - input flip-flops latch new operands once per op; hold cycles are
    //    clock-gated (the paper's !(gating) signal), so they contribute no
    //    further clock energy;
    //  - Razor flip-flops sample every cycle (they cannot be gated — they
    //    are the error detector).
    s.comb_energy_fj += power_.dynamic_energy_fj(op.switched_cap_ff);
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.in_toggles);
    s.register_energy_fj +=
        static_cast<double>(cycles) *
        power_.razor_bank_energy_fj(ff_bits, 0) +
        power_.razor_bank_energy_fj(0, op.out_toggles);
    s.ahl_energy_fj += kAhlEnergyPerBitFj * static_cast<double>(width);
  }
  s.switched_to_second_block = ahl.using_second_block();

  const double total_time_ps =
      static_cast<double>(s.total_cycles) * period;
  const double leak_nw =
      power_.leakage_power_nw(mult_->netlist, mean_dvth_v);
  // nW * ps = 1e-9 W * 1e-12 s = 1e-21 J = 1e-6 fJ.
  s.leakage_energy_fj = leak_nw * total_time_ps * 1e-6;
  s.total_energy_fj = s.comb_energy_fj + s.register_energy_fj +
                      s.ahl_energy_fj + s.leakage_energy_fj;

  if (s.ops > 0) {
    s.avg_cycles = static_cast<double>(s.total_cycles) /
                   static_cast<double>(s.ops);
    s.avg_latency_ps = s.avg_cycles * period;
    s.one_cycle_ratio = static_cast<double>(s.one_cycle_ops) /
                        static_cast<double>(s.ops);
    s.errors_per_10k_ops = static_cast<double>(s.errors) * 10000.0 /
                           static_cast<double>(s.ops);
    // fJ / ps = mW.
    s.avg_power_mw = s.total_energy_fj / total_time_ps;
    s.edp_mw_ns2 = energy_delay_product(s.avg_power_mw,
                                        s.avg_latency_ps * 1e-3);
  }
  return s;
}

FixedLatencySystem::FixedLatencySystem(const MultiplierNetlist& mult,
                                       const TechLibrary& tech)
    : mult_(&mult), tech_(&tech), power_(tech) {}

RunStats FixedLatencySystem::run(std::span<const OpTrace> trace,
                                 double period_ps, double mean_dvth_v) {
  if (!(period_ps > 0.0)) {
    throw std::invalid_argument("FixedLatencySystem: period must be > 0");
  }
  const int ff_bits = 2 * mult_->width;
  RunStats s;
  s.period_ps = period_ps;
  for (const OpTrace& op : trace) {
    if (op.delay_ps > period_ps) {
      // A fixed-latency design clocked faster than its critical path is
      // simply broken; callers must pass the (aged) critical path.
      ++s.undetected;
    }
    ++s.ops;
    s.total_cycles += 1;
    s.comb_energy_fj += power_.dynamic_energy_fj(op.switched_cap_ff);
    // Plain D flip-flop banks at input and output (paper's fairness note in
    // Section IV-E: baseline power includes both register banks).
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.in_toggles);
    s.register_energy_fj += power_.dff_bank_energy_fj(ff_bits, op.out_toggles);
  }
  const double total_time_ps =
      static_cast<double>(s.total_cycles) * period_ps;
  const double leak_nw = power_.leakage_power_nw(mult_->netlist, mean_dvth_v);
  s.leakage_energy_fj = leak_nw * total_time_ps * 1e-6;
  s.total_energy_fj =
      s.comb_energy_fj + s.register_energy_fj + s.leakage_energy_fj;
  if (s.ops > 0) {
    s.avg_cycles = 1.0;
    s.avg_latency_ps = period_ps;
    s.one_cycle_ratio = 1.0;
    s.avg_power_mw = s.total_energy_fj / total_time_ps;
    s.edp_mw_ns2 =
        energy_delay_product(s.avg_power_mw, s.avg_latency_ps * 1e-3);
  }
  return s;
}

}  // namespace agingsim
