#include "src/core/quantile.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace agingsim::quantile {
namespace {

void check_q(double q) {
  if (!(q >= 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
}

}  // namespace

double nearest_rank(std::span<const double> sorted, double q) {
  check_q(q);
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  // ceil(q*n)-1 as the 0-based rank; q = 0 would give rank -1, so clamp
  // from below too (the "at least 0 samples" quantile is the minimum).
  const double rank = std::ceil(q * n) - 1.0;
  std::size_t idx = rank <= 0.0 ? 0 : static_cast<std::size_t>(rank);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

double interpolated(std::span<const double> sorted, double q) {
  check_q(q);
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : sorted.size() - 1;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double inverse_normal_cdf(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument(
        "inverse_normal_cdf: p must be strictly inside (0, 1)");
  }
  // Acklam's rational approximation: central region plus two tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double r = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
            c[5]) /
           ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double r = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
             c[5]) /
           ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
  }
  const double u = p - 0.5;
  const double r = u * u;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         u /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace agingsim::quantile
