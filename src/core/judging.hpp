#pragma once

#include <cstdint>

namespace agingsim {

/// One judging block of the AHL circuit (paper Fig. 12): outputs "one cycle"
/// iff the number of zeros in the judging operand (multiplicand for
/// column-bypassing, multiplicator for row-bypassing) is >= `skip`.
/// The paper's Skip-k scenarios are JudgingBlock{width, k}.
class JudgingBlock {
 public:
  JudgingBlock(int width, int skip);

  /// True => the pattern is predicted to finish in one cycle.
  bool one_cycle(std::uint64_t operand) const noexcept;

  int width() const noexcept { return width_; }
  int skip() const noexcept { return skip_; }

 private:
  int width_;
  int skip_;
};

/// Analytic one-cycle pattern ratio for uniform random operands:
/// P(#zeros >= skip) = binomial tail of Bin(width, 1/2). This is the
/// expected value behind the paper's Tables I and II.
double expected_one_cycle_ratio(int width, int skip);

}  // namespace agingsim
