#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/ahl.hpp"
#include "src/core/razor.hpp"
#include "src/fault/fault.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/power/power.hpp"
#include "src/sim/batch_sim.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {

/// Circuit-level record of one multiplier operation. The trace is
/// *policy-independent*: which paths a pattern transition exercises (and
/// therefore its delay and switched energy) does not depend on the cycle
/// period, the skip number or the AHL state — so one expensive gate-level
/// pass per (architecture, aging year) serves every point of the paper's
/// period/skip sweeps.
struct OpTrace {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t product = 0;      ///< product the netlist settled to
  std::uint64_t golden = 0;       ///< reference a*b (== product unless faulted)
  double delay_ps = 0.0;          ///< settled output delay of this transition
  double switched_cap_ff = 0.0;   ///< combinational switched capacitance
  int in_toggles = 0;             ///< operand bits that changed vs prev op
  int out_toggles = 0;            ///< product bits that changed vs prev op
  bool correct = true;            ///< product == golden
  bool fault_active = false;      ///< a fault overlay could affect this op

  friend bool operator==(const OpTrace&, const OpTrace&) = default;
};

/// Options for `compute_op_trace`.
struct TraceOptions {
  /// Per-gate aging delay overlay (empty = fresh circuit).
  std::span<const double> gate_delay_scale = {};
  /// Fault overlay injected for the whole trace (nullptr = fault-free). With
  /// faults installed, golden-check mismatches are *recorded* per op
  /// (`OpTrace::correct`) instead of thrown — wrong products are the very
  /// thing a fault campaign measures.
  const FaultOverlay* faults = nullptr;
  /// Step kernel. kAuto resolves through AGINGSIM_KERNEL (default: sparse).
  /// Every kernel produces a bit-identical trace; kBatch packs 64 patterns
  /// per sweep (see src/sim/batch_sim.hpp) and is 1-2 orders of magnitude
  /// faster on long pattern streams.
  SimKernel kernel = SimKernel::kAuto;
  /// Batch-kernel self-audit (ignored by the scalar kernels): lanes whose
  /// settled delay lands within the guard margin of any of these decision
  /// thresholds (cycle period, 2x period, ...) are replayed through the
  /// scalar kernel and cross-checked.
  std::span<const double> timing_audit_thresholds_ps = {};
  /// Guard margin in ps; negative means "read AGINGSIM_BATCH_GUARD_PS"
  /// (default 0 = audit off).
  double batch_guard_ps = -1.0;
  /// If non-null, receives the batch kernel's counters (words, lanes,
  /// replayed lanes, ...) after a kBatch trace. Untouched by scalar runs.
  BatchStats* batch_stats = nullptr;
};

/// Runs the gate-level simulator over `patterns` and returns the per-op
/// trace. Every product is checked against the golden reference multiply;
/// without a fault overlay a mismatch throws std::logic_error carrying the
/// pattern index, operands and expected/actual products (the trace
/// generator doubles as an end-to-end correctness oracle).
std::vector<OpTrace> compute_op_trace(const MultiplierNetlist& mult,
                                      const TechLibrary& tech,
                                      std::span<const OperandPattern> patterns,
                                      const TraceOptions& options);

/// Back-compat convenience: aging overlay only, throwing golden check.
std::vector<OpTrace> compute_op_trace(
    const MultiplierNetlist& mult, const TechLibrary& tech,
    std::span<const OperandPattern> patterns,
    std::span<const double> gate_delay_scale = {});

/// Critical-path delay (ps) of the (optionally aged) multiplier — the cycle
/// period a fixed-latency design must budget.
double critical_path_ps(const MultiplierNetlist& mult, const TechLibrary& tech,
                        std::span<const double> gate_delay_scale = {});

/// Configuration of the complete proposed architecture (paper Fig. 8).
struct VlSystemConfig {
  double period_ps = 900.0;  ///< system cycle period
  AhlConfig ahl{};           ///< skip number, adaptivity, indicator window
  RazorConfig razor{};       ///< shadow window, re-exec penalty, escape model
  /// Seed for the Razor metastability-escape draws. Every `run()` restarts
  /// from this seed, so runs over identical traces are bit-reproducible.
  /// Irrelevant with the default ideal detector (metastability window 0).
  std::uint64_t razor_seed = 0xAC1D5EEDULL;
};

/// Aggregate results of running an operation stream through a system model.
struct RunStats {
  std::uint64_t ops = 0;
  std::uint64_t one_cycle_ops = 0;   ///< issued as one cycle by the AHL
  std::uint64_t two_cycle_ops = 0;   ///< issued as two cycles by the AHL
  std::uint64_t errors = 0;          ///< Razor-detected timing violations
  std::uint64_t undetected = 0;      ///< violations outside the shadow window
  /// In-window violations the error comparator missed (metastability escape
  /// — see RazorConfig::metastability_window_ps). Always 0 with the default
  /// ideal detector.
  std::uint64_t razor_escapes = 0;
  /// Operations that committed a wrong product (silent data corruption):
  /// functional faults Razor cannot see, plus undetected/escaped timing
  /// violations. The fault-free architectural contract keeps this at 0.
  std::uint64_t sdc_ops = 0;
  /// Fault-exposed operations that still committed the correct product with
  /// no Razor intervention (logically or architecturally masked faults).
  std::uint64_t masked_faults = 0;
  std::uint64_t total_cycles = 0;
  bool switched_to_second_block = false;

  /// Error-storm graceful degradation (AhlConfig::storm_fallback).
  std::uint64_t storm_engagements = 0;
  std::uint64_t storm_recoveries = 0;
  std::uint64_t storm_ops = 0;       ///< ops issued while the fallback held

  double period_ps = 0.0;
  double avg_cycles = 0.0;
  double avg_latency_ps = 0.0;
  double one_cycle_ratio = 0.0;
  /// Errors normalized to the paper's "error count in 10000 cycles" figures.
  double errors_per_10k_ops = 0.0;
  double sdc_per_10k_ops = 0.0;

  double total_energy_fj = 0.0;
  double comb_energy_fj = 0.0;
  double register_energy_fj = 0.0;
  double ahl_energy_fj = 0.0;
  double leakage_energy_fj = 0.0;
  double avg_power_mw = 0.0;
  double edp_mw_ns2 = 0.0;

  /// Exact field-wise equality — used by the thread-count determinism
  /// tests (N-thread sweeps must be byte-identical to serial ones).
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

/// The proposed aging-aware variable-latency multiplier system: bypassing
/// multiplier + input registers with clock gating + AHL + Razor output bank
/// (paper Fig. 8). Judging operand selection follows the architecture:
/// multiplicand for column-bypassing, multiplicator for row-bypassing.
class VariableLatencySystem {
 public:
  VariableLatencySystem(const MultiplierNetlist& mult, const TechLibrary& tech,
                        VlSystemConfig config);

  /// Replays a circuit trace through the architectural policy. `mean_dvth_v`
  /// is the average device Vth drift at the trace's aging point (drives
  /// leakage). The AHL state is reset at the start of each run.
  RunStats run(std::span<const OpTrace> trace, double mean_dvth_v = 0.0);

  const VlSystemConfig& config() const noexcept { return config_; }

 private:
  const MultiplierNetlist* mult_;
  const TechLibrary* tech_;
  VlSystemConfig config_;
  PowerModel power_;
};

/// Fixed-latency baseline (AM / FLCB / FLRB): every operation takes one
/// cycle of length `period_ps` (the aged critical path — fixed designs must
/// guard-band for degradation, which is exactly the paper's point).
class FixedLatencySystem {
 public:
  FixedLatencySystem(const MultiplierNetlist& mult, const TechLibrary& tech);

  RunStats run(std::span<const OpTrace> trace, double period_ps,
               double mean_dvth_v = 0.0);

 private:
  const MultiplierNetlist* mult_;
  const TechLibrary* tech_;
  PowerModel power_;
};

}  // namespace agingsim
