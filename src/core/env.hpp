#pragma once

// One strict, warn-on-reject parser for every AGINGSIM_* environment
// variable (the full table lives in docs/OBSERVABILITY.md). Before this
// header existed, bench/common.hpp used std::atol (which silently accepts
// trailing garbage: "12abc" -> 12) while the runtime and the thread pool
// each carried their own strtol wrapper — three parsers, three behaviors.
// The contract here:
//
//  - the whole string must parse (no trailing garbage, no empty fields);
//  - a rejected value warns once per distinct (name, value) pair on
//    stderr — variables like AGINGSIM_THREADS are re-read at every
//    parallel region, and a sweep must not emit hundreds of identical
//    warnings — and falls back, never aborts;
//  - values above an explicit ceiling are clamped (with the same
//    once-only warning) rather than rejected, so "AGINGSIM_THREADS=9999"
//    degrades to the 256-lane maximum instead of to a surprise default.
//
// The serving daemon's AGINGSIM_SERVE_* defaults (tools/agingd,
// docs/SERVING.md) go through these same parsers; flags override env.

#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace agingsim::env {

/// Strict integer parse of an entire string (base 10, or 0x/0 prefixes
/// with base 0). nullopt on empty input, trailing garbage or overflow.
std::optional<long> parse_long(std::string_view text, int base = 10);
std::optional<unsigned long long> parse_u64(std::string_view text,
                                            int base = 10);
/// Strict double parse of an entire string; nullopt on empty input,
/// trailing garbage, or a non-finite result.
std::optional<double> parse_double(std::string_view text);

/// Reads `name` as a strict integer in [min_value, clamp_max]. Returns
/// nullopt when the variable is unset or empty, and — after a once-only
/// stderr warning — when it fails to parse or is below min_value. Values
/// above clamp_max warn once and come back clamped.
std::optional<long> long_var(
    const char* name, long min_value,
    long clamp_max = std::numeric_limits<long>::max());

/// long_var with a fallback for the unset/rejected cases — the shape most
/// call sites want: AGINGSIM_MAX_RETRIES, AGINGSIM_DEADLINE_MS, ...
long long_or(const char* name, long fallback, long min_value,
             long clamp_max = std::numeric_limits<long>::max());

/// Reads `name` as a string; nullopt when unset or empty (an empty
/// AGINGSIM_CHECKPOINT_DIR means "no checkpoints", not "current dir").
std::optional<std::string> str_var(const char* name);

/// Reads `name` and matches it (exact, case-sensitive) against `choices`.
/// Returns the matched index; unset/empty is silently nullopt, and a value
/// matching no choice warns once (listing the accepted spellings) and
/// returns nullopt so the caller's default wins — AGINGSIM_KERNEL=Batch
/// must degrade loudly to the sparse kernel, never abort a campaign.
std::optional<std::size_t> choice_var(const char* name,
                                      std::span<const char* const> choices);

/// Reads `name` as a strict finite double >= min_value, with the same
/// warn-once-and-fall-back contract as long_or (AGINGSIM_BATCH_GUARD_PS).
double double_or(const char* name, double fallback, double min_value);

}  // namespace agingsim::env
