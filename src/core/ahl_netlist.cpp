#include "src/core/ahl_netlist.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

/// Adds `bit` (0/1) into the binary accumulator `acc` (LSB first) with a
/// half-adder increment chain, growing the accumulator as needed.
void add_bit(NetlistBuilder& nb, std::vector<NetId>& acc, NetId bit) {
  NetId carry = bit;
  for (std::size_t i = 0; i < acc.size() && !nb.is_zero(carry); ++i) {
    const AdderBits ha = nb.half_adder(acc[i], carry);
    acc[i] = ha.sum;
    carry = ha.carry;
  }
  if (!nb.is_zero(carry)) acc.push_back(carry);
}

/// count >= k for a constant k, MSB-first compare. The serial increment
/// accumulator can be much wider than k needs (one bit per operand bit), so
/// bit extraction must stay in 64-bit range.
NetId build_ge_const(NetlistBuilder& nb, const std::vector<NetId>& count,
                     std::uint64_t k) {
  NetId ge = nb.zero();
  NetId eq_prefix = nb.one();
  for (int i = static_cast<int>(count.size()) - 1; i >= 0; --i) {
    const NetId bit = count[static_cast<std::size_t>(i)];
    const bool k_bit = i < 64 && ((k >> i) & 1u);
    if (!k_bit) {
      // count can exceed k at this position.
      ge = nb.or2(ge, nb.and2(eq_prefix, bit));
      eq_prefix = nb.and2(eq_prefix, nb.inv(bit));
    } else {
      eq_prefix = nb.and2(eq_prefix, bit);
    }
  }
  return nb.or2(ge, eq_prefix);  // equality also satisfies >=
}

}  // namespace

JudgingNetlist build_judging_block_netlist(int width, int skip) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument(
        "build_judging_block_netlist: width must be in [2, 32]");
  }
  if (skip < 0 || skip > width + 1) {
    throw std::invalid_argument(
        "build_judging_block_netlist: skip must be in [0, width + 1]");
  }
  NetlistBuilder nb;
  const auto operand = nb.input_bus("x", width);

  NetId one_cycle;
  if (skip == 0) {
    one_cycle = nb.buf(nb.one());  // constant: every pattern is one cycle
  } else if (skip == width + 1) {
    one_cycle = nb.buf(nb.zero());  // constant: never one cycle
  } else {
    // Zero counter: invert each operand bit, accumulate into a binary count.
    std::vector<NetId> count;
    for (NetId bit : operand) add_bit(nb, count, nb.inv(bit));
    // The count needs ceil(log2(width+1)) bits; make sure the constant k
    // fits the comparator's view of the accumulator.
    while (count.size() < 63 &&
           (std::uint64_t{1} << count.size()) <=
               static_cast<std::uint64_t>(skip)) {
      count.push_back(nb.zero());
    }
    one_cycle =
        build_ge_const(nb, count, static_cast<std::uint64_t>(skip));
  }
  nb.netlist().mark_output(one_cycle, "one_cycle");
  nb.netlist().validate();
  return JudgingNetlist{std::move(nb.netlist()), width, skip};
}

AhlControlNetlist build_ahl_control_netlist(int width, int skip,
                                            int second_block_offset) {
  if (second_block_offset < 0) {
    throw std::invalid_argument(
        "build_ahl_control_netlist: offset must be >= 0");
  }
  const int second_skip =
      std::min(skip + second_block_offset, width + 1);
  const JudgingNetlist first = build_judging_block_netlist(width, skip);
  const JudgingNetlist second =
      build_judging_block_netlist(width, second_skip);

  NetlistBuilder nb;
  const auto operand = nb.input_bus("x", width);
  const NetId aging = nb.input("aging");
  const NetId q_gating = nb.input("q_gating");

  const NetId j1 = nb.instantiate(first.netlist, operand)[0];
  const NetId j2 = nb.instantiate(second.netlist, operand)[0];
  const NetId one_cycle = nb.mux2(j1, j2, aging);
  // D = one_cycle | !Q: a two-cycle verdict drops Q for exactly one cycle
  // (the hold cycle re-evaluates with the *same* operand because the input
  // registers are gated, and !Q = 1 pulls D back to 1).
  const NetId d_gating = nb.or2(one_cycle, nb.inv(q_gating));
  nb.netlist().mark_output(one_cycle, "one_cycle");
  nb.netlist().mark_output(d_gating, "d_gating");
  nb.netlist().validate();
  return AhlControlNetlist{std::move(nb.netlist()), width, width,
                           width + 1};
}

}  // namespace agingsim
