#include "src/core/aging_indicator.hpp"

#include <cmath>
#include <stdexcept>

namespace agingsim {

AgingIndicator::AgingIndicator(AgingIndicatorConfig config)
    : config_(config) {
  if (config.window_ops < 1) {
    throw std::invalid_argument("AgingIndicator: window must be >= 1 op");
  }
  if (config.error_threshold <= 0.0 || config.error_threshold > 1.0) {
    throw std::invalid_argument(
        "AgingIndicator: threshold must be in (0, 1]");
  }
  trip_count_ = static_cast<int>(std::ceil(config.error_threshold *
                                           config.window_ops));
  if (trip_count_ < 1) trip_count_ = 1;
}

void AgingIndicator::record(bool error) {
  ++ops_in_window_;
  if (error) ++errors_in_window_;
  // Trip as soon as the window's budget is exhausted — the counter would
  // reach the threshold at the window boundary anyway; reacting immediately
  // only shortens the error burst.
  if (errors_in_window_ >= trip_count_ && !aged_) {
    aged_ = true;
    ++trips_;
  }
  if (ops_in_window_ >= config_.window_ops) {
    if (!config_.sticky) {
      aged_ = errors_in_window_ >= trip_count_;
    }
    ops_in_window_ = 0;
    errors_in_window_ = 0;
    ++windows_;
  }
}

void AgingIndicator::reset() {
  ops_in_window_ = 0;
  errors_in_window_ = 0;
  aged_ = false;
  windows_ = 0;
  trips_ = 0;
}

}  // namespace agingsim
