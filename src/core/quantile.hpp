#pragma once

// The repository's single quantile convention (docs/MODEL.md).
//
// Three quantile definitions grew independently — the fault campaign's
// nearest-rank helper indexed at floor(q*N) (one rank high of the textbook
// definition), agingload interpolated, and the histogram walked bins — and
// their answers disagreed on the same data. Everything now reports through
// these two functions:
//
//  - nearest_rank: the classical "smallest sample v such that at least q*N
//    samples are <= v" — index ceil(q*N)-1, clamped to [0, N-1]. Always an
//    actual sample, so campaign outputs stay bit-exact under checkpoint
//    resume and thread-count changes. This is what campaign quantiles and
//    the Monte-Carlo band reports use.
//  - interpolated: Hyndman–Fan type 7 (position q*(N-1), linear between
//    the straddling samples) — what agingload's latency percentiles use,
//    matching numpy/R defaults so SLO numbers compare across tools.
//
// Plus the standard-normal quantile function (inverse CDF), used by the MC
// engine's stratified sampling to map stratified uniforms onto normals.

#include <span>

namespace agingsim::quantile {

/// Nearest-rank quantile of an ascending-sorted sample: sorted[ceil(q*N)-1]
/// clamped to [0, N-1] (q = 0 gives the first sample, q = 1 the last).
/// Returns 0.0 for an empty span; throws std::invalid_argument unless
/// q is in [0, 1].
double nearest_rank(std::span<const double> sorted, double q);

/// Linearly interpolated quantile (Hyndman–Fan type 7) of an ascending-
/// sorted sample: position q*(N-1), linear between the two straddling
/// samples. Returns 0.0 for an empty span; throws std::invalid_argument
/// unless q is in [0, 1].
double interpolated(std::span<const double> sorted, double q);

/// Inverse standard-normal CDF (Acklam's rational approximation, absolute
/// error < 1.2e-9 over (0, 1)). Throws std::invalid_argument unless p is
/// strictly inside (0, 1).
double inverse_normal_cdf(double p);

}  // namespace agingsim::quantile
