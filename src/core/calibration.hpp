#pragma once

#include "src/netlist/techlib.hpp"

namespace agingsim {

/// The single calibration point tying the model's time axis to the paper's:
/// the default library is globally scaled so the 16x16 column-bypassing
/// multiplier's critical path equals `target_cb16_ps` (1.88 ns in the
/// paper's Fig. 5). All *relative* results — architecture orderings, delay
/// distribution shapes, variable-latency crossovers — are calibration-free.
TechLibrary calibrated_tech_library(double target_cb16_ps = 1880.0);

/// The scale factor that `calibrated_tech_library` applies (diagnostics).
double calibration_scale(double target_cb16_ps = 1880.0);

}  // namespace agingsim
