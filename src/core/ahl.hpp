#pragma once

#include <cstdint>

#include "src/core/aging_indicator.hpp"
#include "src/core/judging.hpp"

namespace agingsim {

/// Configuration of the Adaptive Hold Logic circuit (paper Fig. 12).
struct AhlConfig {
  int width = 16;
  /// Base skip number: the first judging block is Skip-`skip`, the second is
  /// Skip-`skip+second_block_offset`.
  int skip = 7;
  /// false models the *traditional* variable-latency design (T-VLCB/T-VLRB):
  /// a single judging block, no aging indicator, no adaptation.
  bool adaptive = true;
  /// How much stricter the second judging block is. The paper uses n+1
  /// (offset 1); the ablation bench sweeps this.
  int second_block_offset = 1;
  AgingIndicatorConfig indicator{};
};

/// The AHL circuit: two judging blocks (Skip-k and Skip-(k+1)), an aging
/// indicator and the selecting MUX. Decides, per input pattern, whether the
/// operation is issued as one cycle or two; consumes the Razor error
/// feedback to detect significant aging and switch judging blocks.
class AdaptiveHoldLogic {
 public:
  explicit AdaptiveHoldLogic(AhlConfig config);

  /// Cycles the arriving pattern is issued with (1 or 2). `judging_operand`
  /// is the multiplicand for column-bypassing, the multiplicator for
  /// row-bypassing (paper Fig. 8).
  int decide_cycles(std::uint64_t judging_operand) const noexcept;

  /// Feeds one operation's Razor outcome back into the aging indicator.
  /// No-op for the non-adaptive (traditional) configuration.
  void record_outcome(bool razor_error);

  /// True once the aging indicator has switched to the second judging block.
  bool using_second_block() const noexcept {
    return config_.adaptive && indicator_.aged();
  }

  const AhlConfig& config() const noexcept { return config_; }
  const AgingIndicator& indicator() const noexcept { return indicator_; }

 private:
  AhlConfig config_;
  JudgingBlock first_;
  JudgingBlock second_;
  AgingIndicator indicator_;
};

}  // namespace agingsim
