#pragma once

#include <cstdint>

#include "src/core/aging_indicator.hpp"
#include "src/core/judging.hpp"

namespace agingsim {

/// Configuration of the Adaptive Hold Logic circuit (paper Fig. 12).
struct AhlConfig {
  int width = 16;
  /// Base skip number: the first judging block is Skip-`skip`, the second is
  /// Skip-`skip+second_block_offset`.
  int skip = 7;
  /// false models the *traditional* variable-latency design (T-VLCB/T-VLRB):
  /// a single judging block, no aging indicator, no adaptation.
  bool adaptive = true;
  /// How much stricter the second judging block is. The paper uses n+1
  /// (offset 1); the ablation bench sweeps this.
  int second_block_offset = 1;
  AgingIndicatorConfig indicator{};

  /// Error-storm graceful degradation (resilience extension, docs/FAULTS.md).
  /// When enabled, the AHL watches the Razor error rate over windows of
  /// `indicator.window_ops` operations; once the rate reaches
  /// `storm_error_threshold` the circuit falls back to always-two-cycle
  /// issue — every path then fits the relaxed timing, so a delay-faulted
  /// part keeps producing correct (if slower) results instead of thrashing
  /// in re-execution or silently corrupting data. After
  /// `storm_calm_windows` consecutive windows below the threshold the AHL
  /// returns to normal judging (re-probing the silicon; if the fault
  /// persists, the storm re-engages one window later).
  bool storm_fallback = false;
  double storm_error_threshold = 0.30;
  int storm_calm_windows = 2;
};

/// The AHL circuit: two judging blocks (Skip-k and Skip-(k+1)), an aging
/// indicator and the selecting MUX. Decides, per input pattern, whether the
/// operation is issued as one cycle or two; consumes the Razor error
/// feedback to detect significant aging and switch judging blocks.
class AdaptiveHoldLogic {
 public:
  explicit AdaptiveHoldLogic(AhlConfig config);

  /// Cycles the arriving pattern is issued with (1 or 2). `judging_operand`
  /// is the multiplicand for column-bypassing, the multiplicator for
  /// row-bypassing (paper Fig. 8).
  int decide_cycles(std::uint64_t judging_operand) const noexcept;

  /// Feeds one operation's Razor outcome back into the aging indicator.
  /// No-op for the non-adaptive (traditional) configuration.
  void record_outcome(bool razor_error);

  /// True once the aging indicator has switched to the second judging block.
  bool using_second_block() const noexcept {
    return config_.adaptive && indicator_.aged();
  }

  /// True while the error-storm fallback is forcing two-cycle issue.
  bool storm_active() const noexcept { return storm_active_; }
  /// Times the fallback engaged / recovered since construction.
  std::uint64_t storm_engagements() const noexcept { return storm_engagements_; }
  std::uint64_t storm_recoveries() const noexcept { return storm_recoveries_; }

  const AhlConfig& config() const noexcept { return config_; }
  const AgingIndicator& indicator() const noexcept { return indicator_; }

 private:
  AhlConfig config_;
  JudgingBlock first_;
  JudgingBlock second_;
  AgingIndicator indicator_;

  // Error-storm fallback state (all inert unless config_.storm_fallback).
  int storm_trip_count_ = 0;  // errors per window that constitute a storm
  int storm_ops_in_window_ = 0;
  int storm_errors_in_window_ = 0;
  int calm_streak_ = 0;
  bool storm_active_ = false;
  std::uint64_t storm_engagements_ = 0;
  std::uint64_t storm_recoveries_ = 0;
};

}  // namespace agingsim
