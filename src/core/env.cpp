#include "src/core/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace agingsim::env {
namespace {

/// One warning per distinct (name, value) pair for the whole process —
/// AGINGSIM_THREADS alone is re-read at every parallel region.
void warn_once(const char* name, std::string_view value, const char* what) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::string key =
      std::string(name) + "=" + std::string(value) + "|" + what;
  std::lock_guard lk(mutex);
  if (!warned.insert(key).second) return;
  std::fprintf(stderr, "%s='%s' %s\n", name,
               std::string(value).c_str(), what);
}

}  // namespace

std::optional<long> parse_long(std::string_view text, int base) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, base);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<unsigned long long> parse_u64(std::string_view text, int base) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  // strtoull silently negates "-1" instead of failing; reject signs here.
  if (buf[0] == '-' || buf[0] == '+') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, base);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

std::optional<long> long_var(const char* name, long min_value,
                             long clamp_max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const auto parsed = parse_long(raw);
  if (!parsed.has_value() || *parsed < min_value) {
    char what[96];
    std::snprintf(what, sizeof what, "ignored (want integer >= %ld)",
                  min_value);
    warn_once(name, raw, what);
    return std::nullopt;
  }
  if (*parsed > clamp_max) {
    char what[96];
    std::snprintf(what, sizeof what, "clamped to the maximum of %ld",
                  clamp_max);
    warn_once(name, raw, what);
    return clamp_max;
  }
  return *parsed;
}

long long_or(const char* name, long fallback, long min_value,
             long clamp_max) {
  return long_var(name, min_value, clamp_max).value_or(fallback);
}

std::optional<std::string> str_var(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

std::optional<std::size_t> choice_var(const char* name,
                                      std::span<const char* const> choices) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const std::string_view value(raw);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (value == choices[i]) return i;
  }
  std::string what = "ignored (want one of:";
  for (const char* c : choices) {
    what += ' ';
    what += c;
  }
  what += ')';
  warn_once(name, raw, what.c_str());
  return std::nullopt;
}

double double_or(const char* name, double fallback, double min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto parsed = parse_double(raw);
  if (!parsed.has_value() || *parsed < min_value) {
    char what[96];
    std::snprintf(what, sizeof what, "ignored (want finite number >= %g)",
                  min_value);
    warn_once(name, raw, what);
    return fallback;
  }
  return *parsed;
}

}  // namespace agingsim::env
