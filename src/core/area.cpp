#include "src/core/area.hpp"

#include <stdexcept>

namespace agingsim {
namespace {

constexpr int kFullAdderTransistors = 28;  // mirror-style FA cell

}  // namespace

std::int64_t ahl_transistor_count(int width) {
  if (width < 2) throw std::invalid_argument("ahl_transistor_count: width");
  // One zero counter: invert each bit (width INVs folded into the tree) and
  // popcount with ~(width-1) full adders.
  const std::int64_t zero_counter =
      static_cast<std::int64_t>(width - 1) * kFullAdderTransistors +
      2LL * width;  // bit inverters
  // Threshold comparator over the ~log2(width)+1-bit count.
  const std::int64_t comparator = 60;
  // Two judging blocks share the zero counter's adder tree in a real
  // implementation only partially (thresholds differ); we count the
  // comparator twice and the tree once plus a small margin.
  const std::int64_t judging = zero_counter + 2 * comparator + 40;
  // Aging indicator: 7-bit error counter + 7-bit window counter + threshold
  // detect, modelled as 14 DFFs plus increment/compare logic.
  const std::int64_t indicator = 14LL * kDffTransistors + 120;
  // Select MUX + gating DFF + OR gate (Fig. 12).
  const std::int64_t glue = 12 + kDffTransistors + 6;
  return judging + indicator + glue;
}

AreaBreakdown fixed_latency_area(const MultiplierNetlist& mult) {
  AreaBreakdown a;
  a.combinational = mult.netlist.transistor_count();
  a.input_registers = 2LL * mult.width * kDffTransistors;
  a.output_registers = 2LL * mult.width * kDffTransistors;
  a.ahl = 0;
  return a;
}

AreaBreakdown variable_latency_area(const MultiplierNetlist& mult) {
  AreaBreakdown a;
  a.combinational = mult.netlist.transistor_count();
  a.input_registers = 2LL * mult.width * kDffTransistors;
  a.output_registers = 2LL * mult.width * kRazorFfTransistors;
  a.ahl = ahl_transistor_count(mult.width);
  return a;
}

}  // namespace agingsim
