#pragma once

#include <cstdint>

namespace agingsim {

/// Configuration of the AHL aging indicator (paper Fig. 12 / Section IV-C:
/// "a simple counter that counts the number of errors over a certain amount
/// of operations and is reset to zero at the end of those operations",
/// threshold "10% in our experiment, that is, 10 errors for each 100
/// operations").
struct AgingIndicatorConfig {
  int window_ops = 100;          ///< operations per observation window
  double error_threshold = 0.10; ///< trip when errors/window reaches this
  /// Aging-induced Vth drift is monotonic, so once the indicator has
  /// observed significant degradation it stays tripped (default). The
  /// non-sticky variant re-evaluates every window; the ablation bench
  /// compares the two.
  bool sticky = true;
};

/// The error-rate counter that selects between the AHL's two judging
/// blocks. Output 0: aging not significant (first block, Skip-k); output 1:
/// significant degradation (second block, Skip-(k+1)).
class AgingIndicator {
 public:
  explicit AgingIndicator(AgingIndicatorConfig config);

  /// Records the outcome of one operation (error = Razor flagged it).
  void record(bool error);

  /// The indicator output: true selects the second judging block.
  bool aged() const noexcept { return aged_; }

  std::uint64_t windows_completed() const noexcept { return windows_; }
  std::uint64_t trips() const noexcept { return trips_; }

  void reset();

 private:
  AgingIndicatorConfig config_;
  int ops_in_window_ = 0;
  int errors_in_window_ = 0;
  int trip_count_;  // errors needed to trip
  bool aged_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t trips_ = 0;
};

}  // namespace agingsim
