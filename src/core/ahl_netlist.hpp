#pragma once

#include <cstdint>

#include "src/netlist/netlist.hpp"

namespace agingsim {

/// Gate-level realization of one AHL judging block (paper Fig. 12): a zero
/// counter (bit inverters feeding a population-count adder network) and a
/// constant threshold comparator. Output bit = 1 iff the number of zeros in
/// the operand is >= skip, i.e. the pattern is a one-cycle pattern.
///
/// The behavioural `JudgingBlock` in core/judging.hpp is the model the
/// system simulator uses; this netlist exists to (a) validate that model
/// against a real circuit (tests do exhaustive/randomized equivalence
/// checking), (b) supply honest area/delay numbers for the AHL overhead,
/// and (c) let the judging logic itself age in aging studies.
struct JudgingNetlist {
  Netlist netlist;
  int width;
  int skip;
};

/// Builds the circuit. `width` in [2, 32]; `skip` in [0, width + 1]
/// (skip = 0 degenerates to constant 1, skip = width + 1 to constant 0,
/// matching the behavioural block's edge semantics).
JudgingNetlist build_judging_block_netlist(int width, int skip);

/// The complete AHL *control path* of Fig. 12 at gate level: both judging
/// blocks, the aging-indicator-driven MUX, and the OR + D-flip-flop gating
/// generator. The aging indicator itself (error counter) stays behavioural
/// — it is fed by the Razor error signal at system scope.
///
/// I/O contract (all indices into the returned netlist):
///  - inputs:  x[0..width) operand, `aging` (indicator output),
///             `q_gating` (the gating flip-flop's Q, to be driven by a
///             SequentialSim register).
///  - outputs: `one_cycle` (selected judging verdict — 1 means the pattern
///             is issued as one cycle), `d_gating` (the D pin of the gating
///             flip-flop; bind with RegisterBinding{d_gating, q_gating_pi,
///             ..., init = kOne}).
///
/// Gating semantics reproduced from the paper: when the selected judging
/// block outputs 0 (two-cycle pattern), the flip-flop latches 0 and the
/// !(gating) signal disables the input registers' clock for exactly one
/// cycle ("only a cycle ... will be disabled because the D flip-flop will
/// latch 1 in the next cycle") — realized as D = one_cycle OR NOT(Q).
struct AhlControlNetlist {
  Netlist netlist;
  int width;
  int aging_input;     ///< PI index of the aging-indicator signal
  int q_gating_input;  ///< PI index the gating register's Q must drive
  // Output order: [0] = one_cycle, [1] = d_gating.
};

AhlControlNetlist build_ahl_control_netlist(int width, int skip,
                                            int second_block_offset = 1);

}  // namespace agingsim
