// RazorBank is header-only; this translation unit exists so the component
// owns a .cpp for future non-inline additions and keeps the build layout
// uniform (one object per core component).
#include "src/core/razor.hpp"
