#include "src/core/judging.hpp"

#include <cmath>
#include <stdexcept>

#include "src/workload/patterns.hpp"

namespace agingsim {

JudgingBlock::JudgingBlock(int width, int skip) : width_(width), skip_(skip) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("JudgingBlock: width must be in [1,64]");
  }
  if (skip < 0 || skip > width + 1) {
    // skip == width + 1 is allowed: it is the "never one cycle" block the
    // adaptive MUX can select after extreme aging.
    throw std::invalid_argument("JudgingBlock: skip must be in [0,width+1]");
  }
}

bool JudgingBlock::one_cycle(std::uint64_t operand) const noexcept {
  return count_zeros(operand, width_) >= skip_;
}

double expected_one_cycle_ratio(int width, int skip) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("expected_one_cycle_ratio: bad width");
  }
  if (skip <= 0) return 1.0;
  if (skip > width) return 0.0;
  // Sum C(width, k) for k in [skip, width] over 2^width, computed with
  // exact 64-bit binomials (safe for width <= 63... C(63,31) < 2^62).
  long double total = 0.0L;
  long double binom = 1.0L;  // C(width, 0)
  for (int k = 0; k <= width; ++k) {
    if (k >= skip) total += binom;
    binom = binom * static_cast<long double>(width - k) /
            static_cast<long double>(k + 1);
  }
  return static_cast<double>(total / std::pow(2.0L, width));
}

}  // namespace agingsim
