#include "src/core/calibration.hpp"

#include <stdexcept>

#include "src/multiplier/multiplier.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

double uncalibrated_cb16_ps() {
  static const double crit = [] {
    const MultiplierNetlist cb16 = build_column_bypass_multiplier(16);
    return run_sta(cb16.netlist, default_tech_library()).critical_path_ps;
  }();
  return crit;
}

}  // namespace

double calibration_scale(double target_cb16_ps) {
  if (!(target_cb16_ps > 0.0)) {
    throw std::invalid_argument("calibration_scale: target must be > 0");
  }
  return target_cb16_ps / uncalibrated_cb16_ps();
}

TechLibrary calibrated_tech_library(double target_cb16_ps) {
  return default_tech_library().scaled(calibration_scale(target_cb16_ps));
}

}  // namespace agingsim
