#include "src/mc/mc_campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/aging/bti.hpp"
#include "src/aging/scenario.hpp"
#include "src/core/quantile.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/serial.hpp"
#include "src/workload/rng.hpp"

namespace agingsim::mc {
namespace {

struct McMetrics {
  const obs::Counter& runs = obs::counter("mc.runs");
  const obs::Counter& trials = obs::counter("mc.trials_completed");
  const obs::Counter& blocks = obs::counter("mc.blocks_completed");
};

const McMetrics& mc_metrics() {
  static const McMetrics m;
  return m;
}

/// Per-trial seed, a pure function of (campaign seed, arch, trial): block
/// size, thread count and restore order can never shift a trial's streams.
std::uint64_t trial_seed(std::uint64_t campaign_seed, std::size_t arch_index,
                         std::uint64_t trial) {
  runtime::Digest d;
  d.mix(std::string_view("mc-trial/v1"))
      .mix(campaign_seed)
      .mix(static_cast<std::uint64_t>(arch_index))
      .mix(trial);
  return d.value();
}

}  // namespace

/// Shared read-only per-architecture state: the netlist, its fresh critical
/// path, the evaluation period, and the deterministic base BTI overlay per
/// evaluation year (the trajectory every die's stochastic aging jitters
/// around).
struct McCampaign::ArchContext {
  MultiplierNetlist mult;
  double fresh_crit_ps = 0.0;
  double period_ps = 0.0;
  std::vector<std::vector<double>> year_scales;  // [year][gate]

  ArchContext(MultiplierArch arch, int width, const TechLibrary& tech,
              const McCampaignConfig& cfg)
      : mult(build_multiplier(arch, width)) {
    fresh_crit_ps = critical_path_ps(mult, tech);
    period_ps = cfg.period_frac * fresh_crit_ps;
    const BtiModel model = BtiModel::calibrated(tech);
    // Stress extraction is seeded from the campaign seed (not per trial):
    // the workload-dependent stress profile is a property of the design,
    // the per-die randomness rides on top of it.
    const AgingScenario scenario(mult.netlist, tech, model,
                                 cfg.seed ^ 0x57e55ULL, 1000);
    year_scales.reserve(cfg.years.size());
    for (const double year : cfg.years) {
      year_scales.push_back(scenario.delay_scales_at(year));
    }
  }
};

McCampaign::~McCampaign() = default;

McCampaign::McCampaign(const TechLibrary& tech, McCampaignConfig config)
    : tech_(&tech), config_(std::move(config)) {
  if (config_.trials < 1) {
    throw std::invalid_argument("McCampaign: trials must be >= 1");
  }
  if (config_.block < 1) {
    throw std::invalid_argument("McCampaign: block must be >= 1");
  }
  if (config_.ops < 1) {
    throw std::invalid_argument("McCampaign: ops must be >= 1");
  }
  if (config_.strata < 1) {
    throw std::invalid_argument("McCampaign: strata must be >= 1");
  }
  if (config_.arches.empty()) {
    throw std::invalid_argument("McCampaign: at least one architecture");
  }
  if (config_.years.empty()) {
    throw std::invalid_argument("McCampaign: at least one evaluation year");
  }
  if (!(config_.period_frac > 0.0)) {
    throw std::invalid_argument("McCampaign: period_frac must be > 0");
  }
  Rng rng(config_.workload_seed);
  patterns_ = uniform_patterns(rng, config_.width, config_.ops);
  arch_contexts_.reserve(config_.arches.size());
  for (const MultiplierArch arch : config_.arches) {
    arch_contexts_.emplace_back(arch, config_.width, *tech_, config_);
  }
}

std::size_t McCampaign::blocks_per_arch() const noexcept {
  const std::size_t trials = static_cast<std::size_t>(config_.trials);
  const std::size_t block = static_cast<std::size_t>(config_.block);
  return (trials + block - 1) / block;
}

double McCampaign::fresh_critical_path_ps(std::size_t i) const {
  return arch_contexts_.at(i).fresh_crit_ps;
}

std::vector<McTrialRecord> McCampaign::compute_trial(
    std::size_t arch_index, std::uint64_t trial) const {
  const ArchContext& arch = arch_contexts_[arch_index];
  Rng rng(trial_seed(config_.seed, arch_index, trial));
  // Stratified die-level normal: trial t samples stratum t mod strata of
  // the standard normal through the inverse CDF, so `strata` trials cover
  // the whole distribution — including the slow tail that dominates the
  // p99.99 band — instead of clustering around the median.
  const std::uint64_t stratum =
      trial % static_cast<std::uint64_t>(config_.strata);
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();
  const double stratified_u =
      (static_cast<double>(stratum) + u) / static_cast<double>(config_.strata);
  const double die_z = quantile::inverse_normal_cdf(stratified_u);

  const std::uint64_t variation_seed = rng.next();
  const std::uint64_t aging_seed = rng.next();
  const std::vector<double> variation = correlated_variation_scales(
      arch.mult.netlist, config_.variation, variation_seed, die_z);

  std::vector<McTrialRecord> out;
  out.reserve(config_.years.size());
  for (std::size_t y = 0; y < config_.years.size(); ++y) {
    // One aging_seed across years: the jitter is the die's device-level
    // trait, so a die that ages fast at year 1 ages fast at year 7 too.
    std::vector<double> scales = stochastic_aging_scales(
        arch.year_scales[y], config_.sigma_aging, aging_seed);
    accumulate_scales(scales, variation);
    const auto trace =
        compute_op_trace(arch.mult, *tech_, patterns_,
                         TraceOptions{.gate_delay_scale = scales,
                                      .kernel = config_.kernel});
    McTrialRecord rec;
    std::uint64_t violations = 0;
    for (const OpTrace& op : trace) {
      rec.max_delay_ps = std::max(rec.max_delay_ps, op.delay_ps);
      if (op.delay_ps > arch.period_ps) ++violations;
    }
    rec.errors_per_10k = static_cast<double>(violations) * 10000.0 /
                         static_cast<double>(trace.size());
    out.push_back(rec);
  }
  return out;
}

std::vector<McTrialRecord> McCampaign::compute_block(std::size_t arch_index,
                                                     std::size_t block) const {
  obs::TraceSpan span("mc.block", block);
  (void)arch_contexts_.at(arch_index);  // bounds-check before the loop
  const std::uint64_t first =
      static_cast<std::uint64_t>(block) *
      static_cast<std::uint64_t>(config_.block);
  const std::uint64_t last =
      std::min(first + static_cast<std::uint64_t>(config_.block),
               static_cast<std::uint64_t>(config_.trials));
  std::vector<McTrialRecord> records;
  records.reserve(static_cast<std::size_t>(last - first) *
                  config_.years.size());
  for (std::uint64_t t = first; t < last; ++t) {
    const auto trial_records = compute_trial(arch_index, t);
    records.insert(records.end(), trial_records.begin(), trial_records.end());
    mc_metrics().trials.add();
  }
  mc_metrics().blocks.add();
  return records;
}

std::uint64_t McCampaign::config_digest() const {
  runtime::Digest d;
  d.mix(std::string_view("McCampaign/v1"));
  d.mix(config_.width)
      .mix(config_.trials)
      .mix(config_.block)
      .mix(static_cast<std::uint64_t>(config_.ops))
      .mix(config_.seed)
      .mix(config_.workload_seed)
      .mix(config_.sigma_aging)
      .mix(config_.strata)
      .mix(config_.period_frac);
  d.mix(config_.variation.sigma_random)
      .mix(config_.variation.sigma_grid)
      .mix(config_.variation.grid_levels)
      .mix(config_.variation.sigma_die);
  d.mix(static_cast<std::uint64_t>(config_.arches.size()));
  for (const MultiplierArch arch : config_.arches) {
    d.mix(static_cast<int>(arch));
  }
  d.mix(static_cast<std::uint64_t>(config_.years.size()));
  for (const double year : config_.years) d.mix(year);
  // Deliberately NOT mixed: kernel (bit-identical kernels, cross-kernel
  // resume is part of the contract) and thread/runner settings.
  return d.value();
}

McResult McCampaign::run(const McRunOptions& options) const {
  obs::TraceSpan run_span("mc.run", num_units());
  mc_metrics().runs.add();
  const std::size_t blocks = blocks_per_arch();
  const std::size_t units = num_units();

  McResult result;
  result.arches.resize(config_.arches.size());
  for (std::size_t a = 0; a < config_.arches.size(); ++a) {
    McArchResult& arch_result = result.arches[a];
    arch_result.arch = config_.arches[a];
    arch_result.fresh_critical_path_ps = arch_contexts_[a].fresh_crit_ps;
    arch_result.period_ps = arch_contexts_[a].period_ps;
  }

  const auto unit_records =
      [&](std::uint64_t unit) -> std::vector<McTrialRecord> {
    return compute_block(static_cast<std::size_t>(unit) / blocks,
                         static_cast<std::size_t>(unit) % blocks);
  };

  if (options.runner == nullptr) {
    const auto per_unit = exec::parallel_for_indexed(units, unit_records);
    for (std::size_t u = 0; u < units; ++u) {
      McArchResult& arch_result = result.arches[u / blocks];
      arch_result.records.insert(arch_result.records.end(),
                                 per_unit[u].begin(), per_unit[u].end());
    }
    return result;
  }

  runtime::RunReport local_report;
  runtime::RunReport& report =
      options.report != nullptr ? *options.report : local_report;
  const auto payloads = options.runner->run(
      units,
      [&](std::uint64_t unit, const runtime::CancelToken&) {
        return encode_mc_block(unit_records(unit));
      },
      &report);
  if (report.interrupted()) {
    throw runtime::RunError(
        runtime::ErrorCategory::kTransient,
        "McCampaign: interrupted before completion (" +
            std::to_string(report.skipped) +
            " units skipped); resume to continue");
  }
  // Aggregate in unit order — the only order that exists in the result —
  // so restored, retried and freshly computed blocks land identically.
  for (std::size_t u = 0; u < units; ++u) {
    McArchResult& arch_result = result.arches[u / blocks];
    if (report.units[u].state == runtime::UnitState::kQuarantined) {
      const std::size_t first = (u % blocks) * static_cast<std::size_t>(
                                                  config_.block);
      const std::size_t last =
          std::min(first + static_cast<std::size_t>(config_.block),
                   static_cast<std::size_t>(config_.trials));
      arch_result.trials_quarantined += last - first;
      continue;
    }
    const auto records = decode_mc_block(payloads[u]);
    arch_result.records.insert(arch_result.records.end(), records.begin(),
                               records.end());
  }
  return result;
}

std::string encode_mc_block(std::span<const McTrialRecord> records) {
  runtime::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const McTrialRecord& r : records) {
    w.f64(r.max_delay_ps).f64(r.errors_per_10k);
  }
  return w.take();
}

std::vector<McTrialRecord> decode_mc_block(const std::string& payload) {
  runtime::ByteReader r(payload);
  const std::uint32_t n = r.u32();
  std::vector<McTrialRecord> records(n);
  for (McTrialRecord& rec : records) {
    rec.max_delay_ps = r.f64();
    rec.errors_per_10k = r.f64();
  }
  r.expect_end();
  return records;
}

}  // namespace agingsim::mc
