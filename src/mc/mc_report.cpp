#include "src/mc/mc_report.hpp"

#include <algorithm>
#include <cstddef>

#include "src/core/quantile.hpp"

namespace agingsim::mc {
namespace {

/// Ascending per-trial values of one metric at one evaluation year.
std::vector<double> metric_at_year(const McArchResult& arch,
                                   std::size_t num_years,
                                   std::size_t year_index,
                                   double McTrialRecord::*metric) {
  std::vector<double> values;
  if (num_years == 0) return values;
  const std::size_t trials = arch.records.size() / num_years;
  values.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    values.push_back(arch.records[t * num_years + year_index].*metric);
  }
  std::sort(values.begin(), values.end());
  return values;
}

QuantileBand band_of(std::vector<double> sorted) {
  QuantileBand band;
  band.p50 = quantile::nearest_rank(sorted, 0.50);
  band.p99 = quantile::nearest_rank(sorted, 0.99);
  band.p99_99 = quantile::nearest_rank(sorted, 0.9999);
  return band;
}

void emit_band(JsonWriter& json, const char* key, const QuantileBand& band) {
  json.key(key).begin_object();
  json.key("p50").value(band.p50);
  json.key("p99").value(band.p99);
  json.key("p99_99").value(band.p99_99);
  json.end_object();
}

}  // namespace

QuantileBand delay_band(const McArchResult& arch, std::size_t num_years,
                        std::size_t year_index) {
  return band_of(metric_at_year(arch, num_years, year_index,
                                &McTrialRecord::max_delay_ps));
}

QuantileBand error_band(const McArchResult& arch, std::size_t num_years,
                        std::size_t year_index) {
  return band_of(metric_at_year(arch, num_years, year_index,
                                &McTrialRecord::errors_per_10k));
}

FailureSurface failure_surface(const McArchResult& arch,
                               std::size_t num_years, std::size_t year_index,
                               double lo_frac, double hi_frac, int points) {
  FailureSurface surface;
  if (points < 1) return surface;
  const auto delays = metric_at_year(arch, num_years, year_index,
                                     &McTrialRecord::max_delay_ps);
  if (delays.empty()) return surface;
  surface.period_ps.reserve(static_cast<std::size_t>(points));
  surface.failure_probability.reserve(static_cast<std::size_t>(points));
  const double lo = lo_frac * delays.front();
  const double hi = hi_frac * delays.back();
  for (int k = 0; k < points; ++k) {
    const double period =
        points == 1 ? lo
                    : lo + (hi - lo) * static_cast<double>(k) /
                               static_cast<double>(points - 1);
    // delays is sorted ascending: the failing dies are the strict-upper
    // tail above the period.
    const auto first_ok = std::upper_bound(delays.begin(), delays.end(),
                                           period);
    const std::size_t failing =
        static_cast<std::size_t>(delays.end() - first_ok);
    surface.period_ps.push_back(period);
    surface.failure_probability.push_back(
        delays.empty() ? 0.0
                       : static_cast<double>(failing) /
                             static_cast<double>(delays.size()));
  }
  return surface;
}

void write_mc_json(JsonWriter& json, const McCampaignConfig& config,
                   const McResult& result, const McReportOptions& options) {
  const std::size_t num_years = config.years.size();
  json.key("mc").begin_object();
  json.key("trials_per_arch").value(config.trials);
  json.key("block").value(config.block);
  json.key("ops_per_trial").value(static_cast<std::uint64_t>(config.ops));
  json.key("seed").value(config.seed);
  json.key("workload_seed").value(config.workload_seed);
  json.key("strata").value(config.strata);
  json.key("period_frac").value(config.period_frac);
  json.key("sigma").begin_object();
  json.key("random").value(config.variation.sigma_random);
  json.key("grid").value(config.variation.sigma_grid);
  json.key("grid_levels").value(config.variation.grid_levels);
  json.key("die").value(config.variation.sigma_die);
  json.key("aging").value(config.sigma_aging);
  json.end_object();
  json.key("years").begin_array();
  for (const double year : config.years) json.value(year);
  json.end_array();

  json.key("arches").begin_array();
  for (const McArchResult& arch : result.arches) {
    json.begin_object();
    json.key("arch").value(arch_name(arch.arch));
    json.key("width").value(config.width);
    json.key("fresh_critical_path_ps").value(arch.fresh_critical_path_ps);
    json.key("period_ps").value(arch.period_ps);
    json.key("trials_completed").value(arch.trials_completed(num_years));
    json.key("trials_quarantined").value(arch.trials_quarantined);

    json.key("bands").begin_array();
    for (std::size_t y = 0; y < num_years; ++y) {
      json.begin_object();
      json.key("years").value(config.years[y]);
      emit_band(json, "max_delay_ps", delay_band(arch, num_years, y));
      emit_band(json, "errors_per_10k", error_band(arch, num_years, y));
      json.end_object();
    }
    json.end_array();

    // The deliverable surface: failure probability after the full aging
    // horizon (the last configured year) vs candidate clock period.
    const FailureSurface surface = failure_surface(
        arch, num_years, num_years - 1, options.surface_lo_frac,
        options.surface_hi_frac, options.surface_points);
    json.key("failure_surface").begin_object();
    json.key("years").value(config.years.back());
    json.key("period_ps").begin_array();
    for (const double p : surface.period_ps) json.value(p);
    json.end_array();
    json.key("failure_probability").begin_array();
    for (const double f : surface.failure_probability) json.value(f);
    json.end_array();
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace agingsim::mc
