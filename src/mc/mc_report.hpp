#pragma once

// Quantile-band and failure-surface reporting over McCampaign results.
// Pure functions of the trial records: the JSON artifact is byte-identical
// for any thread count and any checkpoint kill/resume pattern because the
// records are (docs/MODEL.md "Reliability as a distribution").

#include <vector>

#include "src/mc/mc_campaign.hpp"
#include "src/report/json.hpp"

namespace agingsim::mc {

/// The three reported quantiles of one metric across the completed trials,
/// nearest-rank convention (src/core/quantile.hpp) — always actual trial
/// values, so p50 <= p99 <= p99_99 holds exactly.
struct QuantileBand {
  double p50 = 0.0;
  double p99 = 0.0;
  double p99_99 = 0.0;
};

/// Band of the worst-case die delay at evaluation-year index `year_index`.
QuantileBand delay_band(const McArchResult& arch, std::size_t num_years,
                        std::size_t year_index);

/// Band of the per-die violation rate at `year_index`.
QuantileBand error_band(const McArchResult& arch, std::size_t num_years,
                        std::size_t year_index);

/// Failure probability vs clock period: failure_probability[k] is the
/// fraction of completed dies whose worst-case delay at `year_index`
/// exceeds period_ps[k] — the probability a part clocked at that period
/// misses timing after the configured aging horizon. Monotonically
/// non-increasing in the period by construction.
struct FailureSurface {
  std::vector<double> period_ps;
  std::vector<double> failure_probability;
};

/// Periods span [lo_frac x min, hi_frac x max] of the completed dies'
/// delays at `year_index`, `points` evenly spaced samples — the axis is
/// anchored to the sampled population, not the STA critical path, because
/// random workloads rarely exercise the structural worst path (especially
/// in bypassing multipliers) and an STA-anchored axis would put every die
/// comfortably inside the period. The sweep therefore always captures the
/// full 1 -> 0 transition of the curve. Empty when no trials completed.
FailureSurface failure_surface(const McArchResult& arch,
                               std::size_t num_years, std::size_t year_index,
                               double lo_frac, double hi_frac, int points);

/// Surface shape knobs carried by the JSON emitter.
struct McReportOptions {
  double surface_lo_frac = 0.95;  ///< x the population's min delay
  double surface_hi_frac = 1.05;  ///< x the population's max delay
  int surface_points = 29;
};

/// Emits the campaign's "mc" JSON object (config echo, per-arch quantile
/// bands per year, per-arch failure surface at the last year) into an open
/// JsonWriter object scope.
void write_mc_json(JsonWriter& json, const McCampaignConfig& config,
                   const McResult& result, const McReportOptions& options);

}  // namespace agingsim::mc
