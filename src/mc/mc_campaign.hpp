#pragma once

// Monte-Carlo process-variation + stochastic-aging campaign engine
// (ROADMAP item 2, docs/MODEL.md "Reliability as a distribution").
//
// The deterministic aging pipeline answers "how slow is THE chip after N
// years"; real silicon is a population. Each MC trial samples one die:
//
//   overlay(trial) = correlated_variation_scales(die, grid, random)
//                  x stochastic_aging_scales(BTI scales at year Y)
//
// and scores it by replaying the canonical workload through the gate-level
// simulator (batch word kernel by default), yielding per-trial metrics —
// the settled worst-case delay and the rate of ops violating the
// evaluation period — per evaluation year. Aggregation turns the trial
// population into p50/p99/p99.99 quantile bands and a "failure probability
// vs clock period" surface (the fraction of dies whose aged worst-case
// delay exceeds each candidate period).
//
// Execution contract, inherited from the fault campaign:
//  - trials are grouped into fixed-size seed blocks; each block is one
//    runtime/ work unit whose payload is a bit-exact codec of its trial
//    records, so a campaign checkpointed under a RobustRunner resumes
//    byte-identically after SIGKILL;
//  - every per-trial stream is derived from (campaign seed, arch, trial)
//    alone — never from thread, block or restore order — so results are
//    byte-identical for any AGINGSIM_THREADS and any kill/resume pattern;
//  - the die-level variation component is sampled *stratified*: trial t
//    draws its die normal from stratum t mod strata of the standard
//    normal via the inverse CDF, which covers the distribution tails with
//    far fewer trials than plain sampling (variance reduction).

#include <cstdint>
#include <span>
#include <vector>

#include "src/aging/variation.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim::mc {

struct McCampaignConfig {
  int width = 16;
  /// Architectures sampled side by side (one shared workload); the JSON
  /// surface deliverable uses {AM, CB, RB}.
  std::vector<MultiplierArch> arches = {MultiplierArch::kArray,
                                        MultiplierArch::kColumnBypass,
                                        MultiplierArch::kRowBypass};
  int trials = 1024;       ///< dies sampled per architecture
  int block = 32;          ///< trials per checkpoint unit (seed block)
  std::size_t ops = 256;   ///< workload patterns scored per trial
  std::uint64_t seed = 0x3C0FFEE;
  std::uint64_t workload_seed = 0xA61A5;
  /// Aging evaluation points; the failure surface is reported at the last
  /// entry (the ROADMAP's 7-year deliverable).
  std::vector<double> years = {0.0, 7.0};
  VariationModel variation{};
  double sigma_aging = 0.10;  ///< lognormal jitter on the BTI degradation
  int strata = 16;            ///< die-normal strata (1 = plain sampling)
  /// Evaluation period for the per-trial error-rate metric, as a fraction
  /// of the architecture's fresh nominal critical path. 0.58 is the repo's
  /// demonstration period (agingrun's default): tight enough that the aged
  /// delay distribution actually straddles it, so the error-rate bands
  /// separate fast-aging dies from the median instead of reading all-zero.
  double period_frac = 0.58;
  /// Step kernel for the trial traces. All kernels are bit-identical, so
  /// this is excluded from the config digest (a campaign checkpointed
  /// under one kernel resumes byte-identically under another); kBatch is
  /// the intended fast path.
  SimKernel kernel = SimKernel::kBatch;
};

/// Metrics of one (trial, year) cell. Everything downstream — bands,
/// surfaces, JSON — is a pure function of these records, so they are the
/// checkpoint payload unit.
struct McTrialRecord {
  double max_delay_ps = 0.0;     ///< settled worst-case op delay of this die
  double errors_per_10k = 0.0;   ///< ops violating the evaluation period
  friend bool operator==(const McTrialRecord&,
                         const McTrialRecord&) = default;
};

struct McArchResult {
  MultiplierArch arch = MultiplierArch::kArray;
  double fresh_critical_path_ps = 0.0;
  double period_ps = 0.0;  ///< the evaluation period the error rate is against
  /// Trials whose seed block was quarantined past the retry budget; their
  /// records are absent (chaos/fault injection only — a clean campaign
  /// completes every trial).
  std::uint64_t trials_quarantined = 0;
  /// Completed trials' records in trial order, years-major per trial:
  /// records[t * years.size() + y]. size() / years.size() = completed
  /// trials.
  std::vector<McTrialRecord> records;

  std::uint64_t trials_completed(std::size_t num_years) const noexcept {
    return num_years == 0 ? 0 : records.size() / num_years;
  }
};

struct McResult {
  std::vector<McArchResult> arches;  ///< config order
};

/// Options of one campaign execution; mirrors CampaignRunOptions.
struct McRunOptions {
  /// Crash-safe execution layer; null runs the plain parallel path. Work
  /// units are seed blocks, ordered arch-major: unit u covers arch
  /// u / blocks_per_arch, block u % blocks_per_arch.
  runtime::RobustRunner* runner = nullptr;
  runtime::RunReport* report = nullptr;
};

class McCampaign {
 public:
  /// Builds the shared per-arch state once (netlists, stress scenarios,
  /// deterministic base BTI overlays per year, workload patterns); trials
  /// only read it, so they fan out without synchronization.
  McCampaign(const TechLibrary& tech, McCampaignConfig config);

  McCampaign(const McCampaign&) = delete;
  McCampaign& operator=(const McCampaign&) = delete;
  ~McCampaign();  // out of line: ArchContext is incomplete here

  /// Runs every (arch, trial, year) cell and aggregates in unit order.
  /// Throws runtime::RunError(kTransient) when the runner's stop token cut
  /// the run short (completed blocks are checkpointed — resume, don't
  /// aggregate over holes).
  McResult run(const McRunOptions& options = {}) const;

  /// Records of one seed block (exposed for tests): trials
  /// [block*cfg.block, min((block+1)*cfg.block, trials)) of `arch_index`.
  std::vector<McTrialRecord> compute_block(std::size_t arch_index,
                                           std::size_t block) const;

  /// Fingerprint of everything that determines the work-unit payloads —
  /// the digest a CheckpointStore must be keyed by.
  std::uint64_t config_digest() const;

  std::size_t blocks_per_arch() const noexcept;
  std::size_t num_units() const noexcept {
    return config_.arches.size() * blocks_per_arch();
  }
  const McCampaignConfig& config() const noexcept { return config_; }
  /// Fresh nominal critical path of arch `i` (config order).
  double fresh_critical_path_ps(std::size_t i) const;

 private:
  struct ArchContext;

  std::vector<McTrialRecord> compute_trial(std::size_t arch_index,
                                           std::uint64_t trial) const;

  const TechLibrary* tech_;
  McCampaignConfig config_;
  std::vector<OperandPattern> patterns_;
  std::vector<ArchContext> arch_contexts_;
};

/// Bit-exact codec for one seed block's records (ByteWriter/ByteReader
/// discipline: a decode of an encode is field-wise identical, the property
/// the byte-identical-resume contract rests on). decode throws
/// RunError(kCorrupt) on malformed payloads.
std::string encode_mc_block(std::span<const McTrialRecord> records);
std::vector<McTrialRecord> decode_mc_block(const std::string& payload);

}  // namespace agingsim::mc
