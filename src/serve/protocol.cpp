#include "src/serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/report/json.hpp"
#include "src/serve/chaos.hpp"

namespace agingsim::serve {
namespace {

struct MethodInfo {
  std::string_view name;
  Priority priority;
};

// The protocol surface. Control methods answer inline on the connection
// thread — they must work when the admission queue is full, that is the
// point of having them.
constexpr MethodInfo kMethods[] = {
    {"health", Priority::kControl},   {"status", Priority::kControl},
    {"metrics", Priority::kControl},  {"shutdown", Priority::kControl},
    {"query", Priority::kNormal},     {"work", Priority::kNormal},
    {"campaign", Priority::kBatch},
};

const MethodInfo* find_method(std::string_view method) noexcept {
  for (const MethodInfo& m : kMethods) {
    if (m.name == method) return &m;
  }
  return nullptr;
}

std::uint32_t load_le32(const char* p) noexcept {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

void store_le32(std::uint32_t v, char* p) noexcept {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

}  // namespace

std::string_view priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kControl: return "control";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShedRefill: return "shed_refill";
    case ErrorCode::kShedBatch: return "shed_batch";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
  }
  return "?";
}

bool valid_client_id(std::string_view id) noexcept {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool known_method(std::string_view method) noexcept {
  return find_method(method) != nullptr;
}

Priority method_priority(std::string_view method) noexcept {
  const MethodInfo* info = find_method(method);
  return info != nullptr ? info->priority : Priority::kNormal;
}

std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error_response_out) {
  const auto reject = [&](std::uint64_t id, const std::string& message) {
    if (error_response_out != nullptr) {
      *error_response_out =
          error_response(id, ErrorCode::kBadRequest, message);
    }
    return std::nullopt;
  };

  JsonError jerr;
  const auto doc = parse_json(payload, &jerr);
  if (!doc.has_value()) {
    return reject(0, "JSON parse error at byte " +
                         std::to_string(jerr.offset) + ": " + jerr.message);
  }
  if (!doc->is_object()) return reject(0, "request must be a JSON object");

  const std::uint64_t id = doc->u64_or("id", 0);
  const JsonValue* method = doc->find("method");
  if (method == nullptr || !method->is_string()) {
    return reject(id, "request needs a string 'method'");
  }
  const MethodInfo* info = find_method(method->as_string());
  if (info == nullptr) {
    return reject(id, "unknown method '" + method->as_string() + "'");
  }
  const std::int64_t deadline_ms = doc->i64_or("deadline_ms", 0);
  if (deadline_ms < 0) return reject(id, "deadline_ms must be >= 0");

  Request req;
  req.id = id;
  req.method = method->as_string();
  req.priority = info->priority;
  req.deadline_ms = deadline_ms;
  if (const JsonValue* client = doc->find("client_id")) {
    if (!client->is_string() || !valid_client_id(client->as_string())) {
      return reject(id,
                    "client_id wants 1..64 chars of [A-Za-z0-9._-]");
    }
    req.client_id = client->as_string();
  }
  if (const JsonValue* params = doc->find("params")) {
    if (!params->is_object()) return reject(id, "params must be an object");
    req.params = *params;
  }
  return req;
}

std::string ok_response(std::uint64_t id, std::string_view result_json) {
  std::string out = "{\"id\": ";
  out += std::to_string(id);
  out += ", \"ok\": true, \"result\": ";
  out += result_json;
  out += "}";
  return out;
}

std::string error_response(std::uint64_t id, ErrorCode code,
                           std::string_view message,
                           std::int64_t retry_after_ms) {
  JsonWriter body;
  body.begin_object();
  body.key("code").value(error_code_name(code));
  body.key("message").value(message);
  if (retry_after_ms >= 0) {
    body.key("retry_after_ms").value(retry_after_ms);
  }
  body.end_object();
  std::string out = "{\"id\": ";
  out += std::to_string(id);
  out += ", \"ok\": false, \"error\": ";
  out += body.str();
  out += "}";
  return out;
}

std::string stream_frame(std::uint64_t id, std::uint64_t seq,
                         std::uint64_t units_done, std::uint64_t units_total,
                         std::string_view partial_stats_json) {
  std::string out = "{\"id\": ";
  out += std::to_string(id);
  out += ", \"stream\": ";
  out += std::to_string(seq);
  out += ", \"units_done\": ";
  out += std::to_string(units_done);
  out += ", \"units_total\": ";
  out += std::to_string(units_total);
  out += ", \"partial_stats\": ";
  out += partial_stats_json;
  out += "}";
  return out;
}

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return {};  // caller bug; an empty frame string is never valid
  }
  std::string out;
  out.resize(4 + payload.size());
  store_le32(static_cast<std::uint32_t>(payload.size()), out.data());
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

bool FrameDecoder::feed(std::string_view bytes) {
  if (poisoned_) return false;
  buffer_.append(bytes.data(), bytes.size());
  if (buffer_.size() >= 4 && load_le32(buffer_.data()) > kMaxFrameBytes) {
    poisoned_ = true;
    return false;
  }
  return true;
}

std::optional<std::string> FrameDecoder::next() {
  if (poisoned_ || buffer_.size() < 4) return std::nullopt;
  const std::uint32_t len = load_le32(buffer_.data());
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return std::nullopt;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::string payload = buffer_.substr(4, len);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  return payload;
}

bool write_frame_fd(int fd, std::string_view payload, std::string* error) {
  const std::string frame = encode_frame(payload);
  if (frame.empty() && !payload.empty()) {
    if (error != nullptr) *error = "payload exceeds kMaxFrameBytes";
    return false;
  }
  // Chaos disconnect: write a deterministic prefix (at most half the
  // frame, so it always ends mid-frame), then shut the socket down hard.
  if (chaos_drop_write()) {
    const std::size_t prefix = frame.size() / 2;
    std::size_t sent = 0;
    while (sent < prefix) {
      const ssize_t n =
          ::send(fd, frame.data() + sent, prefix - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_RDWR);
    if (error != nullptr) *error = "chaos: mid-frame disconnect";
    return false;
  }
  // MSG_NOSIGNAL: a reply racing a client disconnect must fail with EPIPE,
  // not kill the process — the connection may outlive its peer while a
  // queued Job still holds it. Falls back to write(2) for non-socket fds.
  std::size_t done = 0;
  bool is_socket = true;
  while (done < frame.size()) {
    const std::size_t chunk = chaos_write_chunk(frame.size() - done);
    const ssize_t n =
        is_socket ? ::send(fd, frame.data() + done, chunk, MSG_NOSIGNAL)
                  : ::write(fd, frame.data() + done, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_socket && errno == ENOTSOCK) {
        is_socket = false;
        continue;
      }
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> read_frame_fd(int fd, std::string* error) {
  const auto read_exact = [&](char* out, std::size_t want,
                              bool eof_ok) -> int {
    std::size_t done = 0;
    while (done < want) {
      const ssize_t n = ::read(fd, out + done, chaos_read_clamp(want - done));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = std::strerror(errno);
        return -1;
      }
      if (n == 0) {
        if (done == 0 && eof_ok) return 0;  // clean EOF at frame boundary
        if (error != nullptr) *error = "EOF mid-frame";
        return -1;
      }
      done += static_cast<std::size_t>(n);
    }
    return 1;
  };

  char prefix[4];
  const int got = read_exact(prefix, 4, /*eof_ok=*/true);
  if (got <= 0) return std::nullopt;
  const std::uint32_t len = load_le32(prefix);
  if (len > kMaxFrameBytes) {
    if (error != nullptr) *error = "frame length over kMaxFrameBytes";
    return std::nullopt;
  }
  std::string payload(len, '\0');
  if (len > 0 && read_exact(payload.data(), len, /*eof_ok=*/false) <= 0) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace agingsim::serve
