#pragma once

// Request execution for agingd (docs/SERVING.md): the part of the daemon
// that knows what queries and campaigns *are*, with no sockets or threads
// in sight — the server (src/serve/server.hpp) owns transport, admission
// and scheduling and calls into here. Split this way the whole method
// surface is testable in-process.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/netlist/techlib.hpp"
#include "src/runtime/robust_runner.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/protocol.hpp"

namespace agingsim::serve {

/// Hard parameter ceilings. A serving daemon cannot trust request sizes:
/// an ops count of 10^9 or a 10^6-trial campaign would occupy a worker for
/// hours, which is indistinguishable from an outage for everyone queued
/// behind it. Out-of-range params are rejected as bad_request.
struct ServiceLimits {
  std::size_t max_ops = 200000;
  int max_trials = 4096;
  std::int64_t max_spin_us = 10'000'000;
  double max_years = 50.0;
};

struct ServiceConfig {
  ServiceLimits limits{};
  /// Campaign checkpoint root; one subdirectory per config digest. Empty
  /// disables checkpointing (campaigns lose crash-safety, nothing else).
  std::string checkpoint_root;
  /// RobustRunner settings for campaign requests. `stop` and `checkpoints`
  /// are filled per request; `pool` stays null (the request already owns a
  /// worker thread, campaigns parallelize trials on a one-shot pool).
  runtime::RunnerConfig runner{};
};

/// Outcome of one handled request, transport-agnostic.
struct HandlerResult {
  bool ok = false;
  /// When ok: a complete JSON value for the response envelope's "result".
  std::string result_json;
  /// When !ok: the error to report. kCancelled is resolved by the server
  /// into timeout-vs-drain based on which token fired.
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

class Service {
 public:
  Service(ServiceConfig config, AgedStateCache* cache);

  /// Delivers one streaming progress frame payload (a complete JSON
  /// document; see protocol.hpp stream_frame) to the client. Returns
  /// false when the client is gone — emission stops but the work runs to
  /// completion, because every finished unit is checkpointed and the
  /// client re-attaches with its resume cursor.
  using StreamEmitter = std::function<bool(const std::string& payload)>;

  /// Executes one queued (non-control) request. `cancel` is the request's
  /// cancellation token: armed by the server's deadline watchdog and by
  /// drain. `emit` (optional) enables streaming for campaigns that ask
  /// for it. Never throws — failures come back as HandlerResult errors.
  HandlerResult handle(const Request& request,
                       const runtime::CancelToken& cancel,
                       const StreamEmitter& emit = {}) noexcept;

  /// Cache key of a query request, or nullopt when the params are invalid
  /// (validation then happens in handle()). The admission path uses this
  /// plus AgedStateCache::contains to classify a query as a cache refill.
  std::optional<std::uint64_t> query_cache_key(const JsonValue& params) const;

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  HandlerResult handle_query(const JsonValue& params,
                             const runtime::CancelToken& cancel);
  HandlerResult handle_campaign(const Request& request,
                                const runtime::CancelToken& cancel,
                                const StreamEmitter& emit);
  HandlerResult handle_work(const JsonValue& params,
                            const runtime::CancelToken& cancel);

  ServiceConfig config_;
  AgedStateCache* cache_;
  const TechLibrary& tech_;
};

}  // namespace agingsim::serve
