#pragma once

// Minimal strict JSON parser for the serving protocol (docs/SERVING.md).
// The repo has had a JsonWriter since PR 1; the daemon is the first
// consumer of *incoming* JSON, and a serving daemon must treat every frame
// as hostile: the parser enforces UTF-8-agnostic byte handling, a nesting
// depth limit, strict number syntax, and complete-input consumption, and
// reports failures as a position + message instead of throwing from the
// socket thread. Numbers keep their raw token alongside the double so
// 64-bit ids and seeds round-trip exactly (a double only holds 53 bits).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace agingsim::serve {

class JsonValue;

/// Object members keep insertion order (useful for deterministic echo) but
/// lookups are by linear scan — protocol objects are small.
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_double() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const JsonArray& as_array() const noexcept { return array_; }
  const JsonMembers& as_object() const noexcept { return members_; }
  /// Raw number token as it appeared on the wire ("-3", "1e9", ...).
  const std::string& number_token() const noexcept { return string_; }

  /// Exact integer views of a number: nullopt when the token has a
  /// fraction/exponent or does not fit the target type.
  std::optional<std::int64_t> as_i64() const;
  std::optional<std::uint64_t> as_u64() const;

  /// Member lookup; nullptr when not an object or the key is absent.
  const JsonValue* find(std::string_view key) const;

  /// Typed member accessors with defaults — the shape request handlers
  /// want: `params.u64_or("seed", 0xFA17)`. A present-but-wrong-type
  /// member counts as absent; validate separately where that matters.
  double num_or(std::string_view key, double fallback) const;
  std::int64_t i64_or(std::string_view key, std::int64_t fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string str_or(std::string_view key, std::string_view fallback) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v, std::string token);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(JsonArray v);
  static JsonValue make_object(JsonMembers v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< string value, or raw number token
  JsonArray array_;
  JsonMembers members_;
};

/// Parse failure: byte offset into the input plus a human-readable reason.
struct JsonError {
  std::size_t offset = 0;
  std::string message;
};

/// Strict parse of one complete JSON document. Rejects trailing bytes,
/// unterminated containers, bad escapes, leading zeros, and nesting deeper
/// than `max_depth`. On failure returns nullopt and fills `error` when
/// given.
std::optional<JsonValue> parse_json(std::string_view text,
                                    JsonError* error = nullptr,
                                    int max_depth = 64);

}  // namespace agingsim::serve
