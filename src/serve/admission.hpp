#pragma once

// Admission control and graceful degradation for agingd (docs/SERVING.md).
//
// The overload contract: a bounded queue with *explicit rejection* instead
// of unbounded buffering. Offered load past capacity is turned away at the
// door with an `overloaded` error and a retry-after hint, so memory stays
// bounded and the latency of accepted requests stays bounded too — the
// system-level analogue of the paper's adaptive hold logic, which sheds
// precision (two-cycle issue) instead of failing when paths age past the
// clock period.
//
// Degradation tiers, derived from instantaneous queue occupancy:
//
//   tier 0 (occupancy < shed_refill_frac): everything admitted;
//   tier 1 (>= shed_refill_frac): queries that would *refill* the
//     aged-state cache (a miss costs an expensive aging recompute) are
//     shed; cache hits still flow — protect the cheap common case;
//   tier 2 (>= shed_batch_frac): batch campaign work is rejected too;
//   any tier, queue full: every queueable request is rejected.
//
// Control-plane requests never enter the queue at all (see protocol.hpp),
// so health checks answer even at tier 2 with a full queue.
//
// Within the queue, normal requests dequeue before batch requests — a
// long campaign must never head-of-line-block interactive queries.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "src/serve/protocol.hpp"

namespace agingsim::serve {

struct AdmissionConfig {
  std::size_t capacity = 64;      ///< queued (not yet running) requests
  double shed_refill_frac = 0.5;  ///< tier 1 threshold (occupancy fraction)
  double shed_batch_frac = 0.8;   ///< tier 2 threshold
  /// Retry-after hint scale: hint = ceil(occupancy * avg_service_ms),
  /// clamped to [min_hint, max_hint]. avg_service_ms is fed by the workers
  /// (EWMA), so the hint tracks the actual drain rate.
  std::int64_t retry_after_min_ms = 10;
  std::int64_t retry_after_max_ms = 2000;
};

/// Admission verdict for one request.
struct AdmissionDecision {
  bool admitted = false;
  ErrorCode reason = ErrorCode::kOverloaded;  ///< valid when !admitted
  std::int64_t retry_after_ms = 0;            ///< valid when !admitted
};

/// Pure admission policy: given the queue state, decide. Split from the
/// queue so the tier ladder is unit-testable without threads.
AdmissionDecision admit(const AdmissionConfig& config, Priority priority,
                        bool needs_cache_refill, std::size_t depth,
                        double avg_service_ms);

/// Degradation tier for a given occupancy (0, 1 or 2) — for status
/// reporting and tests.
int degradation_tier(const AdmissionConfig& config, std::size_t depth);

/// The bounded, priority-aware queue itself. T is the job type (the
/// server's ticket struct); the queue owns admitted jobs until pop.
/// Thread-safe.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config) : config_(config) {}

  const AdmissionConfig& config() const noexcept { return config_; }

  /// Applies the admission policy and, when admitted, enqueues. A closed
  /// (draining) queue rejects everything with kDraining.
  AdmissionDecision try_push(T job, Priority priority,
                             bool needs_cache_refill) {
    std::unique_lock lk(mutex_);
    if (closed_) {
      return AdmissionDecision{.admitted = false,
                               .reason = ErrorCode::kDraining,
                               .retry_after_ms = 0};
    }
    const AdmissionDecision decision =
        admit(config_, priority, needs_cache_refill, depth_locked(),
              avg_service_ms_);
    if (!decision.admitted) return decision;
    if (priority == Priority::kBatch) {
      batch_.push_back(std::move(job));
    } else {
      normal_.push_back(std::move(job));
    }
    lk.unlock();
    cv_.notify_one();
    return decision;
  }

  /// Blocks for the next job (normal before batch). Returns nullopt only
  /// after close() once the queue is empty — the worker shutdown signal.
  std::optional<T> pop() {
    std::unique_lock lk(mutex_);
    cv_.wait(lk, [&] { return closed_ || depth_locked() > 0; });
    if (depth_locked() == 0) return std::nullopt;
    std::deque<T>& q = normal_.empty() ? batch_ : normal_;
    T job = std::move(q.front());
    q.pop_front();
    return job;
  }

  /// Stops intake (push rejects with kDraining) and wakes blocked workers
  /// once the backlog is gone.
  void close() {
    {
      std::lock_guard lk(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mutex_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard lk(mutex_);
    return depth_locked();
  }

  int tier() const {
    std::lock_guard lk(mutex_);
    return degradation_tier(config_, depth_locked());
  }

  /// Workers report each completed request's service time; an EWMA feeds
  /// the retry-after hint.
  void record_service_ms(double ms) {
    std::lock_guard lk(mutex_);
    constexpr double kAlpha = 0.2;
    avg_service_ms_ = avg_service_ms_ <= 0.0
                          ? ms
                          : (1.0 - kAlpha) * avg_service_ms_ + kAlpha * ms;
  }

  double avg_service_ms() const {
    std::lock_guard lk(mutex_);
    return avg_service_ms_;
  }

 private:
  std::size_t depth_locked() const { return normal_.size() + batch_.size(); }

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> normal_;
  std::deque<T> batch_;
  bool closed_ = false;
  double avg_service_ms_ = 0.0;
};

}  // namespace agingsim::serve
