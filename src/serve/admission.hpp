#pragma once

// Admission control and graceful degradation for agingd (docs/SERVING.md).
//
// The overload contract: a bounded queue with *explicit rejection* instead
// of unbounded buffering. Offered load past capacity is turned away at the
// door with an `overloaded` error and a retry-after hint, so memory stays
// bounded and the latency of accepted requests stays bounded too — the
// system-level analogue of the paper's adaptive hold logic, which sheds
// precision (two-cycle issue) instead of failing when paths age past the
// clock period.
//
// Degradation tiers, derived from instantaneous queue occupancy:
//
//   tier 0 (occupancy < shed_refill_frac): everything admitted;
//   tier 1 (>= shed_refill_frac): queries that would *refill* the
//     aged-state cache (a miss costs an expensive aging recompute) are
//     shed; cache hits still flow — protect the cheap common case;
//   tier 2 (>= shed_batch_frac): batch campaign work is rejected too;
//   any tier, queue full: every queueable request is rejected.
//
// Control-plane requests never enter the queue at all (see protocol.hpp),
// so health checks answer even at tier 2 with a full queue.
//
// Fairness (two mechanisms, both per client identity — the request's
// `client_id` or the connection's synthetic identity):
//
//   * Token-bucket quotas at the door: each client accrues
//     `quota_rate_per_s` tokens per second up to `quota_burst`; a push
//     with an empty bucket is rejected with `quota_exceeded` and a
//     retry-after hint covering whichever is later: the backlog draining
//     or the next token accruing. Rate 0 (the default) disables quotas.
//   * Deficit-round-robin at the exit: within each lane, queued clients
//     are served round-robin with `drr_quantum` requests per turn, so a
//     client with 60 queued requests and a client with 1 alternate
//     instead of the flood going first. Normal still drains entirely
//     before batch — a campaign must never head-of-line-block queries.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/serve/protocol.hpp"

namespace agingsim::serve {

struct FairnessConfig {
  /// Tokens per second per client; 0 disables quotas entirely.
  double quota_rate_per_s = 0.0;
  /// Bucket capacity: the largest burst one client can land at once.
  double quota_burst = 32.0;
  /// Requests one client may dequeue per round-robin turn.
  std::uint32_t drr_quantum = 1;
  /// Soft cap on remembered client identities; idle empty clients are
  /// evicted (least recently seen first) past this point, so a scanner
  /// cycling fresh client_ids cannot grow the map without bound.
  std::size_t max_clients = 256;
};

struct AdmissionConfig {
  std::size_t capacity = 64;      ///< queued (not yet running) requests
  double shed_refill_frac = 0.5;  ///< tier 1 threshold (occupancy fraction)
  double shed_batch_frac = 0.8;   ///< tier 2 threshold
  /// Retry-after hint scale: hint = ceil(occupancy * avg_service_ms),
  /// clamped to [min_hint, max_hint]. avg_service_ms is fed by the workers
  /// (EWMA), so the hint tracks the actual drain rate.
  std::int64_t retry_after_min_ms = 10;
  std::int64_t retry_after_max_ms = 2000;
  FairnessConfig fairness;
};

/// Admission verdict for one request.
struct AdmissionDecision {
  bool admitted = false;
  ErrorCode reason = ErrorCode::kOverloaded;  ///< valid when !admitted
  std::int64_t retry_after_ms = 0;            ///< valid when !admitted
};

/// Pure admission policy: given the queue state, decide. Split from the
/// queue so the tier ladder is unit-testable without threads. Quotas are
/// not part of this function — they depend on per-client bucket state,
/// which lives in AdmissionQueue.
AdmissionDecision admit(const AdmissionConfig& config, Priority priority,
                        bool needs_cache_refill, std::size_t depth,
                        double avg_service_ms);

/// Degradation tier for a given occupancy (0, 1 or 2) — for status
/// reporting and tests.
int degradation_tier(const AdmissionConfig& config, std::size_t depth);

/// Per-client view for `status` reporting and the fairness soak.
struct ClientSnapshot {
  std::string id;
  double tokens = 0.0;        ///< current bucket level (meaningless if
                              ///< quotas are disabled)
  std::size_t queued = 0;     ///< jobs currently waiting in either lane
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_quota = 0;
};

/// The bounded, priority-aware, per-client-fair queue. T is the job type
/// (the server's ticket struct); the queue owns admitted jobs until pop.
/// Thread-safe. Time is injected into try_push so token-bucket behaviour
/// is testable without sleeping.
template <typename T>
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionQueue(AdmissionConfig config) : config_(config) {}

  const AdmissionConfig& config() const noexcept { return config_; }

  /// Applies quota + admission policy and, when admitted, enqueues under
  /// `client_id`. A closed (draining) queue rejects everything with
  /// kDraining.
  AdmissionDecision try_push(T job, Priority priority, bool needs_cache_refill,
                             std::string_view client_id,
                             Clock::time_point now = Clock::now()) {
    std::unique_lock lk(mutex_);
    if (closed_) {
      return AdmissionDecision{.admitted = false,
                               .reason = ErrorCode::kDraining,
                               .retry_after_ms = 0};
    }
    ClientState& client = client_locked(client_id, now);
    refill_locked(client, now);
    if (config_.fairness.quota_rate_per_s > 0.0 &&
        priority != Priority::kControl && client.tokens < 1.0) {
      ++client.rejected_quota;
      return AdmissionDecision{.admitted = false,
                               .reason = ErrorCode::kQuotaExceeded,
                               .retry_after_ms = quota_hint_locked(client)};
    }
    const AdmissionDecision decision =
        admit(config_, priority, needs_cache_refill, depth_locked(),
              avg_service_ms_);
    if (!decision.admitted) return decision;
    if (config_.fairness.quota_rate_per_s > 0.0 &&
        priority != Priority::kControl) {
      client.tokens -= 1.0;
    }
    ++client.accepted;
    Lane& lane = priority == Priority::kBatch ? batch_ : normal_;
    std::deque<T>& q =
        priority == Priority::kBatch ? client.batch : client.normal;
    if (q.empty()) lane.rotation.push_back(client.id);
    q.push_back(std::move(job));
    ++lane.size;
    lk.unlock();
    cv_.notify_one();
    return decision;
  }

  /// Back-compat shim: anonymous client, wall-clock now.
  AdmissionDecision try_push(T job, Priority priority,
                             bool needs_cache_refill) {
    return try_push(std::move(job), priority, needs_cache_refill, "anon");
  }

  /// Blocks for the next job (normal lane fully before batch; deficit
  /// round-robin across clients within a lane). Returns nullopt only after
  /// close() once the queue is empty — the worker shutdown signal.
  std::optional<T> pop() {
    std::unique_lock lk(mutex_);
    cv_.wait(lk, [&] { return closed_ || depth_locked() > 0; });
    if (depth_locked() == 0) return std::nullopt;
    Lane& lane = normal_.size > 0 ? normal_ : batch_;
    const bool from_batch = normal_.size == 0;
    // The rotation only holds clients with a non-empty queue in this lane,
    // so the front is always serviceable.
    const std::string id = lane.rotation.front();
    ClientState& client = clients_.at(id);
    std::deque<T>& q = from_batch ? client.batch : client.normal;
    std::uint32_t& deficit =
        from_batch ? client.deficit_batch : client.deficit_normal;
    if (deficit == 0) deficit = std::max<std::uint32_t>(
        config_.fairness.drr_quantum, 1);
    T job = std::move(q.front());
    q.pop_front();
    --lane.size;
    --deficit;
    if (q.empty()) {
      lane.rotation.pop_front();
      deficit = 0;
    } else if (deficit == 0) {
      lane.rotation.pop_front();
      lane.rotation.push_back(id);
    }
    return job;
  }

  /// Workers report a finished request so per-client completion counts in
  /// `status` stay meaningful for the fairness soak.
  void record_done(std::string_view client_id) {
    std::lock_guard lk(mutex_);
    const auto it = clients_.find(std::string(client_id));
    if (it != clients_.end()) ++it->second.completed;
  }

  /// Stops intake (push rejects with kDraining) and wakes blocked workers
  /// once the backlog is gone.
  void close() {
    {
      std::lock_guard lk(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mutex_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard lk(mutex_);
    return depth_locked();
  }

  int tier() const {
    std::lock_guard lk(mutex_);
    return degradation_tier(config_, depth_locked());
  }

  /// Workers report each completed request's service time; an EWMA feeds
  /// the retry-after hint.
  void record_service_ms(double ms) {
    std::lock_guard lk(mutex_);
    constexpr double kAlpha = 0.2;
    avg_service_ms_ = avg_service_ms_ <= 0.0
                          ? ms
                          : (1.0 - kAlpha) * avg_service_ms_ + kAlpha * ms;
  }

  double avg_service_ms() const {
    std::lock_guard lk(mutex_);
    return avg_service_ms_;
  }

  /// Per-client stats sorted by id (deterministic for status JSON).
  std::vector<ClientSnapshot> clients() const {
    std::lock_guard lk(mutex_);
    std::vector<ClientSnapshot> out;
    out.reserve(clients_.size());
    for (const auto& [id, c] : clients_) {
      out.push_back(ClientSnapshot{
          .id = id,
          .tokens = c.tokens,
          .queued = c.normal.size() + c.batch.size(),
          .accepted = c.accepted,
          .completed = c.completed,
          .rejected_quota = c.rejected_quota,
      });
    }
    std::sort(out.begin(), out.end(),
              [](const ClientSnapshot& a, const ClientSnapshot& b) {
                return a.id < b.id;
              });
    return out;
  }

 private:
  struct ClientState {
    std::string id;
    std::deque<T> normal;
    std::deque<T> batch;
    double tokens = 0.0;
    Clock::time_point last_refill{};
    Clock::time_point last_seen{};
    std::uint32_t deficit_normal = 0;
    std::uint32_t deficit_batch = 0;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected_quota = 0;
  };

  /// One priority lane: total queued jobs plus the round-robin rotation of
  /// client ids that currently have jobs queued in it.
  struct Lane {
    std::size_t size = 0;
    std::deque<std::string> rotation;
  };

  std::size_t depth_locked() const { return normal_.size + batch_.size; }

  ClientState& client_locked(std::string_view id, Clock::time_point now) {
    auto it = clients_.find(std::string(id));
    if (it == clients_.end()) {
      evict_idle_locked();
      ClientState fresh;
      fresh.id = std::string(id);
      fresh.tokens = config_.fairness.quota_burst;  // start with a full tank
      fresh.last_refill = now;
      it = clients_.emplace(fresh.id, std::move(fresh)).first;
    }
    it->second.last_seen = now;
    return it->second;
  }

  void refill_locked(ClientState& client, Clock::time_point now) {
    const double rate = config_.fairness.quota_rate_per_s;
    if (rate <= 0.0) return;
    if (now <= client.last_refill) return;
    const double elapsed_s =
        std::chrono::duration<double>(now - client.last_refill).count();
    client.tokens = std::min(config_.fairness.quota_burst,
                             client.tokens + elapsed_s * rate);
    client.last_refill = now;
  }

  /// Retry hint for a quota rejection: whichever is later — the backlog
  /// draining (EWMA hint) or the client's next token accruing.
  std::int64_t quota_hint_locked(const ClientState& client) const {
    const double rate = config_.fairness.quota_rate_per_s;
    const double token_ms =
        rate > 0.0 ? std::max(0.0, (1.0 - client.tokens) / rate * 1000.0)
                   : 0.0;
    const double drain_ms = static_cast<double>(depth_locked()) *
                            std::max(avg_service_ms_, 0.0);
    const auto ms = static_cast<std::int64_t>(
        std::ceil(std::max(token_ms, drain_ms)));
    return std::clamp(ms, config_.retry_after_min_ms,
                      config_.retry_after_max_ms);
  }

  /// Drops the least-recently-seen client with nothing queued once the map
  /// reaches max_clients. Clients with queued jobs are never evicted (at
  /// most `capacity` of them can exist), so the map stays bounded by
  /// max_clients + capacity even under identity churn.
  void evict_idle_locked() {
    if (clients_.size() < config_.fairness.max_clients) return;
    auto victim = clients_.end();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
      const ClientState& c = it->second;
      if (!c.normal.empty() || !c.batch.empty()) continue;
      if (victim == clients_.end() ||
          c.last_seen < victim->second.last_seen) {
        victim = it;
      }
    }
    if (victim != clients_.end()) clients_.erase(victim);
  }

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Lane normal_;
  Lane batch_;
  std::unordered_map<std::string, ClientState> clients_;
  bool closed_ = false;
  double avg_service_ms_ = 0.0;
};

}  // namespace agingsim::serve
