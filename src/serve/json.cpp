#include "src/serve/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <utility>

namespace agingsim::serve {
namespace {

bool integral_token(std::string_view token) {
  for (const char c : token) {
    if (c == '.' || c == 'e' || c == 'E') return false;
  }
  return !token.empty();
}

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  std::optional<JsonValue> run(JsonError* error) {
    skip_ws();
    JsonValue value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = {pos_, message_};
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = {pos_, "trailing bytes after document"};
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out = JsonValue::make_null();
        return true;
      case 't':
        if (!literal("true")) return fail("bad literal");
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out = JsonValue::make_bool(false);
        return true;
      case '"':
        return parse_string_value(out);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point; surrogate pairs are passed through
          // as two 3-byte sequences (protocol strings are method names and
          // paths, not prose — exact surrogate recombination is not worth
          // the complexity here).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return fail("expected value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return fail("number out of range");
    }
    out = JsonValue::make_number(value, std::move(token));
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    JsonArray items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
    out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonMembers members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected member name");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after member name");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
    out = JsonValue::make_object(std::move(members));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
  std::string message_;
};

}  // namespace

std::optional<std::int64_t> JsonValue::as_i64() const {
  if (kind_ != Kind::kNumber || !integral_token(string_)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(string_.c_str(), &end, 10);
  if (end != string_.c_str() + string_.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber || !integral_token(string_)) return std::nullopt;
  if (string_.front() == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(string_.c_str(), &end, 10);
  if (end != string_.c_str() + string_.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::int64_t JsonValue::i64_or(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  return v->as_i64().value_or(fallback);
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  return v->as_u64().value_or(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string JsonValue::str_or(std::string_view key,
                              std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::string(fallback);
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v, std::string token) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  j.string_ = std::move(token);
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(JsonArray v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_object(JsonMembers v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(v);
  return j;
}

std::optional<JsonValue> parse_json(std::string_view text, JsonError* error,
                                    int max_depth) {
  return Parser(text, max_depth).run(error);
}

}  // namespace agingsim::serve
