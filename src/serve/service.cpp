#include "src/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "src/aging/bti.hpp"
#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/core/vl_multiplier.hpp"
#include "src/fault/campaign.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/report/json.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/serial.hpp"
#include "src/workload/patterns.hpp"
#include "src/workload/rng.hpp"

namespace agingsim::serve {
namespace {

// The same calibration anchor as bench::tech(): CB16 critical path 1.88 ns.
const TechLibrary& service_tech() {
  static const TechLibrary t = calibrated_tech_library(1880.0);
  return t;
}

// Stress-extraction parameters of every served aging corner. Fixed rather
// than client-controlled: they are part of the cache key, and letting each
// client pick its own would fragment the cache for no modeling benefit.
constexpr std::uint64_t kStressSeed = 0x26F1;
constexpr std::size_t kStressPatterns = 1000;
constexpr std::uint64_t kWorkloadSeed = 0xA61A5;

struct ServiceMetrics {
  const obs::Counter& queries = obs::counter("serve.queries");
  const obs::Counter& campaigns = obs::counter("serve.campaigns");
  const obs::Counter& work = obs::counter("serve.work_requests");
  const obs::Counter& corner_refills = obs::counter("serve.corner_refills");
};

const ServiceMetrics& service_metrics() {
  static const ServiceMetrics m;
  return m;
}

std::optional<MultiplierArch> parse_arch(const std::string& name) {
  if (name == "am") return MultiplierArch::kArray;
  if (name == "cb") return MultiplierArch::kColumnBypass;
  if (name == "rb") return MultiplierArch::kRowBypass;
  return std::nullopt;
}

std::optional<FaultKind> parse_fault_kind(const std::string& name) {
  if (name == "stuck0") return FaultKind::kStuckAt0;
  if (name == "stuck1") return FaultKind::kStuckAt1;
  if (name == "transient") return FaultKind::kTransient;
  if (name == "delay") return FaultKind::kDelayOutlier;
  return std::nullopt;
}

HandlerResult ok_result(const std::string& result_json) {
  HandlerResult out;
  out.ok = true;
  out.result_json = result_json;
  return out;
}

HandlerResult bad_request(std::string message) {
  return HandlerResult{.ok = false,
                       .result_json = {},
                       .code = ErrorCode::kBadRequest,
                       .message = std::move(message)};
}

HandlerResult cancelled_result(const runtime::CancelToken& cancel,
                               std::string where) {
  (void)cancel;
  return HandlerResult{.ok = false,
                       .result_json = {},
                       .code = ErrorCode::kCancelled,
                       .message = "cancelled during " + std::move(where)};
}

/// Validated query parameters; the digest must cover everything that
/// determines the cached corner's bytes.
struct QueryParams {
  MultiplierArch arch = MultiplierArch::kColumnBypass;
  std::string arch_name = "cb";
  int width = 16;
  double years = 0.0;
  std::size_t ops = 2000;
  double period_frac = 0.58;
  int skip = 7;
  bool adaptive = true;
  std::uint64_t workload_seed = kWorkloadSeed;
};

std::optional<QueryParams> parse_query_params(const ServiceLimits& limits,
                                              const JsonValue& params,
                                              std::string* error) {
  const auto reject = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  QueryParams q;
  q.arch_name = params.str_or("arch", "cb");
  const auto arch = parse_arch(q.arch_name);
  if (!arch.has_value()) return reject("arch must be am|cb|rb");
  q.arch = *arch;
  const std::int64_t width = params.i64_or("width", 16);
  if (width < 2 || width > 32) return reject("width must be in [2, 32]");
  q.width = static_cast<int>(width);
  q.years = params.num_or("years", 0.0);
  if (!(q.years >= 0.0) || q.years > limits.max_years) {
    return reject("years must be in [0, " + std::to_string(limits.max_years) +
                  "]");
  }
  const std::int64_t ops = params.i64_or("ops", 2000);
  if (ops < 1 || static_cast<std::size_t>(ops) > limits.max_ops) {
    return reject("ops must be in [1, " + std::to_string(limits.max_ops) +
                  "]");
  }
  q.ops = static_cast<std::size_t>(ops);
  q.period_frac = params.num_or("period_frac", 0.58);
  if (!(q.period_frac > 0.0) || q.period_frac > 4.0) {
    return reject("period_frac must be in (0, 4]");
  }
  const std::int64_t skip = params.i64_or("skip", 7);
  if (skip < 1 || skip >= width) return reject("skip must be in [1, width)");
  q.skip = static_cast<int>(skip);
  q.adaptive = params.bool_or("adaptive", true);
  q.workload_seed = params.u64_or("seed", kWorkloadSeed);
  return q;
}

std::uint64_t query_corner_digest(const QueryParams& q) {
  runtime::Digest digest;
  digest.mix(std::string_view("serve-query-corner/v1"))
      .mix(std::string_view(q.arch_name))
      .mix(q.width)
      .mix(q.years)
      .mix(static_cast<std::uint64_t>(q.ops))
      .mix(q.workload_seed)
      .mix(kStressSeed)
      .mix(static_cast<std::uint64_t>(kStressPatterns));
  return digest.value();
}

void emit_run_stats(JsonWriter& json, const RunStats& s) {
  json.key("period_ps").value(s.period_ps);
  json.key("ops").value(s.ops);
  json.key("one_cycle_ratio").value(s.one_cycle_ratio);
  json.key("errors").value(s.errors);
  json.key("errors_per_10k_ops").value(s.errors_per_10k_ops);
  json.key("avg_cycles").value(s.avg_cycles);
  json.key("avg_latency_ps").value(s.avg_latency_ps);
  json.key("avg_power_mw").value(s.avg_power_mw);
  json.key("edp_mw_ns2").value(s.edp_mw_ns2);
}

void emit_campaign_stats(JsonWriter& json, const FaultCampaignStats& s) {
  json.key("trials").value(s.trials);
  json.key("trials_quarantined").value(s.trials_quarantined);
  json.key("ops").value(s.ops);
  json.key("faults_injected").value(s.faults_injected);
  json.key("detected_violations").value(s.detected_violations);
  json.key("escaped_violations").value(s.escaped_violations);
  json.key("uncovered_violations").value(s.uncovered_violations);
  json.key("detection_coverage").value(s.detection_coverage);
  json.key("sdc_ops").value(s.sdc_ops);
  json.key("sdc_per_10k_ops").value(s.sdc_per_10k_ops);
  json.key("masked_faults").value(s.masked_faults);
  json.key("trials_with_sdc").value(s.trials_with_sdc);
  json.key("storm_engagements").value(s.storm_engagements);
  json.key("storm_recoveries").value(s.storm_recoveries);
  json.key("avg_cycles_baseline").value(s.avg_cycles_baseline);
  json.key("avg_cycles_faulty").value(s.avg_cycles_faulty);
  json.key("throughput_degradation").value(s.throughput_degradation);
  json.key("baseline_errors_per_10k_ops")
      .value(s.baseline_errors_per_10k_ops);
}

/// Two concurrent campaigns with identical parameters map to the same
/// digest-keyed checkpoint directory; letting both write it at once could
/// rename a torn tmp file into place as a valid-looking .ckpt. Serializing
/// per digest also means the second request rides the first one's
/// checkpoints instead of recomputing the same units. The registry keeps
/// one mutex per distinct digest ever served — a few dozen bytes each,
/// bounded by the number of distinct campaign configurations.
std::mutex& campaign_digest_mutex(std::uint64_t digest) {
  static std::mutex registry_mutex;
  static std::map<std::uint64_t, std::unique_ptr<std::mutex>>* registry =
      new std::map<std::uint64_t, std::unique_ptr<std::mutex>>();
  std::lock_guard lk(registry_mutex);
  auto& slot = (*registry)[digest];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return *slot;
}

char hex_digit(std::uint64_t v) {
  return "0123456789abcdef"[v & 0xF];
}

std::string digest_hex(std::uint64_t digest) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex_digit(digest);
    digest >>= 4;
  }
  return out;
}

}  // namespace

Service::Service(ServiceConfig config, AgedStateCache* cache)
    : config_(std::move(config)), cache_(cache), tech_(service_tech()) {}

std::optional<std::uint64_t> Service::query_cache_key(
    const JsonValue& params) const {
  const auto q = parse_query_params(config_.limits, params, nullptr);
  if (!q.has_value()) return std::nullopt;
  return query_corner_digest(*q);
}

HandlerResult Service::handle(const Request& request,
                              const runtime::CancelToken& cancel,
                              const StreamEmitter& emit) noexcept {
  try {
    obs::TraceSpan span("serve.handle", request.id);
    if (request.method == "query") return handle_query(request.params, cancel);
    if (request.method == "campaign") {
      return handle_campaign(request, cancel, emit);
    }
    if (request.method == "work") return handle_work(request.params, cancel);
    return bad_request("method '" + request.method +
                       "' is not a queueable method");
  } catch (const std::exception& e) {
    return HandlerResult{.ok = false,
                         .result_json = {},
                         .code = ErrorCode::kInternal,
                         .message = e.what()};
  } catch (...) {
    return HandlerResult{.ok = false,
                         .result_json = {},
                         .code = ErrorCode::kInternal,
                         .message = "unknown exception"};
  }
}

HandlerResult Service::handle_query(const JsonValue& params,
                                    const runtime::CancelToken& cancel) {
  service_metrics().queries.add();
  std::string error;
  const auto q = parse_query_params(config_.limits, params, &error);
  if (!q.has_value()) return bad_request(error);

  const std::uint64_t key = query_corner_digest(*q);
  const MultiplierNetlist mult = build_multiplier(q->arch, q->width);

  bool cache_hit = true;
  std::optional<AgedCorner> corner =
      cache_ != nullptr ? cache_->get(key) : std::nullopt;
  if (!corner.has_value()) {
    cache_hit = false;
    service_metrics().corner_refills.add();
    obs::TraceSpan refill_span("serve.corner_refill", key);
    if (cancel.cancelled()) return cancelled_result(cancel, "corner refill");
    AgedCorner fresh;
    if (q->years > 0.0) {
      const BtiModel model = BtiModel::calibrated(tech_);
      const AgingScenario scenario(mult.netlist, tech_, model, kStressSeed,
                                   kStressPatterns);
      fresh.delay_scales = scenario.delay_scales_at(q->years);
      fresh.mean_dvth_v = scenario.mean_dvth_at(q->years);
    }
    if (cancel.cancelled()) return cancelled_result(cancel, "corner refill");
    Rng rng(q->workload_seed);
    const auto patterns = uniform_patterns(rng, q->width, q->ops);
    fresh.trace = compute_op_trace(mult, tech_, patterns, fresh.delay_scales);
    if (cache_ != nullptr) cache_->put(key, fresh);
    corner = std::move(fresh);
  }
  if (cancel.cancelled()) return cancelled_result(cancel, "query replay");

  VlSystemConfig cfg;
  cfg.period_ps =
      q->period_frac * critical_path_ps(mult, tech_, corner->delay_scales);
  cfg.ahl.width = q->width;
  cfg.ahl.skip = q->skip;
  cfg.ahl.adaptive = q->adaptive;
  VariableLatencySystem sys(mult, tech_, cfg);
  const RunStats stats = sys.run(corner->trace, corner->mean_dvth_v);

  JsonWriter json;
  json.begin_object();
  json.key("arch").value(q->arch_name);
  json.key("width").value(q->width);
  json.key("years").value(q->years);
  json.key("corner_digest").value(digest_hex(key));
  json.key("cache_hit").value(cache_hit);
  json.key("stats").begin_object();
  emit_run_stats(json, stats);
  json.end_object();
  json.end_object();
  return ok_result(json.str());
}

HandlerResult Service::handle_campaign(const Request& request,
                                       const runtime::CancelToken& cancel,
                                       const StreamEmitter& emit) {
  const JsonValue& params = request.params;
  service_metrics().campaigns.add();
  const auto reject = [](const std::string& m) { return bad_request(m); };

  const std::string arch_name = params.str_or("arch", "cb");
  const auto arch = parse_arch(arch_name);
  if (!arch.has_value()) return reject("arch must be am|cb|rb");
  const std::int64_t width = params.i64_or("width", 16);
  if (width < 2 || width > 32) return reject("width must be in [2, 32]");
  const std::int64_t trials = params.i64_or("trials", 32);
  if (trials < 1 || trials > config_.limits.max_trials) {
    return reject("trials must be in [1, " +
                  std::to_string(config_.limits.max_trials) + "]");
  }
  const std::int64_t ops = params.i64_or("ops", 1000);
  if (ops < 1 || static_cast<std::size_t>(ops) > config_.limits.max_ops) {
    return reject("ops must be in [1, " +
                  std::to_string(config_.limits.max_ops) + "]");
  }
  const std::int64_t sites = params.i64_or("sites", 2);
  if (sites < 1 || sites > 64) return reject("sites must be in [1, 64]");
  const std::string kind_name = params.str_or("kind", "delay");
  const auto kind = parse_fault_kind(kind_name);
  if (!kind.has_value()) {
    return reject("kind must be stuck0|stuck1|transient|delay");
  }
  const double delay_factor = params.num_or("delay_factor", 8.0);
  if (!(delay_factor > 0.0)) return reject("delay_factor must be > 0");
  const double period_frac = params.num_or("period_frac", 0.58);
  if (!(period_frac > 0.0) || period_frac > 4.0) {
    return reject("period_frac must be in (0, 4]");
  }
  const std::uint64_t seed = params.u64_or("seed", 0xFA17);
  const bool checkpoint =
      params.bool_or("checkpoint", !config_.checkpoint_root.empty());

  // Streaming + resume (docs/SERVING.md). The cursor's unit_index counts
  // finished work units (unit 0 = baseline), so valid values span
  // [0, trials + 1]; its digest must match this campaign's — a cursor
  // from a different configuration is a client bug, not a tail to skip.
  const bool stream = params.bool_or("stream", false);
  const std::int64_t stream_every = params.i64_or("stream_every", 1);
  if (stream_every < 1) return reject("stream_every must be >= 1");
  std::uint64_t cursor_units = 0;
  std::string cursor_digest;
  if (const JsonValue* rc = params.find("resume_cursor")) {
    if (!rc->is_object()) return reject("resume_cursor must be an object");
    cursor_digest = rc->str_or("digest", "");
    if (cursor_digest.empty()) {
      return reject("resume_cursor needs a string 'digest'");
    }
    const std::int64_t index = rc->i64_or("unit_index", -1);
    if (index < 0 || index > trials + 1) {
      return reject("resume_cursor.unit_index must be in [0, trials + 1]");
    }
    cursor_units = static_cast<std::uint64_t>(index);
  }

  const MultiplierNetlist mult =
      build_multiplier(*arch, static_cast<int>(width));
  const double crit = critical_path_ps(mult, tech_);
  Rng rng(kWorkloadSeed);
  const auto patterns =
      uniform_patterns(rng, static_cast<int>(width),
                       static_cast<std::size_t>(ops));

  VlSystemConfig cfg;
  cfg.period_ps = period_frac * crit;
  cfg.ahl.width = static_cast<int>(width);
  cfg.ahl.skip = std::min(7, static_cast<int>(width) - 1);
  cfg.razor.metastability_window_ps = 5.0;
  cfg.razor.edge_escape_prob = 0.5;

  FaultCampaignConfig cc;
  cc.kind = *kind;
  cc.trials = static_cast<int>(trials);
  cc.sites_per_trial = static_cast<int>(sites);
  cc.delay_factor = delay_factor;
  cc.seed = seed;
  const FaultCampaign campaign(mult, tech_, cfg, cc);

  runtime::RunnerConfig runner_config = config_.runner;
  runner_config.stop = &cancel;
  std::optional<runtime::CheckpointStore> store;
  std::unique_lock<std::mutex> digest_lock;  // held through campaign.run
  const std::uint64_t digest = campaign.config_digest(patterns);
  if (!cursor_digest.empty() && cursor_digest != digest_hex(digest)) {
    return reject("resume_cursor.digest '" + cursor_digest +
                  "' does not match this campaign (" + digest_hex(digest) +
                  ")");
  }
  if (checkpoint && !config_.checkpoint_root.empty()) {
    digest_lock = std::unique_lock(campaign_digest_mutex(digest));
    // Resume-by-default: the store is keyed by the campaign digest, so a
    // daemon restarted after SIGKILL finishes the remaining units and
    // returns bytes identical to an uninterrupted run (docs/SERVING.md).
    store.emplace(std::filesystem::path(config_.checkpoint_root) /
                      ("ck-" + digest_hex(digest)),
                  digest);
    const runtime::CheckpointScan scan = store->load();
    if (scan.discarded > 0) {
      std::fprintf(stderr,
                   "serve: campaign %s: discarded %zu stale checkpoints\n",
                   digest_hex(digest).c_str(), scan.discarded);
    }
    runner_config.checkpoints = &*store;
  }

  runtime::RobustRunner runner(runner_config);
  runtime::RunReport report;
  CampaignRunOptions run_options;
  run_options.runner = &runner;
  run_options.report = &report;
  // Progress frames, emitted in strict frontier order: seq equals
  // units_done, so the frame stream is a pure function of campaign
  // progress — a dropped client's pre-drop bytes concatenated with the
  // resumed tail equal an uninterrupted run's bytes. Frames at or below
  // the resume cursor are suppressed (the client already has them); a
  // failed emit stops frames but never the campaign, whose units keep
  // checkpointing for the re-attach.
  bool client_gone = false;
  if (stream && emit) {
    run_options.progress = [&](std::uint64_t units_done,
                               std::uint64_t units_total,
                               const FaultCampaignStats& partial) {
      if (client_gone || units_done <= cursor_units) return;
      if (units_done % static_cast<std::uint64_t>(stream_every) != 0 &&
          units_done != units_total) {
        return;
      }
      JsonWriter pj;
      pj.begin_object();
      emit_campaign_stats(pj, partial);
      pj.end_object();
      if (!emit(stream_frame(request.id, units_done, units_done, units_total,
                             pj.str()))) {
        client_gone = true;
      }
    };
  }
  FaultCampaignStats stats;
  try {
    stats = campaign.run(patterns, run_options);
  } catch (const runtime::RunError& e) {
    if (cancel.cancelled() || report.interrupted()) {
      return cancelled_result(cancel, "campaign");
    }
    return HandlerResult{.ok = false,
                         .result_json = {},
                         .code = ErrorCode::kInternal,
                         .message = e.what()};
  }

  // Response bytes must be identical whether the campaign was computed in
  // one go or resumed across restarts, so only deterministic campaign
  // content goes here — computed/restored splits live in the metrics.
  JsonWriter json;
  json.begin_object();
  json.key("arch").value(arch_name);
  json.key("width").value(static_cast<std::int64_t>(width));
  json.key("kind").value(kind_name);
  json.key("configured_trials").value(static_cast<std::int64_t>(trials));
  json.key("sites_per_trial").value(static_cast<std::int64_t>(sites));
  json.key("seed").value(seed);
  json.key("period_ps").value(cfg.period_ps);
  json.key("campaign_digest").value(digest_hex(digest));
  // Always present (streamed or not): where a future request would resume.
  // unit_index = trials + 1 marks a finished campaign — re-attaching with
  // it streams nothing and returns this same final response.
  json.key("resume_cursor").begin_object();
  json.key("digest").value(digest_hex(digest));
  json.key("unit_index")
      .value(static_cast<std::int64_t>(trials + 1));
  json.end_object();
  json.key("stats").begin_object();
  emit_campaign_stats(json, stats);
  json.end_object();
  json.end_object();
  return ok_result(json.str());
}

HandlerResult Service::handle_work(const JsonValue& params,
                                   const runtime::CancelToken& cancel) {
  service_metrics().work.add();
  const std::int64_t spin_us = params.i64_or("spin_us", 1000);
  if (spin_us < 0 || spin_us > config_.limits.max_spin_us) {
    return bad_request("spin_us must be in [0, " +
                       std::to_string(config_.limits.max_spin_us) + "]");
  }
  // Calibrated busy work, mutated-style (SNIPPETS.md snippet 3): occupy a
  // worker for a precise duration so load tests can dial in a known
  // service time. Clock-paced rather than iteration-paced — the load
  // generator cares about service *time*, not instruction count.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(spin_us);
  std::uint64_t mix = 0x9E3779B97F4A7C15ULL;
  std::uint64_t iters = 0;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 512; ++i) {
      mix ^= mix << 13;
      mix ^= mix >> 7;
      mix ^= mix << 17;
      ++iters;
    }
    if (cancel.cancelled()) return cancelled_result(cancel, "work spin");
  }
  JsonWriter json;
  json.begin_object();
  json.key("spun_us").value(spin_us);
  json.key("iters").value(iters);
  // `mix` is consumed so the spin loop cannot be optimized away.
  json.key("mix_low_bit").value(static_cast<std::int64_t>(mix & 1));
  json.end_object();
  return ok_result(json.str());
}

}  // namespace agingsim::serve
