#pragma once

// LRU cache of aged-netlist state for the serving daemon (docs/SERVING.md).
//
// Aging a netlist is the expensive half of a query: extracting a stress
// profile, evaluating per-gate delay scales at the requested year, and
// replaying the canonical workload into a gate-level trace costs orders of
// magnitude more than scoring that trace through the architectural policy.
// The daemon therefore caches the (delay scales, mean dVth, op trace) of
// each aged corner keyed by its configuration digest (runtime::Digest of
// arch/width/years/workload — the same fingerprint discipline as the
// checkpoint store), so repeat queries against a warm corner do only the
// cheap replay.
//
// Eviction is by byte budget, not entry count: one 32-bit corner at 100k
// ops holds ~8 MB of trace, so counting entries would make the budget
// meaningless. Least-recently-used corners evict first. A single entry
// larger than the whole budget is simply not cached (get-compute-drop),
// never wedged in by evicting everything else.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/vl_multiplier.hpp"

namespace agingsim::serve {

/// Cached state of one aged corner.
struct AgedCorner {
  std::vector<double> delay_scales;  ///< per-gate aging multipliers
  double mean_dvth_v = 0.0;
  std::vector<OpTrace> trace;  ///< canonical workload through the aged gates

  std::size_t byte_size() const noexcept {
    return sizeof(AgedCorner) + delay_scales.size() * sizeof(double) +
           trace.size() * sizeof(OpTrace);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_oversize = 0;  ///< entries larger than the budget
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t budget_bytes = 0;
};

/// Thread-safe byte-budgeted LRU. get() copies the entry out — the cache
/// must never hand out references that an eviction on another thread could
/// invalidate mid-query.
class AgedStateCache {
 public:
  explicit AgedStateCache(std::size_t budget_bytes);

  /// Copies out the corner and refreshes its recency; counts a hit/miss.
  std::optional<AgedCorner> get(std::uint64_t key);

  /// True without touching recency or hit/miss counters — the admission
  /// path uses this to classify a query as a cache refill.
  bool contains(std::uint64_t key) const;

  /// Inserts (or replaces) and evicts LRU entries until the budget holds.
  /// Oversize entries are counted and dropped.
  void put(std::uint64_t key, AgedCorner corner);

  CacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    AgedCorner corner;
    std::size_t bytes = 0;
  };

  void evict_to_fit_locked(std::size_t incoming_bytes);

  mutable std::mutex mutex_;
  std::size_t budget_bytes_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace agingsim::serve
