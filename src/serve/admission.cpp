#include "src/serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace agingsim::serve {

int degradation_tier(const AdmissionConfig& config, std::size_t depth) {
  if (config.capacity == 0) return 2;
  const double occupancy =
      static_cast<double>(depth) / static_cast<double>(config.capacity);
  if (occupancy >= config.shed_batch_frac) return 2;
  if (occupancy >= config.shed_refill_frac) return 1;
  return 0;
}

AdmissionDecision admit(const AdmissionConfig& config, Priority priority,
                        bool needs_cache_refill, std::size_t depth,
                        double avg_service_ms) {
  // The hint estimates how long the current backlog takes to drain at the
  // observed per-request service time; with no history yet, the minimum
  // stands. Clients treat it as advisory backoff, not a reservation.
  const auto hint = [&] {
    const double drain_ms =
        static_cast<double>(depth) * std::max(avg_service_ms, 0.0);
    const auto ms = static_cast<std::int64_t>(std::ceil(drain_ms));
    return std::clamp(ms, config.retry_after_min_ms,
                      config.retry_after_max_ms);
  };
  const auto reject = [&](ErrorCode reason) {
    return AdmissionDecision{.admitted = false,
                             .reason = reason,
                             .retry_after_ms = hint()};
  };
  if (priority == Priority::kControl) {
    // Control requests are answered inline and never reach the queue; an
    // accidental push must not be sheddable.
    return AdmissionDecision{.admitted = true};
  }
  if (depth >= config.capacity) return reject(ErrorCode::kOverloaded);
  const int tier = degradation_tier(config, depth);
  if (tier >= 2 && priority == Priority::kBatch) {
    return reject(ErrorCode::kShedBatch);
  }
  if (tier >= 1 && needs_cache_refill) {
    return reject(ErrorCode::kShedRefill);
  }
  return AdmissionDecision{.admitted = true};
}

}  // namespace agingsim::serve
