#include "src/serve/cache.hpp"

#include <utility>

#include "src/obs/metrics.hpp"

namespace agingsim::serve {
namespace {

struct CacheMetrics {
  const obs::Counter& hits = obs::counter("serve.cache_hits");
  const obs::Counter& misses = obs::counter("serve.cache_misses");
  const obs::Counter& insertions = obs::counter("serve.cache_insertions");
  const obs::Counter& evictions = obs::counter("serve.cache_evictions");
  // Occupancy is scheduling-dependent under concurrent queries.
  const obs::Gauge& bytes =
      obs::gauge("serve.cache_bytes", /*deterministic=*/false);
};

const CacheMetrics& cache_metrics() {
  static const CacheMetrics m;
  return m;
}

}  // namespace

AgedStateCache::AgedStateCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  stats_.budget_bytes = budget_bytes;
}

std::optional<AgedCorner> AgedStateCache::get(std::uint64_t key) {
  std::lock_guard lk(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    cache_metrics().misses.add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  cache_metrics().hits.add();
  return it->second->corner;
}

bool AgedStateCache::contains(std::uint64_t key) const {
  std::lock_guard lk(mutex_);
  return index_.contains(key);
}

void AgedStateCache::evict_to_fit_locked(std::size_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > budget_bytes_) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    cache_metrics().evictions.add();
  }
}

void AgedStateCache::put(std::uint64_t key, AgedCorner corner) {
  const std::size_t bytes = corner.byte_size();
  std::lock_guard lk(mutex_);
  if (bytes > budget_bytes_) {
    ++stats_.rejected_oversize;
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  evict_to_fit_locked(bytes);
  lru_.push_front(Entry{key, std::move(corner), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  ++stats_.insertions;
  cache_metrics().insertions.add();
  cache_metrics().bytes.record(static_cast<std::int64_t>(bytes_));
}

CacheStats AgedStateCache::stats() const {
  std::lock_guard lk(mutex_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_bytes_;
  return s;
}

void AgedStateCache::clear() {
  std::lock_guard lk(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace agingsim::serve
