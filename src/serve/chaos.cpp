#include "src/serve/chaos.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/env.hpp"
#include "src/obs/metrics.hpp"

namespace agingsim::serve {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Per-thread operation counter: each connection is driven by a single
// thread per direction, so hashing (seed, thread-local counter) yields a
// reproducible per-connection fault schedule without cross-thread locking.
std::uint64_t next_draw(std::uint64_t seed) {
  thread_local std::uint64_t counter = 0;
  return splitmix64(seed ^ splitmix64(++counter));
}

bool coin(const ServeChaosConfig& cfg, std::uint64_t draw) {
  // Top 53 bits → uniform double in [0, 1).
  const double u =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  return u < cfg.rate;
}

void maybe_stall(const ServeChaosConfig& cfg) {
  if (!cfg.stalls) return;
  const std::uint64_t draw = next_draw(cfg.seed ^ 0x57A11ull);
  if (!coin(cfg, draw)) return;
  // 200 us .. 2 ms: long enough to force partial reads/writes to overlap
  // with peer activity, short enough to keep the suite fast.
  const auto us = 200 + (draw % 1800);
  static const auto& stalls = obs::counter("serve.chaos.stalls", false);
  stalls.add();
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

struct ActiveChaos {
  std::mutex mutex;
  ServeChaosConfig config;
  bool initialised = false;
};

ActiveChaos& active() {
  static ActiveChaos state;
  return state;
}

}  // namespace

ServeChaosConfig ServeChaosConfig::from_env() {
  ServeChaosConfig cfg;
  const auto spec = env::str_var("AGINGSIM_SERVE_CHAOS");
  if (!spec || spec->empty()) return cfg;

  const auto warn = [&](const char* why) {
    std::fprintf(stderr,
                 "agingsim: ignoring AGINGSIM_SERVE_CHAOS='%s' (%s); chaos"
                 " disabled\n",
                 spec->c_str(), why);
    return ServeChaosConfig{};
  };

  const std::size_t c1 = spec->find(':');
  if (c1 == std::string::npos) return warn("want seed:rate[:actions]");
  const std::size_t c2 = spec->find(':', c1 + 1);
  const std::string seed_text = spec->substr(0, c1);
  const std::string rate_text = c2 == std::string::npos
                                    ? spec->substr(c1 + 1)
                                    : spec->substr(c1 + 1, c2 - c1 - 1);
  const std::string actions =
      c2 == std::string::npos ? "tbs" : spec->substr(c2 + 1);

  const auto seed = env::parse_u64(seed_text);
  if (!seed) return warn("bad seed");
  const auto rate = env::parse_double(rate_text);
  if (!rate || *rate < 0.0 || *rate > 1.0) return warn("rate wants [0, 1]");

  cfg.seed = *seed;
  cfg.rate = *rate;
  for (const char a : actions) {
    switch (a) {
      case 't': cfg.torn_writes = true; break;
      case 'b': cfg.byte_reads = true; break;
      case 's': cfg.stalls = true; break;
      case 'd': cfg.disconnects = true; break;
      default: return warn("actions want a subset of 'tbsd'");
    }
  }
  if (actions.empty()) return warn("empty actions");
  return cfg;
}

const ServeChaosConfig& serve_chaos() {
  auto& state = active();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.initialised) {
    state.config = ServeChaosConfig::from_env();
    state.initialised = true;
  }
  return state.config;
}

void set_serve_chaos_for_tests(const ServeChaosConfig& config) {
  auto& state = active();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.config = config;
  state.initialised = true;
}

std::size_t chaos_write_chunk(std::size_t remaining) {
  const auto& cfg = serve_chaos();
  if (!cfg.enabled() || remaining <= 1) return remaining;
  maybe_stall(cfg);
  if (!cfg.torn_writes) return remaining;
  const std::uint64_t draw = next_draw(cfg.seed ^ 0x70A2ull);
  if (!coin(cfg, draw)) return remaining;
  static const auto& torn = obs::counter("serve.chaos.torn_writes", false);
  torn.add();
  const std::size_t chunk = 1 + static_cast<std::size_t>(draw >> 32) % 8;
  return chunk < remaining ? chunk : remaining;
}

std::size_t chaos_read_clamp(std::size_t want) {
  const auto& cfg = serve_chaos();
  if (!cfg.enabled() || want <= 1) return want;
  maybe_stall(cfg);
  if (!cfg.byte_reads) return want;
  static const auto& clamped = obs::counter("serve.chaos.byte_reads", false);
  clamped.add();
  const std::size_t clamp =
      1 + static_cast<std::size_t>(next_draw(cfg.seed ^ 0xB17Eull) >> 32) % 3;
  return clamp < want ? clamp : want;
}

bool chaos_drop_write() {
  const auto& cfg = serve_chaos();
  if (!cfg.disconnects) return false;
  if (!coin(cfg, next_draw(cfg.seed ^ 0xD15Cull))) return false;
  static const auto& drops = obs::counter("serve.chaos.disconnects", false);
  drops.add();
  return true;
}

}  // namespace agingsim::serve
