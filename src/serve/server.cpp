#include "src/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/report/json.hpp"
#include "src/serve/chaos.hpp"

namespace agingsim::serve {
namespace {

constexpr std::array<double, 10> kLatencyBucketsUs = {
    100.0,     250.0,     1'000.0,    5'000.0,     25'000.0,
    100'000.0, 500'000.0, 1'000'000.0, 5'000'000.0, 30'000'000.0};

struct ServerMetrics {
  const obs::Counter& connections =
      obs::counter("serve.connections", false);
  const obs::Counter& accepted = obs::counter("serve.accepted", false);
  const obs::Counter& completed = obs::counter("serve.completed", false);
  const obs::Counter& failed = obs::counter("serve.failed", false);
  const obs::Counter& rejected_overload =
      obs::counter("serve.rejected_overload", false);
  const obs::Counter& shed_refill = obs::counter("serve.shed_refill", false);
  const obs::Counter& shed_batch = obs::counter("serve.shed_batch", false);
  const obs::Counter& rejected_draining =
      obs::counter("serve.rejected_draining", false);
  const obs::Counter& timed_out = obs::counter("serve.timed_out", false);
  const obs::Counter& cancelled = obs::counter("serve.cancelled", false);
  const obs::Counter& bad_request = obs::counter("serve.bad_request", false);
  const obs::Counter& rejected_quota =
      obs::counter("serve.rejected_quota", false);
  const obs::Counter& rejected_inflight_cap =
      obs::counter("serve.rejected_inflight_cap", false);
  const obs::Counter& read_deadline_closed =
      obs::counter("serve.read_deadline_closed", false);
  const obs::Counter& idle_closed = obs::counter("serve.idle_closed", false);
  const obs::Counter& poisoned_streams =
      obs::counter("serve.poisoned_streams", false);
  const obs::Counter& stream_frames =
      obs::counter("serve.stream_frames", false);
  // Per-client accepted/completed aggregates; the per-identity split lives
  // in `status` (metric names are registered for the process lifetime, so
  // client_ids — unbounded, client-chosen — must not become metric names).
  const obs::Counter& client_accepted =
      obs::counter("serve.client.accepted", false);
  const obs::Counter& client_completed =
      obs::counter("serve.client.completed", false);
  const obs::Gauge& queue_depth = obs::gauge("serve.queue_depth", false);
  const obs::Histogram& request_us =
      obs::histogram("serve.request_us", kLatencyBucketsUs, false);
  const obs::Histogram& queue_wait_us =
      obs::histogram("serve.queue_wait_us", kLatencyBucketsUs, false);
};

const ServerMetrics& server_metrics() {
  static const ServerMetrics m;
  return m;
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void count_rejection(ErrorCode code) {
  const ServerMetrics& m = server_metrics();
  switch (code) {
    case ErrorCode::kOverloaded: m.rejected_overload.add(); break;
    case ErrorCode::kShedRefill: m.shed_refill.add(); break;
    case ErrorCode::kShedBatch: m.shed_batch.add(); break;
    case ErrorCode::kDraining: m.rejected_draining.add(); break;
    case ErrorCode::kQuotaExceeded: m.rejected_quota.add(); break;
    default: break;
  }
}

}  // namespace

// --- DeadlineRegistry -----------------------------------------------------

DeadlineRegistry::DeadlineRegistry() : thread_([this] { loop(); }) {}

DeadlineRegistry::~DeadlineRegistry() { stop(); }

void DeadlineRegistry::arm(std::chrono::steady_clock::time_point deadline,
                           std::shared_ptr<runtime::CancelToken> token) {
  {
    std::lock_guard lk(mutex_);
    entries_.push_back(Entry{deadline, std::move(token)});
  }
  cv_.notify_one();
}

void DeadlineRegistry::track(std::shared_ptr<runtime::CancelToken> token) {
  arm(std::chrono::steady_clock::time_point::max(), std::move(token));
}

void DeadlineRegistry::cancel_all_at(
    std::chrono::steady_clock::time_point when) {
  {
    std::lock_guard lk(mutex_);
    hammer_ = std::min(hammer_, when);
  }
  cv_.notify_one();
}

void DeadlineRegistry::cancel_all() {
  std::lock_guard lk(mutex_);
  cancel_all_locked();
}

void DeadlineRegistry::cancel_all_locked() {
  for (const Entry& e : entries_) {
    if (auto token = e.token.lock()) token->cancel();
  }
  entries_.clear();
}

void DeadlineRegistry::stop() {
  {
    std::lock_guard lk(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DeadlineRegistry::loop() {
  std::unique_lock lk(mutex_);
  while (!stop_) {
    // Expired or abandoned (job finished, token freed) entries drop out;
    // the next wake is the earliest surviving *finite* deadline. Entries
    // without one (track()) only matter to cancel_all, so with none finite
    // the loop parks until arm()/stop() notifies — the lock is held from
    // scan to wait, so no notification can slip through unseen.
    const auto now = std::chrono::steady_clock::now();
    if (hammer_ <= now) {
      cancel_all_locked();
      hammer_ = std::chrono::steady_clock::time_point::max();
    }
    auto next = hammer_;
    std::erase_if(entries_, [&](const Entry& e) {
      auto token = e.token.lock();
      if (token == nullptr) return true;
      if (e.deadline <= now) {
        token->cancel();
        return true;
      }
      next = std::min(next, e.deadline);
      return false;
    });
    if (next == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(lk);
    } else {
      cv_.wait_until(lk, next);
    }
  }
}

// --- Connection -----------------------------------------------------------

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

bool Server::Connection::send(std::string_view payload) {
  std::lock_guard lk(write_mutex);
  return write_frame_fd(fd, payload);
}

void Server::Connection::shutdown_read() noexcept {
  // Unblocks a connection thread parked in read_frame_fd without racing
  // the fd's lifetime (close happens once the thread exits).
  ::shutdown(fd, SHUT_RDWR);
}

// --- Server ---------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_budget_bytes),
      service_(config_.service, &cache_),
      queue_(config_.admission) {}

Server::~Server() {
  drain();
  wait();
}

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    const int err = errno;  // saved before close() below can clobber it
    if (error != nullptr) *error = what + ": " + std::strerror(err);
    // started_ stays false on this path, so wait() would never reach its
    // cleanup block — release whatever was opened before the failure here.
    for (int& fd : wake_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (config_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + config_.socket_path;
    }
    return false;
  }
  if (pipe(wake_pipe_) != 0) return fail("pipe");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  // A stale socket file from a killed daemon would make bind fail; the
  // kill-and-restart resume path depends on a fresh bind succeeding.
  ::unlink(config_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + config_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");

  started_at_ = std::chrono::steady_clock::now();
  started_.store(true, std::memory_order_release);
  const int workers = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  listener_ = std::thread([this] { listener_loop(); });
  return true;
}

void Server::wake_listener() noexcept {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::drain() {
  if (draining_.exchange(true)) return;
  wake_listener();
  queue_.close();
  // After the grace period, cancel whatever is still queued or running:
  // campaigns checkpoint their completed units and return `cancelled`, so
  // no work is lost — it resumes on the next daemon start.
  deadlines_.cancel_all_at(std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(config_.drain_grace_ms));
}

void Server::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (listener_.joinable()) listener_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  deadlines_.stop();
  {
    std::lock_guard lk(conns_mutex_);
    for (const auto& weak : conns_) {
      if (auto conn = weak.lock()) conn->shutdown_read();
    }
  }
  std::vector<ConnThread> conn_threads;
  {
    std::lock_guard lk(conn_threads_mutex_);
    conn_threads.swap(conn_threads_);
  }
  for (ConnThread& ct : conn_threads) {
    if (ct.thread.joinable()) ct.thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  started_.store(false, std::memory_order_release);
}

void Server::listener_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    std::array<pollfd, 2> fds{{{listen_fd_, POLLIN, 0},
                               {wake_pipe_[0], POLLIN, 0}}};
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // drain() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    server_metrics().connections.add();
    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    conn->peer_id = "conn-" + std::to_string(++conn_counter_);
    {
      std::lock_guard lk(conns_mutex_);
      std::erase_if(conns_, [](const auto& w) { return w.expired(); });
      conns_.push_back(conn);
    }
    reap_connection_threads();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, conn = std::move(conn), done]() mutable {
      connection_loop(std::move(conn));
      done->store(true, std::memory_order_release);
    });
    std::lock_guard lk(conn_threads_mutex_);
    conn_threads_.push_back(ConnThread{std::move(thread), std::move(done)});
  }
}

void Server::reap_connection_threads() {
  // A long-lived daemon serves many short connections; joining finished
  // reader threads on each accept keeps conn_threads_ bounded by the number
  // of *concurrent* connections instead of growing per connection ever
  // made. The join happens outside the lock — it is immediate (the thread
  // set `done` as its last action) but there is no reason to hold the
  // mutex across a syscall.
  std::vector<ConnThread> finished;
  {
    std::lock_guard lk(conn_threads_mutex_);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < conn_threads_.size(); ++i) {
      ConnThread& ct = conn_threads_[i];
      if (ct.done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(ct));
      } else {
        // Self-move-assigning a joinable std::thread terminates; only
        // shift entries that actually have a gap to fill.
        if (keep != i) conn_threads_[keep] = std::move(ct);
        ++keep;
      }
    }
    conn_threads_.resize(keep);
  }
  for (ConnThread& ct : finished) {
    if (ct.thread.joinable()) ct.thread.join();
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  // poll(2)-paced incremental reads through a FrameDecoder instead of a
  // blocking read_frame_fd: the blocking read gave a slow-loris client —
  // one that sends a partial length prefix and stalls — a parked server
  // thread for free, forever. Now a frame that starts must finish within
  // read_deadline_ms, and (opt-in) a fully idle connection expires after
  // idle_timeout_ms.
  using Clock = std::chrono::steady_clock;
  FrameDecoder decoder;
  std::optional<Clock::time_point> frame_deadline;
  Clock::time_point last_activity = Clock::now();
  char buf[4096];

  // One frame through parse/control/dispatch; false ends the connection.
  const auto process = [&](const std::string& payload) -> bool {
    std::string bad_request_body;
    std::optional<Request> request =
        parse_request(payload, &bad_request_body);
    if (!request.has_value()) {
      server_metrics().bad_request.add();
      return conn->send(bad_request_body);
    }
    if (request->priority == Priority::kControl) {
      handle_control(*conn, *request);
      return true;
    }
    const std::uint32_t cap = config_.max_inflight_per_conn;
    if (cap != 0 &&
        conn->inflight.load(std::memory_order_acquire) >= cap) {
      server_metrics().rejected_inflight_cap.add();
      return conn->send(error_response(
          request->id, ErrorCode::kOverloaded,
          "per-connection in-flight cap (" + std::to_string(cap) +
              ") reached; wait for responses before pipelining more",
          queue_.config().retry_after_min_ms));
    }
    dispatch_queueable(*conn, conn, std::move(*request));
    return true;
  };

  for (;;) {
    bool send_failed = false;
    while (auto payload = decoder.next()) {
      if (!process(*payload)) {
        send_failed = true;
        break;
      }
    }
    if (send_failed) break;
    if (decoder.poisoned()) {
      server_metrics().poisoned_streams.add();
      break;
    }
    if (decoder.mid_frame()) {
      if (!frame_deadline.has_value() && config_.read_deadline_ms > 0) {
        frame_deadline =
            Clock::now() + std::chrono::milliseconds(config_.read_deadline_ms);
      }
    } else {
      frame_deadline.reset();
    }

    Clock::time_point wake = Clock::time_point::max();
    if (frame_deadline.has_value()) wake = *frame_deadline;
    const bool idle_eligible =
        config_.idle_timeout_ms > 0 && !decoder.mid_frame() &&
        conn->inflight.load(std::memory_order_acquire) == 0;
    if (idle_eligible) {
      wake = std::min(wake, last_activity + std::chrono::milliseconds(
                                                config_.idle_timeout_ms));
    }
    int timeout_ms = -1;
    if (wake != Clock::time_point::max()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          wake - Clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(left.count(), 0));
    }

    pollfd pfd{conn->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      const auto now = Clock::now();
      if (frame_deadline.has_value() && now >= *frame_deadline) {
        // Slow loris: the frame did not complete in time. Closing is the
        // only honest response — mid-frame there is no valid request id to
        // address an error to.
        server_metrics().read_deadline_closed.add();
        break;
      }
      if (idle_eligible && now >= last_activity + std::chrono::milliseconds(
                                                      config_.idle_timeout_ms)) {
        server_metrics().idle_closed.add();
        break;
      }
      continue;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    // Chaos may clamp the request to a few bytes — exactly the adversarial
    // delivery pattern the decoder must be indifferent to.
    const ssize_t n = ::read(conn->fd, buf, chaos_read_clamp(sizeof buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF (or shutdown_read from drain)
    last_activity = Clock::now();
    if (!decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      server_metrics().poisoned_streams.add();
      break;
    }
  }
  // No close here: queued/in-flight Jobs may still hold the Connection and
  // reply later. Dropping this thread's reference lets ~Connection close
  // the fd once the last holder (often a worker) is done with it.
}

void Server::handle_control(Connection& conn, const Request& request) {
  obs::TraceSpan span("serve.control", request.id);
  if (request.method == "health") {
    JsonWriter json;
    json.begin_object();
    json.key("status").value(draining() ? "draining" : "ok");
    json.end_object();
    conn.send(ok_response(request.id, json.str()));
    return;
  }
  if (request.method == "status") {
    conn.send(ok_response(request.id, status_json()));
    return;
  }
  if (request.method == "metrics") {
    conn.send(ok_response(request.id, obs::metrics_json()));
    return;
  }
  if (request.method == "shutdown") {
    conn.send(ok_response(request.id, "{\"draining\": true}"));
    drain();
    return;
  }
  conn.send(error_response(request.id, ErrorCode::kBadRequest,
                           "unknown control method '" + request.method + "'"));
}

std::string Server::status_json() const {
  const CacheStats cs = cache_.stats();
  const std::size_t depth = queue_.depth();
  JsonWriter json;
  json.begin_object();
  json.key("draining").value(draining());
  json.key("workers").value(static_cast<std::int64_t>(config_.workers));
  json.key("queue_depth").value(static_cast<std::uint64_t>(depth));
  json.key("queue_capacity")
      .value(static_cast<std::uint64_t>(config_.admission.capacity));
  json.key("degradation_tier")
      .value(static_cast<std::int64_t>(queue_.tier()));
  json.key("in_flight").value(in_flight_.load(std::memory_order_acquire));
  json.key("avg_service_ms").value(queue_.avg_service_ms());
  json.key("uptime_ms")
      .value(static_cast<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started_at_)
              .count()));
  json.key("clients").begin_array();
  for (const ClientSnapshot& c : queue_.clients()) {
    json.begin_object();
    json.key("id").value(c.id);
    json.key("queued").value(static_cast<std::uint64_t>(c.queued));
    json.key("accepted").value(c.accepted);
    json.key("completed").value(c.completed);
    json.key("rejected_quota").value(c.rejected_quota);
    if (config_.admission.fairness.quota_rate_per_s > 0.0) {
      json.key("tokens").value(c.tokens);
    }
    json.end_object();
  }
  json.end_array();
  json.key("cache").begin_object();
  json.key("entries").value(static_cast<std::uint64_t>(cs.entries));
  json.key("bytes").value(static_cast<std::uint64_t>(cs.bytes));
  json.key("budget_bytes")
      .value(static_cast<std::uint64_t>(config_.cache_budget_bytes));
  json.key("hits").value(cs.hits);
  json.key("misses").value(cs.misses);
  json.key("insertions").value(cs.insertions);
  json.key("evictions").value(cs.evictions);
  json.key("rejected_oversize").value(cs.rejected_oversize);
  json.end_object();
  json.end_object();
  return json.str();
}

void Server::dispatch_queueable(Connection& conn,
                                std::shared_ptr<Connection> self,
                                Request request) {
  // Tier-1 classification: a query that would miss the aged-state cache
  // triggers an expensive aging recompute, so under pressure those are
  // shed while cache hits keep flowing.
  bool needs_refill = false;
  if (request.method == "query") {
    const auto key = service_.query_cache_key(request.params);
    needs_refill = key.has_value() && !cache_.contains(*key);
  }

  Job job;
  job.request = std::move(request);
  job.client = job.request.client_id.empty() ? conn.peer_id
                                             : job.request.client_id;
  job.conn = std::move(self);
  job.token = std::make_shared<runtime::CancelToken>();
  job.enqueued = std::chrono::steady_clock::now();
  const std::int64_t deadline_ms = job.request.deadline_ms > 0
                                       ? job.request.deadline_ms
                                       : config_.default_deadline_ms;
  job.deadline = deadline_ms > 0
                     ? job.enqueued + std::chrono::milliseconds(deadline_ms)
                     : std::chrono::steady_clock::time_point::max();

  const std::uint64_t id = job.request.id;
  const Priority priority = job.request.priority;
  const std::string client = job.client;
  auto token = job.token;
  const auto deadline = job.deadline;
  const AdmissionDecision decision =
      queue_.try_push(std::move(job), priority, needs_refill, client);
  if (!decision.admitted) {
    count_rejection(decision.reason);
    conn.send(error_response(id, decision.reason,
                             std::string("rejected: ") +
                                 std::string(error_code_name(decision.reason)),
                             decision.retry_after_ms));
    return;
  }
  conn.inflight.fetch_add(1, std::memory_order_acq_rel);
  server_metrics().accepted.add();
  server_metrics().client_accepted.add();
  server_metrics().queue_depth.record(
      static_cast<std::int64_t>(queue_.depth()));
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    deadlines_.arm(deadline, std::move(token));
  } else {
    deadlines_.track(std::move(token));
  }
}

void Server::worker_loop() {
  while (true) {
    std::optional<Job> job = queue_.pop();
    if (!job.has_value()) return;  // queue closed and empty: drain done
    const auto started = std::chrono::steady_clock::now();
    server_metrics().queue_wait_us.observe(us_between(job->enqueued, started));
    in_flight_.fetch_add(1, std::memory_order_acq_rel);

    std::string response;
    if (job->token->cancelled()) {
      // Deadline (or drain hammer) fired while the job sat in the queue.
      const bool timed_out = started >= job->deadline;
      server_metrics().failed.add();
      (timed_out ? server_metrics().timed_out : server_metrics().cancelled)
          .add();
      response = error_response(
          job->request.id,
          timed_out ? ErrorCode::kTimeout : ErrorCode::kCancelled,
          timed_out ? "deadline expired while queued" : "cancelled by drain");
    } else {
      // Streaming: progress frames go out on the job's connection under
      // its write mutex, interleaving cleanly with control replies. A
      // failed frame write reports the client gone; the service finishes
      // the campaign anyway (units checkpoint for the re-attach).
      const Service::StreamEmitter emitter =
          [&job](const std::string& payload) {
            const bool sent = job->conn->send(payload);
            if (sent) server_metrics().stream_frames.add();
            return sent;
          };
      HandlerResult result = service_.handle(job->request, *job->token,
                                             emitter);
      const auto finished = std::chrono::steady_clock::now();
      if (result.ok) {
        server_metrics().completed.add();
        response = ok_response(job->request.id, result.result_json);
      } else {
        server_metrics().failed.add();
        ErrorCode code = result.code;
        if (code == ErrorCode::kCancelled && finished >= job->deadline) {
          code = ErrorCode::kTimeout;
          result.message = "deadline expired: " + result.message;
        }
        switch (code) {
          case ErrorCode::kTimeout: server_metrics().timed_out.add(); break;
          case ErrorCode::kCancelled: server_metrics().cancelled.add(); break;
          case ErrorCode::kBadRequest:
            server_metrics().bad_request.add();
            break;
          default: break;
        }
        response = error_response(job->request.id, code, result.message);
      }
    }
    const auto done = std::chrono::steady_clock::now();
    server_metrics().request_us.observe(us_between(job->enqueued, done));
    queue_.record_service_ms(
        std::chrono::duration<double, std::milli>(done - started).count());
    queue_.record_done(job->client);
    server_metrics().client_completed.add();
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    job->conn->send(response);
    job->conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace agingsim::serve
