#pragma once

// Wire protocol of the agingd serving daemon (docs/SERVING.md).
//
// Transport: a Unix-domain stream socket carrying length-prefixed JSON
// frames — a 4-byte little-endian payload length followed by that many
// bytes of UTF-8 JSON. The prefix caps at kMaxFrameBytes; an oversized
// prefix poisons the connection (there is no way to resynchronize a
// stream after a corrupt length), whereas malformed JSON inside a valid
// frame only fails that one request.
//
// Requests:  {"id": 7, "method": "query", "deadline_ms": 2000,
//             "client_id": "ci-paced", "params": {...}}
// Responses: {"id": 7, "ok": true,  "result": {...}}
//            {"id": 7, "ok": false, "error": {"code": "overloaded",
//             "message": "...", "retry_after_ms": 40}}
// Streaming: a campaign with "stream": true in its params additionally
// emits zero or more progress frames before the final response:
//            {"id": 7, "stream": 3, "units_done": 3, "units_total": 9,
//             "partial_stats": {...}}
// Progress frames always carry a "stream" key; the final frame never
// does, so clients read frames until the first one without it.
//
// Methods fall into three priority classes that drive admission control
// (src/serve/admission.hpp): control-plane requests (health, status,
// metrics, shutdown) bypass the admission queue entirely and must answer
// even under full overload; normal requests (query, work) and batch
// requests (campaign) go through the bounded queue and can be rejected.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/serve/json.hpp"

namespace agingsim::serve {

/// Hard cap on one frame's payload. Large enough for any campaign result,
/// small enough that a corrupt length prefix cannot OOM the daemon.
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/// Admission class of a request (see docs/SERVING.md).
enum class Priority {
  kControl,  ///< health/status/metrics/shutdown: never queued, never shed
  kNormal,   ///< query/work: queued, shed only when the queue is full
  kBatch,    ///< campaign: queued, shed first under degradation tier 2
};

std::string_view priority_name(Priority p) noexcept;

/// Machine-readable error codes of failed responses.
enum class ErrorCode {
  kBadRequest,   ///< malformed JSON / unknown method / invalid params
  kOverloaded,   ///< admission queue full — retry after the hint
  kShedRefill,   ///< degradation tier >= 1: aged-state cache refill shed
  kShedBatch,    ///< degradation tier >= 2: batch work rejected
  kDraining,     ///< daemon is draining; no new work accepted
  kTimeout,      ///< per-request deadline expired (queued or running)
  kCancelled,    ///< cancelled by shutdown while in flight
  kInternal,     ///< handler threw; message carries the what()
  kQuotaExceeded,  ///< per-client token bucket empty — retry after hint
};

std::string_view error_code_name(ErrorCode code) noexcept;

/// One decoded request. `params` stays a JsonValue — each handler knows
/// its own schema; protocol-level validation covers only the envelope.
struct Request {
  std::uint64_t id = 0;
  std::string method;
  Priority priority = Priority::kNormal;
  /// Total budget from admission to response; 0 = server default.
  std::int64_t deadline_ms = 0;
  /// Fairness identity for quota/DRR accounting. Optional: empty means the
  /// server falls back to the connection's synthetic identity. Validated
  /// to 1..64 chars of [A-Za-z0-9._-] so identities are safe to echo into
  /// status JSON and logs.
  std::string client_id;
  JsonValue params;  ///< object (possibly empty)
};

/// True when `id` is a well-formed client identity (see Request::client_id).
bool valid_client_id(std::string_view id) noexcept;

/// Envelope validation: parses the frame payload, resolves the method's
/// priority class, extracts id/deadline. On failure returns nullopt and
/// fills `error` with a bad_request response body ready to send.
std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error_response);

/// True when `method` names a known protocol method.
bool known_method(std::string_view method) noexcept;
/// Priority class of a known method (kNormal for unknown — but unknown
/// methods never pass parse_request).
Priority method_priority(std::string_view method) noexcept;

/// Response builders. `result_json` must be a complete JSON value; it is
/// spliced verbatim into the envelope.
std::string ok_response(std::uint64_t id, std::string_view result_json);
std::string error_response(std::uint64_t id, ErrorCode code,
                           std::string_view message,
                           std::int64_t retry_after_ms = -1);
/// Campaign progress frame. `seq` is the campaign's completion frontier
/// (units done), NOT a per-connection counter — that makes the frame
/// stream a pure function of campaign progress, so bytes from a dropped
/// run concatenated with a resumed tail equal an uninterrupted run's.
std::string stream_frame(std::uint64_t id, std::uint64_t seq,
                         std::uint64_t units_done, std::uint64_t units_total,
                         std::string_view partial_stats_json);

/// Length-prefix helpers on raw byte strings (pure, testable without a
/// socket). encode_frame refuses payloads over kMaxFrameBytes.
std::string encode_frame(std::string_view payload);

/// Incremental frame decoder for a byte stream: feed bytes, take frames.
/// Returns false from feed() when the stream is poisoned (length prefix
/// over kMaxFrameBytes); no further frames will be produced.
class FrameDecoder {
 public:
  /// Appends stream bytes; false = poisoned (close the connection).
  bool feed(std::string_view bytes);
  /// Pops the next complete frame payload, if any.
  std::optional<std::string> next();
  bool poisoned() const noexcept { return poisoned_; }
  /// True while a frame is partially buffered (length prefix or payload
  /// incomplete). Drives the server's read deadline: a connection may sit
  /// idle between frames forever, but once a frame starts it must finish
  /// within the deadline (the slow-loris defence).
  bool mid_frame() const noexcept { return !buffer_.empty(); }
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

/// Blocking fd transport used by the daemon's connection threads and the
/// client library. Both retry EINTR and handle short reads/writes.
/// read_frame returns nullopt on clean EOF at a frame boundary; sets
/// `*error` (when given) for hard failures.
bool write_frame_fd(int fd, std::string_view payload,
                    std::string* error = nullptr);
std::optional<std::string> read_frame_fd(int fd, std::string* error = nullptr);

}  // namespace agingsim::serve
