#pragma once

// Deterministic socket-fault injection for the serving layer
// (docs/SERVING.md). The checkpoint path earned its crash-safety claims
// through AGINGSIM_CHAOS (src/runtime/chaos.hpp); this is the same idea
// pointed at the wire: every transport path in src/serve must keep working
// when writes land one byte at a time, reads return single bytes, and the
// peer stalls or vanishes mid-frame. CI runs the whole serve test suite
// with this layer enabled.
//
// Spec: AGINGSIM_SERVE_CHAOS=seed:rate[:actions], actions a subset of
//
//   t  torn writes:   write_frame_fd emits deterministic 1..8-byte chunks
//   b  byte reads:    every read is clamped to a 1..3-byte request
//   s  stalls:        a chaos-selected op sleeps 0.2-2 ms first (slow-loris
//                     pacing on an otherwise healthy stream)
//   d  disconnects:   a chaos-selected frame write aborts partway and
//                     shuts the socket down (mid-frame disconnect)
//
// `rate` gates t/s/d per operation; `b` applies to every read while
// enabled (clamping is harmless, so there is no reason to dilute it).
// Default actions when the field is omitted: "tbs" — the loss-free set,
// safe to enable under an entire test suite. `d` kills connections and is
// only for drills that expect transport errors.
//
// Determinism: decisions come from a splitmix64 stream keyed by the seed
// and a thread-local operation counter. Each connection is driven by one
// thread on each side, so the per-connection fault sequence is reproducible
// for a given seed even though threads interleave globally.

#include <cstddef>
#include <cstdint>

namespace agingsim::serve {

struct ServeChaosConfig {
  std::uint64_t seed = 0;
  double rate = 0.0;  ///< per-op probability for t/s/d
  bool torn_writes = false;
  bool byte_reads = false;
  bool stalls = false;
  bool disconnects = false;

  bool enabled() const noexcept {
    return torn_writes || byte_reads || stalls || disconnects;
  }

  /// Parses AGINGSIM_SERVE_CHAOS (`seed:rate[:actions]`). Malformed specs
  /// warn on stderr and come back disabled — chaos must never be a way to
  /// crash the daemon at startup.
  static ServeChaosConfig from_env();
};

/// Process-wide active config: AGINGSIM_SERVE_CHAOS on first use, unless a
/// test overrode it.
const ServeChaosConfig& serve_chaos();

/// Test hook: replaces the active config (pass {} to disable). Not for
/// production paths — the daemon configures chaos via the environment.
void set_serve_chaos_for_tests(const ServeChaosConfig& config);

// --- transport hooks (called from protocol.cpp) ---------------------------

/// Next write chunk size for a buffer with `remaining` bytes left. Returns
/// `remaining` unless torn writes are enabled, in which case a
/// deterministic 1..8-byte slice (never 0). May stall first.
std::size_t chaos_write_chunk(std::size_t remaining);

/// Clamps a read request of `want` bytes (byte-at-a-time reads). Never 0.
/// May stall first.
std::size_t chaos_read_clamp(std::size_t want);

/// True when a chaos disconnect should tear down this frame write: the
/// caller writes only a deterministic prefix, shuts the socket down and
/// reports a transport error. Only fires when action `d` is armed.
bool chaos_drop_write();

}  // namespace agingsim::serve
