#pragma once

// The agingd server: Unix-domain socket transport, admission control and
// worker scheduling wrapped around serve::Service (docs/SERVING.md).
//
// Thread layout:
//   1 listener      accept loop, woken for shutdown via a self-pipe;
//   1 per connection frame reader — answers control requests inline (so
//                   health/status respond even when every worker is busy)
//                   and routes queueable work through the admission queue;
//   N workers       pop admitted jobs, execute on Service, reply;
//   1 deadline watchdog
//                   cancels each job's token when its deadline expires,
//                   whether the job is still queued or already running.
//
// Drain (SIGTERM / shutdown request): stop accepting connections, reject
// new work with `draining`, let queued + in-flight work finish; after
// `drain_grace_ms` cancel outstanding tokens, which checkpoints running
// campaigns. wait() returns only when every thread has joined, so the
// caller can flush observability artifacts and exit cleanly.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/robust_runner.hpp"
#include "src/serve/admission.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/service.hpp"

namespace agingsim::serve {

struct ServerConfig {
  std::string socket_path;
  int workers = 4;
  AdmissionConfig admission{};
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 disables the default (requests can still opt in).
  std::int64_t default_deadline_ms = 30'000;
  /// How long drain waits for queued + in-flight work before cancelling.
  std::int64_t drain_grace_ms = 5'000;
  std::size_t cache_budget_bytes = 64u << 20;
  /// Once a frame *starts* arriving it must complete within this window,
  /// or the connection is closed — the slow-loris defence (a client may
  /// idle between frames forever, but never mid-frame). 0 disables.
  std::int64_t read_deadline_ms = 10'000;
  /// Closes connections idle (no partial frame, nothing in flight) longer
  /// than this. 0 (default) keeps the historical behaviour: idle
  /// connections live until the peer hangs up or the daemon drains.
  std::int64_t idle_timeout_ms = 0;
  /// Per-connection cap on queued + running requests; pipelining past it
  /// is rejected with `overloaded` before touching the admission queue.
  /// 0 disables.
  std::uint32_t max_inflight_per_conn = 32;
  ServiceConfig service{};
};

/// Cancels CancelTokens at their deadline. Also the drain hammer: after
/// the grace period every live token is cancelled at once.
class DeadlineRegistry {
 public:
  DeadlineRegistry();
  ~DeadlineRegistry();

  void arm(std::chrono::steady_clock::time_point deadline,
           std::shared_ptr<runtime::CancelToken> token);
  /// Registers a token with no deadline (drain cancellation only).
  void track(std::shared_ptr<runtime::CancelToken> token);
  /// Schedules cancellation of every live token at `when` — the drain
  /// grace hammer. Runs on the registry thread; no extra thread to race
  /// the shutdown sequence.
  void cancel_all_at(std::chrono::steady_clock::time_point when);
  void cancel_all();
  void stop();

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::weak_ptr<runtime::CancelToken> token;
  };
  void loop();
  void cancel_all_locked();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;  // unsorted; the loop scans for the minimum
  std::chrono::steady_clock::time_point hammer_ =
      std::chrono::steady_clock::time_point::max();
  bool stop_ = false;
  std::thread thread_;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the thread set. False (with `*error`
  /// filled) on bind/listen failure.
  bool start(std::string* error);

  /// Begins graceful drain; idempotent, safe from any thread (including a
  /// worker executing the `shutdown` method).
  void drain();

  /// Blocks until drain completes and every thread has joined.
  void wait();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }
  const ServerConfig& config() const noexcept { return config_; }
  AgedStateCache& cache() noexcept { return cache_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    /// Fallback fairness identity for requests without a `client_id`
    /// ("conn-<n>"): anonymous clients are then fair per connection.
    std::string peer_id;
    /// Queued + running requests from this connection (the pipelining cap).
    std::atomic<std::uint32_t> inflight{0};
    std::mutex write_mutex;
    /// The fd closes only when the last shared_ptr drops: queued and
    /// in-flight Jobs hold references, so a worker's late reply can never
    /// write to an fd number the kernel has already reused for another
    /// client (the connection thread exiting first is the common case).
    ~Connection();
    /// Serialized writes: worker replies and inline control replies
    /// interleave on the same stream.
    bool send(std::string_view payload);
    void shutdown_read() noexcept;
  };

  struct Job {
    Request request;
    std::string client;  ///< resolved fairness identity
    std::shared_ptr<Connection> conn;
    std::shared_ptr<runtime::CancelToken> token;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  ///< max() = none
  };

  /// One reader thread per live connection plus a done flag the thread
  /// sets on exit, so the listener can join finished threads instead of
  /// accumulating one joinable entry per connection ever accepted.
  struct ConnThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void listener_loop();
  void reap_connection_threads();
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_control(Connection& conn, const Request& request);
  void dispatch_queueable(Connection& conn, std::shared_ptr<Connection> self,
                          Request request);
  std::string status_json() const;
  void wake_listener() noexcept;

  ServerConfig config_;
  AgedStateCache cache_;
  Service service_;
  AdmissionQueue<Job> queue_;
  DeadlineRegistry deadlines_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint64_t conn_counter_ = 0;  ///< listener thread only
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> in_flight_{0};

  std::mutex conns_mutex_;
  std::vector<std::weak_ptr<Connection>> conns_;

  std::thread listener_;
  std::vector<std::thread> workers_;
  std::mutex conn_threads_mutex_;
  std::vector<ConnThread> conn_threads_;

  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace agingsim::serve
