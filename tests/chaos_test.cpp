#include "src/runtime/chaos.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

namespace agingsim::runtime {
namespace {

TEST(ChaosPolicyTest, ParsesSeedRateAndDefaultsToTransient) {
  const auto p = ChaosPolicy::parse("42:0.25");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 42u);
  EXPECT_DOUBLE_EQ(p->rate, 0.25);
  EXPECT_TRUE(p->throw_transient);
  EXPECT_FALSE(p->throw_permanent);
  EXPECT_FALSE(p->stall);
  EXPECT_FALSE(p->crash);
  EXPECT_TRUE(p->enabled());
}

TEST(ChaosPolicyTest, ParsesExplicitActionSet) {
  const auto p = ChaosPolicy::parse("0x10:1:psc");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 0x10u);
  // An explicit actions field replaces the default, it does not extend it.
  EXPECT_FALSE(p->throw_transient);
  EXPECT_TRUE(p->throw_permanent);
  EXPECT_TRUE(p->stall);
  EXPECT_TRUE(p->crash);
}

TEST(ChaosPolicyTest, RejectsMalformedSpecsWithDiagnostic) {
  const char* bad[] = {"",        "7",       "x:0.5", "7:nope", "7:1.5",
                       "7:-0.1",  "7:0.5:z", "7:0.5:", "7:0.5:t:extra"};
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(ChaosPolicy::parse(spec, &error).has_value()) << spec;
    EXPECT_NE(error.find("chaos spec"), std::string::npos) << spec;
  }
}

TEST(ChaosPolicyTest, ZeroRateIsDisabledAndDecidesNone) {
  const auto p = ChaosPolicy::parse("9:0");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->enabled());
  for (std::uint64_t unit = 0; unit < 50; ++unit) {
    EXPECT_EQ(p->decide(unit, 0), ChaosAction::kNone);
  }
  EXPECT_EQ(p->crash_after_units(0), 0u);
}

TEST(ChaosPolicyTest, DecisionsAreDeterministic) {
  const auto p = ChaosPolicy::parse("1234:0.5:tps");
  ASSERT_TRUE(p.has_value());
  for (std::uint64_t unit = 0; unit < 100; ++unit) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(p->decide(unit, attempt), p->decide(unit, attempt));
    }
  }
}

TEST(ChaosPolicyTest, RateControlsInjectionFrequency) {
  const auto count_injections = [](double rate) {
    ChaosPolicy p;
    p.seed = 77;
    p.rate = rate;
    int injected = 0;
    for (std::uint64_t unit = 0; unit < 2000; ++unit) {
      if (p.decide(unit, 0) != ChaosAction::kNone) ++injected;
    }
    return injected;
  };
  EXPECT_EQ(count_injections(0.0), 0);
  EXPECT_EQ(count_injections(1.0), 2000);
  const int at_quarter = count_injections(0.25);
  EXPECT_GT(at_quarter, 2000 / 4 - 150);
  EXPECT_LT(at_quarter, 2000 / 4 + 150);
}

TEST(ChaosPolicyTest, DecisionVariesAcrossAttemptsSoRetriesCanSucceed) {
  // With rate < 1 a unit that drew chaos on attempt 0 must be able to draw
  // kNone on a later attempt — otherwise transient chaos could never
  // converge and would turn into de-facto permanent failure.
  const auto p = ChaosPolicy::parse("5:0.5");
  ASSERT_TRUE(p.has_value());
  int recovered = 0;
  for (std::uint64_t unit = 0; unit < 200; ++unit) {
    if (p->decide(unit, 0) == ChaosAction::kNone) continue;
    for (int attempt = 1; attempt < 6; ++attempt) {
      if (p->decide(unit, attempt) == ChaosAction::kNone) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GT(recovered, 50);
}

TEST(ChaosPolicyTest, CrashScheduleIsPositiveAndEpochDependent) {
  const auto p = ChaosPolicy::parse("21:0.1:c");
  ASSERT_TRUE(p.has_value());
  std::map<std::uint64_t, int> seen;
  for (std::uint64_t epoch = 0; epoch < 64; ++epoch) {
    const std::uint64_t after = p->crash_after_units(epoch);
    ASSERT_GE(after, 1u);   // always at least one fresh unit per run
    ASSERT_LE(after, 10u);  // span tracks 1/rate
    ++seen[after];
  }
  // The schedule must actually vary with the epoch (fresh draw per resume).
  EXPECT_GT(seen.size(), 1u);
}

TEST(ChaosPolicyTest, FromEnvDisabledWhenUnset) {
  ::unsetenv("AGINGSIM_CHAOS");
  EXPECT_FALSE(ChaosPolicy::from_env().enabled());
}

TEST(ChaosPolicyTest, FromEnvParsesWellFormedSpec) {
  ::setenv("AGINGSIM_CHAOS", "31:0.125:ts", 1);
  const ChaosPolicy p = ChaosPolicy::from_env();
  EXPECT_EQ(p.seed, 31u);
  EXPECT_DOUBLE_EQ(p.rate, 0.125);
  EXPECT_TRUE(p.stall);
  ::unsetenv("AGINGSIM_CHAOS");
}

TEST(ChaosPolicyTest, FromEnvIgnoresMalformedSpec) {
  ::setenv("AGINGSIM_CHAOS", "complete nonsense", 1);
  EXPECT_FALSE(ChaosPolicy::from_env().enabled());
  ::unsetenv("AGINGSIM_CHAOS");
}

}  // namespace
}  // namespace agingsim::runtime
