// Tests for the byte-budgeted LRU cache of aged corners
// (src/serve/cache.hpp).

#include "src/serve/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace agingsim::serve {
namespace {

// A corner whose byte_size() lands near `approx_bytes` (sizeof(AgedCorner)
// plus the delay-scale payload).
AgedCorner corner_of_bytes(std::size_t approx_bytes, double tag) {
  AgedCorner c;
  c.mean_dvth_v = tag;
  const std::size_t base = sizeof(AgedCorner);
  const std::size_t payload = approx_bytes > base ? approx_bytes - base : 0;
  c.delay_scales.assign(payload / sizeof(double), tag);
  return c;
}

TEST(ServeCache, MissThenHit) {
  AgedStateCache cache(1 << 20);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, corner_of_bytes(1024, 0.5));
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_dvth_v, 0.5);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ServeCache, ContainsDoesNotTouchCountersOrRecency) {
  AgedStateCache cache(8192);
  cache.put(1, corner_of_bytes(2048, 1.0));
  cache.put(2, corner_of_bytes(2048, 2.0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(99));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  // contains(1) must not have promoted key 1: fill the budget and check
  // that 1 (the LRU entry) is the one evicted.
  cache.put(3, corner_of_bytes(6000, 3.0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(ServeCache, EvictsLeastRecentlyUsedToBudget) {
  AgedStateCache cache(8192);
  cache.put(1, corner_of_bytes(3000, 1.0));
  cache.put(2, corner_of_bytes(3000, 2.0));
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(cache.get(1).has_value());
  cache.put(3, corner_of_bytes(3000, 3.0));  // must evict 2, not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes, s.budget_bytes);
}

TEST(ServeCache, OversizeEntryIsDroppedNotWedgedIn) {
  AgedStateCache cache(4096);
  cache.put(1, corner_of_bytes(1024, 1.0));
  cache.put(2, corner_of_bytes(64 * 1024, 2.0));  // larger than the budget
  EXPECT_FALSE(cache.contains(2));
  // The resident entry was not sacrificed for an uncacheable one.
  EXPECT_TRUE(cache.contains(1));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.rejected_oversize, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServeCache, ReplaceUpdatesBytesAndValue) {
  AgedStateCache cache(1 << 20);
  cache.put(7, corner_of_bytes(4096, 1.0));
  const std::size_t before = cache.stats().bytes;
  cache.put(7, corner_of_bytes(1024, 9.0));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_LT(s.bytes, before);
  EXPECT_DOUBLE_EQ(cache.get(7)->mean_dvth_v, 9.0);
}

TEST(ServeCache, ClearResetsContentsButKeepsBudget) {
  AgedStateCache cache(4096);
  cache.put(1, corner_of_bytes(1024, 1.0));
  cache.clear();
  EXPECT_FALSE(cache.contains(1));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.budget_bytes, 4096u);
}

TEST(ServeCache, GetCopiesOutSoEvictionCannotInvalidate) {
  AgedStateCache cache(8192);
  cache.put(1, corner_of_bytes(3000, 1.5));
  auto copy = cache.get(1);
  ASSERT_TRUE(copy.has_value());
  // Evict key 1 entirely; the copy must stay intact.
  cache.put(2, corner_of_bytes(7000, 2.0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_DOUBLE_EQ(copy->mean_dvth_v, 1.5);
  EXPECT_FALSE(copy->delay_scales.empty());
}

}  // namespace
}  // namespace agingsim::serve
