// End-to-end tests for the shadow-window hold analysis (timing.hold-window)
// and the automatic HoldRepair pass: an injected short path that every
// legacy max-side rule accepts must be flagged by the new min-corner rule
// and then fixed by buffer insertion, with logic equivalence proved through
// the batch timing kernel.

#include "src/lint/repair.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/aging/prob_propagation.hpp"
#include "src/aging/scenario.hpp"
#include "src/lint/engine.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

std::vector<lint::Diagnostic> diags_for(
    const std::vector<lint::Diagnostic>& diags, const std::string& rule,
    lint::Severity severity) {
  std::vector<lint::Diagnostic> hits;
  for (const lint::Diagnostic& d : diags) {
    if (d.rule == rule && d.severity == severity) hits.push_back(d);
  }
  return hits;
}

/// Fixture: a deliberately fast Razor-protected output ("p_fast", one AND)
/// next to a slow one riding an inverter chain sized so the fast output's
/// earliest arrival sits far inside the shadow sampling window, while every
/// *max*-side quantity (critical path, shadow-window ceiling, coverage) is
/// comfortably legal. The legacy rules are structurally blind to it.
struct ShortPathFixture {
  NetlistBuilder nb;
  NetId slow_out, fast_out;
  lint::TimingContext timing;
  const TechLibrary& tech = default_tech_library();

  ShortPathFixture() {
    const NetId a = nb.input("a");
    const NetId b = nb.input("b");
    const NetId c = nb.input("c");
    NetId x = a;
    for (int i = 0; i < 40; ++i) x = nb.inv(x);
    slow_out = x;
    fast_out = nb.and2(b, c);
    nb.netlist().mark_output(slow_out, "p_slow");
    nb.netlist().mark_output(fast_out, "p_fast");

    timing.tech = &tech;  // no aging scenario: single fresh corner
    // Two-cycle AHL budget exactly covers the chain, as aginglint's auto
    // period would pick it.
    const double crit = run_sta(nb.netlist(), tech).critical_path_ps;
    timing.period_ps = crit / timing.max_hold_cycles + 1.0;
  }

  lint::LintReport lint() const {
    lint::LintContext ctx;
    ctx.netlist = &nb.netlist();
    ctx.timing = &timing;
    return lint::LintEngine().run(ctx);
  }
};

TEST(HoldWindowRuleTest, LegacyMaxOnlyRulesMissTheShortPath) {
  ShortPathFixture fx;
  ASSERT_FALSE(fx.timing.check_hold);
  const lint::LintReport report = fx.lint();
  // Every legacy timing rule passes the design...
  EXPECT_EQ(report.errors(), 0u) << report.summary();
  for (const char* rule : {"timing.razor-coverage", "timing.shadow-window",
                           "timing.hold-count"}) {
    EXPECT_TRUE(diags_for(report.diagnostics, rule, lint::Severity::kError)
                    .empty())
        << rule;
  }
  // ...and the hold rule records that it was not asked to run.
  const auto skipped = diags_for(report.diagnostics, "timing.hold-window",
                                 lint::Severity::kInfo);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].message.find("skipped"), std::string::npos);
}

TEST(HoldWindowRuleTest, FlagsTheInjectedShortPathWhenEnabled) {
  ShortPathFixture fx;
  fx.timing.check_hold = true;
  const lint::LintReport report = fx.lint();
  const auto errors = diags_for(report.diagnostics, "timing.hold-window",
                                lint::Severity::kError);
  ASSERT_EQ(errors.size(), 1u) << report.summary();
  EXPECT_NE(errors[0].message.find("p_fast"), std::string::npos)
      << errors[0].message;
  EXPECT_NE(errors[0].message.find("shadow sampling window"),
            std::string::npos);
  EXPECT_EQ(errors[0].net, fx.fast_out);
}

TEST(HoldWindowRuleTest, UnprotectedOutputsAreExempt) {
  ShortPathFixture fx;
  fx.timing.check_hold = true;
  fx.timing.razor_protected.assign(2, 1);
  fx.timing.razor_protected[1] = 0;  // sever p_fast's Razor tap
  const lint::LintReport report = fx.lint();
  EXPECT_TRUE(diags_for(report.diagnostics, "timing.hold-window",
                        lint::Severity::kError)
                  .empty());
}

TEST(HoldRepairTest, EndpointPaddingFixesTheInjectedShortPath) {
  ShortPathFixture fx;
  fx.timing.check_hold = true;
  ASSERT_GT(fx.lint().errors(), 0u);

  const lint::HoldRepairResult r =
      lint::repair_hold(fx.nb.netlist(), fx.tech, fx.timing);
  EXPECT_TRUE(r.hold_clean);
  EXPECT_TRUE(r.max_clean);
  EXPECT_TRUE(r.equivalence.ok());
  EXPECT_TRUE(r.clean());
  EXPECT_GT(r.buffers_inserted, 0);
  EXPECT_GE(r.passes, 1);
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_EQ(r.outputs[1].name, "p_fast");
  EXPECT_GT(r.outputs[1].buffers_inserted, 0);
  EXPECT_LT(r.outputs[1].min_before_ps, r.required_min_ps);
  EXPECT_GE(r.outputs[1].min_after_ps, r.required_min_ps);
  EXPECT_EQ(r.outputs[0].buffers_inserted, 0);  // slow output untouched

  // The full rule set — including the hold rule — is clean afterwards.
  const lint::LintReport after = fx.lint();
  EXPECT_EQ(after.errors(), 0u) << after.summary();
}

// A short path *merged into* a setup-critical output: endpoint padding is
// infeasible (the output's max arrival already sits at the AHL budget), so
// the repair must insert upstream, on the fast fanin edge only.
TEST(HoldRepairTest, WideSpanOutputRepairsUpstream) {
  NetlistBuilder nb;
  const TechLibrary& tech = default_tech_library();
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  NetId x = a;
  for (int i = 0; i < 40; ++i) x = nb.inv(x);
  const NetId y = nb.or2(x, b);  // fast arc b, slow arc x, one output
  nb.netlist().mark_output(y, "y");

  lint::TimingContext timing;
  timing.tech = &tech;
  const double crit = run_sta(nb.netlist(), tech).critical_path_ps;
  timing.period_ps = crit / timing.max_hold_cycles + 1.0;
  timing.check_hold = true;

  const double span =
      crit - tech.delay(CellKind::kOr2);  // max - min before repair
  ASSERT_GT(span, timing.period_ps);  // endpoint padding provably infeasible

  const lint::HoldRepairResult r =
      lint::repair_hold(nb.netlist(), tech, timing);
  EXPECT_TRUE(r.hold_clean);
  EXPECT_TRUE(r.max_clean);
  EXPECT_TRUE(r.equivalence.ok());
  EXPECT_GT(r.buffers_inserted, 0);
  // Max side must not have moved past the budget: the slow arc was already
  // within 2 ps of it, so insertion must have avoided that path.
  EXPECT_LE(r.outputs[0].max_after_ps,
            timing.period_ps * timing.max_hold_cycles + 1e-6);
  EXPECT_GE(r.outputs[0].min_after_ps, r.required_min_ps);

  lint::LintContext ctx;
  ctx.netlist = &nb.netlist();
  ctx.timing = &timing;
  EXPECT_EQ(lint::LintEngine().run(ctx).errors(), 0u);
}

// With a one-cycle budget and a period chosen so min must equal max to the
// sub-buffer granularity, no legal insertion exists: the pass must stop and
// report the failure honestly instead of looping or lying.
TEST(HoldRepairTest, UnrepairableDesignReportsHonestly) {
  NetlistBuilder nb;
  const TechLibrary& tech = default_tech_library();
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId y = nb.and2(a, b);
  nb.netlist().mark_output(y, "y");

  lint::TimingContext timing;
  timing.tech = &tech;
  timing.max_hold_cycles = 1;
  timing.period_ps =
      tech.delay(CellKind::kAnd2) + 0.5 * tech.delay(CellKind::kBuf);
  timing.check_hold = true;

  const lint::HoldRepairResult r =
      lint::repair_hold(nb.netlist(), tech, timing);
  EXPECT_FALSE(r.hold_clean);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.buffers_inserted, 0);
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_FALSE(r.outputs[0].hold_ok_after);
  EXPECT_LT(r.outputs[0].min_after_ps, r.required_min_ps);
  // The netlist was not altered (no partial, pointless insertions)...
  EXPECT_EQ(nb.netlist().num_gates(), 1u);
  // ...and equivalence over the identity edit trivially holds.
  EXPECT_TRUE(r.equivalence.ok());
}

// The acceptance scenario end to end on a real generated multiplier with a
// real aging sweep: stock designs genuinely violate the hold window (p[0]
// is a single AND gate), repair makes the full multi-corner analysis clean,
// and the repaired netlist still multiplies (consistency rule + equivalence
// through the batch kernel).
TEST(HoldRepairTest, StockMultiplierRepairsToCleanAcrossAgedCorners) {
  const TechLibrary& tech = default_tech_library();
  MultiplierNetlist mult = build_multiplier(MultiplierArch::kColumnBypass, 8);
  const AgingScenario aging(mult.netlist, tech, BtiModel::calibrated(tech),
                            analytic_stress(mult.netlist));

  lint::TimingContext timing;
  timing.tech = &tech;
  timing.aging = &aging;
  timing.sweep_years = {0.0, 3.5, 7.0};
  timing.check_hold = true;
  const StaResult aged =
      run_sta(mult.netlist, tech, aging.delay_scales_at(7.0));
  timing.period_ps = aged.critical_path_ps / timing.max_hold_cycles + 1.0;

  // Pre-repair: the hold rule fires (p[0]'s min arrival is one AND delay),
  // the legacy rules do not.
  {
    lint::LintContext ctx;
    ctx.netlist = &mult.netlist;
    ctx.multiplier = &mult;
    ctx.timing = &timing;
    const lint::LintReport before = lint::LintEngine().run(ctx);
    EXPECT_FALSE(diags_for(before.diagnostics, "timing.hold-window",
                           lint::Severity::kError)
                     .empty());
    for (const char* rule : {"timing.razor-coverage", "timing.shadow-window",
                             "timing.hold-count"}) {
      EXPECT_TRUE(diags_for(before.diagnostics, rule, lint::Severity::kError)
                      .empty())
          << rule;
    }
  }

  const lint::HoldRepairResult r =
      lint::repair_hold(mult.netlist, tech, timing);
  EXPECT_TRUE(r.hold_clean);
  EXPECT_TRUE(r.max_clean);
  EXPECT_TRUE(r.equivalence.ok());
  EXPECT_GT(r.buffers_inserted, 0);

  // Re-lint the repaired netlist with an aging scenario re-extracted on it
  // (the original's overlays are sized for the pre-repair gate count).
  const AgingScenario repaired_aging(mult.netlist, tech,
                                     BtiModel::calibrated(tech),
                                     analytic_stress(mult.netlist));
  lint::TimingContext after_timing = timing;
  after_timing.aging = &repaired_aging;
  lint::LintContext ctx;
  ctx.netlist = &mult.netlist;
  ctx.multiplier = &mult;
  ctx.timing = &after_timing;
  const lint::LintReport after = lint::LintEngine().run(ctx);
  EXPECT_EQ(after.errors(), 0u) << after.summary();
}

}  // namespace
}  // namespace agingsim
