// The parallel executor's determinism contract, end to end: a period sweep,
// a fault campaign and their JSON serializations must be byte-identical for
// any thread count (explicit pool sizes and AGINGSIM_THREADS alike).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/fault/campaign.hpp"
#include "src/obs/metrics.hpp"
#include "src/report/json.hpp"
#include "src/runtime/checkpoint.hpp"
#include "src/runtime/robust_runner.hpp"

namespace agingsim {
namespace {

using bench::linspace;
using bench::sweep_periods;
using bench::tech;
using bench::workload;

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* old = std::getenv("AGINGSIM_THREADS")) old_ = old;
    ::setenv("AGINGSIM_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (old_.has_value()) {
      ::setenv("AGINGSIM_THREADS", old_->c_str(), 1);
    } else {
      ::unsetenv("AGINGSIM_THREADS");
    }
  }

 private:
  std::optional<std::string> old_;
};

std::string stats_json(std::span<const RunStats> stats) {
  JsonWriter json;
  json.begin_array();
  for (const RunStats& s : stats) {
    json.begin_object();
    json.key("period_ps").value(s.period_ps);
    json.key("ops").value(s.ops);
    json.key("one_cycle_ops").value(s.one_cycle_ops);
    json.key("errors").value(s.errors);
    json.key("avg_latency_ps").value(s.avg_latency_ps);
    json.key("avg_power_mw").value(s.avg_power_mw);
    json.key("edp_mw_ns2").value(s.edp_mw_ns2);
    json.key("total_energy_fj").value(s.total_energy_fj);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

TEST(ParallelDeterminismTest, SweepIsIdenticalAcrossExplicitPoolSizes) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  const auto trace = compute_op_trace(m, tech(), workload(16, 300));
  const auto periods = linspace(600.0, 1300.0, 6);

  exec::ThreadPool serial(1);
  const auto base = sweep_periods(m, trace, periods, 7, true, 0.0, &serial);
  ASSERT_EQ(base.size(), periods.size());
  for (const int threads : {2, 4, 8}) {
    exec::ThreadPool pool(threads);
    const auto got = sweep_periods(m, trace, periods, 7, true, 0.0, &pool);
    EXPECT_TRUE(got == base) << threads << "-thread sweep diverged";
    EXPECT_EQ(stats_json(got), stats_json(base));
  }
}

TEST(ParallelDeterminismTest, SweepHonorsThreadsEnvIdentically) {
  const MultiplierNetlist m = build_row_bypass_multiplier(16);
  const auto trace = compute_op_trace(m, tech(), workload(16, 200));
  const auto periods = linspace(600.0, 1300.0, 5);

  const auto run_with_env = [&](const char* env) {
    ScopedThreadsEnv scoped(env);
    return sweep_periods(m, trace, periods, 7, true);  // one-shot pool path
  };
  const auto one = run_with_env("1");
  const auto eight = run_with_env("8");
  EXPECT_TRUE(one == eight);
  EXPECT_EQ(stats_json(one), stats_json(eight));
}

TEST(ParallelDeterminismTest, FaultCampaignIsIdenticalAcrossThreadCounts) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  VlSystemConfig system;
  system.period_ps = 900.0;
  system.ahl.width = 16;
  system.ahl.skip = 7;
  FaultCampaignConfig config;
  config.kind = FaultKind::kStuckAt0;
  config.trials = 5;
  config.sites_per_trial = 2;
  const FaultCampaign campaign(m, tech(), system, config);
  const auto patterns = workload(16, 200);

  const auto run_with_env = [&](const char* env) {
    ScopedThreadsEnv scoped(env);
    return campaign.run(patterns);
  };
  const FaultCampaignStats one = run_with_env("1");
  const FaultCampaignStats eight = run_with_env("8");
  EXPECT_TRUE(one == eight);
  EXPECT_EQ(one.trials, 5u);
  EXPECT_EQ(one.ops, 5u * 200u);
}

TEST(ParallelDeterminismTest, BatchKernelCampaignIsIdenticalAcrossThreads) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  VlSystemConfig system;
  system.period_ps = 900.0;
  system.ahl.width = 16;
  system.ahl.skip = 7;
  FaultCampaignConfig config;
  config.kind = FaultKind::kDelayOutlier;
  config.trials = 5;
  config.sites_per_trial = 2;
  const FaultCampaign campaign(m, tech(), system, config);
  const auto patterns = workload(16, 150);

  const auto run_with = [&](const char* threads, SimKernel kernel) {
    ScopedThreadsEnv scoped(threads);
    return campaign.run(patterns, CampaignRunOptions{.kernel = kernel});
  };
  const FaultCampaignStats one = run_with("1", SimKernel::kBatch);
  const FaultCampaignStats eight = run_with("8", SimKernel::kBatch);
  EXPECT_TRUE(one == eight) << "batch campaign diverged across thread counts";
  // The kernels are bit-identical, so the whole campaign is too: the batch
  // word kernel must reproduce the sparse event-driven statistics exactly.
  const FaultCampaignStats sparse = run_with("8", SimKernel::kSparse);
  EXPECT_TRUE(one == sparse) << "batch campaign diverged from sparse kernel";
  EXPECT_EQ(one.trials, 5u);
  EXPECT_GT(one.ops, 0u);
}

// A campaign killed mid-run leaves the checkpoint store with only the units
// that finished (persist is atomic per unit — a SIGKILL can tear nothing
// else). Emulated here by erasing the trailing units' files; the resumed
// campaign must restore the survivors, recompute only the missing units,
// and land on byte-identical statistics — even when the resume switches
// kernel and thread count, since neither is part of the config digest.
TEST(ParallelDeterminismTest, BatchCampaignResumesIdenticallyAfterKill) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "agingsim_batch_resume_test";
  fs::remove_all(dir);

  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  VlSystemConfig system;
  system.period_ps = 900.0;
  system.ahl.width = 16;
  system.ahl.skip = 7;
  FaultCampaignConfig config;
  config.kind = FaultKind::kStuckAt1;
  config.trials = 6;
  config.sites_per_trial = 2;
  const FaultCampaign campaign(m, tech(), system, config);
  const auto patterns = workload(16, 120);
  const std::uint64_t digest = campaign.config_digest(patterns);

  runtime::RunnerConfig fast;
  fast.max_retries = 0;
  fast.backoff_base = std::chrono::milliseconds(1);

  // Uninterrupted single-thread sparse run: the golden statistics, and the
  // full set of per-unit checkpoints (baseline + trials = 7 files).
  FaultCampaignStats golden;
  {
    ScopedThreadsEnv scoped("1");
    runtime::CheckpointStore store(dir, digest);
    store.load();
    runtime::RunnerConfig cfg = fast;
    cfg.checkpoints = &store;
    runtime::RobustRunner runner(cfg);
    golden = campaign.run(
        patterns,
        CampaignRunOptions{.kernel = SimKernel::kSparse, .runner = &runner});
  }

  // "Kill" after unit 2: units 3.. never persisted.
  std::size_t erased = 0;
  for (std::uint64_t unit = 3; unit <= 6; ++unit) {
    char name[32];
    std::snprintf(name, sizeof name, "unit-%06llu.ckpt",
                  static_cast<unsigned long long>(unit));
    erased += fs::remove(dir / name) ? 1u : 0u;
  }
  ASSERT_EQ(erased, 4u);

  // Resume on 8 threads under the batch kernel: restored prefix + freshly
  // computed tail must reproduce the golden statistics exactly.
  {
    ScopedThreadsEnv scoped("8");
    runtime::CheckpointStore store(dir, digest);
    ASSERT_EQ(store.load().loaded, 3u);  // baseline + units 1, 2
    runtime::RunnerConfig cfg = fast;
    cfg.checkpoints = &store;
    runtime::RobustRunner runner(cfg);
    runtime::RunReport report;
    const FaultCampaignStats resumed = campaign.run(
        patterns, CampaignRunOptions{.kernel = SimKernel::kBatch,
                                     .runner = &runner,
                                     .report = &report});
    EXPECT_TRUE(resumed == golden) << "resumed campaign diverged";
    EXPECT_EQ(report.restored, 3u);
    EXPECT_EQ(report.computed, 4u);
  }
  fs::remove_all(dir);
}

TEST(ParallelDeterminismTest, MetricsSnapshotIsIdenticalAcrossThreadCounts) {
  const MultiplierNetlist m = build_column_bypass_multiplier(16);
  VlSystemConfig system;
  system.period_ps = 900.0;
  system.ahl.width = 16;
  system.ahl.skip = 7;
  FaultCampaignConfig config;
  config.kind = FaultKind::kStuckAt0;
  config.trials = 4;
  config.sites_per_trial = 2;
  const FaultCampaign campaign(m, tech(), system, config);
  const auto patterns = workload(16, 150);

  obs::set_metrics_enabled(true);
  const auto snapshot_with_env = [&](const char* env) {
    ScopedThreadsEnv scoped(env);
    obs::reset_metrics();
    (void)campaign.run(patterns);
    // Deterministic-only: wall-time metrics (pool.worker_busy_us,
    // pool.queue_depth, ...) are scheduling-dependent by design and
    // excluded from the contract.
    return obs::metrics_json(/*deterministic_only=*/true);
  };
  const std::string one = snapshot_with_env("1");
  const std::string eight = snapshot_with_env("8");
  obs::set_metrics_enabled(false);

  EXPECT_EQ(one, eight);
  // The snapshot actually observed the campaign, not an empty registry.
  EXPECT_NE(one.find("\"sim.steps_dense\""), std::string::npos) << one;
  EXPECT_NE(one.find("\"campaign.trials_completed\""), std::string::npos);
  EXPECT_NE(one.find("\"pool.jobs\""), std::string::npos);
  EXPECT_EQ(one.find("\"pool.worker_busy_us\""), std::string::npos) << one;
}

}  // namespace
}  // namespace agingsim
