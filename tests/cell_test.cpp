#include "src/netlist/cell.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace agingsim {
namespace {

Logic ev(CellKind kind, std::initializer_list<Logic> ins,
         Logic prev = Logic::kX) {
  std::vector<Logic> v(ins);
  return eval_cell(kind, v, prev);
}

constexpr Logic k0 = Logic::kZero;
constexpr Logic k1 = Logic::kOne;
constexpr Logic kX = Logic::kX;
constexpr Logic kZ = Logic::kZ;

TEST(CellTest, TraitsAreConsistent) {
  for (int k = 0; k < kNumCellKinds; ++k) {
    const CellTraits& t = cell_traits(static_cast<CellKind>(k));
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.num_inputs, 0);
    EXPECT_LE(t.num_inputs, 3);
    EXPECT_GT(t.transistor_count, 0);
  }
  EXPECT_EQ(cell_traits(CellKind::kMux2).num_inputs, 3);
  EXPECT_EQ(cell_traits(CellKind::kTie0).num_inputs, 0);
}

TEST(CellTest, BasicGatesTruthTables) {
  EXPECT_EQ(ev(CellKind::kBuf, {k1}), k1);
  EXPECT_EQ(ev(CellKind::kInv, {k1}), k0);
  EXPECT_EQ(ev(CellKind::kAnd2, {k1, k1}), k1);
  EXPECT_EQ(ev(CellKind::kAnd2, {k1, k0}), k0);
  EXPECT_EQ(ev(CellKind::kNand2, {k1, k1}), k0);
  EXPECT_EQ(ev(CellKind::kNand2, {k0, kX}), k1);
  EXPECT_EQ(ev(CellKind::kOr2, {k0, k0}), k0);
  EXPECT_EQ(ev(CellKind::kOr2, {k0, k1}), k1);
  EXPECT_EQ(ev(CellKind::kNor2, {k0, k0}), k1);
  EXPECT_EQ(ev(CellKind::kXor2, {k1, k0}), k1);
  EXPECT_EQ(ev(CellKind::kXor2, {k1, k1}), k0);
  EXPECT_EQ(ev(CellKind::kXnor2, {k1, k1}), k1);
  EXPECT_EQ(ev(CellKind::kAnd3, {k1, k1, k1}), k1);
  EXPECT_EQ(ev(CellKind::kAnd3, {k1, k0, kX}), k0);
  EXPECT_EQ(ev(CellKind::kOr3, {k0, k0, k1}), k1);
  EXPECT_EQ(ev(CellKind::kTie0, {}), k0);
  EXPECT_EQ(ev(CellKind::kTie1, {}), k1);
}

TEST(CellTest, MuxSelectsAndHandlesUnknownSelect) {
  // in = {d0, d1, sel}
  EXPECT_EQ(ev(CellKind::kMux2, {k0, k1, k0}), k0);
  EXPECT_EQ(ev(CellKind::kMux2, {k0, k1, k1}), k1);
  // Unknown select but agreeing data: output is known.
  EXPECT_EQ(ev(CellKind::kMux2, {k1, k1, kX}), k1);
  EXPECT_EQ(ev(CellKind::kMux2, {k0, k1, kX}), kX);
}

TEST(CellTest, TbufDrivesWhenEnabled) {
  EXPECT_EQ(ev(CellKind::kTbuf, {k1, k1}), k1);
  EXPECT_EQ(ev(CellKind::kTbuf, {k0, k1}), k0);
  EXPECT_EQ(ev(CellKind::kTbuf, {kX, k1}), kX);
}

TEST(CellTest, TbufKeepsPreviousValueWhenDisabled) {
  EXPECT_EQ(ev(CellKind::kTbuf, {k1, k0}, /*prev=*/k0), k0);
  EXPECT_EQ(ev(CellKind::kTbuf, {k0, k0}, /*prev=*/k1), k1);
  // Never driven: stays floating.
  EXPECT_EQ(ev(CellKind::kTbuf, {k1, k0}, /*prev=*/kZ), kZ);
  // Unknown enable: pessimistic X.
  EXPECT_EQ(ev(CellKind::kTbuf, {k1, kX}, /*prev=*/k0), kX);
}

// Property: for every 2-input symmetric gate, evaluation is symmetric.
TEST(CellTest, TwoInputGatesAreSymmetric) {
  const Logic vals[] = {k0, k1, kX, kZ};
  const CellKind kinds[] = {CellKind::kAnd2, CellKind::kNand2, CellKind::kOr2,
                            CellKind::kNor2, CellKind::kXor2,
                            CellKind::kXnor2};
  for (CellKind kind : kinds) {
    for (Logic a : vals) {
      for (Logic b : vals) {
        EXPECT_EQ(ev(kind, {a, b}), ev(kind, {b, a}))
            << cell_traits(kind).name;
      }
    }
  }
}

}  // namespace
}  // namespace agingsim
