#include "src/report/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace agingsim {
namespace {

TEST(JsonWriterTest, EmitsOrderedObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("vlcb");
  json.key("width").value(16);
  json.key("ratio").value(0.5);
  json.key("ok").value(true);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n  \"name\": \"vlcb\",\n  \"width\": 16,\n"
            "  \"ratio\": 0.5,\n  \"ok\": true\n}");
}

// A campaign statistic can legitimately be NaN (0/0 normalization) or Inf
// (degenerate baseline); "NaN" is not JSON and would make every downstream
// parser reject the whole report. The writer must degrade those values to
// null, which parsers handle natively.
TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_object();
  json.key("nan").value(std::nan(""));
  json.key("pos_inf").value(std::numeric_limits<double>::infinity());
  json.key("neg_inf").value(-std::numeric_limits<double>::infinity());
  json.key("finite").value(1.25);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n  \"nan\": null,\n  \"pos_inf\": null,\n"
            "  \"neg_inf\": null,\n  \"finite\": 1.25\n}");
}

TEST(JsonWriterTest, NonFiniteInArraysBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::nan(""));
  json.value(2.0);
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[\n  null,\n  2,\n  null\n]");
}

TEST(JsonWriterTest, DoubleRoundTripsShortestForm) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.value(1880.0);
  json.value(-0.0);
  json.end_array();
  EXPECT_EQ(json.str(), "[\n  0.1,\n  1880,\n  -0\n]");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("msg").value("a \"b\"\n\tc\\");
  json.end_object();
  EXPECT_EQ(json.str(), "{\n  \"msg\": \"a \\\"b\\\"\\n\\tc\\\\\"\n}");
}

TEST(JsonWriterTest, MisuseThrowsInsteadOfEmittingBadJson) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), std::logic_error);  // unbalanced container
  }
}

}  // namespace
}  // namespace agingsim
