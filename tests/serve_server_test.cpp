// End-to-end tests of the agingd server over a real Unix-domain socket
// (src/serve/server.hpp): control-plane availability under load, admission
// rejections with retry hints, per-request deadlines, drain semantics and
// campaign determinism across calls.

#include "src/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/json.hpp"
#include "src/serve/protocol.hpp"

namespace agingsim::serve {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("agingsim_serve_test_") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// Minimal blocking client: one connection, frame-per-call.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  socket_path.c_str());
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool send(const std::string& payload) {
    return write_frame_fd(fd_, payload);
  }

  std::optional<JsonValue> recv() {
    const auto frame = read_frame_fd(fd_);
    if (!frame.has_value()) return std::nullopt;
    return parse_json(*frame);
  }

  std::optional<JsonValue> call(const std::string& payload) {
    if (!send(payload)) return std::nullopt;
    return recv();
  }

  /// Like call(), but hands back the raw response bytes for byte-identity
  /// checks.
  std::optional<std::string> call_raw(const std::string& payload) {
    if (!send(payload)) return std::nullopt;
    return read_frame_fd(fd_);
  }

 private:
  int fd_ = -1;
};

std::string error_code_of(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  return error != nullptr ? error->str_or("code", "") : "";
}

/// Spins until `pred` holds or ~2 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  const steady_clock::time_point give_up = steady_clock::now() + milliseconds(2000);
  while (steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

class ServeServerTest : public ::testing::Test {
 protected:
  ServerConfig base_config(const TempDir& dir) {
    ServerConfig config;
    config.socket_path = (dir.path() / "agingd.sock").string();
    config.workers = 1;
    config.admission.capacity = 4;
    config.default_deadline_ms = 30'000;
    config.drain_grace_ms = 500;
    config.cache_budget_bytes = 8u << 20;
    config.service.checkpoint_root = (dir.path() / "ckpt").string();
    config.service.runner.max_retries = 0;
    return config;
  }
};

TEST_F(ServeServerTest, ControlPlaneAnswersInline) {
  TempDir dir("control");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  const auto health = client.call(R"({"id": 1, "method": "health"})");
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->bool_or("ok", false));
  EXPECT_EQ(health->find("result")->str_or("status", ""), "ok");

  const auto status = client.call(R"({"id": 2, "method": "status"})");
  ASSERT_TRUE(status.has_value());
  const JsonValue* result = status->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->i64_or("queue_depth", -1), 0);
  EXPECT_EQ(result->i64_or("degradation_tier", -1), 0);
  EXPECT_NE(result->find("cache"), nullptr);

  const auto metrics = client.call(R"({"id": 3, "method": "metrics"})");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(metrics->bool_or("ok", false));

  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, WorkRoundTripAndBadRequestKeepsConnectionAlive) {
  TempDir dir("work");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const auto work = client.call(
      R"({"id": 1, "method": "work", "params": {"spin_us": 500}})");
  ASSERT_TRUE(work.has_value());
  EXPECT_TRUE(work->bool_or("ok", false));
  EXPECT_EQ(work->find("result")->i64_or("spun_us", 0), 500);
  EXPECT_GT(work->find("result")->i64_or("iters", 0), 0);

  // Invalid params fail only that request, not the stream.
  const auto bad = client.call(
      R"({"id": 2, "method": "query", "params": {"width": 99}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->bool_or("ok", true));
  EXPECT_EQ(error_code_of(*bad), "bad_request");

  const auto again = client.call(R"({"id": 3, "method": "health"})");
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->bool_or("ok", false));

  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, QueryCacheMissThenHit) {
  TempDir dir("query");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const std::string query =
      R"({"id": 1, "method": "query",
          "params": {"arch": "cb", "width": 8, "years": 3, "ops": 200}})";
  const auto miss = client.call(query);
  ASSERT_TRUE(miss.has_value());
  ASSERT_TRUE(miss->bool_or("ok", false)) << error_code_of(*miss);
  EXPECT_FALSE(miss->find("result")->bool_or("cache_hit", true));

  const auto hit = client.call(query);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->bool_or("ok", false));
  EXPECT_TRUE(hit->find("result")->bool_or("cache_hit", false));
  // The aged corner is the same either way.
  EXPECT_EQ(miss->find("result")->str_or("corner_digest", "a"),
            hit->find("result")->str_or("corner_digest", "b"));

  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, EarlyDisconnectDoesNotCorruptOtherConnections) {
  TempDir dir("discon");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // A client queues slow work and disconnects before the reply. The
  // worker's late send must hit the ghost's still-reserved fd (or a dead
  // one) — never an fd number the kernel re-issued to a newer connection,
  // which would splice the ghost's response into that client's stream.
  {
    Client ghost(server.config().socket_path);
    ASSERT_TRUE(ghost.connected());
    ASSERT_TRUE(ghost.send(
        R"({"id": 777, "method": "work", "params": {"spin_us": 300000}})"));
  }  // ~Client closes the socket immediately

  Client other(server.config().socket_path);
  ASSERT_TRUE(other.connected());
  for (int i = 0; i < 50; ++i) {
    const std::int64_t id = 1000 + i;
    const auto reply = other.call("{\"id\": " + std::to_string(id) +
                                  ", \"method\": \"health\"}");
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->i64_or("id", -1), id)
        << "cross-connection frame leaked into this stream";
  }

  // The orphaned job finishes (its reply is dropped) without killing the
  // server — no SIGPIPE, no write into a reused fd.
  ASSERT_TRUE(eventually([&] { return server.in_flight() == 0; }));
  const auto h = other.call(R"({"id": 9999, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->bool_or("ok", false));

  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, FailedStartLeaksNoFileDescriptors) {
  TempDir dir("startfail");
  ServerConfig config = base_config(dir);
  // bind() fails: the parent directory does not exist.
  config.socket_path = (dir.path() / "missing" / "agingd.sock").string();
  const auto count_fds = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         fs::directory_iterator("/proc/self/fd")) {
      ++n;
    }
    return n;
  };
  const std::size_t before = count_fds();
  Server server(config);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_NE(error, "");
  EXPECT_EQ(count_fds(), before)
      << "start() failure must close the wake pipe and listen socket";
}

TEST_F(ServeServerTest, OverloadRejectsWithRetryAfterWhileHealthAnswers) {
  TempDir dir("overload");
  ServerConfig config = base_config(dir);
  config.admission.capacity = 2;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Occupy the single worker, then fill the 2-slot queue.
  const std::string slow =
      R"({"id": 1, "method": "work", "params": {"spin_us": 800000}})";
  std::vector<std::unique_ptr<Client>> busy;
  busy.push_back(std::make_unique<Client>(config.socket_path));
  ASSERT_TRUE(busy.back()->send(slow));
  ASSERT_TRUE(eventually([&] { return server.in_flight() == 1; }));
  for (int i = 0; i < 2; ++i) {
    busy.push_back(std::make_unique<Client>(config.socket_path));
    ASSERT_TRUE(busy.back()->send(slow));
  }
  ASSERT_TRUE(eventually([&] { return server.queue_depth() == 2; }));

  // The queue is full: the next request is turned away with a hint.
  Client rejected(config.socket_path);
  const auto reply = rejected.call(slow);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->bool_or("ok", true));
  EXPECT_EQ(error_code_of(*reply), "overloaded");
  EXPECT_GE(reply->find("error")->i64_or("retry_after_ms", 0),
            config.admission.retry_after_min_ms);

  // Control plane still answers while the data plane is saturated.
  Client health(config.socket_path);
  const auto h = health.call(R"({"id": 9, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->bool_or("ok", false));

  // The occupied workers eventually drain and answer the queued requests.
  for (auto& c : busy) {
    const auto r = c->recv();
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->bool_or("ok", false));
  }
  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, Tier1ShedsCacheRefillQueries) {
  TempDir dir("tier1");
  ServerConfig config = base_config(dir);
  config.admission.capacity = 4;  // tier 1 at depth >= 2
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::string slow =
      R"({"id": 1, "method": "work", "params": {"spin_us": 800000}})";
  std::vector<std::unique_ptr<Client>> busy;
  busy.push_back(std::make_unique<Client>(config.socket_path));
  ASSERT_TRUE(busy.back()->send(slow));
  ASSERT_TRUE(eventually([&] { return server.in_flight() == 1; }));
  for (int i = 0; i < 2; ++i) {
    busy.push_back(std::make_unique<Client>(config.socket_path));
    ASSERT_TRUE(busy.back()->send(slow));
  }
  ASSERT_TRUE(eventually([&] { return server.queue_depth() == 2; }));

  // A cold-cache query would trigger an expensive aging recompute: shed.
  Client shed(config.socket_path);
  const auto reply = shed.call(
      R"({"id": 5, "method": "query", "params": {"width": 8, "years": 1}})");
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->bool_or("ok", true));
  EXPECT_EQ(error_code_of(*reply), "shed_refill");

  for (auto& c : busy) {
    ASSERT_TRUE(c->recv().has_value());
  }
  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, DeadlineCancelsSlowWorkAsTimeout) {
  TempDir dir("deadline");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const steady_clock::time_point t0 = steady_clock::now();
  const auto reply = client.call(
      R"({"id": 1, "method": "work", "deadline_ms": 100,
          "params": {"spin_us": 8000000}})");
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->bool_or("ok", true));
  EXPECT_EQ(error_code_of(*reply), "timeout");
  EXPECT_LT(elapsed, std::chrono::seconds(4))
      << "deadline did not cancel the spin";

  server.drain();
  server.wait();
}

TEST_F(ServeServerTest, DrainRejectsNewWorkThenJoinsCleanly) {
  TempDir dir("drain");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::string socket_path = server.config().socket_path;

  Client client(socket_path);
  ASSERT_TRUE(client.connected());
  // A round-trip first: connect() alone only lands in the kernel backlog,
  // and a drained listener never accepts it — the connection must be
  // established server-side to test the drain window.
  ASSERT_TRUE(client.call(R"({"id": 0, "method": "health"})").has_value());
  server.drain();
  EXPECT_TRUE(server.draining());

  // The established connection keeps its read loop until wait(), but new
  // work is refused at admission.
  const auto reply = client.call(
      R"({"id": 1, "method": "work", "params": {"spin_us": 100}})");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(error_code_of(*reply), "draining");
  // Health still answers during the drain window.
  const auto h = client.call(R"({"id": 2, "method": "health"})");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->find("result")->str_or("status", ""), "draining");

  server.wait();
  EXPECT_FALSE(fs::exists(socket_path)) << "socket file must be unlinked";
}

TEST_F(ServeServerTest, ShutdownMethodDrainsTheServer) {
  TempDir dir("shutdown");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client(server.config().socket_path);
  const auto reply = client.call(R"({"id": 1, "method": "shutdown"})");
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->bool_or("ok", false));
  EXPECT_TRUE(eventually([&] { return server.draining(); }));
  server.wait();
}

TEST_F(ServeServerTest, CampaignResponsesAreDeterministicAcrossCalls) {
  TempDir dir("campaign");
  Server server(base_config(dir));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::string campaign =
      R"({"id": 1, "method": "campaign",
          "params": {"arch": "cb", "width": 4, "trials": 3, "ops": 64,
                     "sites": 1, "seed": 77}})";
  Client client(server.config().socket_path);
  const auto first_raw = client.call_raw(campaign);
  ASSERT_TRUE(first_raw.has_value());
  const auto first = parse_json(*first_raw);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->bool_or("ok", false)) << error_code_of(*first);
  const JsonValue* result = first->find("result");
  ASSERT_NE(result, nullptr);
  const std::string digest = result->str_or("campaign_digest", "");
  EXPECT_EQ(digest.size(), 16u);
  // The second call restores every unit from the checkpoint store yet
  // must produce a byte-identical response (same id on purpose) — the
  // property the CI kill/resume drill asserts across a real SIGKILL.
  const auto second_raw = client.call_raw(campaign);
  ASSERT_TRUE(second_raw.has_value());
  EXPECT_EQ(*first_raw, *second_raw);

  // The checkpoint store landed under the configured root.
  EXPECT_TRUE(fs::exists(fs::path(server.config().service.checkpoint_root) /
                         ("ck-" + digest)));

  server.drain();
  server.wait();
}

}  // namespace
}  // namespace agingsim::serve
