#include "src/aging/bti.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace agingsim {
namespace {

TEST(BtiTest, YearsToSeconds) {
  EXPECT_NEAR(years_to_seconds(1.0), 3.156e7, 1e5);
  EXPECT_DOUBLE_EQ(years_to_seconds(0.0), 0.0);
}

TEST(BtiTest, PhysicalKdcIsPositiveAndFieldSensitive) {
  PhysicalBtiParams p;
  const double k = kdc_from_physical(p);
  EXPECT_GT(k, 0.0);
  // Thinner oxide -> higher field -> more degradation.
  PhysicalBtiParams thin = p;
  thin.tox_nm = 1.0;
  EXPECT_GT(kdc_from_physical(thin) / thin.tox_nm, k / p.tox_nm);
  // Hotter -> more degradation.
  PhysicalBtiParams hot = p;
  hot.temperature_k = 423.15;
  EXPECT_GT(kdc_from_physical(hot), k);
  PhysicalBtiParams bad = p;
  bad.vth_v = bad.vgs_v;
  EXPECT_THROW(kdc_from_physical(bad), std::invalid_argument);
}

TEST(BtiTest, CalibratedModelHitsTargetAtReferencePoint) {
  const TechLibrary& tech = default_tech_library();
  const BtiModel m = BtiModel::calibrated(tech, 1.13, 7.0, 0.5);
  const double dv = m.delta_vth(0.5, years_to_seconds(7.0));
  EXPECT_NEAR(delay_scale_from_dvth(tech, dv), 1.13, 1e-9);
}

TEST(BtiTest, DeltaVthMonotoneInTimeAndStress) {
  const BtiModel m = BtiModel::calibrated(default_tech_library());
  const double t1 = years_to_seconds(1.0), t7 = years_to_seconds(7.0);
  EXPECT_GT(m.delta_vth(0.5, t7), m.delta_vth(0.5, t1));
  EXPECT_GT(m.delta_vth(0.9, t1), m.delta_vth(0.1, t1));
  EXPECT_DOUBLE_EQ(m.delta_vth(0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.delta_vth(0.0, t7), 0.0);
}

TEST(BtiTest, FractionalPowerLawShape) {
  // t^(1/6): doubling time scales dVth by 2^(1/6).
  const BtiModel m = BtiModel::calibrated(default_tech_library());
  const double t = years_to_seconds(2.0);
  EXPECT_NEAR(m.delta_vth(0.5, 2.0 * t) / m.delta_vth(0.5, t),
              std::pow(2.0, 1.0 / 6.0), 1e-9);
}

TEST(BtiTest, RejectsBadArguments) {
  const BtiModel m = BtiModel::calibrated(default_tech_library());
  EXPECT_THROW(m.delta_vth(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(m.delta_vth(1.1, 1.0), std::invalid_argument);
  EXPECT_THROW(m.delta_vth(0.5, -1.0), std::invalid_argument);
  EXPECT_THROW(BtiModel::calibrated(default_tech_library(), 0.9),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
