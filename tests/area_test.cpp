#include "src/core/area.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(AreaTest, VariableLatencyCostsMoreThanFixed) {
  for (int width : {16, 32}) {
    for (auto arch :
         {MultiplierArch::kColumnBypass, MultiplierArch::kRowBypass}) {
      const MultiplierNetlist m = build_multiplier(arch, width);
      const AreaBreakdown fl = fixed_latency_area(m);
      const AreaBreakdown vl = variable_latency_area(m);
      EXPECT_EQ(fl.combinational, vl.combinational);
      EXPECT_EQ(fl.input_registers, vl.input_registers);
      EXPECT_GT(vl.output_registers, fl.output_registers);  // Razor FFs
      EXPECT_GT(vl.ahl, 0);
      EXPECT_EQ(fl.ahl, 0);
      EXPECT_GT(vl.total(), fl.total());
    }
  }
}

TEST(AreaTest, OverheadRatioShrinksWithWidth) {
  // Paper Fig. 25: AHL + Razor are a smaller fraction of a larger
  // multiplier (16x16 overhead ratio > 32x32 overhead ratio).
  const auto cb16 = build_column_bypass_multiplier(16);
  const auto cb32 = build_column_bypass_multiplier(32);
  const double r16 =
      static_cast<double>(variable_latency_area(cb16).total()) /
      static_cast<double>(fixed_latency_area(cb16).total());
  const double r32 =
      static_cast<double>(variable_latency_area(cb32).total()) /
      static_cast<double>(fixed_latency_area(cb32).total());
  EXPECT_GT(r16, r32);
  EXPECT_GT(r16, 1.0);
}

TEST(AreaTest, RowBypassIsLargerThanColumnBypass) {
  const auto cb = build_column_bypass_multiplier(16);
  const auto rb = build_row_bypass_multiplier(16);
  EXPECT_GT(variable_latency_area(rb).total(),
            variable_latency_area(cb).total());
}

TEST(AreaTest, AhlCountScalesWithWidth) {
  EXPECT_GT(ahl_transistor_count(32), ahl_transistor_count(16));
  EXPECT_THROW(ahl_transistor_count(1), std::invalid_argument);
}

TEST(AreaTest, RegisterCounts) {
  const auto m = build_column_bypass_multiplier(16);
  const AreaBreakdown vl = variable_latency_area(m);
  EXPECT_EQ(vl.input_registers, 32LL * kDffTransistors);
  EXPECT_EQ(vl.output_registers, 32LL * kRazorFfTransistors);
}

}  // namespace
}  // namespace agingsim
