#include "src/aging/scenario.hpp"

#include <gtest/gtest.h>

#include "src/multiplier/multiplier.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

class ScenarioFixture : public ::testing::Test {
 protected:
  ScenarioFixture()
      : mult_(build_column_bypass_multiplier(8)),
        tech_(default_tech_library()),
        scenario_(mult_.netlist, tech_, BtiModel::calibrated(tech_), 42,
                  500) {}

  MultiplierNetlist mult_;
  const TechLibrary& tech_;
  AgingScenario scenario_;
};

TEST_F(ScenarioFixture, FreshCircuitHasUnityScales) {
  const auto scales = scenario_.delay_scales_at(0.0);
  ASSERT_EQ(scales.size(), mult_.netlist.num_gates());
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_DOUBLE_EQ(scenario_.mean_dvth_at(0.0), 0.0);
}

TEST_F(ScenarioFixture, ScalesAreAboveOneAndMonotoneInYears) {
  const auto y1 = scenario_.delay_scales_at(1.0);
  const auto y7 = scenario_.delay_scales_at(7.0);
  for (std::size_t g = 0; g < y1.size(); ++g) {
    EXPECT_GE(y1[g], 1.0);
    EXPECT_GE(y7[g], y1[g]);
  }
  EXPECT_GT(scenario_.mean_dvth_at(7.0), scenario_.mean_dvth_at(1.0));
}

TEST_F(ScenarioFixture, SevenYearCriticalPathDegradationNearPaperValue) {
  const double fresh = run_sta(mult_.netlist, tech_).critical_path_ps;
  const auto scales = scenario_.delay_scales_at(7.0);
  const double aged = run_sta(mult_.netlist, tech_, scales).critical_path_ps;
  // The paper's Fig. 7 reports ~13% over 7 years; the calibration targets a
  // *device* at S=0.5, and per-gate stress spread moves the circuit-level
  // number a little.
  EXPECT_GT(aged / fresh, 1.08);
  EXPECT_LT(aged / fresh, 1.18);
}

TEST_F(ScenarioFixture, StressProfileIsExposed) {
  EXPECT_EQ(scenario_.stress().pmos_stress.size(), mult_.netlist.num_gates());
  EXPECT_GT(scenario_.model().kdc(), 0.0);
}

}  // namespace
}  // namespace agingsim
