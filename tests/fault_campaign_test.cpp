#include "src/fault/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/vl_multiplier.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

// Acceptance suite for the fault-injection campaign (ISSUE: 16x16
// column-bypassing multiplier; in-window delay faults detected at >= 99%
// coverage, out-of-window faults produce nonzero SDC, and the AHL
// error-storm fallback engages and recovers).
class FaultCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mult_ = new MultiplierNetlist(build_column_bypass_multiplier(16));
    tech_ = new TechLibrary(default_tech_library());
    Rng rng(0xC0FFEE);
    patterns_ =
        new std::vector<OperandPattern>(uniform_patterns(rng, 16, 500));
    clean_trace_ =
        new std::vector<OpTrace>(compute_op_trace(*mult_, *tech_, *patterns_));
    crit_ = critical_path_ps(*mult_, *tech_);
  }
  static void TearDownTestSuite() {
    delete mult_;
    delete tech_;
    delete patterns_;
    delete clean_trace_;
    mult_ = nullptr;
  }

  // The bench's system point: skip-7 judging, a 5 ps metastability window
  // (non-ideal Razor) and a period at 58% of the fresh critical path.
  static VlSystemConfig system_config() {
    VlSystemConfig c;
    c.period_ps = 0.58 * crit_;
    c.ahl.width = 16;
    c.ahl.skip = 7;
    c.razor.metastability_window_ps = 5.0;
    c.razor.edge_escape_prob = 0.5;
    return c;
  }

  static FaultCampaignConfig campaign_config(FaultKind kind, int sites,
                                             double factor) {
    FaultCampaignConfig c;
    c.kind = kind;
    c.trials = 12;
    c.sites_per_trial = sites;
    c.delay_factor = factor;
    c.seed = 0xFA17;
    return c;
  }

  static MultiplierNetlist* mult_;
  static TechLibrary* tech_;
  static std::vector<OperandPattern>* patterns_;
  static std::vector<OpTrace>* clean_trace_;
  static double crit_;
};

MultiplierNetlist* FaultCampaignTest::mult_ = nullptr;
TechLibrary* FaultCampaignTest::tech_ = nullptr;
std::vector<OperandPattern>* FaultCampaignTest::patterns_ = nullptr;
std::vector<OpTrace>* FaultCampaignTest::clean_trace_ = nullptr;
double FaultCampaignTest::crit_ = 0.0;

TEST_F(FaultCampaignTest, ConfigValidation) {
  FaultCampaignConfig bad = campaign_config(FaultKind::kStuckAt0, 1, 1.0);
  bad.trials = 0;
  EXPECT_THROW(FaultCampaign(*mult_, *tech_, system_config(), bad),
               std::invalid_argument);
  bad = campaign_config(FaultKind::kStuckAt0, 0, 1.0);
  EXPECT_THROW(FaultCampaign(*mult_, *tech_, system_config(), bad),
               std::invalid_argument);
  bad = campaign_config(FaultKind::kDelayOutlier, 1, 0.0);
  EXPECT_THROW(FaultCampaign(*mult_, *tech_, system_config(), bad),
               std::invalid_argument);
}

TEST_F(FaultCampaignTest, InWindowDelayFaultsAreCoveredAtNinetyNinePercent) {
  // Deterministic worst case first: a delay-outlier cluster every op's path
  // crosses, with the period at the soundness floor (half the worst faulty
  // delay) so the violation rate is substantial. Razor must detect >= 99%
  // of the violations; the only escape channel is the 5 ps metastability
  // sliver, and nothing may settle past the shadow window.
  const FaultOverlay cone = output_cone_delay_overlay(mult_->netlist, 8.0);
  const auto faulty = compute_op_trace(*mult_, *tech_, *patterns_,
                                       TraceOptions{.faults = &cone});
  VlSystemConfig cfg = system_config();
  cfg.period_ps = std::max(cfg.period_ps, 0.5 * max_delay_ps(faulty));
  VariableLatencySystem sys(*mult_, *tech_, cfg);
  const RunStats s = sys.run(faulty);
  ASSERT_GT(s.errors, 0u) << "premise: the cluster must cause violations";
  EXPECT_EQ(s.undetected, 0u);
  const double coverage =
      static_cast<double>(s.errors) /
      static_cast<double>(s.errors + s.razor_escapes + s.undetected);
  EXPECT_GE(coverage, 0.99);
  // Delay faults never corrupt values on their own: every committed wrong
  // word must be an escaped or uncovered violation.
  EXPECT_EQ(s.sdc_ops, s.razor_escapes + s.undetected);

  // Randomized campaign at the same point: moderate outliers stay inside
  // the shadow window, so coverage holds and nothing is silently corrupted.
  FaultCampaign campaign(*mult_, *tech_, cfg,
                         campaign_config(FaultKind::kDelayOutlier, 3, 8.0));
  const FaultCampaignStats stats = campaign.run(*patterns_);
  EXPECT_GE(stats.detection_coverage, 0.99);
  EXPECT_EQ(stats.uncovered_violations, 0u);
  EXPECT_EQ(stats.sdc_ops, stats.escaped_violations);
  EXPECT_GE(stats.avg_cycles_faulty, stats.avg_cycles_baseline);
  EXPECT_GE(stats.throughput_degradation, 0.0);
}

TEST_F(FaultCampaignTest, OutOfWindowDelayFaultsProduceSilentCorruption) {
  // A 60x outlier on the output cone pushes every one-cycle violation past
  // the shadow window: the shadow latch itself is wrong, Razor cannot help,
  // and wrong products are committed (the architecture's honest limit).
  const FaultOverlay cone = output_cone_delay_overlay(mult_->netlist, 60.0);
  const auto faulty = compute_op_trace(*mult_, *tech_, *patterns_,
                                       TraceOptions{.faults = &cone});
  VariableLatencySystem sys(*mult_, *tech_, system_config());
  const RunStats s = sys.run(faulty);
  EXPECT_GT(s.undetected, 0u);
  EXPECT_GT(s.sdc_ops, 0u);
  EXPECT_EQ(s.sdc_ops, s.razor_escapes + s.undetected);
  EXPECT_GT(s.sdc_per_10k_ops, 0.0);
}

TEST_F(FaultCampaignTest, StuckAtFaultsEscapeRazorEntirely) {
  // Stuck-at faults are timing-invisible: whatever the judging logic does
  // not mask is committed as SDC, and some ops mask the fault outright.
  FaultCampaign campaign(*mult_, *tech_, system_config(),
                         campaign_config(FaultKind::kStuckAt0, 1, 1.0));
  const FaultCampaignStats stats = campaign.run(*patterns_);
  EXPECT_EQ(stats.trials, 12u);
  EXPECT_EQ(stats.faults_injected, 12u);
  EXPECT_GT(stats.sdc_ops, 0u);
  EXPECT_GT(stats.masked_faults, 0u);
  EXPECT_GT(stats.sdc_per_10k_ops, 0.0);
  EXPECT_GT(stats.trials_with_sdc, 0u);
}

TEST_F(FaultCampaignTest, TransientsTouchExactlyOneOperation) {
  FaultCampaign campaign(*mult_, *tech_, system_config(),
                         campaign_config(FaultKind::kTransient, 4, 1.0));
  const FaultCampaignStats stats = campaign.run(*patterns_);
  // Each strike lands on exactly one op: it is either masked (flip does not
  // reach a product bit / judging covers it) or corrupts that op.
  EXPECT_GT(stats.sdc_ops + stats.masked_faults, 0u);
  EXPECT_LE(stats.sdc_ops, stats.faults_injected);
  // A one-cycle strike cannot corrupt more than a sliver of the stream.
  EXPECT_LT(stats.sdc_per_10k_ops, 1000.0);
}

TEST_F(FaultCampaignTest, ErrorStormFallbackEngagesAndRecovers) {
  // First half of the stream: a 20x delay-outlier cluster on the output
  // cone (error storm); second half: healthy silicon. The graceful-
  // degradation fallback must engage during the storm, cut the error count,
  // and recover once the storm subsides.
  const FaultOverlay cone = output_cone_delay_overlay(mult_->netlist, 20.0);
  const auto faulty = compute_op_trace(*mult_, *tech_, *patterns_,
                                       TraceOptions{.faults = &cone});
  std::vector<OpTrace> stream = faulty;
  stream.insert(stream.end(), clean_trace_->begin(), clean_trace_->end());

  VlSystemConfig cfg = system_config();
  cfg.period_ps = 0.5 * max_delay_ps(stream);
  cfg.ahl.storm_fallback = true;
  cfg.ahl.storm_error_threshold = 0.20;
  VariableLatencySystem with_fallback(*mult_, *tech_, cfg);
  const RunStats on = with_fallback.run(stream);

  VlSystemConfig off_cfg = cfg;
  off_cfg.ahl.storm_fallback = false;
  VariableLatencySystem without_fallback(*mult_, *tech_, off_cfg);
  const RunStats off = without_fallback.run(stream);

  EXPECT_GE(on.storm_engagements, 1u);
  EXPECT_GE(on.storm_recoveries, 1u);
  EXPECT_EQ(on.storm_engagements, on.storm_recoveries)
      << "the fallback must be disengaged by the end of the clean segment";
  EXPECT_GT(on.storm_ops, 0u);
  EXPECT_LT(on.errors, off.errors);
  EXPECT_EQ(on.undetected, 0u);
  EXPECT_EQ(on.sdc_ops, on.razor_escapes);
  // Two-cycle issue bounds the fallback's throughput cost.
  EXPECT_LE(on.avg_cycles, 2.0 + 1e-9);
  EXPECT_EQ(off.storm_engagements, 0u);
  EXPECT_EQ(off.storm_ops, 0u);
}

TEST_F(FaultCampaignTest, CampaignsAreDeterministic) {
  // Same seed + same campaign => byte-identical traces and identical stats.
  const FaultCampaignConfig cc =
      campaign_config(FaultKind::kDelayOutlier, 2, 8.0);
  FaultCampaign campaign(*mult_, *tech_, system_config(), cc);

  Rng rng_a(cc.seed), rng_b(cc.seed);
  const FaultOverlay overlay_a =
      campaign.sample_overlay(rng_a, patterns_->size());
  const FaultOverlay overlay_b =
      campaign.sample_overlay(rng_b, patterns_->size());
  ASSERT_EQ(overlay_a.num_faults(), overlay_b.num_faults());
  for (std::size_t i = 0; i < overlay_a.faults().size(); ++i) {
    EXPECT_EQ(overlay_a.faults()[i].gate, overlay_b.faults()[i].gate);
    EXPECT_EQ(overlay_a.faults()[i].cycle, overlay_b.faults()[i].cycle);
  }

  const auto trace_a = compute_op_trace(*mult_, *tech_, *patterns_,
                                        TraceOptions{.faults = &overlay_a});
  const auto trace_b = compute_op_trace(*mult_, *tech_, *patterns_,
                                        TraceOptions{.faults = &overlay_b});
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i], trace_b[i]) << "op " << i;
  }

  const FaultCampaignStats s1 = campaign.run(*patterns_);
  const FaultCampaignStats s2 = campaign.run(*patterns_);
  EXPECT_EQ(s1.detected_violations, s2.detected_violations);
  EXPECT_EQ(s1.escaped_violations, s2.escaped_violations);
  EXPECT_EQ(s1.uncovered_violations, s2.uncovered_violations);
  EXPECT_EQ(s1.sdc_ops, s2.sdc_ops);
  EXPECT_EQ(s1.masked_faults, s2.masked_faults);
  EXPECT_DOUBLE_EQ(s1.avg_cycles_faulty, s2.avg_cycles_faulty);
}

TEST_F(FaultCampaignTest, TraceHelpers) {
  EXPECT_DOUBLE_EQ(max_delay_ps({}), 0.0);
  EXPECT_DOUBLE_EQ(delay_percentile_ps({}, 0.5), 0.0);
  EXPECT_THROW(delay_percentile_ps(*clean_trace_, 1.5),
               std::invalid_argument);
  const double med = delay_percentile_ps(*clean_trace_, 0.5);
  const double p95 = delay_percentile_ps(*clean_trace_, 0.95);
  const double max = max_delay_ps(*clean_trace_);
  EXPECT_LE(med, p95);
  EXPECT_LE(p95, max);
  EXPECT_LE(max, crit_ + 1e-9);
  EXPECT_THROW(output_cone_delay_overlay(mult_->netlist, 2.0, 0),
               std::invalid_argument);
}

TEST_F(FaultCampaignTest, DelayPercentileUsesNearestRank) {
  // Convention pin (src/core/quantile.hpp): on N=4 delays the median is the
  // 2nd sample — the historic floor(q*N) indexing returned the 3rd.
  std::vector<OpTrace> trace(4);
  trace[0].delay_ps = 30.0;
  trace[1].delay_ps = 10.0;
  trace[2].delay_ps = 40.0;
  trace[3].delay_ps = 20.0;
  EXPECT_DOUBLE_EQ(delay_percentile_ps(trace, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(delay_percentile_ps(trace, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(delay_percentile_ps(trace, 0.75), 30.0);
  EXPECT_DOUBLE_EQ(delay_percentile_ps(trace, 1.0), 40.0);
}

}  // namespace
}  // namespace agingsim
