// Per-rule coverage of the lint subsystem: every rule gets one passing and
// one deliberately-broken netlist (broken via the public API where
// possible, via NetlistSurgeon where construction makes the defect
// unrepresentable), plus the acceptance gates: all stock architectures lint
// error-free at a safe period, and the timing rules fire when Razor
// protection is severed or the clock is tightened below the aged critical
// path.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/aging/prob_propagation.hpp"
#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/lint/engine.hpp"
#include "src/lint/structural.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/surgeon.hpp"
#include "src/report/json.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

using lint::Diagnostic;
using lint::LintContext;
using lint::LintEngine;
using lint::LintReport;
using lint::Severity;

std::vector<Diagnostic> diags_for(const std::vector<Diagnostic>& diags,
                                  std::string_view rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

std::size_t errors_for(const std::vector<Diagnostic>& diags,
                       std::string_view rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && d.severity == Severity::kError) ++n;
  }
  return n;
}

/// a AND b -> y, marked as output; structurally pristine.
Netlist small_clean_netlist() {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellKind::kAnd2, {a, b});
  nl.mark_output(y, "y");
  return nl;
}

TEST(LintStructuralTest, CleanNetlistHasNoFindings) {
  const Netlist nl = small_clean_netlist();
  const auto diags = lint::structural_diagnostics(nl);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kInfo) << d.rule << ": " << d.message;
  }
  EXPECT_NO_THROW(nl.validate());
}

TEST(LintStructuralTest, NetDriverRuleFlagsDuplicatedDriver) {
  Netlist nl = small_clean_netlist();
  // Point net b's driver entry at gate 0, which drives y: two nets now
  // claim the same driver (and an input claims a driver at all).
  NetlistSurgeon(nl).set_driver(1, 0);
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.net-driver"), 1u);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(LintStructuralTest, NetDriverRuleFlagsStolenGateOutput) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_gate_out(0, 0);  // gate 0 now claims input net a
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.net-driver"), 1u);
}

TEST(LintStructuralTest, PinArityRuleFlagsDroppedPin) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_gate_pin_count(0, 1);  // AND2 with one pin
  const auto diags = lint::structural_diagnostics(nl);
  ASSERT_GE(errors_for(diags, "structural.pin-arity"), 1u);
  const auto hits = diags_for(diags, "structural.pin-arity");
  EXPECT_NE(hits[0].message.find("AND2"), std::string::npos) << hits[0].message;
}

TEST(LintStructuralTest, PinArityRuleFlagsPinWindowPastArrayEnd) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_gate_pin_begin(0, 40);  // window beyond pins_
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.pin-arity"), 1u);
}

TEST(LintStructuralTest, PinArityRuleFlagsNonexistentInputNet) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_pin(0, NetId{777});
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.pin-arity"), 1u);
}

TEST(LintStructuralTest, CellKindRuleFlagsOutOfLibraryKind) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_gate_kind(0, CellKind::kCount);
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.cell-kind"), 1u);
}

TEST(LintStructuralTest, TopoOrderRuleFlagsSelfReference) {
  Netlist nl = small_clean_netlist();
  // Gate 0 reads its own output net (id 2): a combinational cycle.
  NetlistSurgeon(nl).set_pin(0, NetId{2});
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.topo-order"), 1u);
}

TEST(LintStructuralTest, OutputDanglingRuleFlagsRewiredOutput) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_output_net(0, NetId{123});
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.output-dangling"), 1u);
}

TEST(LintStructuralTest, OutputDuplicateRuleFlagsDoubleRegistration) {
  Netlist nl = small_clean_netlist();
  nl.mark_output(NetId{2}, "y_again");  // same net, second name
  const auto diags = lint::structural_diagnostics(nl);
  ASSERT_GE(errors_for(diags, "structural.output-duplicate"), 1u);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(LintStructuralTest, OutputDuplicateRuleFlagsReusedName) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_gate(CellKind::kBuf, {a});
  const NetId y = nl.add_gate(CellKind::kInv, {a});
  nl.mark_output(x, "out");
  nl.mark_output(y, "out");  // distinct nets, same name
  const auto diags = lint::structural_diagnostics(nl);
  EXPECT_GE(errors_for(diags, "structural.output-duplicate"), 1u);
}

TEST(LintStructuralTest, FanoutFreeNetRuleIsAWarningNotAnError) {
  Netlist nl = small_clean_netlist();
  nl.add_gate(CellKind::kInv, {NetId{0}});  // dead gate, never marked
  const auto diags = lint::structural_diagnostics(nl);
  const auto hits = diags_for(diags, "structural.fanout-free-net");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].gate, GateId{1});
  EXPECT_NO_THROW(nl.validate());  // warnings must not throw
}

TEST(LintStructuralTest, UnobservableGateRuleFlagsDeadCone) {
  Netlist nl = small_clean_netlist();
  // g1 feeds g2; g2 is a dead end. g1 has fanout but no path to an output.
  const NetId mid = nl.add_gate(CellKind::kInv, {NetId{0}});
  nl.add_gate(CellKind::kBuf, {mid});
  const auto diags = lint::structural_diagnostics(nl);
  const auto unobservable = diags_for(diags, "structural.unobservable-gate");
  ASSERT_EQ(unobservable.size(), 1u);
  EXPECT_EQ(unobservable[0].gate, GateId{1});
  // The dead end itself is the fanout-free finding, not an unobservable one.
  const auto dead_end = diags_for(diags, "structural.fanout-free-net");
  ASSERT_EQ(dead_end.size(), 1u);
  EXPECT_EQ(dead_end[0].gate, GateId{2});
}

TEST(LintStructuralTest, UnusedInputRuleFlagsDanglingOperandBit) {
  Netlist nl = small_clean_netlist();
  nl.add_input("c");  // read by nothing
  const auto diags = lint::structural_diagnostics(nl);
  const auto hits = diags_for(diags, "structural.unused-input");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_NE(hits[0].message.find("c"), std::string::npos);
}

TEST(LintStructuralTest, BypassExclusivityRuleFlagsAliasedMuxAndTbuf) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId good = nl.add_gate(CellKind::kMux2, {a, b, s});
  nl.mark_output(good, "good");
  {
    const auto diags = lint::structural_diagnostics(nl);
    EXPECT_TRUE(diags_for(diags, "structural.bypass-exclusivity").empty());
  }
  const NetId aliased_data = nl.add_gate(CellKind::kMux2, {a, a, s});
  const NetId aliased_sel = nl.add_gate(CellKind::kMux2, {a, b, a});
  const NetId aliased_tbuf = nl.add_gate(CellKind::kTbuf, {b, b});
  nl.mark_output(aliased_data, "m1");
  nl.mark_output(aliased_sel, "m2");
  nl.mark_output(aliased_tbuf, "t1");
  const auto diags = lint::structural_diagnostics(nl);
  const auto hits = diags_for(diags, "structural.bypass-exclusivity");
  ASSERT_EQ(hits.size(), 3u);
  for (const Diagnostic& d : hits) {
    EXPECT_EQ(d.severity, Severity::kWarning) << d.message;
  }
}

TEST(LintStructuralTest, ValidateAggregatesEveryViolationInOneThrow) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon surgeon(nl);
  surgeon.set_gate_kind(0, CellKind::kCount);
  surgeon.set_gate_pin_count(0, 7);
  try {
    nl.validate();
    FAIL() << "validate() must throw on a corrupted netlist";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("structural.cell-kind"), std::string::npos) << what;
    EXPECT_NE(what.find("structural.pin-arity"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Timing rules
// ---------------------------------------------------------------------------

class LintTimingTest : public ::testing::Test {
 protected:
  LintTimingTest()
      : tech_(calibrated_tech_library()),
        mult_(build_column_bypass_multiplier(8)),
        aging_(mult_.netlist, tech_, BtiModel::calibrated(tech_),
               analytic_stress(mult_.netlist)),
        fresh_crit_(run_sta(mult_.netlist, tech_).critical_path_ps),
        aged_crit_(run_sta(mult_.netlist, tech_, aging_.delay_scales_at(7.0))
                       .critical_path_ps) {}

  LintReport run_with(const lint::TimingContext& timing) const {
    lint::LintContext ctx;
    ctx.netlist = &mult_.netlist;
    ctx.timing = &timing;
    LintEngine engine;
    return engine.run(ctx);
  }

  /// Primary-output index with the worst aged arrival.
  std::size_t critical_output_index() const {
    const StaResult sta =
        run_sta(mult_.netlist, tech_, aging_.delay_scales_at(7.0));
    std::size_t worst = 0;
    double worst_ps = -1.0;
    for (std::size_t i = 0; i < mult_.netlist.num_outputs(); ++i) {
      const double a = sta.arrival_ps[mult_.netlist.output_nets()[i]];
      if (a > worst_ps) {
        worst_ps = a;
        worst = i;
      }
    }
    return worst;
  }

  lint::TimingContext safe_timing() const {
    lint::TimingContext timing;
    timing.tech = &tech_;
    timing.aging = &aging_;
    timing.sweep_years = {0.0, 3.5, 7.0};
    timing.period_ps = aged_crit_ / 2.0 + 1.0;
    return timing;
  }

  TechLibrary tech_;
  MultiplierNetlist mult_;
  AgingScenario aging_;
  double fresh_crit_;
  double aged_crit_;
};

TEST_F(LintTimingTest, SafePeriodWithFullRazorBankIsClean) {
  const LintReport report = run_with(safe_timing());
  EXPECT_TRUE(report.clean()) << report.summary();
  // All three timing rules must report what they proved.
  for (const char* rule : {"timing.razor-coverage", "timing.shadow-window",
                           "timing.hold-count"}) {
    const auto infos = diags_for(report.diagnostics, rule);
    ASSERT_EQ(infos.size(), 1u) << rule;
    EXPECT_NE(infos[0].message.find("proved"), std::string::npos) << rule;
  }
}

TEST_F(LintTimingTest, SeveredRazorTapRaisesCoverageError) {
  lint::TimingContext timing = safe_timing();
  // Tighten below the aged critical path so the critical output *can* miss
  // the edge, then sever exactly its Razor tap.
  timing.period_ps = aged_crit_ * 0.75;
  timing.razor_protected.assign(mult_.netlist.num_outputs(), 1);
  const std::size_t victim = critical_output_index();
  timing.razor_protected[victim] = 0;
  const LintReport report = run_with(timing);
  const auto errors = diags_for(report.diagnostics, "timing.razor-coverage");
  ASSERT_EQ(errors.size(), 1u) << report.summary();
  EXPECT_EQ(errors[0].severity, Severity::kError);
  EXPECT_EQ(errors[0].net, mult_.netlist.output_nets()[victim]);
  EXPECT_NE(errors[0].message.find("not Razor-protected"), std::string::npos);
  // Re-attaching the tap clears the error.
  timing.razor_protected[victim] = 1;
  EXPECT_TRUE(run_with(timing).clean());
}

TEST_F(LintTimingTest, TightenedPeriodRaisesHoldCountError) {
  lint::TimingContext timing = safe_timing();
  timing.period_ps = fresh_crit_ / 4.0;  // 2 x T far below the aged path
  const LintReport report = run_with(timing);
  const auto errors = diags_for(report.diagnostics, "timing.hold-count");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].severity, Severity::kError);
  EXPECT_NE(errors[0].message.find("hold budget"), std::string::npos);
}

TEST_F(LintTimingTest, HoldCountCatchesAgingOnlyViolation) {
  // A period that fits the fresh critical path but not the aged one: the
  // sweep must catch the violation appearing over the 7-year horizon.
  lint::TimingContext timing = safe_timing();
  timing.period_ps = fresh_crit_ / 2.0 + 0.5;
  ASSERT_GT(aged_crit_, 2.0 * timing.period_ps);
  const LintReport report = run_with(timing);
  const auto errors = diags_for(report.diagnostics, "timing.hold-count");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("year 7.0"), std::string::npos)
      << errors[0].message;
}

TEST_F(LintTimingTest, ArrivalBeyondShadowWindowIsUndetectable) {
  lint::TimingContext timing = safe_timing();
  timing.period_ps = aged_crit_ / 2.0 - 1.0;  // critical path > 2 x T
  const LintReport report = run_with(timing);
  EXPECT_GE(diags_for(report.diagnostics, "timing.shadow-window").size(), 1u);
  EXPECT_FALSE(report.clean());
}

TEST_F(LintTimingTest, TimingRulesSkipGracefullyWithoutContext) {
  lint::LintContext ctx;
  ctx.netlist = &mult_.netlist;
  LintEngine engine;
  const LintReport report = engine.run(ctx);
  EXPECT_TRUE(report.clean()) << report.summary();
  const auto infos = diags_for(report.diagnostics, "timing.razor-coverage");
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_NE(infos[0].message.find("skipped"), std::string::npos);
}

TEST_F(LintTimingTest, HoldWindowRuleIsOptInAndRecordsWhy) {
  // Default context: the rule must not fire (stock multipliers genuinely
  // have short paths) but must say it was disabled, not silently pass.
  const LintReport report = run_with(safe_timing());
  const auto infos = diags_for(report.diagnostics, "timing.hold-window");
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].severity, Severity::kInfo);
  EXPECT_NE(infos[0].message.find("skipped"), std::string::npos);
  EXPECT_NE(infos[0].message.find("disabled"), std::string::npos);
}

TEST_F(LintTimingTest, HoldWindowFlagsStockShortPathsWhenEnabled) {
  lint::TimingContext timing = safe_timing();
  timing.check_hold = true;
  const LintReport report = run_with(timing);
  // p[0] of any generated multiplier is a single AND gate: its earliest
  // arrival is one cell delay, far inside the shadow sampling window at
  // this period — an undetectable-corruption hazard only min analysis sees.
  const auto errors = diags_for(report.diagnostics, "timing.hold-window");
  ASSERT_GE(errors.size(), 1u) << report.summary();
  EXPECT_EQ(errors[0].severity, Severity::kError);
  EXPECT_NE(errors[0].message.find("shadow sampling window"),
            std::string::npos);
  bool p0_flagged = false;
  for (const Diagnostic& d : errors) {
    p0_flagged |= d.net == mult_.netlist.output_nets()[0];
  }
  EXPECT_TRUE(p0_flagged);

  // Severing p[0]'s Razor tap exempts it: the shadow latch it would trample
  // no longer exists.
  timing.razor_protected.assign(mult_.netlist.num_outputs(), 1);
  timing.razor_protected[0] = 0;
  const LintReport exempt = run_with(timing);
  for (const Diagnostic& d :
       diags_for(exempt.diagnostics, "timing.hold-window")) {
    EXPECT_NE(d.net, mult_.netlist.output_nets()[0]) << d.message;
  }
}

TEST_F(LintTimingTest, HoldMarginTightensTheWindowRule) {
  // With a huge margin even the slowest output's min arrival is "inside the
  // window": every protected output must be flagged.
  lint::TimingContext timing = safe_timing();
  timing.check_hold = true;
  timing.hold_margin_ps = 10.0 * aged_crit_;
  const LintReport report = run_with(timing);
  EXPECT_EQ(errors_for(report.diagnostics, "timing.hold-window"),
            mult_.netlist.num_outputs());
}

// ---------------------------------------------------------------------------
// Consistency rule
// ---------------------------------------------------------------------------

TEST(LintConsistencyTest, StockMultiplierMatchesGolden) {
  const MultiplierNetlist mult = build_column_bypass_multiplier(8);
  lint::LintContext ctx;
  ctx.netlist = &mult.netlist;
  ctx.multiplier = &mult;
  ctx.consistency.vectors = 64;
  LintEngine engine;
  const LintReport report = engine.run(ctx);
  EXPECT_TRUE(report.clean()) << report.summary();
  const auto infos =
      diags_for(report.diagnostics, "consistency.functional");
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_NE(infos[0].message.find("proved"), std::string::npos);
}

TEST(LintConsistencyTest, MiswiredGateRaisesFunctionalError) {
  MultiplierNetlist mult = build_column_bypass_multiplier(8);
  // p[0] is pp[0][0] = a0 AND b0; turning its driver into an OR flips the
  // product's LSB whenever exactly one operand is odd.
  const NetId p0 = mult.netlist.output_nets()[0];
  const std::int32_t driver = mult.netlist.driver_of(p0);
  ASSERT_GE(driver, 0);
  ASSERT_EQ(mult.netlist.gate(static_cast<GateId>(driver)).kind,
            CellKind::kAnd2);
  NetlistSurgeon(mult.netlist)
      .set_gate_kind(static_cast<GateId>(driver), CellKind::kOr2);
  lint::LintContext ctx;
  ctx.netlist = &mult.netlist;
  ctx.multiplier = &mult;
  ctx.consistency.vectors = 64;
  LintEngine engine;
  const LintReport report = engine.run(ctx);
  EXPECT_GE(errors_for(report.diagnostics, "consistency.functional"), 1u);
}

// ---------------------------------------------------------------------------
// Engine / registry / report plumbing
// ---------------------------------------------------------------------------

TEST(LintEngineTest, RegistryRejectsDuplicateRuleIds) {
  lint::RuleRegistry registry;
  lint::register_structural_rules(registry);
  EXPECT_THROW(lint::register_structural_rules(registry),
               std::invalid_argument);
  EXPECT_NE(registry.find("structural.pin-arity"), nullptr);
  EXPECT_EQ(registry.find("no.such.rule"), nullptr);
}

TEST(LintEngineTest, RunWithoutNetlistThrows) {
  LintEngine engine;
  EXPECT_THROW(engine.run(lint::LintContext{}), std::invalid_argument);
}

TEST(LintEngineTest, ReportSortsErrorsFirstAndCountsBySeverity) {
  Netlist nl = small_clean_netlist();
  nl.add_gate(CellKind::kInv, {NetId{0}});  // warning: dead gate
  NetlistSurgeon(nl).set_gate_kind(0, CellKind::kCount);  // error
  lint::RuleRegistry registry;
  lint::register_structural_rules(registry);
  LintEngine engine(std::move(registry));
  lint::LintContext ctx;
  ctx.netlist = &nl;
  const LintReport report = engine.run(ctx);
  ASSERT_GE(report.errors(), 1u);
  ASSERT_GE(report.warnings(), 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.diagnostics.front().severity, Severity::kError);
  EXPECT_EQ(report.count(Severity::kError), report.errors());
  EXPECT_NE(report.summary().find("error"), std::string::npos);
}

TEST(LintEngineTest, JsonReportCarriesCountsAndAnchors) {
  Netlist nl = small_clean_netlist();
  NetlistSurgeon(nl).set_gate_kind(0, CellKind::kCount);
  lint::RuleRegistry registry;
  lint::register_structural_rules(registry);
  LintEngine engine(std::move(registry));
  lint::LintContext ctx;
  ctx.netlist = &nl;
  const LintReport report = engine.run(ctx);
  JsonWriter writer;
  report.write_json(writer);
  const std::string json = writer.str();
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_NE(json.find("\"structural.cell-kind\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"gate\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance gate: every stock architecture lints error-free with the full
// rule set (structural + timing at a safe period + consistency).
// ---------------------------------------------------------------------------

class StockArchitectureLintTest
    : public ::testing::TestWithParam<std::tuple<MultiplierArch, int>> {};

TEST_P(StockArchitectureLintTest, LintsErrorFree) {
  const auto [arch, width] = GetParam();
  const TechLibrary tech = calibrated_tech_library();
  const MultiplierNetlist mult = build_multiplier(arch, width);
  const AgingScenario aging(mult.netlist, tech, BtiModel::calibrated(tech),
                            analytic_stress(mult.netlist));
  lint::TimingContext timing;
  timing.tech = &tech;
  timing.aging = &aging;
  timing.sweep_years = {0.0, 7.0};
  timing.period_ps =
      run_sta(mult.netlist, tech, aging.delay_scales_at(7.0)).critical_path_ps /
          2.0 +
      1.0;
  lint::LintContext ctx;
  ctx.netlist = &mult.netlist;
  ctx.multiplier = &mult;
  ctx.timing = &timing;
  ctx.consistency.vectors = 32;
  LintEngine engine;
  const LintReport report = engine.run(ctx);
  EXPECT_TRUE(report.clean()) << report.summary();
  // Sanity: the full rule set actually ran (one proved-info per timing
  // rule plus the consistency proof).
  EXPECT_GE(report.infos(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStock, StockArchitectureLintTest,
    ::testing::Combine(::testing::Values(MultiplierArch::kArray,
                                         MultiplierArch::kColumnBypass,
                                         MultiplierArch::kRowBypass),
                       ::testing::Values(16, 32)),
    [](const auto& info) {
      return std::string(arch_name(std::get<0>(info.param))) +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace agingsim
