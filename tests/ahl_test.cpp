#include "src/core/ahl.hpp"

#include <gtest/gtest.h>

namespace agingsim {
namespace {

AhlConfig make_config(int width, int skip, bool adaptive) {
  AhlConfig c;
  c.width = width;
  c.skip = skip;
  c.adaptive = adaptive;
  c.indicator.window_ops = 100;
  c.indicator.error_threshold = 0.10;
  return c;
}

TEST(AhlTest, FirstBlockDecidesBeforeAging) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  EXPECT_FALSE(ahl.using_second_block());
  EXPECT_EQ(ahl.decide_cycles(0x00FF), 1);  // 8 zeros >= 8
  EXPECT_EQ(ahl.decide_cycles(0x01FF), 2);  // 7 zeros < 8
}

TEST(AhlTest, SwitchesToSecondBlockAfterErrorBurst) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  // An operand with exactly 8 zeros: one cycle under Skip-8, two cycles
  // under Skip-9.
  const std::uint64_t boundary = 0x00FF;
  EXPECT_EQ(ahl.decide_cycles(boundary), 1);
  for (int i = 0; i < 10; ++i) ahl.record_outcome(true);
  EXPECT_TRUE(ahl.using_second_block());
  EXPECT_EQ(ahl.decide_cycles(boundary), 2);
  // Patterns with 9+ zeros stay one-cycle.
  EXPECT_EQ(ahl.decide_cycles(0x007F), 1);
}

TEST(AhlTest, TraditionalDesignNeverAdapts) {
  AdaptiveHoldLogic tvl(make_config(16, 8, false));
  for (int i = 0; i < 1000; ++i) tvl.record_outcome(true);
  EXPECT_FALSE(tvl.using_second_block());
  EXPECT_EQ(tvl.decide_cycles(0x00FF), 1);
}

TEST(AhlTest, SparseErrorsDoNotSwitch) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  // 5% error rate: below the 10% threshold.
  for (int i = 0; i < 2000; ++i) ahl.record_outcome(i % 20 == 0);
  EXPECT_FALSE(ahl.using_second_block());
}

TEST(AhlTest, SecondBlockReducesOneCycleFraction) {
  // Property over the whole operand space: the second judging block's
  // one-cycle set is a strict subset of the first block's.
  AdaptiveHoldLogic fresh(make_config(8, 4, true));
  AdaptiveHoldLogic aged(make_config(8, 4, true));
  for (int i = 0; i < 10; ++i) aged.record_outcome(true);
  ASSERT_TRUE(aged.using_second_block());
  int fresh_ones = 0, aged_ones = 0;
  for (std::uint64_t v = 0; v < 256; ++v) {
    const bool f1 = fresh.decide_cycles(v) == 1;
    const bool a1 = aged.decide_cycles(v) == 1;
    fresh_ones += f1;
    aged_ones += a1;
    // Never one-cycle under aged judging but two-cycle under fresh.
    EXPECT_FALSE(a1 && !f1) << v;
  }
  EXPECT_LT(aged_ones, fresh_ones);
}

TEST(AhlTest, ConfigIsExposed) {
  AdaptiveHoldLogic ahl(make_config(16, 7, true));
  EXPECT_EQ(ahl.config().skip, 7);
  EXPECT_EQ(ahl.indicator().trips(), 0u);
}

}  // namespace
}  // namespace agingsim
