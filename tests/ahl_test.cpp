#include "src/core/ahl.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

AhlConfig make_config(int width, int skip, bool adaptive) {
  AhlConfig c;
  c.width = width;
  c.skip = skip;
  c.adaptive = adaptive;
  c.indicator.window_ops = 100;
  c.indicator.error_threshold = 0.10;
  return c;
}

TEST(AhlTest, FirstBlockDecidesBeforeAging) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  EXPECT_FALSE(ahl.using_second_block());
  EXPECT_EQ(ahl.decide_cycles(0x00FF), 1);  // 8 zeros >= 8
  EXPECT_EQ(ahl.decide_cycles(0x01FF), 2);  // 7 zeros < 8
}

TEST(AhlTest, SwitchesToSecondBlockAfterErrorBurst) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  // An operand with exactly 8 zeros: one cycle under Skip-8, two cycles
  // under Skip-9.
  const std::uint64_t boundary = 0x00FF;
  EXPECT_EQ(ahl.decide_cycles(boundary), 1);
  for (int i = 0; i < 10; ++i) ahl.record_outcome(true);
  EXPECT_TRUE(ahl.using_second_block());
  EXPECT_EQ(ahl.decide_cycles(boundary), 2);
  // Patterns with 9+ zeros stay one-cycle.
  EXPECT_EQ(ahl.decide_cycles(0x007F), 1);
}

TEST(AhlTest, TraditionalDesignNeverAdapts) {
  AdaptiveHoldLogic tvl(make_config(16, 8, false));
  for (int i = 0; i < 1000; ++i) tvl.record_outcome(true);
  EXPECT_FALSE(tvl.using_second_block());
  EXPECT_EQ(tvl.decide_cycles(0x00FF), 1);
}

TEST(AhlTest, SparseErrorsDoNotSwitch) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  // 5% error rate: below the 10% threshold.
  for (int i = 0; i < 2000; ++i) ahl.record_outcome(i % 20 == 0);
  EXPECT_FALSE(ahl.using_second_block());
}

TEST(AhlTest, SecondBlockReducesOneCycleFraction) {
  // Property over the whole operand space: the second judging block's
  // one-cycle set is a strict subset of the first block's.
  AdaptiveHoldLogic fresh(make_config(8, 4, true));
  AdaptiveHoldLogic aged(make_config(8, 4, true));
  for (int i = 0; i < 10; ++i) aged.record_outcome(true);
  ASSERT_TRUE(aged.using_second_block());
  int fresh_ones = 0, aged_ones = 0;
  for (std::uint64_t v = 0; v < 256; ++v) {
    const bool f1 = fresh.decide_cycles(v) == 1;
    const bool a1 = aged.decide_cycles(v) == 1;
    fresh_ones += f1;
    aged_ones += a1;
    // Never one-cycle under aged judging but two-cycle under fresh.
    EXPECT_FALSE(a1 && !f1) << v;
  }
  EXPECT_LT(aged_ones, fresh_ones);
}

AhlConfig make_storm_config() {
  AhlConfig c = make_config(16, 8, true);
  c.storm_fallback = true;
  c.storm_error_threshold = 0.10;  // 10 errors per 100-op window
  c.storm_calm_windows = 2;
  return c;
}

TEST(AhlStormTest, EngagesAsSoonAsTheWindowBudgetIsBlown) {
  AdaptiveHoldLogic ahl(make_storm_config());
  EXPECT_FALSE(ahl.storm_active());
  for (int i = 0; i < 9; ++i) ahl.record_outcome(true);
  EXPECT_FALSE(ahl.storm_active()) << "one error short of the budget";
  ahl.record_outcome(true);
  EXPECT_TRUE(ahl.storm_active());
  EXPECT_EQ(ahl.storm_engagements(), 1u);
  EXPECT_EQ(ahl.storm_recoveries(), 0u);
  // Every pattern — even all-zeros — is forced to two cycles.
  EXPECT_EQ(ahl.decide_cycles(0x0000), 2);
  EXPECT_EQ(ahl.decide_cycles(0x00FF), 2);
}

TEST(AhlStormTest, RecoversAfterConsecutiveCalmWindows) {
  AdaptiveHoldLogic ahl(make_storm_config());
  for (int i = 0; i < 10; ++i) ahl.record_outcome(true);
  ASSERT_TRUE(ahl.storm_active());
  // Finish the stormy window (10 errors already recorded): not calm.
  for (int i = 0; i < 90; ++i) ahl.record_outcome(false);
  EXPECT_TRUE(ahl.storm_active());
  // One calm window is not enough with storm_calm_windows = 2...
  for (int i = 0; i < 100; ++i) ahl.record_outcome(false);
  EXPECT_TRUE(ahl.storm_active());
  // ...two consecutive calm windows disengage the fallback.
  for (int i = 0; i < 100; ++i) ahl.record_outcome(false);
  EXPECT_FALSE(ahl.storm_active());
  EXPECT_EQ(ahl.storm_recoveries(), 1u);
  // 0x007F has 9 zeros: one cycle under Skip-8 and Skip-9 alike, so normal
  // judging is demonstrably back regardless of the aging indicator's state.
  EXPECT_EQ(ahl.decide_cycles(0x007F), 1);
}

TEST(AhlStormTest, ReengagesWhileTheFaultPersists) {
  AdaptiveHoldLogic ahl(make_storm_config());
  for (int i = 0; i < 10; ++i) ahl.record_outcome(true);
  for (int i = 0; i < 90; ++i) ahl.record_outcome(false);
  for (int i = 0; i < 200; ++i) ahl.record_outcome(false);
  ASSERT_FALSE(ahl.storm_active());
  // The silicon is still bad: the next error burst re-engages the fallback.
  for (int i = 0; i < 10; ++i) ahl.record_outcome(true);
  EXPECT_TRUE(ahl.storm_active());
  EXPECT_EQ(ahl.storm_engagements(), 2u);
  EXPECT_EQ(ahl.storm_recoveries(), 1u);
}

TEST(AhlStormTest, DisabledByDefault) {
  AdaptiveHoldLogic ahl(make_config(16, 8, true));
  for (int i = 0; i < 1000; ++i) ahl.record_outcome(true);
  EXPECT_FALSE(ahl.storm_active());
  EXPECT_EQ(ahl.storm_engagements(), 0u);
  EXPECT_EQ(ahl.storm_recoveries(), 0u);
}

TEST(AhlStormTest, InvalidStormConfigThrows) {
  AhlConfig bad = make_storm_config();
  bad.storm_error_threshold = 0.0;
  EXPECT_THROW(AdaptiveHoldLogic{bad}, std::invalid_argument);
  bad.storm_error_threshold = 1.5;
  EXPECT_THROW(AdaptiveHoldLogic{bad}, std::invalid_argument);
  bad = make_storm_config();
  bad.storm_calm_windows = 0;
  EXPECT_THROW(AdaptiveHoldLogic{bad}, std::invalid_argument);
}

TEST(AhlTest, ConfigIsExposed) {
  AdaptiveHoldLogic ahl(make_config(16, 7, true));
  EXPECT_EQ(ahl.config().skip, 7);
  EXPECT_EQ(ahl.indicator().trips(), 0u);
}

}  // namespace
}  // namespace agingsim
