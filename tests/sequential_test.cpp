#include "src/sim/sequential.hpp"

#include <gtest/gtest.h>

#include <array>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(SequentialTest, ToggleFlipFlopDividesByTwo) {
  // D = !Q: the canonical divide-by-two.
  NetlistBuilder nb;
  const NetId q = nb.input("q");
  const NetId d = nb.inv(q);
  nb.netlist().mark_output(d, "d");
  SequentialSim sim(nb.netlist(), default_tech_library(),
                    {{RegisterBinding{d, 0, kInvalidNet, Logic::kZero}}});
  Logic expect = Logic::kZero;
  for (int cycle = 0; cycle < 8; ++cycle) {
    EXPECT_EQ(sim.q(0), expect) << "cycle " << cycle;
    sim.clock();
    expect = logic_not(expect);
  }
}

TEST(SequentialTest, TwoBitCounter) {
  // q1q0 counts 00,01,10,11: d0 = !q0, d1 = q1 ^ q0.
  NetlistBuilder nb;
  const NetId q0 = nb.input("q0");
  const NetId q1 = nb.input("q1");
  const NetId d0 = nb.inv(q0);
  const NetId d1 = nb.xor2(q1, q0);
  nb.netlist().mark_output(d0, "d0");
  nb.netlist().mark_output(d1, "d1");
  SequentialSim sim(nb.netlist(), default_tech_library(),
                    {RegisterBinding{d0, 0}, RegisterBinding{d1, 1}});
  for (int cycle = 0; cycle < 12; ++cycle) {
    const int count = (sim.q(1) == Logic::kOne ? 2 : 0) +
                      (sim.q(0) == Logic::kOne ? 1 : 0);
    EXPECT_EQ(count, cycle % 4) << "cycle " << cycle;
    sim.clock();
  }
}

TEST(SequentialTest, ShiftRegisterFollowsExternalInput) {
  NetlistBuilder nb;
  const NetId din = nb.input("din");
  const NetId q0 = nb.input("q0");
  const NetId q1 = nb.input("q1");
  nb.netlist().mark_output(nb.buf(din), "d0");
  nb.netlist().mark_output(nb.buf(q0), "d1");
  nb.netlist().mark_output(q1, "out");
  const NetId d0_net = nb.netlist().output_nets()[0];
  const NetId d1_net = nb.netlist().output_nets()[1];
  SequentialSim sim(nb.netlist(), default_tech_library(),
                    {RegisterBinding{d0_net, 1}, RegisterBinding{d1_net, 2}});
  const bool stream[] = {true, false, true, true, false, false, true};
  bool hist[16] = {};
  for (int cycle = 0; cycle < 7; ++cycle) {
    sim.set_input(0, logic_from_bool(stream[cycle]));
    sim.clock();
    hist[cycle] = stream[cycle];
    if (cycle >= 1) {
      EXPECT_EQ(sim.q(1), logic_from_bool(hist[cycle - 1]))
          << "cycle " << cycle;
    }
  }
}

TEST(SequentialTest, ClockEnableHoldsState) {
  // Register loads din only when en = 1.
  NetlistBuilder nb;
  const NetId din = nb.input("din");
  const NetId en = nb.input("en");
  const NetId q = nb.input("q");
  nb.netlist().mark_output(nb.buf(din), "d");
  nb.netlist().mark_output(q, "out");
  const NetId d_net = nb.netlist().output_nets()[0];
  SequentialSim sim(nb.netlist(), default_tech_library(),
                    {RegisterBinding{d_net, 2, en, Logic::kZero}});
  sim.set_input(0, Logic::kOne);   // din = 1
  sim.set_input(1, Logic::kZero);  // en = 0: hold
  sim.clock();
  EXPECT_EQ(sim.q(0), Logic::kZero);
  sim.set_input(1, Logic::kOne);  // en = 1: load
  sim.clock();
  EXPECT_EQ(sim.q(0), Logic::kOne);
  sim.set_input(0, Logic::kZero);
  sim.set_input(1, Logic::kZero);  // hold again
  sim.clock();
  EXPECT_EQ(sim.q(0), Logic::kOne);
}

TEST(SequentialTest, BindingValidation) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId y = nb.inv(a);
  nb.netlist().mark_output(y, "y");
  const TechLibrary& t = default_tech_library();
  EXPECT_THROW(SequentialSim(nb.netlist(), t,
                             {RegisterBinding{NetId{99}, 0}}),
               std::invalid_argument);
  EXPECT_THROW(SequentialSim(nb.netlist(), t, {RegisterBinding{y, 7}}),
               std::invalid_argument);
  EXPECT_THROW(SequentialSim(nb.netlist(), t,
                             {RegisterBinding{y, 0}, RegisterBinding{y, 0}}),
               std::invalid_argument);
  SequentialSim ok(nb.netlist(), t, {RegisterBinding{y, 0}});
  EXPECT_THROW(ok.set_input(0, Logic::kOne), std::invalid_argument);
  EXPECT_THROW(ok.set_input(5, Logic::kOne), std::invalid_argument);
}

TEST(SequentialTest, InstantiateComposesSubcircuits) {
  // A full adder built once, instantiated twice to make a 2-bit adder.
  NetlistBuilder fa_builder;
  const NetId fa_a = fa_builder.input("a");
  const NetId fa_b = fa_builder.input("b");
  const NetId fa_c = fa_builder.input("c");
  const AdderBits fa = fa_builder.full_adder(fa_a, fa_b, fa_c);
  fa_builder.netlist().mark_output(fa.sum, "s");
  fa_builder.netlist().mark_output(fa.carry, "co");

  NetlistBuilder top;
  const auto a = top.input_bus("a", 2);
  const auto b = top.input_bus("b", 2);
  const auto s0 = top.instantiate(fa_builder.netlist(),
                                  std::array{a[0], b[0], top.zero()});
  const auto s1 =
      top.instantiate(fa_builder.netlist(), std::array{a[1], b[1], s0[1]});
  top.netlist().mark_output(s0[0], "s0");
  top.netlist().mark_output(s1[0], "s1");
  top.netlist().mark_output(s1[1], "s2");
  top.netlist().validate();

  TimingSim sim(top.netlist(), default_tech_library());
  std::vector<Logic> pattern(4);
  for (std::uint64_t av = 0; av < 4; ++av) {
    for (std::uint64_t bv = 0; bv < 4; ++bv) {
      sim.load_bus(pattern, av, 2, 0);
      sim.load_bus(pattern, bv, 2, 2);
      sim.step(pattern);
      EXPECT_EQ(sim.output_bits(), av + bv) << av << "+" << bv;
    }
  }
}

}  // namespace
}  // namespace agingsim
