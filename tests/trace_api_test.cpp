// Edge-case coverage for the trace/system API surface that the benches and
// examples lean on.

#include <gtest/gtest.h>

#include "src/core/vl_multiplier.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

TEST(TraceApiTest, EmptyPatternListYieldsEmptyTraceAndStats) {
  const MultiplierNetlist m = build_column_bypass_multiplier(4);
  const TechLibrary& t = default_tech_library();
  const std::vector<OperandPattern> none;
  const auto trace = compute_op_trace(m, t, none);
  EXPECT_TRUE(trace.empty());

  VlSystemConfig cfg;
  cfg.period_ps = 500.0;
  cfg.ahl.width = 4;
  cfg.ahl.skip = 2;
  VariableLatencySystem sys(m, t, cfg);
  const RunStats s = sys.run(trace);
  EXPECT_EQ(s.ops, 0u);
  EXPECT_DOUBLE_EQ(s.avg_latency_ps, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_power_mw, 0.0);
}

TEST(TraceApiTest, FirstOpHasNoRegisterToggles) {
  const MultiplierNetlist m = build_array_multiplier(4);
  const TechLibrary& t = default_tech_library();
  const std::vector<OperandPattern> pats = {{0xF, 0xF}, {0xF, 0xF}, {0x0, 0xF}};
  const auto trace = compute_op_trace(m, t, pats);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].in_toggles, 0);   // power-up transition not charged
  EXPECT_EQ(trace[0].out_toggles, 0);
  EXPECT_EQ(trace[1].in_toggles, 0);   // identical operands
  EXPECT_EQ(trace[1].out_toggles, 0);
  EXPECT_EQ(trace[2].in_toggles, 4);   // a: 0xF -> 0x0
  EXPECT_GT(trace[2].out_toggles, 0);  // product changed
}

TEST(TraceApiTest, RepeatedOperandsAreOneCycleFriendlyAndFree) {
  // A stalled pipeline repeating one operand pair: zero delay after the
  // first op, so any period accepts it as one cycle without Razor errors.
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& t = default_tech_library();
  std::vector<OperandPattern> pats(50, OperandPattern{0x0F, 0x3C});
  const auto trace = compute_op_trace(m, t, pats);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].delay_ps, 0.0);
    EXPECT_DOUBLE_EQ(trace[i].switched_cap_ff, 0.0);
  }
  VlSystemConfig cfg;
  cfg.period_ps = 50.0;  // absurdly fast
  cfg.ahl.width = 8;
  cfg.ahl.skip = 4;      // 0x0F has 4 zeros: one-cycle
  VariableLatencySystem sys(m, t, cfg);
  const RunStats s = sys.run(trace);
  // Only the power-up transition can violate (and at this absurd period it
  // falls outside the shadow window, so it lands in `undetected`).
  EXPECT_EQ(s.one_cycle_ops, 50u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_LE(s.undetected, 1u);
}

TEST(TraceApiTest, StatsAreDeterministicAcrossRuns) {
  const MultiplierNetlist m = build_row_bypass_multiplier(8);
  const TechLibrary& t = default_tech_library();
  Rng rng(77);
  const auto pats = uniform_patterns(rng, 8, 500);
  const auto trace = compute_op_trace(m, t, pats);
  VlSystemConfig cfg;
  cfg.period_ps = 400.0;
  cfg.ahl.width = 8;
  cfg.ahl.skip = 4;
  VariableLatencySystem sys(m, t, cfg);
  const RunStats a = sys.run(trace);
  const RunStats b = sys.run(trace);  // AHL state must reset between runs
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_DOUBLE_EQ(a.total_energy_fj, b.total_energy_fj);
  EXPECT_EQ(a.switched_to_second_block, b.switched_to_second_block);
}

TEST(TraceApiTest, TraceGeneratorIsTheCorrectnessOracle) {
  // Feeding an aged overlay of the wrong size must throw, not mis-simulate.
  const MultiplierNetlist m = build_array_multiplier(4);
  const TechLibrary& t = default_tech_library();
  Rng rng(5);
  const auto pats = uniform_patterns(rng, 4, 10);
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(compute_op_trace(m, t, pats, wrong), std::invalid_argument);
}

TEST(TraceApiTest, RunStatsEnergyBreakdownIsExhaustive) {
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& t = default_tech_library();
  Rng rng(6);
  const auto trace = compute_op_trace(m, t, uniform_patterns(rng, 8, 200));
  FixedLatencySystem fixed(m, t);
  const RunStats s = fixed.run(trace, critical_path_ps(m, t), 0.02);
  EXPECT_NEAR(s.total_energy_fj,
              s.comb_energy_fj + s.register_energy_fj + s.ahl_energy_fj +
                  s.leakage_energy_fj,
              1e-9);
  EXPECT_DOUBLE_EQ(s.ahl_energy_fj, 0.0);  // fixed design has no AHL
}

}  // namespace
}  // namespace agingsim
