// Tests for the strict JSON parser behind the agingd wire protocol
// (src/serve/json.hpp). The parser feeds a network-facing daemon, so the
// rejection cases matter as much as the acceptance cases.

#include "src/serve/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace agingsim::serve {
namespace {

TEST(ServeJson, ParsesScalars) {
  EXPECT_EQ(parse_json("null")->kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-1e3")->as_double(), -1000.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(ServeJson, IntegersRoundTripExactly) {
  // The raw token is kept so 64-bit seeds survive the double detour.
  const auto v = parse_json("18446744073709551615");
  ASSERT_TRUE(v.has_value());
  const auto u = v->as_u64();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, 18446744073709551615ULL);

  const auto neg = parse_json("-9223372036854775808");
  ASSERT_TRUE(neg.has_value());
  const auto i = neg->as_i64();
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, std::numeric_limits<std::int64_t>::min());

  // A fractional number is not an exact integer.
  EXPECT_FALSE(parse_json("1.5")->as_i64().has_value());
}

TEST(ServeJson, ParsesNestedStructures) {
  const auto v = parse_json(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind(), JsonValue::Kind::kObject);
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->kind(), JsonValue::Kind::kArray);
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].str_or("b", ""), "c");
  EXPECT_TRUE(v->bool_or("f", false));
}

TEST(ServeJson, StringEscapes) {
  const auto v = parse_json(R"("a\"b\\c\/d\n\tA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\n\tA");
}

TEST(ServeJson, RejectsMalformedInput) {
  JsonError error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":}", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(parse_json("tru", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(parse_json("01", &error).has_value());  // leading zero
  EXPECT_FALSE(parse_json("+1", &error).has_value());
  EXPECT_FALSE(parse_json("NaN", &error).has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(ServeJson, RejectsTrailingBytes) {
  EXPECT_FALSE(parse_json("{} extra").has_value());
  EXPECT_FALSE(parse_json("1 2").has_value());
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(parse_json("{}  \n").has_value());
}

TEST(ServeJson, DepthLimitStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  JsonError error;
  EXPECT_FALSE(parse_json(deep, &error).has_value());
  // Within the limit, nesting parses fine.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += "[";
  for (int i = 0; i < 32; ++i) ok += "]";
  EXPECT_TRUE(parse_json(ok).has_value());
}

TEST(ServeJson, AccessorsWithDefaults) {
  const auto v = parse_json(R"({"n": 4, "s": "x", "b": true, "u": 7})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->i64_or("n", -1), 4);
  EXPECT_EQ(v->i64_or("missing", -1), -1);
  EXPECT_EQ(v->str_or("s", "d"), "x");
  EXPECT_EQ(v->str_or("missing", "d"), "d");
  EXPECT_TRUE(v->bool_or("b", false));
  EXPECT_EQ(v->u64_or("u", 0), 7u);
  // Type mismatches fall back instead of throwing.
  EXPECT_EQ(v->i64_or("s", -1), -1);
  EXPECT_EQ(v->str_or("n", "d"), "d");
}

}  // namespace
}  // namespace agingsim::serve
