#include "src/power/power.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(PowerTest, DynamicEnergyScalesWithCapAndVdd) {
  const TechLibrary& tech = default_tech_library();
  PowerModel pm(tech);
  EXPECT_DOUBLE_EQ(pm.dynamic_energy_fj(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.dynamic_energy_fj(10.0),
                   10.0 * tech.vdd_v * tech.vdd_v);
  EXPECT_DOUBLE_EQ(pm.dynamic_energy_fj(20.0), 2.0 * pm.dynamic_energy_fj(10.0));
}

TEST(PowerTest, LeakageFallsExponentiallyWithVthDrift) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  nb.netlist().mark_output(nb.inv(a), "y");
  PowerModel pm(default_tech_library());
  const double fresh = pm.leakage_power_nw(nb.netlist(), 0.0);
  const double aged = pm.leakage_power_nw(nb.netlist(), 0.05);
  EXPECT_GT(fresh, 0.0);
  EXPECT_LT(aged, fresh);
  // 50 mV with n*vT ~ 51 mV at 125 C: roughly 1/e.
  EXPECT_NEAR(aged / fresh, std::exp(-0.05 / (1.5 * pm.thermal_voltage_v())),
              1e-12);
}

TEST(PowerTest, LeakageScalesWithTransistorCount) {
  NetlistBuilder small, big;
  const NetId a = small.input("a");
  small.netlist().mark_output(small.inv(a), "y");
  const NetId b = big.input("a");
  NetId y = b;
  for (int i = 0; i < 10; ++i) y = big.inv(y);
  big.netlist().mark_output(y, "y");
  PowerModel pm(default_tech_library());
  EXPECT_DOUBLE_EQ(pm.leakage_power_nw(big.netlist(), 0.0),
                   10.0 * pm.leakage_power_nw(small.netlist(), 0.0));
}

TEST(PowerTest, FlipFlopBankEnergies) {
  PowerModel pm(default_tech_library());
  const PowerParams& p = pm.params();
  EXPECT_DOUBLE_EQ(pm.dff_bank_energy_fj(32, 0),
                   32.0 * p.dff_energy_per_clock_fj);
  EXPECT_DOUBLE_EQ(pm.dff_bank_energy_fj(32, 8),
                   32.0 * p.dff_energy_per_clock_fj +
                       8.0 * p.dff_energy_per_toggle_fj);
  // Razor FFs are strictly more expensive than plain DFFs.
  EXPECT_GT(pm.razor_bank_energy_fj(32, 8), pm.dff_bank_energy_fj(32, 8));
  EXPECT_DOUBLE_EQ(pm.razor_bank_energy_fj(32, 8),
                   p.razor_energy_ratio * pm.dff_bank_energy_fj(32, 8));
}

TEST(PowerTest, EdpDefinition) {
  EXPECT_DOUBLE_EQ(energy_delay_product(2.0, 3.0), 18.0);
  EXPECT_DOUBLE_EQ(energy_delay_product(0.0, 5.0), 0.0);
}

TEST(PowerTest, ThermalVoltageAt125C) {
  PowerModel pm(default_tech_library());
  EXPECT_NEAR(pm.thermal_voltage_v(), 0.0343, 5e-4);
}

}  // namespace
}  // namespace agingsim
