#include "src/aging/prob_propagation.hpp"

#include <gtest/gtest.h>

#include "src/aging/scenario.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"

namespace agingsim {
namespace {

TEST(ProbPropagationTest, GateFormulas) {
  NetlistBuilder nb;
  const NetId a = nb.input("a");
  const NetId b = nb.input("b");
  const NetId c = nb.input("c");
  const NetId y_and = nb.and2(a, b);
  const NetId y_or = nb.or2(a, b);
  const NetId y_xor = nb.xor2(a, b);
  const NetId y_inv = nb.inv(a);
  const NetId y_mux = nb.mux2(y_and, y_or, c);  // 0.5*(0.25 + 0.75)
  const NetId y_and3 = nb.netlist().add_gate(CellKind::kAnd3, {a, b, c});
  const NetId zero = nb.zero();
  const NetId one = nb.one();
  const auto p = propagate_signal_probabilities(nb.netlist());
  EXPECT_DOUBLE_EQ(p[a], 0.5);
  EXPECT_DOUBLE_EQ(p[y_and], 0.25);
  EXPECT_DOUBLE_EQ(p[y_or], 0.75);
  EXPECT_DOUBLE_EQ(p[y_xor], 0.5);
  EXPECT_DOUBLE_EQ(p[y_inv], 0.5);
  EXPECT_DOUBLE_EQ(p[y_mux], 0.5);
  EXPECT_DOUBLE_EQ(p[y_and3], 0.125);
  EXPECT_DOUBLE_EQ(p[zero], 0.0);
  EXPECT_DOUBLE_EQ(p[one], 1.0);
}

TEST(ProbPropagationTest, TrackMonteCarloOnRealNetlist) {
  // Independence is only approximate under reconvergent fanout, but the
  // aggregate stress picture must track the Monte-Carlo extraction.
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const auto analytic = analytic_stress(m.netlist);
  const auto mc = estimate_stress(m.netlist, default_tech_library(), 5, 4000);
  double mean_abs_err = 0.0, max_err = 0.0;
  for (GateId g = 0; g < m.netlist.num_gates(); ++g) {
    const double e = std::abs(analytic.pmos_stress[g] - mc.pmos_stress[g]);
    mean_abs_err += e;
    max_err = std::max(max_err, e);
  }
  mean_abs_err /= static_cast<double>(m.netlist.num_gates());
  // Reconvergent fanout (the bypass selects fan out to every cell of their
  // column) makes independence noticeably approximate here; the aggregate
  // stress picture still tracks.
  EXPECT_LT(mean_abs_err, 0.12);
  EXPECT_LT(max_err, 0.60);
}

TEST(ProbPropagationTest, UsableAsAgingScenarioInput) {
  const MultiplierNetlist m = build_column_bypass_multiplier(8);
  const TechLibrary& tech = default_tech_library();
  AgingScenario scenario(m.netlist, tech, BtiModel::calibrated(tech),
                         analytic_stress(m.netlist));
  const auto scales = scenario.delay_scales_at(7.0);
  ASSERT_EQ(scales.size(), m.netlist.num_gates());
  for (double s : scales) EXPECT_GE(s, 1.0);
  // And roughly agrees with the Monte-Carlo scenario.
  AgingScenario mc(m.netlist, tech, BtiModel::calibrated(tech), 9, 2000);
  EXPECT_NEAR(scenario.mean_dvth_at(7.0), mc.mean_dvth_at(7.0), 0.004);
}

TEST(ProbPropagationTest, MismatchedProfileIsRejected) {
  const MultiplierNetlist m8 = build_column_bypass_multiplier(8);
  const MultiplierNetlist m4 = build_column_bypass_multiplier(4);
  const TechLibrary& tech = default_tech_library();
  EXPECT_THROW(AgingScenario(m8.netlist, tech, BtiModel::calibrated(tech),
                             analytic_stress(m4.netlist)),
               std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
