#include "src/core/vl_multiplier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/aging/scenario.hpp"
#include "src/core/calibration.hpp"
#include "src/workload/patterns.hpp"

namespace agingsim {
namespace {

// Shared expensive state: an 8x8 column-bypassing multiplier, a fresh trace
// and a 7-year-aged trace over the same operand stream.
class VlSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mult_ = new MultiplierNetlist(build_column_bypass_multiplier(8));
    tech_ = new TechLibrary(default_tech_library());
    Rng rng(2024);
    patterns_ = new std::vector<OperandPattern>(
        uniform_patterns(rng, 8, 3000));
    fresh_trace_ = new std::vector<OpTrace>(
        compute_op_trace(*mult_, *tech_, *patterns_));
    scenario_ = new AgingScenario(mult_->netlist, *tech_,
                                  BtiModel::calibrated(*tech_), 7, 500);
    aged_scales_ = new std::vector<double>(scenario_->delay_scales_at(7.0));
    aged_trace_ = new std::vector<OpTrace>(
        compute_op_trace(*mult_, *tech_, *patterns_, *aged_scales_));
    crit_ = critical_path_ps(*mult_, *tech_);
    aged_crit_ = critical_path_ps(*mult_, *tech_, *aged_scales_);
  }
  static void TearDownTestSuite() {
    delete mult_;
    delete tech_;
    delete patterns_;
    delete fresh_trace_;
    delete scenario_;
    delete aged_scales_;
    delete aged_trace_;
    mult_ = nullptr;
  }

  static VlSystemConfig config(double period, int skip, bool adaptive) {
    VlSystemConfig c;
    c.period_ps = period;
    c.ahl.width = 8;
    c.ahl.skip = skip;
    c.ahl.adaptive = adaptive;
    return c;
  }

  static MultiplierNetlist* mult_;
  static TechLibrary* tech_;
  static std::vector<OperandPattern>* patterns_;
  static std::vector<OpTrace>* fresh_trace_;
  static AgingScenario* scenario_;
  static std::vector<double>* aged_scales_;
  static std::vector<OpTrace>* aged_trace_;
  static double crit_;
  static double aged_crit_;
};

MultiplierNetlist* VlSystemTest::mult_ = nullptr;
TechLibrary* VlSystemTest::tech_ = nullptr;
std::vector<OperandPattern>* VlSystemTest::patterns_ = nullptr;
std::vector<OpTrace>* VlSystemTest::fresh_trace_ = nullptr;
AgingScenario* VlSystemTest::scenario_ = nullptr;
std::vector<double>* VlSystemTest::aged_scales_ = nullptr;
std::vector<OpTrace>* VlSystemTest::aged_trace_ = nullptr;
double VlSystemTest::crit_ = 0.0;
double VlSystemTest::aged_crit_ = 0.0;

TEST_F(VlSystemTest, TraceIsWellFormed) {
  ASSERT_EQ(fresh_trace_->size(), patterns_->size());
  for (const OpTrace& op : *fresh_trace_) {
    EXPECT_LE(op.delay_ps, crit_ + 1e-9);
    EXPECT_GE(op.delay_ps, 0.0);
    EXPECT_GE(op.switched_cap_ff, 0.0);
    EXPECT_EQ(op.product, reference_multiply(op.a, op.b, 8));
  }
}

TEST_F(VlSystemTest, AgedTraceIsSlower) {
  double fresh_sum = 0.0, aged_sum = 0.0;
  for (std::size_t i = 0; i < fresh_trace_->size(); ++i) {
    fresh_sum += (*fresh_trace_)[i].delay_ps;
    aged_sum += (*aged_trace_)[i].delay_ps;
  }
  EXPECT_GT(aged_sum, fresh_sum);
  EXPECT_GT(aged_crit_, crit_);
}

TEST_F(VlSystemTest, NoErrorsAtGenerousPeriod) {
  VariableLatencySystem sys(*mult_, *tech_, config(crit_ + 1.0, 4, true));
  const RunStats s = sys.run(*fresh_trace_);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.undetected, 0u);
  EXPECT_FALSE(s.switched_to_second_block);
  // Cycle accounting: every op is 1 or 2 cycles exactly.
  EXPECT_EQ(s.total_cycles, s.one_cycle_ops + 2 * s.two_cycle_ops);
  EXPECT_EQ(s.ops, s.one_cycle_ops + s.two_cycle_ops);
  EXPECT_NEAR(s.one_cycle_ratio, expected_one_cycle_ratio(8, 4), 0.03);
}

TEST_F(VlSystemTest, SkipZeroMakesEverythingOneCycle) {
  VariableLatencySystem sys(*mult_, *tech_, config(crit_ + 1.0, 0, true));
  const RunStats s = sys.run(*fresh_trace_);
  EXPECT_EQ(s.two_cycle_ops, 0u);
  EXPECT_DOUBLE_EQ(s.avg_cycles, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_latency_ps, crit_ + 1.0);
}

TEST_F(VlSystemTest, SkipAboveWidthMakesEverythingTwoCycles) {
  VariableLatencySystem sys(*mult_, *tech_,
                            config(0.55 * crit_, /*skip=*/9, true));
  const RunStats s = sys.run(*fresh_trace_);
  EXPECT_EQ(s.one_cycle_ops, 0u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.undetected, 0u);  // 2T > crit
  EXPECT_DOUBLE_EQ(s.avg_cycles, 2.0);
}

TEST_F(VlSystemTest, TightPeriodProducesErrorsAndPenalties) {
  VariableLatencySystem sys(*mult_, *tech_, config(0.55 * crit_, 3, false));
  const RunStats s = sys.run(*fresh_trace_);
  EXPECT_GT(s.errors, 0u);
  EXPECT_EQ(s.undetected, 0u);  // period >= crit/2 keeps Razor sound
  EXPECT_EQ(s.total_cycles,
            s.one_cycle_ops + 2 * s.two_cycle_ops + 3 * s.errors);
  EXPECT_GT(s.errors_per_10k_ops, 0.0);
}

TEST_F(VlSystemTest, ErrorsShrinkAsPeriodGrows) {
  std::uint64_t prev_errors = ~std::uint64_t{0};
  for (double frac : {0.55, 0.7, 0.85, 1.0}) {
    VariableLatencySystem sys(*mult_, *tech_, config(frac * crit_, 3, false));
    const RunStats s = sys.run(*fresh_trace_);
    EXPECT_LE(s.errors, prev_errors) << "period fraction " << frac;
    prev_errors = s.errors;
  }
  EXPECT_EQ(prev_errors, 0u);
}

TEST_F(VlSystemTest, RazorSoundnessHoldsDownToHalfCriticalPath) {
  for (double frac : {0.5, 0.6, 0.75}) {
    VariableLatencySystem sys(*mult_, *tech_,
                              config(frac * aged_crit_, 3, true));
    EXPECT_EQ(sys.run(*aged_trace_).undetected, 0u) << frac;
  }
}

TEST_F(VlSystemTest, AdaptiveSwitchesUnderAgingAndReducesErrors) {
  // Pick a period low enough that a sizeable fraction of the aged
  // Skip-3-one-cycle patterns violate: the 70th percentile of their aged
  // delays. The traditional design then errors on ~30% of one-cycle ops —
  // well past the indicator's 10% threshold — and the AHL must switch.
  const JudgingBlock jb(8, 3);
  std::vector<double> one_cycle_delays;
  for (const OpTrace& op : *aged_trace_) {
    if (jb.one_cycle(op.a)) one_cycle_delays.push_back(op.delay_ps);
  }
  ASSERT_GT(one_cycle_delays.size(), 100u);
  std::sort(one_cycle_delays.begin(), one_cycle_delays.end());
  double period = one_cycle_delays[one_cycle_delays.size() * 7 / 10];
  // Razor stays sound as long as every op fits in two cycles; random
  // patterns settle far below the STA critical path, so this bound is much
  // looser than crit/2.
  double max_delay = 0.0;
  for (const OpTrace& op : *aged_trace_) {
    max_delay = std::max(max_delay, op.delay_ps);
  }
  period = std::max(period, 0.5 * max_delay);

  VariableLatencySystem traditional(*mult_, *tech_,
                                    config(period, 3, false));
  VariableLatencySystem adaptive(*mult_, *tech_, config(period, 3, true));
  const RunStats st = traditional.run(*aged_trace_);
  const RunStats sa = adaptive.run(*aged_trace_);
  ASSERT_GT(st.errors_per_10k_ops, 1000.0)
      << "test premise: the traditional design must be erroring heavily";
  EXPECT_TRUE(sa.switched_to_second_block);
  EXPECT_LT(sa.errors, st.errors);
  // Converting the error-prone boundary patterns to two-cycle ops must not
  // cost more than the re-execution penalty it avoids.
  EXPECT_LE(sa.avg_latency_ps, st.avg_latency_ps * 1.02);
}

TEST_F(VlSystemTest, EnergyAccountingIsConsistent) {
  VariableLatencySystem sys(*mult_, *tech_, config(crit_, 4, true));
  const RunStats s = sys.run(*fresh_trace_, /*mean_dvth_v=*/0.01);
  EXPECT_GT(s.comb_energy_fj, 0.0);
  EXPECT_GT(s.register_energy_fj, 0.0);
  EXPECT_GT(s.ahl_energy_fj, 0.0);
  EXPECT_GT(s.leakage_energy_fj, 0.0);
  EXPECT_NEAR(s.total_energy_fj,
              s.comb_energy_fj + s.register_energy_fj + s.ahl_energy_fj +
                  s.leakage_energy_fj,
              1e-6);
  const double time_ps = static_cast<double>(s.total_cycles) * s.period_ps;
  EXPECT_NEAR(s.avg_power_mw, s.total_energy_fj / time_ps, 1e-12);
  EXPECT_NEAR(s.edp_mw_ns2,
              s.avg_power_mw * (s.avg_latency_ps * 1e-3) *
                  (s.avg_latency_ps * 1e-3),
              1e-12);
}

TEST_F(VlSystemTest, LeakageFallsWithVthDrift) {
  VariableLatencySystem sys(*mult_, *tech_, config(crit_, 4, true));
  const RunStats fresh = sys.run(*fresh_trace_, 0.0);
  const RunStats drifted = sys.run(*fresh_trace_, 0.05);
  EXPECT_GT(fresh.leakage_energy_fj, drifted.leakage_energy_fj);
}

TEST_F(VlSystemTest, FixedLatencyBaselineSemantics) {
  FixedLatencySystem fixed(*mult_, *tech_);
  const RunStats s = fixed.run(*fresh_trace_, crit_);
  EXPECT_EQ(s.ops, fresh_trace_->size());
  EXPECT_EQ(s.total_cycles, s.ops);
  EXPECT_DOUBLE_EQ(s.avg_latency_ps, crit_);
  EXPECT_EQ(s.undetected, 0u);
  // Clocking it faster than a pattern's delay is flagged.
  const RunStats broken = fixed.run(*fresh_trace_, 0.3 * crit_);
  EXPECT_GT(broken.undetected, 0u);
}

TEST_F(VlSystemTest, VariableLatencyBeatsFixedAtGoodPeriod) {
  // The headline claim, in miniature: a well-chosen period gives the VL
  // design a lower average latency than the fixed-latency bypassing design.
  VariableLatencySystem sys(*mult_, *tech_, config(0.7 * crit_, 3, true));
  const RunStats vl = sys.run(*fresh_trace_);
  FixedLatencySystem fixed(*mult_, *tech_);
  const RunStats fl = fixed.run(*fresh_trace_, crit_);
  EXPECT_LT(vl.avg_latency_ps, fl.avg_latency_ps);
}

TEST_F(VlSystemTest, ConfigValidation) {
  EXPECT_THROW(VariableLatencySystem(*mult_, *tech_, config(0.0, 4, true)),
               std::invalid_argument);
  VlSystemConfig bad = config(100.0, 4, true);
  bad.ahl.width = 16;  // mismatched width
  EXPECT_THROW(VariableLatencySystem(*mult_, *tech_, bad),
               std::invalid_argument);
  FixedLatencySystem fixed(*mult_, *tech_);
  EXPECT_THROW(fixed.run(*fresh_trace_, -1.0), std::invalid_argument);
}

TEST_F(VlSystemTest, RowBypassJudgesOnMultiplicator) {
  // Build a tiny row-bypass system and check the judging operand is b:
  // patterns with dense a / sparse b must be one-cycle, and vice versa.
  const MultiplierNetlist rb = build_row_bypass_multiplier(8);
  VlSystemConfig c = config(critical_path_ps(rb, *tech_) + 1.0, 4, true);
  VariableLatencySystem sys(rb, *tech_, c);
  std::vector<OperandPattern> pats = {{0xFF, 0x00}, {0x00, 0xFF}};
  const auto trace = compute_op_trace(rb, *tech_, pats);
  const RunStats s = sys.run(trace);
  EXPECT_EQ(s.one_cycle_ops, 1u);  // only the sparse-b pattern
  EXPECT_EQ(s.two_cycle_ops, 1u);
}

}  // namespace
}  // namespace agingsim
