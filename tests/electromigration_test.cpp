#include "src/aging/electromigration.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agingsim {
namespace {

TEST(ElectromigrationTest, DefaultCornerGivesTenYearMttf) {
  ElectromigrationModel em;
  EXPECT_NEAR(em.mttf_years(), 10.0, 1e-9);
}

TEST(ElectromigrationTest, BlackCurrentExponent) {
  // MTTF ~ J^-2: doubling current density quarters the lifetime.
  EmParams hot{};
  hot.current_density_ma_um2 = 2.0;
  ElectromigrationModel em(hot);
  EXPECT_NEAR(em.mttf_years(), 10.0 / 4.0, 1e-9);
}

TEST(ElectromigrationTest, TemperatureAcceleration) {
  EmParams hotter{};
  hotter.temperature_k = 423.15;  // 150 C
  ElectromigrationModel base, hot(hotter);
  EXPECT_LT(hot.mttf_years(), base.mttf_years());
}

TEST(ElectromigrationTest, DelayScaleIsLinearInConsumedLifetime) {
  ElectromigrationModel em;  // MTTF 10y, 10% growth at MTTF
  EXPECT_DOUBLE_EQ(em.wire_delay_scale(0.0), 1.0);
  EXPECT_NEAR(em.wire_delay_scale(5.0), 1.05, 1e-12);
  EXPECT_NEAR(em.wire_delay_scale(10.0), 1.10, 1e-12);
  EXPECT_GT(em.wire_delay_scale(7.0), em.wire_delay_scale(3.0));
}

TEST(ElectromigrationTest, Validation) {
  EmParams bad{};
  bad.current_density_ma_um2 = 0.0;
  EXPECT_THROW(ElectromigrationModel{bad}, std::invalid_argument);
  EmParams neg{};
  neg.delay_growth_at_mttf = -0.1;
  EXPECT_THROW(ElectromigrationModel{neg}, std::invalid_argument);
  ElectromigrationModel em;
  EXPECT_THROW(em.wire_delay_scale(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace agingsim
