#include "src/report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace agingsim {
namespace {

TEST(TableTest, TextRenderingAligns) {
  Table t("Demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvRendering) {
  Table t("T", {"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, RowArityIsChecked) {
  Table t("T", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table("empty", {}), std::invalid_argument);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5378, 2), "53.78%");
  EXPECT_EQ(Table::num(12345), "12345");
}

TEST(TableTest, PrintWritesToStream) {
  Table t("T", {"x"});
  t.add_row({"y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace agingsim
