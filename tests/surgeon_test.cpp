// Unit tests for the NetlistSurgeon repair primitives: insert_buffer (mid-
// graph, renumbering) and insert_output_buffer (append-only). The contract
// under test is the one the hold-repair pass relies on: applied to a valid
// netlist they yield a valid netlist — structural lint family clean — with
// the identical logic function, and the timed path through the edited fanin
// grows by exactly the buffer-chain delay.

#include "src/netlist/surgeon.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/lint/engine.hpp"
#include "src/lint/repair.hpp"
#include "src/multiplier/multiplier.hpp"
#include "src/netlist/builder.hpp"
#include "src/sim/sta.hpp"

namespace agingsim {
namespace {

/// Full adder: two outputs, an internal net (s1) with two consumers.
struct FullAdder {
  NetlistBuilder nb;
  NetId a, b, cin, s1, sum, c1, c2, carry;
  FullAdder() {
    a = nb.input("a");
    b = nb.input("b");
    cin = nb.input("cin");
    s1 = nb.xor2(a, b);
    sum = nb.xor2(s1, cin);
    c1 = nb.and2(a, b);
    c2 = nb.and2(s1, cin);
    carry = nb.or2(c1, c2);
    nb.netlist().mark_output(sum, "sum");
    nb.netlist().mark_output(carry, "carry");
  }
  Netlist& netlist() { return nb.netlist(); }
};

std::size_t structural_errors(const Netlist& nl) {
  lint::LintContext ctx;
  ctx.netlist = &nl;
  const lint::LintEngine engine;
  std::size_t n = 0;
  for (const lint::Diagnostic& d : engine.run(ctx).diagnostics) {
    if (d.severity == lint::Severity::kError) ++n;
  }
  return n;
}

TEST(SurgeonInsertBufferTest, RenumbersAndStaysStructurallyClean) {
  FullAdder fa;
  const Netlist original = fa.netlist();
  ASSERT_EQ(structural_errors(original), 0u);

  // s1 -> c2's AND gate: the sink is gate 3 (xor s1, xor sum, and c1,
  // and c2, or carry). Find it through the driver table instead of
  // hardcoding: c2's driver reads s1.
  const auto sink = static_cast<GateId>(fa.netlist().driver_of(fa.c2));
  const NetId tail = NetlistSurgeon(fa.netlist()).insert_buffer(fa.s1, sink);

  EXPECT_EQ(fa.netlist().num_gates(), original.num_gates() + 1);
  EXPECT_EQ(fa.netlist().num_nets(), original.num_nets() + 1);
  fa.netlist().validate();
  EXPECT_EQ(structural_errors(fa.netlist()), 0u);

  // The buffer output feeds the (renumbered) sink; the *other* consumer of
  // s1 (the sum XOR) still reads s1 directly.
  const auto moved_sink = static_cast<GateId>(sink + 1);
  bool sink_reads_tail = false;
  for (const NetId in : fa.netlist().gate_inputs(moved_sink)) {
    sink_reads_tail |= in == tail;
    EXPECT_NE(in, fa.s1);
  }
  EXPECT_TRUE(sink_reads_tail);

  const lint::EquivalenceSummary eq = lint::check_logic_equivalence(
      original, fa.netlist(), default_tech_library(), 128, 0xD1FFu);
  EXPECT_TRUE(eq.ok()) << eq.mismatches << " mismatching lanes";
}

TEST(SurgeonInsertBufferTest, ChainLengthensThePathByExactlyItsDelay) {
  FullAdder fa;
  const TechLibrary& t = default_tech_library();
  const StaResult before = run_sta(fa.netlist(), t);
  const double carry_before = before.arrival_ps[fa.carry];
  const double dx = t.delay(CellKind::kXor2);
  const double da = t.delay(CellKind::kAnd2);
  const double dor = t.delay(CellKind::kOr2);
  ASSERT_DOUBLE_EQ(carry_before, dx + da + dor);

  // Three buffers on the critical edge s1 -> c2.
  const auto sink = static_cast<GateId>(fa.netlist().driver_of(fa.c2));
  NetlistSurgeon(fa.netlist()).insert_buffer(fa.s1, sink, 3);
  const StaResult after = run_sta(fa.netlist(), t);
  // carry was renumbered by the insertion; the output table tracked it.
  const NetId carry_now = fa.netlist().output_nets()[1];
  EXPECT_DOUBLE_EQ(after.arrival_ps[carry_now],
                   carry_before + 3.0 * t.delay(CellKind::kBuf));
}

TEST(SurgeonInsertBufferTest, RejectsBadArguments) {
  FullAdder fa;
  NetlistSurgeon surgeon(fa.netlist());
  const auto sink = static_cast<GateId>(fa.netlist().driver_of(fa.c2));
  EXPECT_THROW(surgeon.insert_buffer(fa.s1, sink, 0), std::invalid_argument);
  EXPECT_THROW(surgeon.insert_buffer(fa.s1, sink, -2), std::invalid_argument);
  // The carry OR gate does not read s1.
  const auto or_gate = static_cast<GateId>(fa.netlist().driver_of(fa.carry));
  EXPECT_THROW(surgeon.insert_buffer(fa.s1, or_gate), std::invalid_argument);
  EXPECT_THROW(
      surgeon.insert_buffer(static_cast<NetId>(fa.netlist().num_nets()), sink),
      std::invalid_argument);
  EXPECT_THROW(
      surgeon.insert_buffer(fa.s1,
                            static_cast<GateId>(fa.netlist().num_gates())),
      std::invalid_argument);
  // Nothing above may have mutated the netlist.
  fa.netlist().validate();
  EXPECT_EQ(fa.netlist().num_gates(), 5u);
}

TEST(SurgeonInsertOutputBufferTest, AppendsWithoutRenumbering) {
  FullAdder fa;
  const Netlist original = fa.netlist();
  const TechLibrary& t = default_tech_library();
  const StaResult before = run_sta(original, t);

  const NetId new_out = NetlistSurgeon(fa.netlist()).insert_output_buffer(0, 2);
  EXPECT_EQ(fa.netlist().num_gates(), original.num_gates() + 2);
  // Existing ids unchanged: every original gate is byte-identical.
  for (GateId g = 0; g < original.num_gates(); ++g) {
    EXPECT_EQ(fa.netlist().gate(g).out, original.gate(g).out);
  }
  EXPECT_EQ(fa.netlist().output_nets()[0], new_out);
  EXPECT_EQ(fa.netlist().output_nets()[1], fa.carry);
  fa.netlist().validate();
  EXPECT_EQ(structural_errors(fa.netlist()), 0u);

  const StaResult after = run_sta(fa.netlist(), t);
  EXPECT_DOUBLE_EQ(after.arrival_ps[new_out],
                   before.arrival_ps[fa.sum] + 2.0 * t.delay(CellKind::kBuf));

  const lint::EquivalenceSummary eq = lint::check_logic_equivalence(
      original, fa.netlist(), t, 128, 0xD1FFu);
  EXPECT_TRUE(eq.ok());
}

TEST(SurgeonInsertOutputBufferTest, RejectsBadArguments) {
  FullAdder fa;
  NetlistSurgeon surgeon(fa.netlist());
  EXPECT_THROW(surgeon.insert_output_buffer(0, 0), std::invalid_argument);
  EXPECT_THROW(surgeon.insert_output_buffer(2), std::invalid_argument);
  // Dangling-output corruption is detected, not followed.
  surgeon.set_output_net(0, kInvalidNet);
  EXPECT_THROW(surgeon.insert_output_buffer(0), std::invalid_argument);
}

// Repair-primitive guarantee at scale: a stock multiplier stays fully lint
// clean (structural family) and logic-equivalent after a spread of mid-graph
// and endpoint insertions, including on a bypass-multiplexed architecture
// where tri-state keeper structures make pin aliasing delicate.
TEST(SurgeonInsertBufferTest, StockMultiplierSurvivesScatteredInsertions) {
  for (const MultiplierArch arch :
       {MultiplierArch::kArray, MultiplierArch::kColumnBypass}) {
    MultiplierNetlist mult = build_multiplier(arch, 4);
    const Netlist original = mult.netlist;
    // One mid-graph insertion per quarter of the gate range, on each gate's
    // first input pin, plus one endpoint chain.
    for (int q = 0; q < 4; ++q) {
      const auto g = static_cast<GateId>(
          (mult.netlist.num_gates() - 1) * (q + 1) / 4);
      if (mult.netlist.gate(g).in_count == 0) continue;
      const NetId in = mult.netlist.gate_inputs(g)[0];
      NetlistSurgeon(mult.netlist).insert_buffer(in, g);
    }
    NetlistSurgeon(mult.netlist).insert_output_buffer(0, 3);
    mult.netlist.validate();
    EXPECT_EQ(structural_errors(mult.netlist), 0u) << arch_name(arch);
    const lint::EquivalenceSummary eq = lint::check_logic_equivalence(
        original, mult.netlist, default_tech_library(), 192, 0xBEEFu);
    EXPECT_TRUE(eq.ok()) << arch_name(arch) << ": " << eq.mismatches
                         << " mismatching lanes";
  }
}

}  // namespace
}  // namespace agingsim
